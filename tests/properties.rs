//! Property-based tests over the core data structures and invariants.

use autocat::cache::{Cache, CacheConfig, Domain, PolicyKind};
use autocat::detect::EventTrain;
use autocat::gym::obs::{Latency, ObsEncoder, StepRecord};
use autocat::nn::{Categorical, Matrix};
use autocat::ppo::gae;
use proptest::prelude::*;

fn arb_policy() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::Lru),
        Just(PolicyKind::Plru),
        Just(PolicyKind::Rrip),
        Just(PolicyKind::Nru),
        Just(PolicyKind::Random),
    ]
}

proptest! {
    /// Whatever the access sequence and policy, a line that was accessed
    /// and never evicted/flushed is exactly the set contents; capacity is
    /// never exceeded and probe() agrees with re-access hits.
    #[test]
    fn cache_capacity_and_probe_consistency(
        policy in arb_policy(),
        ways in 1usize..8,
        sets in 1usize..4,
        accesses in prop::collection::vec(0u64..32, 1..120),
    ) {
        let mut cache = Cache::new(
            CacheConfig::new(sets, ways).with_policy(policy).with_policy_seed(7),
        );
        for &a in &accesses {
            cache.access(a, Domain::Attacker);
            // The just-accessed line must be present.
            prop_assert!(cache.probe(a));
        }
        for s in 0..sets {
            let contents = cache.set_contents(s);
            prop_assert_eq!(contents.len(), ways);
            for entry in contents.iter().flatten() {
                // Every resident line was accessed and maps to this set.
                prop_assert!(accesses.contains(&entry.0));
                prop_assert_eq!(cache.set_index(entry.0), s);
            }
        }
    }

    /// Locked lines survive any access storm, for every policy.
    #[test]
    fn locked_lines_are_never_evicted(
        policy in arb_policy(),
        ways in 2usize..8,
        accesses in prop::collection::vec(1u64..64, 1..200),
    ) {
        let mut cache =
            Cache::new(CacheConfig::fully_associative(ways).with_policy(policy));
        prop_assert!(cache.lock_line(0, Domain::Victim));
        for &a in &accesses {
            cache.access(a, Domain::Attacker);
        }
        prop_assert!(cache.probe(0));
        prop_assert!(cache.is_locked(0));
    }

    /// Flushing removes a line; re-access always misses right after.
    #[test]
    fn flush_then_access_misses(
        policy in arb_policy(),
        ways in 1usize..8,
        addr in 0u64..16,
        noise in prop::collection::vec(0u64..16, 0..40),
    ) {
        let mut cache =
            Cache::new(CacheConfig::fully_associative(ways).with_policy(policy));
        for &a in &noise {
            cache.access(a, Domain::Attacker);
        }
        cache.access(addr, Domain::Attacker);
        cache.flush(addr, Domain::Attacker);
        prop_assert!(!cache.probe(addr));
        prop_assert!(!cache.access(addr, Domain::Attacker).hit);
    }

    /// Matrix transpose laws: (A B)^T = B^T A^T, and the fused kernels
    /// match their explicit-transpose equivalents.
    #[test]
    fn matrix_transpose_laws(
        a_vals in prop::collection::vec(-10.0f32..10.0, 12),
        b_vals in prop::collection::vec(-10.0f32..10.0, 20),
    ) {
        let a = Matrix::from_vec(3, 4, a_vals);
        let b = Matrix::from_vec(4, 5, b_vals);
        let ab_t = a.matmul(&b).transpose();
        let bt_at = b.transpose().matmul(&a.transpose());
        for (x, y) in ab_t.as_slice().iter().zip(bt_at.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // Fused kernels: A^T B via matmul_tn equals the explicit transpose.
        let fused = a.matmul_tn(&a);
        let explicit = a.transpose().matmul(&a);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Categorical distributions are well-formed for any finite logits.
    #[test]
    fn categorical_is_normalized(
        logits in prop::collection::vec(-20.0f32..20.0, 1..12),
    ) {
        let d = Categorical::from_logits(&logits);
        let sum: f32 = d.probs().iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(d.entropy() >= -1e-4);
        prop_assert!(d.entropy() <= (logits.len() as f32).ln() + 1e-4);
        for a in 0..logits.len() {
            prop_assert!((d.log_prob(a).exp() - d.probs()[a]).abs() < 1e-4);
        }
        // dlogp sums to zero (softmax gradient property).
        let g = d.dlogp_dlogits(0);
        let gsum: f32 = g.iter().sum();
        prop_assert!(gsum.abs() < 1e-4);
    }

    /// Autocorrelation coefficients are bounded for any binary train.
    #[test]
    fn autocorrelation_is_bounded(
        bits in prop::collection::vec(0u8..=1, 4..256),
        lag in 1usize..16,
    ) {
        let train = binary_train(&bits);
        let c = train.autocorrelation(lag);
        prop_assert!(c.abs() < 3.0, "C_{lag} = {c} wildly out of range");
        prop_assert!((train.autocorrelation(0) - 1.0).abs() < 1e-9
            || train.autocorrelation(0) == 0.0);
    }

    /// Observation encoding: fixed size, exactly one latency one-hot and one
    /// action one-hot per filled slot, zeros elsewhere.
    #[test]
    fn obs_encoding_is_one_hot(
        window in 1usize..12,
        num_actions in 1usize..10,
        len in 0usize..20,
    ) {
        let enc = ObsEncoder::new(window, num_actions);
        let history: Vec<StepRecord> = (0..len)
            .map(|i| StepRecord {
                action: i % num_actions,
                latency: match i % 3 {
                    0 => Latency::Hit,
                    1 => Latency::Miss,
                    _ => Latency::NotAvailable,
                },
                step_index: i % window,
                victim_triggered: i % 2 == 0,
            })
            .collect();
        let obs = enc.encode(&history, false);
        prop_assert_eq!(obs.len(), enc.obs_dim());
        let token = enc.token_dim();
        let filled = len.min(window);
        for slot in 0..window {
            let base = slot * token;
            let lat_mass: f32 = obs[base..base + 3].iter().sum();
            let act_mass: f32 = obs[base + 3..base + 3 + num_actions].iter().sum();
            if slot < filled {
                prop_assert_eq!(lat_mass, 1.0);
                prop_assert_eq!(act_mass, 1.0);
            } else {
                prop_assert_eq!(lat_mass, 0.0);
                prop_assert_eq!(act_mass, 0.0);
            }
        }
    }

    /// GAE with gamma = 0 reduces to the one-step TD error.
    #[test]
    fn gae_gamma_zero_is_td_error(
        rewards in prop::collection::vec(-2.0f32..2.0, 1..30),
    ) {
        let n = rewards.len();
        let values: Vec<f32> = (0..=n).map(|i| i as f32 * 0.1).collect();
        let dones = vec![false; n];
        let (adv, _) = gae(&rewards, &values, &dones, 0.0, 0.95);
        for t in 0..n {
            prop_assert!((adv[t] - (rewards[t] - values[t])).abs() < 1e-5);
        }
    }
}

/// Builds an EventTrain from raw bits via synthetic eviction events.
fn binary_train(bits: &[u8]) -> EventTrain {
    use autocat::cache::CacheEvent;
    let mut train = EventTrain::new();
    for &b in bits {
        let (victim_domain, evictor_domain) = if b == 1 {
            (Domain::Victim, Domain::Attacker)
        } else {
            (Domain::Attacker, Domain::Victim)
        };
        train.observe(&CacheEvent::Eviction {
            victim_domain,
            evictor_domain,
            evicted_addr: 0,
            incoming_addr: 1,
            set: 0,
        });
    }
    train
}
