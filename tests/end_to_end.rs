//! Cross-crate integration tests: the full explore → extract → classify
//! pipeline, scripted-attack oracles, detectors in the loop, and the
//! covert-channel stack.

use autocat::attacks::classify::AttackCategory;
use autocat::attacks::stealthy::StealthyStreamline;
use autocat::attacks::textbook::{
    run_scripted, run_scripted_multi, ScriptedAttacker, TextbookFlushReload, TextbookPrimeProbe,
};
use autocat::cache::{CacheConfig, PolicyKind};
use autocat::detect::{AutocorrDetector, CycloneFeatures, MissCountDetector};
use autocat::gym::{
    env::Secret, Action, CacheGuessingGame, EnvConfig, Environment, MonitorSpec, MultiGuessConfig,
    MultiGuessEnv,
};
use autocat::ppo::{Backbone, PpoConfig, Trainer};
use autocat::Explorer;
use rand::SeedableRng;

fn rng(seed: u64) -> rand::rngs::StdRng {
    rand::rngs::StdRng::seed_from_u64(seed)
}

/// The headline end-to-end claim: PPO discovers a working flush+reload
/// attack on config 6 and the classifier recognizes it.
///
/// This is the repository's one intentionally-slow test (~1-2 minutes in
/// release, a few in debug); it exercises every crate at once.
#[test]
fn rl_discovers_flush_reload_on_config6() {
    let report = Explorer::new(EnvConfig::flush_reload_fa4().with_window(12))
        .seed(1)
        .max_steps(250_000)
        .return_threshold(0.85)
        .run()
        .expect("valid config");
    assert!(
        report.converged,
        "PPO must converge on config 6 within 250k steps"
    );
    assert!(
        report.accuracy > 0.95,
        "converged policy must guess accurately, got {}",
        report.accuracy
    );
    assert!(
        matches!(
            report.category,
            AttackCategory::FlushReload | AttackCategory::EvictReload | AttackCategory::LruBased
        ),
        "expected a shared-memory or LRU-state attack, got {} ({})",
        report.category,
        report.sequence_notation
    );
    // The sequence must trigger the victim and end with a guess.
    assert!(report
        .sequence
        .iter()
        .any(|a| matches!(a, Action::TriggerVictim)));
    assert!(matches!(
        report.sequence.last(),
        Some(Action::Guess(_)) | Some(Action::GuessNoAccess)
    ));
}

#[test]
fn scripted_attacks_are_oracles_on_their_configs() {
    let mut r = rng(2);
    let cfg = EnvConfig::prime_probe_dm4();
    let mut env = CacheGuessingGame::new(cfg.clone()).unwrap();
    let mut pp = TextbookPrimeProbe::new(&cfg, 4);
    let (correct, _) = run_scripted(&mut env, &mut pp, 30, &mut r);
    assert_eq!(correct, 30);

    let cfg = EnvConfig::flush_reload_fa4();
    let mut env = CacheGuessingGame::new(cfg.clone()).unwrap();
    let mut fr = TextbookFlushReload::new(&cfg);
    let (correct, _) = run_scripted(&mut env, &mut fr, 30, &mut r);
    assert_eq!(correct, 30);
}

#[test]
fn miss_detection_blocks_prime_probe_but_not_lru_state() {
    let mut r = rng(3);
    // Prime+probe forces victim misses: with detection on, a textbook PP
    // episode terminates as detected.
    let cfg = EnvConfig::prime_probe_dm4().with_detection(MonitorSpec::strict_miss());
    let mut env = CacheGuessingGame::new(cfg.clone()).unwrap();
    let mut pp = TextbookPrimeProbe::new(&cfg, 4);
    env.reset(&mut r);
    pp.begin();
    let mut last = None;
    let detected = loop {
        let action = pp.decide(last);
        let idx = env.action_space().encode(action).unwrap();
        let res = env.step(idx, &mut r);
        last = env.history().last().map(|h| h.latency);
        if res.done {
            break res.info.detected;
        }
    };
    assert!(
        detected,
        "textbook prime+probe must trip miss-based detection"
    );

    // StealthyStreamline's victim never misses.
    let ss = StealthyStreamline::new(8, PolicyKind::Lru, 2);
    assert_eq!(ss.victim_misses_during(&[0, 1, 2, 3, 0, 2]), 0);
}

#[test]
fn autocorr_detector_flags_textbook_pp_episode() {
    let mut r = rng(4);
    let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
    let mut pp = TextbookPrimeProbe::new(&EnvConfig::prime_probe_dm4(), 4);
    let stats = run_scripted_multi(&mut env, &mut pp, &mut r);
    assert!(stats.accuracy() > 0.9);
    let mut det = AutocorrDetector::default();
    det.observe_all(env.episode_events().iter());
    assert!(
        det.is_attack(),
        "CC-Hunter must flag a textbook PP train (C = {})",
        det.max_autocorrelation()
    );
}

#[test]
fn cyclone_features_separate_attack_from_benign() {
    use autocat::detect::benign::{generate_trace, BenignWorkload};
    let mut r = rng(5);
    let features = CycloneFeatures::new(16);
    // Attack trace.
    let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
    let mut pp = TextbookPrimeProbe::new(&EnvConfig::prime_probe_dm4(), 4);
    let _ = run_scripted_multi(&mut env, &mut pp, &mut r);
    let attack_cycles: f32 = features.extract(env.episode_events()).iter().sum();
    // Benign trace of the same cache.
    let benign_trace = generate_trace(
        &CacheConfig::direct_mapped(4),
        &BenignWorkload::default(),
        &mut r,
    );
    let benign_cycles: f32 = features.extract(&benign_trace).iter().sum();
    assert!(
        attack_cycles > 3.0 * benign_cycles.max(1.0),
        "attack cycles {attack_cycles} must dominate benign {benign_cycles}"
    );
}

#[test]
fn covert_channel_transmits_through_the_cache_model() {
    let ss = StealthyStreamline::new(12, PolicyKind::Lru, 2);
    let msg: Vec<u64> = (0..40).map(|i| (i * 7) % 4).collect();
    let decoded = ss.transmit(&msg, || false);
    let ok = msg
        .iter()
        .zip(decoded.iter())
        .filter(|(m, d)| **d == Some(**m))
        .count();
    assert_eq!(ok, msg.len(), "noiseless 12-way channel must be perfect");
}

#[test]
fn forced_secrets_enable_side_channel_replay() {
    // Using the env as a covert-channel: force each secret, run the
    // textbook attacker, and confirm the guess equals the forced secret.
    let cfg = EnvConfig::prime_probe_dm4();
    let mut env = CacheGuessingGame::new(cfg.clone()).unwrap();
    let mut pp = TextbookPrimeProbe::new(&cfg, 4);
    let mut r = rng(6);
    for secret in 0..4u64 {
        env.force_secret(Some(Secret::Addr(secret)));
        let (correct, _) = run_scripted(&mut env, &mut pp, 3, &mut r);
        assert_eq!(correct, 3, "secret {secret} must be recovered every time");
    }
}

#[test]
fn trainer_runs_on_multi_guess_env() {
    let env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
    let mut t = Trainer::new(
        env,
        Backbone::Mlp { hidden: vec![32] },
        PpoConfig {
            horizon: 320,
            minibatch: 64,
            epochs_per_update: 2,
            ..PpoConfig::default()
        },
        7,
    );
    let stats = t.train_update();
    assert!(
        stats.episodes.count >= 2,
        "two 160-step episodes fit in 320 steps"
    );
}

#[test]
fn miss_detector_consumes_env_events() {
    let mut r = rng(8);
    let cfg = EnvConfig::prime_probe_dm4();
    let mut env = CacheGuessingGame::new(cfg.clone()).unwrap();
    env.force_secret(Some(Secret::Addr(0)));
    env.reset(&mut r);
    let mut det = MissCountDetector::strict();
    // Prime set 0 so the victim's access conflicts, then trigger.
    env.step(
        env.action_space().encode(Action::Access(4)).unwrap(),
        &mut r,
    );
    env.step(
        env.action_space().encode(Action::TriggerVictim).unwrap(),
        &mut r,
    );
    det.observe_all(env.drain_events().iter());
    assert!(det.is_attack());
}
