#!/usr/bin/env bash
# CI entry point: everything a PR must pass.
set -euo pipefail

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test --doc (trait-contract examples)"
cargo test -q --doc --workspace

echo "==> cargo build --examples"
cargo build --release --examples

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI OK"
