#!/usr/bin/env bash
# CI entry point: everything a PR must pass. Fully offline (all external
# dependencies are vendored), so it runs identically on a laptop and in
# the GitHub Actions workflow (.github/workflows/ci.yml).
set -euo pipefail

echo "==> cargo build --release"
cargo build --release --workspace --all-targets

echo "==> cargo test"
cargo test -q --workspace

echo "==> cargo test --doc (trait-contract examples)"
cargo test -q --doc --workspace

echo "==> cargo test (scalar-fallback: the compile-time no-SIMD path stays green)"
# The `scalar-fallback` feature compiles the x86 kernel tiers out entirely;
# the kernel, training, and golden-fixture suites must pass with identical
# results — SIMD is an implementation detail, never a semantic.
cargo test -q -p autocat-nn -p autocat-bench --features autocat-nn/scalar-fallback

echo "==> cargo build --examples"
cargo build --release --examples

echo "==> cargo bench --no-run (criterion benches must keep compiling)"
cargo bench --no-run --workspace

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> autocat-lint (workspace invariant checker)"
# Deny-by-default static gates: D1 no hash-ordered collections in
# digest/report crates, D2 no wall-clock/entropy outside bench bins, D3
# env reads stay in the committed registry, R1 no panic paths in the
# daemon request path, U1 every `unsafe` carries a SAFETY comment, A0
# suppression hygiene. The allow dump first, so CI logs always show every
# suppression and its reason; then the gate itself (exits nonzero on any
# unsuppressed violation).
cargo run --release -q -p autocat-lint -- --list-allows
cargo run --release -q -p autocat-lint

# ---------------------------------------------------------------------------
# End-to-end smoke gates: regressions on the *training path* (env, rollout,
# sharded PPO update, checkpointing, report pipeline) must fail CI, not just
# the unit suites.

echo "==> smoke: matmul-bench digest gate (SIMD vs scalar kernels, bit for bit)"
# Hard-fails on any SIMD/scalar kernel divergence, on every available tier,
# across aligned and ragged shapes. This is the cheap always-on version of
# the kernel property suite.
cargo run --release -q -p autocat-bench --bin matmul-bench -- --check

echo "==> smoke: scenario-run trains table4-6 for a short budget"
cargo run --release -q -p autocat-bench --bin scenario-run -- \
    --scenario table4-6 --steps 4096 --lanes 2 --shards 2

echo "==> smoke: daemon round trip is bit-identical to one-shot scenario-run"
# Boot the daemon on a free loopback port, train a short job through it,
# fetch the stored checkpoint, and compare byte-for-byte (plus both digest
# lines) against `scenario-run --ckpt` of the same scenario + budget. This
# is the service layer's determinism gate: the daemon must be a scheduler
# around the one-shot path, never a different trainer.
SERVE_OUT=$(mktemp -d)
SWEEP_OUT=$(mktemp -d)
GEN_OUT=$(mktemp -d)
GEN_OUT2=$(mktemp -d)
cleanup() {
    rm -rf "$SERVE_OUT" "$SWEEP_OUT" "$GEN_OUT" "$GEN_OUT2"
    [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
}
trap cleanup EXIT
cargo build --release -q -p autocat-serve -p autocat-bench
cargo run --release -q -p autocat-bench --bin scenario-run -- \
    --scenario table4-6 --steps 1 --ckpt "$SERVE_OUT/oneshot.ckpt.bin" \
    | tee "$SERVE_OUT/oneshot.log"
cargo run --release -q -p autocat-serve -- daemon \
    --addr 127.0.0.1:0 --store "$SERVE_OUT/store" > "$SERVE_OUT/daemon.log" &
SERVE_PID=$!
for _ in $(seq 50); do
    grep -q "listening on" "$SERVE_OUT/daemon.log" && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^autocat-serve: listening on //p' "$SERVE_OUT/daemon.log")
cargo run --release -q -p autocat-serve -- submit --addr "$SERVE_ADDR" \
    --scenario table4-6 --steps 1 --wait | tee "$SERVE_OUT/daemon-job.log"
cargo run --release -q -p autocat-serve -- fetch --addr "$SERVE_ADDR" \
    --scenario table4-6 --out "$SERVE_OUT/daemon.ckpt.bin"
cargo run --release -q -p autocat-serve -- gc --addr "$SERVE_ADDR" --max-count 1
cargo run --release -q -p autocat-serve -- shutdown --addr "$SERVE_ADDR"
wait "$SERVE_PID"; SERVE_PID=
cmp "$SERVE_OUT/oneshot.ckpt.bin" "$SERVE_OUT/daemon.ckpt.bin"
diff <(grep -E "^(params|eval) digest" "$SERVE_OUT/oneshot.log") \
     <(grep -E "^(params|eval) digest" "$SERVE_OUT/daemon-job.log")

echo "==> smoke: job table survives SIGKILL; restart resumes bit-identically"
# A queue-only daemon (--workers 0) accepts and journals a job, a
# duplicate submit attaches to it (dedup, not a second run), then the
# daemon is SIGKILL'd — no graceful shutdown. A restarted daemon over the
# same store must re-enqueue the job from the journal and train it to the
# exact bytes the one-shot run above produced.
RESTART_STORE="$SERVE_OUT/restart-store"
cargo run --release -q -p autocat-serve -- daemon \
    --addr 127.0.0.1:0 --store "$RESTART_STORE" --workers 0 \
    > "$SERVE_OUT/daemon2.log" &
SERVE_PID=$!
for _ in $(seq 50); do
    grep -q "listening on" "$SERVE_OUT/daemon2.log" && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^autocat-serve: listening on //p' "$SERVE_OUT/daemon2.log")
cargo run --release -q -p autocat-serve -- submit --addr "$SERVE_ADDR" \
    --scenario table4-6 --steps 1 > "$SERVE_OUT/restart-submit.log"
grep -q "submitted job 1" "$SERVE_OUT/restart-submit.log"
cargo run --release -q -p autocat-serve -- submit --addr "$SERVE_ADDR" \
    --scenario table4-6 --steps 1 > "$SERVE_OUT/restart-dup.log"
grep -q "attached to job 1" "$SERVE_OUT/restart-dup.log"
kill -9 "$SERVE_PID"
wait "$SERVE_PID" 2>/dev/null || true
SERVE_PID=
cargo run --release -q -p autocat-serve -- daemon \
    --addr 127.0.0.1:0 --store "$RESTART_STORE" --workers 1 \
    > "$SERVE_OUT/daemon3.log" &
SERVE_PID=$!
for _ in $(seq 50); do
    grep -q "listening on" "$SERVE_OUT/daemon3.log" && break
    sleep 0.1
done
SERVE_ADDR=$(sed -n 's/^autocat-serve: listening on //p' "$SERVE_OUT/daemon3.log")
grep -q "journal replayed" "$SERVE_OUT/daemon3.log"
cargo run --release -q -p autocat-serve -- watch --addr "$SERVE_ADDR" --job 1 \
    > "$SERVE_OUT/restart-job.log"
cargo run --release -q -p autocat-serve -- fetch --addr "$SERVE_ADDR" \
    --scenario table4-6 --out "$SERVE_OUT/restart.ckpt.bin"
# Dedup against the finished job resolves instantly after the restart.
cargo run --release -q -p autocat-serve -- submit --addr "$SERVE_ADDR" \
    --scenario table4-6 --steps 1 > "$SERVE_OUT/restart-dup2.log"
grep -q "attached to job 1" "$SERVE_OUT/restart-dup2.log"
cargo run --release -q -p autocat-serve -- shutdown --addr "$SERVE_ADDR"
wait "$SERVE_PID"; SERVE_PID=
cmp "$SERVE_OUT/oneshot.ckpt.bin" "$SERVE_OUT/restart.ckpt.bin"
diff <(grep -E "^(params|eval) digest" "$SERVE_OUT/oneshot.log") \
     <(grep -E "^(params|eval) digest" "$SERVE_OUT/restart-job.log")

echo "==> smoke: sweep golden round trip (report-only must regenerate bytes)"
# Train a tiny sweep into a scratch directory, snapshot the reports as the
# run's golden, then regenerate them from the artifacts alone. The
# checkpoint resume guarantee makes the regenerated reports byte-identical;
# any divergence means trainer persistence or the report pipeline broke.
# (Golden artifacts are produced fresh here because a committed checkpoint
# would weigh ~2 MB; determinism makes the fresh run just as binding.)
cargo run --release -q -p autocat-bench --bin sweep -- \
    --filter table4-6 --steps 1 --seed 1 --lanes 2 --shards 2 --out "$SWEEP_OUT" >/dev/null
# --resume with an up-to-date manifest must skip the (re)training entirely.
# (stderr to a file, not a grep -q pipe: -q exits at first match and the
# still-writing sweep would die of EPIPE.)
cargo run --release -q -p autocat-bench --bin sweep -- \
    --filter table4-6 --steps 1 --seed 1 --lanes 2 --shards 2 --out "$SWEEP_OUT" \
    --resume >/dev/null 2>"$SWEEP_OUT/resume.log"
grep -q "already complete, skipping" "$SWEEP_OUT/resume.log"
cp "$SWEEP_OUT/report.md" "$SWEEP_OUT/golden-report.md"
cp "$SWEEP_OUT/report.json" "$SWEEP_OUT/golden-report.json"
cargo run --release -q -p autocat-bench --bin sweep -- \
    --report-only --out "$SWEEP_OUT" >/dev/null
cmp "$SWEEP_OUT/report.md" "$SWEEP_OUT/golden-report.md"
cmp "$SWEEP_OUT/report.json" "$SWEEP_OUT/golden-report.json"

echo "==> smoke: generated sweep + census are byte-identical across runs"
# The scenario generator's determinism contract, gated end to end: two
# independent full runs over the same (--generate, --gen-seed) must produce
# byte-identical scenario sidecars, Table IV report, and census report.
# Then the census must also regenerate byte-identically from the artifacts
# alone (--report-only), like the main report above.
cargo run --release -q -p autocat-bench --bin sweep -- \
    --generate 8 --gen-seed 1 --steps 1 --seed 1 --eval-episodes 25 \
    --census --out "$GEN_OUT" >/dev/null
cargo run --release -q -p autocat-bench --bin sweep -- \
    --generate 8 --gen-seed 1 --steps 1 --seed 1 --eval-episodes 25 \
    --census --out "$GEN_OUT2" >/dev/null
cmp "$GEN_OUT/report.json" "$GEN_OUT2/report.json"
cmp "$GEN_OUT/census.md" "$GEN_OUT2/census.md"
cmp "$GEN_OUT/census.json" "$GEN_OUT2/census.json"
for f in "$GEN_OUT"/*.scenario.json; do
    cmp "$f" "$GEN_OUT2/$(basename "$f")"
done
cp "$GEN_OUT/census.md" "$GEN_OUT/golden-census.md"
cp "$GEN_OUT/census.json" "$GEN_OUT/golden-census.json"
cargo run --release -q -p autocat-bench --bin sweep -- \
    --report-only --census --out "$GEN_OUT" >/dev/null
cmp "$GEN_OUT/census.md" "$GEN_OUT/golden-census.md"
cmp "$GEN_OUT/census.json" "$GEN_OUT/golden-census.json"

echo "==> smoke: eval-bench batched vs serial on the sweep artifacts"
# Reuses the sweep gate's checkpoint. eval-bench hard-fails if the batched
# evaluator at 1 lane diverges from the serial evaluator by a single bit,
# so this is the evaluation-path regression gate.
cargo run --release -q -p autocat-bench --bin eval-bench -- \
    --dir "$SWEEP_OUT" --eval-episodes 40 --lanes 4

echo "CI OK"
