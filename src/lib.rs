//! Umbrella crate for the AutoCAT reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; the actual functionality lives in the `autocat` facade crate
//! and the substrate crates under `crates/`.

pub use autocat;
