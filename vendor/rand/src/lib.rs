//! Offline stand-in for the `rand` crate, exposing the 0.8-era API subset
//! this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension methods (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The build container has no access to crates.io, so this crate stands in
//! for the real one. `StdRng` here is xoshiro256++ seeded via SplitMix64 —
//! a different stream than upstream's ChaCha12, but the workspace only
//! relies on *self-consistent* determinism (same seed, same sequence), never
//! on upstream's exact stream.

/// A source of random 64-bit words. The base trait object-safe subset of
/// `rand_core::RngCore` that the extension traits build on.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from the generator's full-range output
/// (the `Standard` distribution in real `rand`).
pub trait SampleStandard {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`]. Parameterized by the output type
/// (like real rand's `SampleRange<T>`) so integer-literal ranges infer their
/// width from the use site.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )+};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for ::std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let u: $t = SampleStandard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for ::std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let u: $t = SampleStandard::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )+};
}
impl_float_range!(f32, f64);

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of its type.
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let u: f64 = SampleStandard::sample_standard(self);
        u < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (mirrors `rand::SeedableRng`, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ seeded via
    /// SplitMix64. Fast, 256-bit state, passes BigCrush; not upstream's
    /// ChaCha12 stream (see the crate docs).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl StdRng {
        /// Workspace extension (not in upstream `rand`): the raw 256-bit
        /// xoshiro256++ state, for checkpointing. Restore it with
        /// [`StdRng::from_state`] to resume the stream bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Workspace extension: rebuilds a generator from a
        /// [`StdRng::state`] snapshot. The all-zero state is a fixed point
        /// of xoshiro256++ (it would emit zeros forever), so it is mapped
        /// to `seed_from_u64(0)` instead; every state an actual generator
        /// can reach round-trips exactly.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers (mirrors `rand::seq::SliceRandom`, `shuffle` only).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice uniformly (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(7);
        for _ in 0..13 {
            let _: u64 = a.gen();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn all_zero_state_is_not_a_fixed_point() {
        let mut r = StdRng::from_state([0; 4]);
        assert_ne!(r.gen::<u64>(), r.gen::<u64>());
    }

    #[test]
    fn seeds_give_distinct_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = r.gen_range(5u64..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&w));
            let f = r.gen_range(-0.5f32..0.5);
            assert!((-0.5..0.5).contains(&f));
            let u: f32 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 items must not stay in order"
        );
    }
}
