//! Offline stand-in for `serde`. The workspace derives
//! `Serialize`/`Deserialize` on config types for forward compatibility but
//! never serializes through them (no `serde_json`/`bincode` in the tree), so
//! the traits here are blanket-implemented markers and the derives are
//! no-ops. Swapping in real serde requires only a manifest change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
