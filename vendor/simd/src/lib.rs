//! Offline stand-in for a `wide`-style portable-SIMD crate: 8- and 16-lane
//! f32 vectors, per-tier vector backends, and a tiny runtime tier
//! dispatcher.
//!
//! # Bit-exactness contract
//!
//! Every vector operation in this crate is defined as N *independent*
//! IEEE-754 single-precision operations, one per lane:
//!
//! - `+` / `*` are plain lane-wise `f32` add / mul.
//! - `mul_add` is `a * b + c` with **two roundings** — a multiply followed
//!   by an add, *not* a fused FMA. This is deliberate: the scalar fallback
//!   then computes the exact same bits with plain `*` and `+`, so no build
//!   or CPU tier can diverge. (A true fused FMA would either make the
//!   fallback call out to `fmaf` — slow — or silently change results
//!   between tiers.)
//! - `reduce_add` sums the 8 lanes in one **fixed, documented tree**:
//!   `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`. Callers that accumulate
//!   across a vector must go through it so the reduction order is part of
//!   the canonical kernel definition, not an implementation accident.
//!   There is deliberately no horizontal reduction at 16 lanes; the
//!   canonical reduction order of the kernel layer is defined at 8 lanes.
//!
//! The *reference* implementations are the plain-array types [`f32x8`] and
//! [`f32x16`]: ordinary Rust loops whose semantics are obvious from the
//! source. They are what the scalar tier (and non-x86 targets, and the
//! `scalar-fallback` build) executes.
//!
//! # Per-tier backends
//!
//! LLVM will not reliably turn the array loops into wide vector code — in
//! particular it refuses to form 512-bit operations for generic x86-64
//! (it prefers 256-bit vectors and, worse, length-specializes hot loops
//! into spill-heavy unrolled ymm code). So each SIMD tier supplies its own
//! backing types through the [`Isa`] trait:
//!
//! | ISA | 8-lane | 16-lane | backing |
//! |-----|--------|---------|---------|
//! | [`ScalarIsa`] | [`f32x8`] | [`f32x16`] | plain arrays |
//! | [`Avx2Isa`]   | [`x86::f32x8y`] | [`x86::f32x16y`] | `__m256` (x2) |
//! | [`Avx512Isa`] | [`x86::f32x8y`] | [`x86::f32x16z`] | `__m256` / `__m512` |
//!
//! Kernel bodies are written once, generic over `I: Isa`, and instantiated
//! per tier under `#[target_feature]` wrappers (see `autocat_nn::matrix`).
//! The intrinsic-backed types use only lane-wise single-precision
//! instructions (`vaddps` / `vmulps`, never `vfmadd*`), and `reduce_add`
//! spells out the documented tree in shuffles — so every backend produces
//! **identical bits** to the array reference and the tiers differ only in
//! speed. That equivalence is asserted by unit tests here, by kernel
//! proptests in `autocat-nn`, and by the `matmul-bench --check` CI gate.
//!
//! # Tier selection
//!
//! [`tier()`] resolves once per process from, in priority order:
//!
//! 1. the `scalar-fallback` cargo feature (compiles the SIMD tiers out),
//! 2. the `SIMD_TIER` env var (`scalar` | `avx2` | `avx512` | `auto`),
//! 3. runtime CPUID detection (`is_x86_feature_detected!`).
//!
//! Requesting a tier the CPU cannot run is a hard error (running an
//! `#[target_feature]` function without CPU support is UB, so we refuse
//! loudly instead of clamping silently). [`with_forced_tier`] additionally
//! overrides the tier for the current thread only — used by `matmul-bench`
//! to time tiers against each other in one process. The thread-local does
//! not propagate to rayon workers; benches must keep kernels inline
//! (`autocat_nn::matrix::with_inline_kernels`) while forcing a tier.

// Indexed `0..LANES` loops are the clearest way to spell "N independent
// lane operations" in the reference backend; iterator rewrites obscure
// the lane semantics the whole crate is pinned to.
#![allow(clippy::needless_range_loop)]

use std::ops::{Add, Mul};
use std::sync::OnceLock;

/// One SIMD tier's vector backend: the 8- and 16-lane types a kernel body
/// instantiated for that tier computes with.
///
/// All backends are bit-identical by contract (lane-wise IEEE ops, pinned
/// reduction tree); an `Isa` choice affects speed only.
pub trait Isa: Copy + 'static {
    /// 8-lane f32 vector for this tier.
    type F8: SimdF32x8;
    /// 16-lane f32 vector for this tier.
    type F16: SimdF32x16;
}

/// Operations of an 8-lane f32 vector. Semantics are pinned by the
/// reference implementation [`f32x8`]; every implementor must match it
/// bit-for-bit on every lane.
pub trait SimdF32x8: Copy + Add<Output = Self> + Mul<Output = Self> {
    /// Lane count.
    const LANES: usize = 8;

    /// All lanes zero.
    fn zero() -> Self;
    /// Broadcasts `v` to all lanes.
    fn splat(v: f32) -> Self;
    /// Loads the first 8 elements of `s`. Panics if `s` is shorter.
    fn from_slice(s: &[f32]) -> Self;
    /// Stores the lanes into the first 8 elements of `out`. Panics if
    /// `out` is shorter.
    fn write_to_slice(self, out: &mut [f32]);
    /// Lane-wise `self * b + c` with **two roundings** (multiply, then
    /// add — never a fused FMA).
    fn mul_add(self, b: Self, c: Self) -> Self;
    /// Horizontal sum in the canonical fixed tree order
    /// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
    fn reduce_add(self) -> f32;
}

/// Operations of a 16-lane f32 vector: **lane-wise only** — there is no
/// horizontal reduction at 16 lanes (the canonical reduction order is
/// defined at 8 lanes by [`SimdF32x8::reduce_add`]). Semantics are pinned
/// by the reference implementation [`f32x16`].
pub trait SimdF32x16: Copy + Add<Output = Self> + Mul<Output = Self> {
    /// Lane count.
    const LANES: usize = 16;

    /// All lanes zero.
    fn zero() -> Self;
    /// Broadcasts `v` to all lanes.
    fn splat(v: f32) -> Self;
    /// Loads the first 16 elements of `s`. Panics if `s` is shorter.
    fn from_slice(s: &[f32]) -> Self;
    /// Stores the lanes into the first 16 elements of `out`. Panics if
    /// `out` is shorter.
    fn write_to_slice(self, out: &mut [f32]);
    /// Lane-wise `self * b + c` with **two roundings**, exactly as
    /// [`SimdF32x8::mul_add`].
    fn mul_add(self, b: Self, c: Self) -> Self;
}

/// The portable backend: plain-array vectors, usable on every target.
#[derive(Clone, Copy, Debug)]
pub struct ScalarIsa;

impl Isa for ScalarIsa {
    type F8 = f32x8;
    type F16 = f32x16;
}

/// 8 lanes of `f32`. 32-byte aligned so AVX2 loads of *owned* values are
/// aligned; slice loads go through `from_slice` and are unaligned by design.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C, align(32))]
pub struct f32x8([f32; 8]);

impl f32x8 {
    /// Lane count.
    pub const LANES: usize = 8;
    /// All lanes zero.
    pub const ZERO: Self = Self([0.0; 8]);

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 8])
    }

    /// Builds a vector from an array.
    #[inline(always)]
    pub fn from_array(a: [f32; 8]) -> Self {
        Self(a)
    }

    /// Returns the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 8] {
        self.0
    }

    /// Loads the first 8 elements of `s`. Panics if `s` is shorter.
    #[inline(always)]
    pub fn from_slice(s: &[f32]) -> Self {
        assert!(s.len() >= 8);
        // SAFETY: length checked above; `f32` has no invalid bit patterns
        // and `read_unaligned` has no alignment requirement. A `try_into`
        // copy can lower to a stack memcpy that defeats store-to-load
        // forwarding; this form folds into a single unaligned load.
        Self(unsafe { s.as_ptr().cast::<[f32; 8]>().read_unaligned() })
    }

    /// Stores the lanes into the first 8 elements of `out`. Panics if `out`
    /// is shorter.
    #[inline(always)]
    pub fn write_to_slice(self, out: &mut [f32]) {
        assert!(out.len() >= 8);
        // SAFETY: length checked above; see `from_slice`.
        unsafe { out.as_mut_ptr().cast::<[f32; 8]>().write_unaligned(self.0) }
    }

    /// Lane-wise `self * b + c` with **two roundings** (multiply, then add —
    /// not a fused FMA). Bit-identical to the scalar expression
    /// `self[i] * b[i] + c[i]` in every lane.
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        let mut out = [0.0f32; 8];
        for i in 0..8 {
            out[i] = self.0[i] * b.0[i] + c.0[i];
        }
        Self(out)
    }

    /// Horizontal sum in the canonical fixed tree order
    /// `((l0+l1) + (l2+l3)) + ((l4+l5) + (l6+l7))`.
    ///
    /// This order is part of the kernel bit-exactness contract; do not
    /// "optimise" it into a linear or hardware-haddps reduction.
    #[inline(always)]
    pub fn reduce_add(self) -> f32 {
        let l = self.0;
        ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
    }
}

impl Add for f32x8 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 8];
        for i in 0..8 {
            out[i] = self.0[i] + rhs.0[i];
        }
        Self(out)
    }
}

impl std::ops::AddAssign for f32x8 {
    #[inline(always)]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Mul for f32x8 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 8];
        for i in 0..8 {
            out[i] = self.0[i] * rhs.0[i];
        }
        Self(out)
    }
}

impl SimdF32x8 for f32x8 {
    #[inline(always)]
    fn zero() -> Self {
        Self::ZERO
    }
    #[inline(always)]
    fn splat(v: f32) -> Self {
        f32x8::splat(v)
    }
    #[inline(always)]
    fn from_slice(s: &[f32]) -> Self {
        f32x8::from_slice(s)
    }
    #[inline(always)]
    fn write_to_slice(self, out: &mut [f32]) {
        f32x8::write_to_slice(self, out)
    }
    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        f32x8::mul_add(self, b, c)
    }
    #[inline(always)]
    fn reduce_add(self) -> f32 {
        f32x8::reduce_add(self)
    }
}

/// 16 lanes of `f32` — two [`f32x8`]s worth — offering **lane-wise ops
/// only**.
///
/// Exists so dense kernels can express 512-bit-wide column blocks: one
/// lane-wise op here is a single zmm instruction on the AVX-512 tier, two
/// ymm instructions on AVX2, and four xmm ops on the fallback — all
/// bit-identical, because lane-wise IEEE operations cannot depend on the
/// vector width they are batched into.
#[allow(non_camel_case_types)]
#[derive(Clone, Copy, Debug, Default, PartialEq)]
#[repr(C)]
pub struct f32x16([f32; 16]);

impl f32x16 {
    /// Lane count.
    pub const LANES: usize = 16;
    /// All lanes zero.
    pub const ZERO: Self = Self([0.0; 16]);

    /// Broadcasts `v` to all lanes.
    #[inline(always)]
    pub fn splat(v: f32) -> Self {
        Self([v; 16])
    }

    /// Builds a vector from an array.
    #[inline(always)]
    pub fn from_array(a: [f32; 16]) -> Self {
        Self(a)
    }

    /// Returns the lanes as an array.
    #[inline(always)]
    pub fn to_array(self) -> [f32; 16] {
        self.0
    }

    /// Loads the first 16 elements of `s`. Panics if `s` is shorter.
    #[inline(always)]
    pub fn from_slice(s: &[f32]) -> Self {
        assert!(s.len() >= 16);
        // SAFETY: length checked above; `f32` has no invalid bit patterns
        // and `read_unaligned` has no alignment requirement. A plain
        // `try_into` copy lowers to a 64-byte stack memcpy that defeats
        // store-to-load forwarding; this form folds into unaligned loads.
        Self(unsafe { s.as_ptr().cast::<[f32; 16]>().read_unaligned() })
    }

    /// Stores the lanes into the first 16 elements of `out`. Panics if
    /// `out` is shorter.
    #[inline(always)]
    pub fn write_to_slice(self, out: &mut [f32]) {
        assert!(out.len() >= 16);
        // SAFETY: length checked above; see `from_slice` on why this is a
        // raw unaligned write.
        unsafe { out.as_mut_ptr().cast::<[f32; 16]>().write_unaligned(self.0) }
    }

    /// Lane-wise `self * b + c` with **two roundings**, exactly as
    /// [`f32x8::mul_add`].
    #[inline(always)]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        let mut out = [0.0f32; 16];
        for i in 0..16 {
            out[i] = self.0[i] * b.0[i] + c.0[i];
        }
        Self(out)
    }
}

impl Add for f32x16 {
    type Output = Self;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 16];
        for i in 0..16 {
            out[i] = self.0[i] + rhs.0[i];
        }
        Self(out)
    }
}

impl Mul for f32x16 {
    type Output = Self;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = [0.0f32; 16];
        for i in 0..16 {
            out[i] = self.0[i] * rhs.0[i];
        }
        Self(out)
    }
}

impl SimdF32x16 for f32x16 {
    #[inline(always)]
    fn zero() -> Self {
        Self::ZERO
    }
    #[inline(always)]
    fn splat(v: f32) -> Self {
        f32x16::splat(v)
    }
    #[inline(always)]
    fn from_slice(s: &[f32]) -> Self {
        f32x16::from_slice(s)
    }
    #[inline(always)]
    fn write_to_slice(self, out: &mut [f32]) {
        f32x16::write_to_slice(self, out)
    }
    #[inline(always)]
    fn mul_add(self, b: Self, c: Self) -> Self {
        f32x16::mul_add(self, b, c)
    }
}

/// Intrinsic-backed vector types for the x86 SIMD tiers.
///
/// # Safety contract
///
/// These types execute AVX / AVX-512 instructions **unconditionally** —
/// their methods are `safe` fns for ergonomics inside generic kernel
/// bodies, but running them on a CPU without the corresponding features is
/// undefined behaviour. They must only be reached through the kernel tier
/// dispatcher (which gates every tier on runtime CPUID detection) or
/// behind an explicit `is_x86_feature_detected!` check (as the unit tests
/// do). They are `pub` solely so kernel crates and tests can name them.
#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
pub mod x86 {
    use super::{Add, Isa, Mul, SimdF32x16, SimdF32x8};
    use std::arch::x86_64::*;

    /// The AVX2 tier: 256-bit ymm vectors throughout.
    #[derive(Clone, Copy, Debug)]
    pub struct Avx2Isa;

    impl Isa for Avx2Isa {
        type F8 = f32x8y;
        type F16 = f32x16y;
    }

    /// The AVX-512 tier: 8-lane ops stay on ymm (AVX-512VL gives them 32
    /// registers and EVEX encodings); 16-lane ops are single zmm
    /// instructions.
    #[derive(Clone, Copy, Debug)]
    pub struct Avx512Isa;

    impl Isa for Avx512Isa {
        type F8 = f32x8y;
        type F16 = f32x16z;
    }

    /// 8 f32 lanes in one ymm register. Bit-identical to [`super::f32x8`]:
    /// `vmulps` / `vaddps` are lane-wise IEEE single, `mul_add` is a
    /// multiply then an add (never `vfmadd*`), and `reduce_add` spells the
    /// canonical tree out in shuffles.
    #[allow(non_camel_case_types)]
    #[derive(Clone, Copy, Debug)]
    pub struct f32x8y(__m256);

    impl SimdF32x8 for f32x8y {
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: callers uphold the module contract (AVX present).
            Self(unsafe { _mm256_setzero_ps() })
        }
        #[inline(always)]
        fn splat(v: f32) -> Self {
            // SAFETY: as `zero`.
            Self(unsafe { _mm256_set1_ps(v) })
        }
        #[inline(always)]
        fn from_slice(s: &[f32]) -> Self {
            assert!(s.len() >= 8);
            // SAFETY: length checked; unaligned load has no alignment
            // requirement; AVX present per the module contract.
            Self(unsafe { _mm256_loadu_ps(s.as_ptr()) })
        }
        #[inline(always)]
        fn write_to_slice(self, out: &mut [f32]) {
            assert!(out.len() >= 8);
            // SAFETY: as `from_slice`.
            unsafe { _mm256_storeu_ps(out.as_mut_ptr(), self.0) }
        }
        #[inline(always)]
        fn mul_add(self, b: Self, c: Self) -> Self {
            // Two roundings by construction: vmulps then vaddps.
            // SAFETY: as `zero`.
            Self(unsafe { _mm256_add_ps(_mm256_mul_ps(self.0, b.0), c.0) })
        }
        #[inline(always)]
        fn reduce_add(self) -> f32 {
            // The canonical tree ((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7)),
            // operand order included:
            //   t1 = v + v.swap_within_pairs   -> lane0 = l0+l1, lane2 = l2+l3, ...
            //   t2 = t1 + t1.swap_pairs        -> lane0 = (l0+l1)+(l2+l3),
            //                                     lane4 = (l4+l5)+(l6+l7)
            //   t2[0] + t2[4]
            // SAFETY: as `zero`.
            unsafe {
                let v = self.0;
                let t1 = _mm256_add_ps(v, _mm256_permute_ps(v, 0b10_11_00_01));
                let t2 = _mm256_add_ps(t1, _mm256_permute_ps(t1, 0b01_00_11_10));
                let hi = _mm256_extractf128_ps(t2, 1);
                _mm_cvtss_f32(_mm_add_ss(_mm256_castps256_ps128(t2), hi))
            }
        }
    }

    impl Add for f32x8y {
        type Output = Self;
        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            // SAFETY: module contract.
            Self(unsafe { _mm256_add_ps(self.0, rhs.0) })
        }
    }

    impl Mul for f32x8y {
        type Output = Self;
        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            // SAFETY: module contract.
            Self(unsafe { _mm256_mul_ps(self.0, rhs.0) })
        }
    }

    /// 16 f32 lanes as two ymm registers (the AVX2 tier's 16-lane type).
    /// Lane-wise ops only; trivially bit-identical to [`super::f32x16`].
    #[allow(non_camel_case_types)]
    #[derive(Clone, Copy, Debug)]
    pub struct f32x16y(f32x8y, f32x8y);

    impl SimdF32x16 for f32x16y {
        #[inline(always)]
        fn zero() -> Self {
            Self(f32x8y::zero(), f32x8y::zero())
        }
        #[inline(always)]
        fn splat(v: f32) -> Self {
            Self(f32x8y::splat(v), f32x8y::splat(v))
        }
        #[inline(always)]
        fn from_slice(s: &[f32]) -> Self {
            assert!(s.len() >= 16);
            Self(f32x8y::from_slice(s), f32x8y::from_slice(&s[8..]))
        }
        #[inline(always)]
        fn write_to_slice(self, out: &mut [f32]) {
            assert!(out.len() >= 16);
            self.0.write_to_slice(out);
            self.1.write_to_slice(&mut out[8..]);
        }
        #[inline(always)]
        fn mul_add(self, b: Self, c: Self) -> Self {
            Self(self.0.mul_add(b.0, c.0), self.1.mul_add(b.1, c.1))
        }
    }

    impl Add for f32x16y {
        type Output = Self;
        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            Self(self.0 + rhs.0, self.1 + rhs.1)
        }
    }

    impl Mul for f32x16y {
        type Output = Self;
        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            Self(self.0 * rhs.0, self.1 * rhs.1)
        }
    }

    /// 16 f32 lanes in one zmm register (the AVX-512 tier's 16-lane type).
    /// Lane-wise ops only — `vmulps`/`vaddps` at 512 bits, never fused.
    #[allow(non_camel_case_types)]
    #[derive(Clone, Copy, Debug)]
    pub struct f32x16z(__m512);

    impl SimdF32x16 for f32x16z {
        #[inline(always)]
        fn zero() -> Self {
            // SAFETY: module contract (AVX-512F present).
            Self(unsafe { _mm512_setzero_ps() })
        }
        #[inline(always)]
        fn splat(v: f32) -> Self {
            // SAFETY: module contract.
            Self(unsafe { _mm512_set1_ps(v) })
        }
        #[inline(always)]
        fn from_slice(s: &[f32]) -> Self {
            assert!(s.len() >= 16);
            // SAFETY: length checked; unaligned load; module contract.
            Self(unsafe { _mm512_loadu_ps(s.as_ptr()) })
        }
        #[inline(always)]
        fn write_to_slice(self, out: &mut [f32]) {
            assert!(out.len() >= 16);
            // SAFETY: as `from_slice`.
            unsafe { _mm512_storeu_ps(out.as_mut_ptr(), self.0) }
        }
        #[inline(always)]
        fn mul_add(self, b: Self, c: Self) -> Self {
            // Two roundings by construction: vmulps then vaddps.
            // SAFETY: module contract.
            Self(unsafe { _mm512_add_ps(_mm512_mul_ps(self.0, b.0), c.0) })
        }
    }

    impl Add for f32x16z {
        type Output = Self;
        #[inline(always)]
        fn add(self, rhs: Self) -> Self {
            // SAFETY: module contract.
            Self(unsafe { _mm512_add_ps(self.0, rhs.0) })
        }
    }

    impl Mul for f32x16z {
        type Output = Self;
        #[inline(always)]
        fn mul(self, rhs: Self) -> Self {
            // SAFETY: module contract.
            Self(unsafe { _mm512_mul_ps(self.0, rhs.0) })
        }
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
pub use x86::{Avx2Isa, Avx512Isa};

/// Instruction-set tier a kernel body may be instantiated for. Ordering is
/// meaningful: later variants strictly extend earlier ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Portable Rust; whatever the base target supports (SSE2 on x86-64).
    Scalar,
    /// 256-bit AVX2 (16 ymm registers).
    Avx2,
    /// 512-bit AVX-512F/VL: 16-lane ops are single zmm instructions, plus
    /// 32 registers and EVEX encodings for the 8-lane ops.
    Avx512,
}

impl Tier {
    /// Canonical lowercase name (matches the `SIMD_TIER` env values).
    pub fn name(self) -> &'static str {
        match self {
            Tier::Scalar => "scalar",
            Tier::Avx2 => "avx2",
            Tier::Avx512 => "avx512",
        }
    }
}

/// Highest tier the running CPU supports under the current build.
fn detected_tier() -> Tier {
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
    {
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            return Tier::Avx512;
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
    }
    Tier::Scalar
}

fn resolve_process_tier() -> Tier {
    let detected = detected_tier();
    let Some(requested) = std::env::var_os("SIMD_TIER") else {
        return detected;
    };
    let requested = requested.to_string_lossy().to_ascii_lowercase();
    let want = match requested.as_str() {
        "" | "auto" => return detected,
        "scalar" => Tier::Scalar,
        "avx2" => Tier::Avx2,
        "avx512" => Tier::Avx512,
        other => panic!("SIMD_TIER={other:?}: expected scalar|avx2|avx512|auto"),
    };
    assert!(
        want <= detected,
        "SIMD_TIER={} requested but this build/CPU supports at most {} \
         (running unsupported SIMD would be undefined behaviour)",
        want.name(),
        detected.name()
    );
    want
}

static PROCESS_TIER: OnceLock<Tier> = OnceLock::new();

thread_local! {
    static FORCED_TIER: std::cell::Cell<Option<Tier>> = const { std::cell::Cell::new(None) };
}

/// The tier kernel dispatchers should use on the current thread: a
/// [`with_forced_tier`] override if one is active, else the process-wide
/// tier resolved from the `scalar-fallback` feature, `SIMD_TIER`, and CPUID.
#[inline]
pub fn tier() -> Tier {
    if let Some(forced) = FORCED_TIER.with(|f| f.get()) {
        return forced;
    }
    *PROCESS_TIER.get_or_init(resolve_process_tier)
}

/// Runs `f` with the dispatch tier forced to `t` **on this thread only**.
/// Panics if `t` exceeds what the CPU/build supports. Work handed to rayon
/// workers inside `f` sees the normal process tier, so benches combining
/// this with threaded kernels must pin kernels inline first.
pub fn with_forced_tier<T>(t: Tier, f: impl FnOnce() -> T) -> T {
    assert!(
        t <= detected_tier(),
        "with_forced_tier({}): this build/CPU supports at most {}",
        t.name(),
        detected_tier().name()
    );
    FORCED_TIER.with(|cell| {
        let prev = cell.replace(Some(t));
        let out = f();
        cell.set(prev);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanewise_ops_match_scalar_bits() {
        let a = f32x8::from_array([1.5, -0.25, 3.75e-3, 1e30, -1e-30, 0.1, 7.0, -2.5]);
        let b = f32x8::from_array([0.3, 1e10, -42.0, 1e-30, 1e30, 0.2, -0.5, 9.25]);
        let c = f32x8::splat(0.125);
        let (aa, ba, ca) = (a.to_array(), b.to_array(), c.to_array());
        let sum = (a + b).to_array();
        let prod = (a * b).to_array();
        let fma = a.mul_add(b, c).to_array();
        for i in 0..8 {
            assert_eq!(sum[i].to_bits(), (aa[i] + ba[i]).to_bits());
            assert_eq!(prod[i].to_bits(), (aa[i] * ba[i]).to_bits());
            // Two roundings: multiply then add, never fused.
            assert_eq!(fma[i].to_bits(), (aa[i] * ba[i] + ca[i]).to_bits());
        }
    }

    #[test]
    fn reduce_add_uses_the_documented_tree() {
        // Values chosen so different association orders give different bits.
        let l = [1e8f32, 1.0, -1e8, 7.5e-3, 0.1, 0.2, 0.3, -0.7];
        let v = f32x8::from_array(l);
        let expect = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
        assert_eq!(v.reduce_add().to_bits(), expect.to_bits());
        let linear: f32 = l.iter().sum();
        // Sanity: the tree order actually differs from linear for this input,
        // so the assertion above is not vacuous.
        assert_ne!(expect.to_bits(), linear.to_bits());
    }

    #[test]
    fn f32x16_lanewise_ops_match_scalar_bits() {
        let mut a = [0.0f32; 16];
        let mut b = [0.0f32; 16];
        for i in 0..16 {
            a[i] = (i as f32 - 7.3) * 1.7e3;
            b[i] = 1.0 / (i as f32 + 0.7);
        }
        let (va, vb, vc) = (
            f32x16::from_array(a),
            f32x16::from_array(b),
            f32x16::splat(-0.375),
        );
        let sum = (va + vb).to_array();
        let prod = (va * vb).to_array();
        let fma = va.mul_add(vb, vc).to_array();
        for i in 0..16 {
            assert_eq!(sum[i].to_bits(), (a[i] + b[i]).to_bits());
            assert_eq!(prod[i].to_bits(), (a[i] * b[i]).to_bits());
            assert_eq!(fma[i].to_bits(), (a[i] * b[i] + -0.375f32).to_bits());
        }
        // 16 lanes behave exactly like two f32x8s over the same data.
        let lo = f32x8::from_slice(&a).mul_add(f32x8::from_slice(&b), f32x8::splat(-0.375));
        assert_eq!(&fma[..8], &lo.to_array());
    }

    #[test]
    fn slice_roundtrip() {
        let src = [1.0f32, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0];
        let v = f32x8::from_slice(&src);
        assert_eq!(v.to_array(), [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let mut out = [0.0f32; 10];
        v.write_to_slice(&mut out);
        assert_eq!(&out[..8], &src[..8]);
        assert_eq!(out[8], 0.0);
    }

    /// Exercises every op of an [`Isa`]'s backend pair against the
    /// plain-array reference on awkward values, bit-for-bit.
    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
    fn assert_isa_matches_reference<I: Isa>() {
        let mut a = [0.0f32; 17];
        let mut b = [0.0f32; 17];
        for i in 0..17 {
            // Mix magnitudes so association/rounding differences would show.
            a[i] = (i as f32 - 7.3) * 10f32.powi((i % 7) as i32 - 3);
            b[i] = 1.0 / (i as f32 + 0.7) - 0.5;
        }
        let mut got8 = [0.0f32; 8];
        I::F8::from_slice(&a)
            .mul_add(I::F8::from_slice(&b), I::F8::splat(0.625))
            .write_to_slice(&mut got8);
        let want8 = f32x8::from_slice(&a).mul_add(f32x8::from_slice(&b), f32x8::splat(0.625));
        assert_eq!(got8, want8.to_array());

        let sum8 = (I::F8::from_slice(&a) + I::F8::from_slice(&b)).reduce_add();
        let want_sum8 = (f32x8::from_slice(&a) + f32x8::from_slice(&b)).reduce_add();
        assert_eq!(sum8.to_bits(), want_sum8.to_bits());

        let mut got16 = [0.0f32; 16];
        (I::F16::from_slice(&a) * I::F16::from_slice(&b))
            .mul_add(I::F16::splat(-1.75), I::F16::from_slice(&b[1..]))
            .write_to_slice(&mut got16);
        let want16 = (f32x16::from_slice(&a) * f32x16::from_slice(&b))
            .mul_add(f32x16::splat(-1.75), f32x16::from_slice(&b[1..]));
        assert_eq!(got16, want16.to_array());

        let mut gz = [1.0f32; 16];
        I::F16::zero().write_to_slice(&mut gz);
        assert_eq!(gz, [0.0f32; 16]);
    }

    #[cfg(all(target_arch = "x86_64", not(feature = "scalar-fallback")))]
    #[test]
    fn avx_backends_match_the_array_reference_bit_for_bit() {
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_isa_matches_reference::<Avx2Isa>();
        }
        if std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512vl")
        {
            assert_isa_matches_reference::<Avx512Isa>();
        }
    }

    #[test]
    fn forced_tier_is_thread_local_and_restored() {
        let base = tier();
        let inner = with_forced_tier(Tier::Scalar, || {
            assert_eq!(tier(), Tier::Scalar);
            // Nested force restores the outer force on exit.
            with_forced_tier(Tier::Scalar, tier)
        });
        assert_eq!(inner, Tier::Scalar);
        assert_eq!(tier(), base);
        let other = std::thread::spawn(tier).join().unwrap();
        assert_eq!(other, base);
    }

    #[test]
    fn tier_ordering_reflects_capability() {
        assert!(Tier::Scalar < Tier::Avx2);
        assert!(Tier::Avx2 < Tier::Avx512);
        assert_eq!(Tier::Avx512.name(), "avx512");
    }

    #[cfg(feature = "scalar-fallback")]
    #[test]
    fn fallback_build_always_reports_scalar() {
        assert_eq!(tier(), Tier::Scalar);
    }
}
