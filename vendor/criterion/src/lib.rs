//! Offline stand-in for `criterion`, implementing the API subset the
//! workspace benches use: [`Criterion::benchmark_group`], group
//! configuration (`measurement_time`, `sample_size`), [`Bencher::iter`] /
//! [`Bencher::iter_batched`], `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: a short warm-up, then timed batches until the group's
//! measurement time is spent, reporting the mean wall-clock time per
//! iteration. No statistics, plots, or saved baselines — just honest means,
//! which is enough to compare configurations on one machine.

use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim times routines exactly the
/// same way for every variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Timing loop handle passed to bench closures.
pub struct Bencher {
    measurement_time: Duration,
    /// (iterations, total elapsed) accumulated by the timing loops.
    result: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` repeatedly for the configured measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: a fifth of the window, at most 200 ms.
        let warmup = (self.measurement_time / 5).min(Duration::from_millis(200));
        let start = Instant::now();
        while start.elapsed() < warmup {
            black_box(routine());
        }
        let mut iters = 0u64;
        let timer = Instant::now();
        while timer.elapsed() < self.measurement_time {
            black_box(routine());
            iters += 1;
        }
        self.result = Some((iters.max(1), timer.elapsed()));
    }

    /// Times `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let warmup_end =
            Instant::now() + (self.measurement_time / 5).min(Duration::from_millis(200));
        while Instant::now() < warmup_end {
            let input = setup();
            black_box(routine(input));
        }
        let mut iters = 0u64;
        let mut spent = Duration::ZERO;
        while spent < self.measurement_time {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            spent += t.elapsed();
            iters += 1;
        }
        self.result = Some((iters.max(1), spent));
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of related benchmarks sharing a measurement budget.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the timed window per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    /// Accepted for API compatibility; the shim is time-budgeted, not
    /// sample-count-budgeted.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            result: None,
        };
        f(&mut b);
        match b.result {
            Some((iters, total)) => {
                let ns = total.as_nanos() as f64 / iters as f64;
                println!(
                    "{}/{:<32} time: [{}]  ({} iters)",
                    self.name,
                    id,
                    format_ns(ns),
                    iters
                );
            }
            None => println!("{}/{id}: no measurement taken", self.name),
        }
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

/// Top-level handle mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            measurement_time: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Printed summary hook (no-op; results print as they complete).
    pub fn final_summary(&mut self) {}
}

/// Declares a group runner function calling each target with one
/// [`Criterion`] instance.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_iterations() {
        let mut b = Bencher {
            measurement_time: Duration::from_millis(5),
            result: None,
        };
        b.iter(|| 1 + 1);
        let (iters, total) = b.result.unwrap();
        assert!(iters > 0);
        assert!(total >= Duration::from_millis(5));
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut b = Bencher {
            measurement_time: Duration::from_millis(2),
            result: None,
        };
        b.iter_batched(|| vec![0u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert!(b.result.unwrap().0 > 0);
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group
            .measurement_time(Duration::from_millis(2))
            .sample_size(10);
        let mut ran = false;
        group.bench_function("noop", |b| {
            ran = true;
            b.iter(|| ());
        });
        group.finish();
        assert!(ran);
    }
}
