//! Offline stand-in for `rayon`, providing the subset this workspace uses:
//! [`scope`] with [`Scope::spawn`], [`join`], and [`current_num_threads`].
//!
//! Implementation: a lazily-started persistent worker pool (one worker per
//! available core beyond the first). `scope` tracks outstanding tasks with a
//! latch and blocks until all complete, which is what makes handing
//! non-`'static` borrows to the workers sound: no task can outlive the
//! stack frame that owns its borrows. On single-core machines (or with
//! `RAYON_NUM_THREADS=1`) tasks run inline on the caller's thread, so the
//! scheduling overhead is zero where parallelism cannot help anyway.

use std::marker::PhantomData;
use std::mem;
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    senders: Vec<Sender<Job>>,
    next: Mutex<usize>,
}

fn configured_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

thread_local! {
    /// Set inside pool workers: tasks that spawn nested scopes must run
    /// them inline — a worker blocked joining a nested scope can never
    /// drain its own queue (there is no work stealing in this shim).
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = configured_threads().saturating_sub(1);
        if workers == 0 {
            return None;
        }
        let mut senders = Vec::with_capacity(workers);
        for i in 0..workers {
            let (tx, rx) = channel::<Job>();
            thread::Builder::new()
                .name(format!("shim-rayon-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    while let Ok(job) = rx.recv() {
                        job();
                    }
                })
                .expect("failed to spawn worker thread");
            senders.push(tx);
        }
        Some(Pool {
            senders,
            next: Mutex::new(0),
        })
    })
    .as_ref()
}

/// Number of threads tasks may run on (including the calling thread).
pub fn current_num_threads() -> usize {
    pool().map(|p| p.senders.len() + 1).unwrap_or(1)
}

#[derive(Default)]
struct LatchState {
    pending: usize,
    panicked: bool,
}

/// A scope for spawning borrowed tasks; see [`scope`].
pub struct Scope<'scope> {
    latch: Arc<(Mutex<LatchState>, Condvar)>,
    marker: PhantomData<fn(&'scope ()) -> &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Runs `body` on a pool worker (or inline when no workers exist).
    /// The closure may borrow from outside the scope; [`scope`] joins all
    /// spawned tasks before returning, bounding every borrow.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // No pool, or already on a pool worker (nested scope): run inline.
        // A worker that blocked on a nested join could deadlock, since its
        // own queue holds the subtask and nobody steals work.
        if IN_WORKER.with(|w| w.get()) {
            body(self);
            return;
        }
        let Some(pool) = pool() else {
            body(self);
            return;
        };
        {
            let (lock, _) = &*self.latch;
            lock.lock().unwrap().pending += 1;
        }
        let latch = Arc::clone(&self.latch);
        let child = Scope {
            latch: Arc::clone(&self.latch),
            marker: PhantomData,
        };
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&child);
            }));
            let (lock, cvar) = &*latch;
            let mut state = lock.lock().unwrap();
            state.pending -= 1;
            state.panicked |= outcome.is_err();
            cvar.notify_all();
        });
        // SAFETY: `scope` blocks until `pending` drops to zero before its
        // stack frame (and thus any 'scope borrow) can be invalidated, and
        // the latch is updated even when the task panics.
        let task: Job = unsafe { mem::transmute(task) };
        let mut next = pool.next.lock().unwrap();
        let idx = *next;
        *next = (idx + 1) % pool.senders.len();
        pool.senders[idx].send(task).expect("worker thread died");
    }
}

/// Joins outstanding tasks on drop so borrows stay valid even when the
/// scope body itself unwinds.
struct ScopeJoiner {
    latch: Arc<(Mutex<LatchState>, Condvar)>,
}

impl ScopeJoiner {
    fn wait(&self) -> bool {
        let (lock, cvar) = &*self.latch;
        let mut state = lock.lock().unwrap();
        while state.pending > 0 {
            state = cvar.wait(state).unwrap();
        }
        state.panicked
    }
}

impl Drop for ScopeJoiner {
    fn drop(&mut self) {
        self.wait();
    }
}

/// Creates a scope in which borrowed tasks can be spawned; blocks until
/// every spawned task has finished. Panics in tasks are propagated.
pub fn scope<'scope, OP, R>(op: OP) -> R
where
    OP: FnOnce(&Scope<'scope>) -> R,
{
    let latch = Arc::new((Mutex::new(LatchState::default()), Condvar::new()));
    let joiner = ScopeJoiner {
        latch: Arc::clone(&latch),
    };
    let scope = Scope {
        latch,
        marker: PhantomData,
    };
    let result = op(&scope);
    if joiner.wait() {
        panic!("a task spawned in rayon::scope panicked");
    }
    result
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|_| rb = Some(b()));
        a()
    });
    (ra, rb.expect("join: second closure did not run"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all_tasks() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..64 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn scope_allows_disjoint_mutable_borrows() {
        let mut data = vec![0u64; 8];
        scope(|s| {
            for (i, slot) in data.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i as u64 * 10);
            }
        });
        assert_eq!(data, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
