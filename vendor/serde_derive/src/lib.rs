//! No-op `Serialize`/`Deserialize` derive macros for the offline `serde`
//! stand-in. The workspace derives the traits for forward compatibility but
//! never serializes through them, so the derives expand to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; the marker trait has a blanket impl in `serde`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; the marker trait has a blanket impl in `serde`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
