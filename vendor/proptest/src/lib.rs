//! Offline stand-in for `proptest`: random-sampling property testing
//! without shrinking. Each `proptest!` test body runs against a fixed
//! number of cases sampled from its strategies with a deterministic seed,
//! and `prop_assert*` failures report the failing case. Upstream's
//! shrinking, persistence, and configuration are intentionally absent; the
//! strategy combinators cover exactly what this workspace's property tests
//! use (ranges, `Just`, `prop_oneof!`, `prop::collection::vec`).

use rand::rngs::StdRng;
use rand::Rng;

/// Number of cases sampled per property.
pub const CASES: u32 = 96;

/// A source of values for property tests (object-safe subset of upstream's
/// `Strategy`).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Samples one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for ::std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for ::std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between strategies of one value type (`prop_oneof!`).
pub struct OneOf<V> {
    choices: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> OneOf<V> {
    /// Creates an empty choice set; see [`OneOf::or`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self {
            choices: Vec::new(),
        }
    }

    /// Adds one alternative.
    #[must_use]
    pub fn or(mut self, s: impl Strategy<Value = V> + 'static) -> Self {
        self.choices.push(Box::new(s));
        self
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn sample(&self, rng: &mut StdRng) -> V {
        assert!(
            !self.choices.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].sample(rng)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;

    /// Inclusive-exclusive length bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(r: ::std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// `Vec` strategy produced by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec` works after a prelude glob.
pub mod prop {
    pub use crate::collection;
}

/// The everything-you-need import, like upstream's.
pub mod prelude {
    pub use crate::{
        collection, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Just, OneOf, Strategy,
    };
    pub use rand::{Rng, SeedableRng};
}

/// Builds a [`OneOf`] over the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::OneOf::new()$(.or($strategy))+
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Fails the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{:?} == {:?}` ({} == {})",
                l,
                r,
                stringify!($left),
                stringify!($right)
            ));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] sampled cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut __proptest_rng =
                <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    0x70_72_6f_70 ^ stringify!($name).len() as u64,
                );
            for __proptest_case in 0..$crate::CASES {
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng);)*
                let __proptest_result = (|| -> ::std::result::Result<(), String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(msg) = __proptest_result {
                    panic!(
                        "property {} failed on case {}: {}",
                        stringify!($name), __proptest_case, msg
                    );
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_small() -> impl Strategy<Value = u8> {
        prop_oneof![Just(1u8), Just(2u8), 5u8..=7]
    }

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in -1.0f32..1.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f), "f = {f}");
        }

        #[test]
        fn vec_respects_size(v in collection::vec(0u64..4, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 4);
            }
        }

        #[test]
        fn oneof_only_yields_choices(x in arb_small()) {
            prop_assert!(x == 1 || x == 2 || (5..=7).contains(&x));
        }

        #[test]
        fn exact_vec_size(v in prop::collection::vec(0u8..=1, 12)) {
            prop_assert_eq!(v.len(), 12);
        }
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_panics_with_case() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x = {x}");
            }
        }
        always_fails();
    }
}
