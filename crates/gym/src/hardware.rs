//! Simulated blackbox "real hardware" backend (Table III substitution).
//!
//! The paper drives real Intel processors through CacheQuery: the agent
//! issues accesses to a single cache set and reads back noisy timings,
//! without knowing associativity or the (often undocumented) replacement
//! policy. We substitute a simulated processor: a hidden cache-set model
//! per CPU profile plus a timing-noise model, exposed through the same
//! hit/miss interface. The RL agent treats it as a blackbox exactly as it
//! would the real machine (see DESIGN.md, substitution 1).

use autocat_cache::{Cache, CacheBackend, CacheConfig, CacheEvent, CacheStats, Domain, PolicyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Timing-measurement noise.
///
/// Real measurements misclassify hit/miss occasionally (interrupts, TLB
/// effects, frequency transitions); we model that as an independent flip of
/// the observed outcome.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Probability that an observed hit/miss outcome is flipped.
    pub flip_prob: f64,
}

impl NoiseModel {
    /// Noise-free measurements.
    pub fn none() -> Self {
        Self { flip_prob: 0.0 }
    }

    /// Typical well-calibrated measurement noise.
    pub fn typical() -> Self {
        Self { flip_prob: 0.002 }
    }
}

/// Profiles of the processors/cache levels in the paper's Table III.
///
/// `N.O.D.` (not officially documented) levels are modelled with an NRU
/// policy the agent cannot see; L1 levels use tree-PLRU as documented.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardwareProfile {
    /// Core i7-6700 (SkyLake) L1: 8-way PLRU.
    SkylakeL1,
    /// Core i7-6700 (SkyLake) L2: 4 ways, undocumented policy.
    SkylakeL2,
    /// Core i7-6700 (SkyLake) L3 (CAT-partitioned): 4 ways, undocumented.
    SkylakeL3,
    /// Core i7-7700K (KabyLake) L3 (CAT): 4 ways, undocumented.
    KabylakeL3W4,
    /// Core i7-7700K (KabyLake) L3 (CAT): 8 ways, undocumented.
    KabylakeL3W8,
    /// Core i7-9700 (CoffeeLake) L1: 8-way PLRU.
    CoffeelakeL1,
    /// Core i7-9700 (CoffeeLake) L2: 4 ways, undocumented.
    CoffeelakeL2,
}

impl HardwareProfile {
    /// All Table III rows in paper order.
    pub fn table3_rows() -> [HardwareProfile; 7] {
        [
            HardwareProfile::SkylakeL1,
            HardwareProfile::SkylakeL2,
            HardwareProfile::SkylakeL3,
            HardwareProfile::KabylakeL3W4,
            HardwareProfile::KabylakeL3W8,
            HardwareProfile::CoffeelakeL1,
            HardwareProfile::CoffeelakeL2,
        ]
    }

    /// CPU model string as in Table III.
    pub fn cpu(&self) -> &'static str {
        match self {
            HardwareProfile::SkylakeL1
            | HardwareProfile::SkylakeL2
            | HardwareProfile::SkylakeL3 => "Core i7-6700 (SkyLake)",
            HardwareProfile::KabylakeL3W4 | HardwareProfile::KabylakeL3W8 => {
                "Core i7-7700K (KabyLake)"
            }
            HardwareProfile::CoffeelakeL1 | HardwareProfile::CoffeelakeL2 => {
                "Core i7-9700 (CoffeeLake)"
            }
        }
    }

    /// Cache level string.
    pub fn level(&self) -> &'static str {
        match self {
            HardwareProfile::SkylakeL1 | HardwareProfile::CoffeelakeL1 => "L1",
            HardwareProfile::SkylakeL2 | HardwareProfile::CoffeelakeL2 => "L2",
            _ => "L3",
        }
    }

    /// Associativity of the targeted set.
    pub fn ways(&self) -> usize {
        match self {
            HardwareProfile::SkylakeL1
            | HardwareProfile::KabylakeL3W8
            | HardwareProfile::CoffeelakeL1 => 8,
            _ => 4,
        }
    }

    /// Documented policy name (as the paper's table shows it).
    pub fn policy_label(&self) -> &'static str {
        match self {
            HardwareProfile::SkylakeL1 | HardwareProfile::CoffeelakeL1 => "PLRU",
            _ => "N.O.D.",
        }
    }

    /// The *hidden* policy backing the simulation (not part of the
    /// blackbox interface; used only to build the model).
    pub fn hidden_policy(&self) -> PolicyKind {
        match self {
            HardwareProfile::SkylakeL1 | HardwareProfile::CoffeelakeL1 => PolicyKind::Plru,
            _ => PolicyKind::Nru,
        }
    }

    /// Attacker address range `(start, end)` used in Table III (addresses
    /// map to a single set; the range is about 2x the ways).
    pub fn attacker_range(&self) -> (u64, u64) {
        match self.ways() {
            8 => (0, 15),
            _ => (0, 8),
        }
    }

    /// Measurement noise for this machine.
    pub fn noise(&self) -> NoiseModel {
        match self {
            // L1 timing differences are large and clean; outer levels are
            // noisier.
            HardwareProfile::SkylakeL1 | HardwareProfile::CoffeelakeL1 => {
                NoiseModel { flip_prob: 0.001 }
            }
            _ => NoiseModel { flip_prob: 0.003 },
        }
    }
}

/// A blackbox single-set processor model with measurement noise.
#[derive(Clone, Debug)]
pub struct SimulatedProcessor {
    cache: Cache,
    noise: NoiseModel,
    rng: StdRng,
    accesses: u64,
}

impl SimulatedProcessor {
    /// Builds the simulated processor for a profile.
    pub fn new(profile: HardwareProfile, seed: u64) -> Self {
        let config =
            CacheConfig::fully_associative(profile.ways()).with_policy(profile.hidden_policy());
        Self {
            cache: Cache::new(config),
            noise: profile.noise(),
            rng: StdRng::seed_from_u64(seed),
            accesses: 0,
        }
    }

    /// Builds a custom blackbox processor (for tests and ablations).
    pub fn custom(config: CacheConfig, noise: NoiseModel, seed: u64) -> Self {
        Self {
            cache: Cache::new(config),
            noise,
            rng: StdRng::seed_from_u64(seed),
            accesses: 0,
        }
    }

    /// Performs a timed access; returns the *observed* (noisy) hit outcome
    /// and the true outcome.
    pub fn access_timed(&mut self, addr: u64, domain: Domain) -> (bool, bool) {
        self.accesses += 1;
        let true_hit = self.cache.access(addr, domain).hit;
        let observed = if self.rng.gen_bool(self.noise.flip_prob) {
            !true_hit
        } else {
            true_hit
        };
        (observed, true_hit)
    }

    /// Total accesses performed (for harness statistics).
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Clears the set (a new CacheQuery run starts cold).
    pub fn reset(&mut self) {
        self.cache.reset();
    }

    /// The underlying cache model — exposed for *evaluation only* (the RL
    /// agent never sees it; tests use it to validate the blackbox).
    pub fn inspect_cache(&self) -> &Cache {
        &self.cache
    }
}

impl CacheBackend for SimulatedProcessor {
    /// `observed_hit` is the noisy timing outcome, `true_hit` the hidden
    /// model's ground truth — the pair diverges at the configured flip
    /// rate.
    fn access(&mut self, addr: u64, domain: Domain) -> (bool, bool) {
        self.access_timed(addr, domain)
    }

    fn flush(&mut self, _addr: u64, _domain: Domain) {
        // CacheQuery exposes no flush on the targeted set; configs with
        // hardware backends set `flush_enable = false`.
    }

    fn reset(&mut self) {
        SimulatedProcessor::reset(self);
    }

    /// The hidden model's event stream: the *attacker* treats the
    /// processor as a blackbox, but a defender's on-chip counters exist
    /// even on real hardware, so monitors may consume these events.
    fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.cache.drain_events()
    }

    fn stats(&self) -> CacheStats {
        *self.cache.stats()
    }

    /// Measurement noise makes the observed outcomes stochastic, so
    /// environments reseed between episodes.
    fn is_stochastic(&self) -> bool {
        true
    }

    /// Starts a fresh measurement run: new noise stream, cold set, and —
    /// when the hidden model uses random replacement — a fresh policy
    /// stream (derived from `seed`, offset so it never aliases the noise
    /// stream), keeping the backend's full state a function of the
    /// episode RNG stream like the non-blackbox backends.
    fn reseed(&mut self, seed: u64) {
        self.rng = StdRng::seed_from_u64(seed);
        self.cache
            .reseed_policy(seed.wrapping_add(0x9E37_79B9_7F4A_7C15));
        self.cache.reset();
        self.accesses = 0;
    }

    fn box_clone(&self) -> Box<dyn CacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_report_paper_geometry() {
        assert_eq!(HardwareProfile::SkylakeL1.ways(), 8);
        assert_eq!(HardwareProfile::SkylakeL1.policy_label(), "PLRU");
        assert_eq!(HardwareProfile::SkylakeL2.ways(), 4);
        assert_eq!(HardwareProfile::SkylakeL2.policy_label(), "N.O.D.");
        assert_eq!(HardwareProfile::KabylakeL3W8.attacker_range(), (0, 15));
        assert_eq!(HardwareProfile::table3_rows().len(), 7);
    }

    /// After `reseed`, a random-replacement blackbox's behavior must
    /// depend only on the new seed, not on prior episodes' draws — the
    /// same checkpoint-resume property the non-blackbox backends have.
    #[test]
    fn reseed_covers_the_hidden_random_policy() {
        use autocat_cache::PolicyKind;
        let make = || {
            SimulatedProcessor::custom(
                CacheConfig::fully_associative(4).with_policy(PolicyKind::Random),
                NoiseModel::none(),
                1,
            )
        };
        let drive = |p: &mut SimulatedProcessor, n: u64| -> Vec<(bool, bool)> {
            (0..n)
                .map(|i| CacheBackend::access(p, (i * 5) % 11, Domain::Attacker))
                .collect()
        };
        let (mut a, mut b) = (make(), make());
        drive(&mut a, 50); // burn a different number of policy draws
        drive(&mut b, 13);
        CacheBackend::reseed(&mut a, 77);
        CacheBackend::reseed(&mut b, 77);
        assert_eq!(drive(&mut a, 60), drive(&mut b, 60));
    }

    #[test]
    fn noiseless_processor_matches_cache_model() {
        let mut p =
            SimulatedProcessor::custom(CacheConfig::fully_associative(4), NoiseModel::none(), 1);
        let (obs, truth) = p.access_timed(0, Domain::Attacker);
        assert!(!obs && !truth);
        let (obs, truth) = p.access_timed(0, Domain::Attacker);
        assert!(obs && truth);
    }

    #[test]
    fn noise_flips_at_configured_rate() {
        let mut p = SimulatedProcessor::custom(
            CacheConfig::fully_associative(1),
            NoiseModel { flip_prob: 0.25 },
            7,
        );
        p.access_timed(0, Domain::Attacker);
        let n = 10_000;
        let mut flips = 0;
        for _ in 0..n {
            let (obs, truth) = p.access_timed(0, Domain::Attacker);
            assert!(truth, "address 0 stays resident in a 1-way cache");
            if obs != truth {
                flips += 1;
            }
        }
        let rate = flips as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.02, "flip rate {rate}");
    }

    #[test]
    fn reset_clears_the_set() {
        let mut p = SimulatedProcessor::new(HardwareProfile::SkylakeL2, 3);
        p.access_timed(0, Domain::Attacker);
        p.reset();
        let (_, truth) = p.access_timed(0, Domain::Attacker);
        assert!(!truth);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimulatedProcessor::new(HardwareProfile::SkylakeL1, 5);
        let mut b = SimulatedProcessor::new(HardwareProfile::SkylakeL1, 5);
        for addr in [0u64, 3, 7, 0, 9, 3] {
            assert_eq!(
                a.access_timed(addr, Domain::Attacker),
                b.access_timed(addr, Domain::Attacker)
            );
        }
    }
}
