//! Batched vectorized environments: N independent lanes stepped together.
//!
//! PPO throughput on this workload is dominated by one-row policy forwards:
//! stepping a single environment means a full network pass per transition.
//! [`VecEnv`] drives N independent [`Environment`] instances ("lanes") so
//! the trainer can run **one batched forward of N observation rows per
//! step** and amortize the per-call cost N-fold, with lane stepping spread
//! across threads via `rayon::scope` when more than one core is available.
//!
//! Determinism contract:
//!
//! * **Single lane** (`VecEnv::new(1, ...)`): every random draw (resets,
//!   action sampling via [`VecEnv::step_each`]'s closure, environment
//!   steps) comes from the caller's RNG in exactly the order the scalar
//!   pre-VecEnv rollout loop made them, so a 1-lane rollout is bit-for-bit
//!   identical to the historical single-environment path and deterministic
//!   replay extracts the same attack sequences.
//! * **Multiple lanes**: each lane owns an RNG stream derived from the
//!   VecEnv seed, so trajectories are reproducible for a fixed
//!   `(seed, num_lanes)` regardless of worker-thread count or scheduling.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{Environment, StepInfo};

/// SplitMix64 finalizer deriving well-separated per-lane RNG seeds from a
/// base seed. This is the lane-stream derivation [`VecEnv`] uses, exported
/// so other lane-parallel drivers (batched evaluation in `autocat-ppo`)
/// split one caller stream into per-lane streams the same way.
pub fn lane_seed(seed: u64, lane: u64) -> u64 {
    let mut z = seed ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Summary of an episode that finished (and auto-reset) during a step.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FinishedEpisode {
    /// Sum of rewards over the episode.
    pub episode_return: f32,
    /// Episode length in steps.
    pub length: usize,
}

/// Per-lane outcome of one [`VecEnv::step_each`] call.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LaneStep<A> {
    /// The action index the chooser selected for this lane.
    pub action: usize,
    /// The chooser's auxiliary payload (e.g. the action's log-probability).
    pub payload: A,
    /// Reward for the transition.
    pub reward: f32,
    /// Whether the episode ended on this transition (the lane has already
    /// auto-reset; its current observation begins the next episode).
    pub done: bool,
    /// Step info of the transition (guess outcome, detection, ...).
    pub info: StepInfo,
    /// Present when the episode ended, summarizing it.
    pub finished: Option<FinishedEpisode>,
}

struct Lane<E> {
    env: E,
    rng: StdRng,
    obs: Vec<f32>,
    episode_return: f32,
    episode_len: usize,
}

impl<E: Environment> Lane<E> {
    /// Applies `action`, accumulates episode stats, and auto-resets on
    /// episode end, drawing all randomness from `rng`.
    fn step<A>(&mut self, action: usize, payload: A, rng: &mut StdRng) -> LaneStep<A> {
        let result = self.env.step(action, rng);
        self.episode_return += result.reward;
        self.episode_len += 1;
        let finished = if result.done {
            let summary = FinishedEpisode {
                episode_return: self.episode_return,
                length: self.episode_len,
            };
            self.episode_return = 0.0;
            self.episode_len = 0;
            self.obs = self.env.reset(rng);
            Some(summary)
        } else {
            self.obs = result.obs;
            None
        };
        LaneStep {
            action,
            payload,
            reward: result.reward,
            done: result.done,
            info: result.info,
            finished,
        }
    }

    fn reset(&mut self, rng: &mut StdRng) {
        self.obs = self.env.reset(rng);
        self.episode_return = 0.0;
        self.episode_len = 0;
    }

    /// Runs `f` with this lane's own RNG stream temporarily detached,
    /// restoring it afterwards (splits the borrow so `f` can take the lane
    /// and the RNG mutably at once).
    fn with_own_rng<T>(&mut self, f: impl FnOnce(&mut Self, &mut StdRng) -> T) -> T {
        let mut rng = std::mem::replace(&mut self.rng, StdRng::seed_from_u64(0));
        let out = f(self, &mut rng);
        self.rng = rng;
        out
    }
}

/// N independent environment lanes stepped as one batch (see the module
/// docs for the determinism contract).
pub struct VecEnv<E: Environment> {
    lanes: Vec<Lane<E>>,
}

impl<E: Environment + Clone> VecEnv<E> {
    /// Creates `num_lanes` lanes by cloning `proto`; lane RNG streams are
    /// derived from `seed`.
    ///
    /// # Errors
    ///
    /// Returns an error if `num_lanes` is zero.
    pub fn new(num_lanes: usize, proto: E, seed: u64) -> Result<Self, String> {
        if num_lanes == 0 {
            return Err("VecEnv needs at least one lane".into());
        }
        let envs = vec![proto; num_lanes];
        Self::from_envs(envs, seed)
    }
}

impl<E: Environment> VecEnv<E> {
    /// Creates one lane per environment (for heterogeneous lane setups,
    /// e.g. one cache configuration per lane in a sweep).
    ///
    /// # Errors
    ///
    /// Returns an error if `envs` is empty or the environments disagree on
    /// observation/action dimensions.
    pub fn from_envs(envs: Vec<E>, seed: u64) -> Result<Self, String> {
        if envs.is_empty() {
            return Err("VecEnv needs at least one lane".into());
        }
        let shape = |e: &E| (e.obs_dim(), e.num_actions(), e.window(), e.token_dim());
        let lane0 = shape(&envs[0]);
        for (i, e) in envs.iter().enumerate() {
            if shape(e) != lane0 {
                return Err(format!(
                    "lane {i} has (obs_dim, actions, window, token_dim) = {:?}, lane 0 has {:?}",
                    shape(e),
                    lane0
                ));
            }
        }
        let lanes = envs
            .into_iter()
            .enumerate()
            .map(|(i, env)| {
                let obs_dim = env.obs_dim();
                Lane {
                    env,
                    rng: StdRng::seed_from_u64(lane_seed(seed, i as u64)),
                    obs: vec![0.0; obs_dim],
                    episode_return: 0.0,
                    episode_len: 0,
                }
            })
            .collect();
        Ok(Self { lanes })
    }

    /// Number of lanes.
    pub fn num_lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Flattened observation dimension (identical across lanes).
    pub fn obs_dim(&self) -> usize {
        self.lanes[0].env.obs_dim()
    }

    /// Number of discrete actions (identical across lanes).
    pub fn num_actions(&self) -> usize {
        self.lanes[0].env.num_actions()
    }

    /// Features per history token.
    pub fn token_dim(&self) -> usize {
        self.lanes[0].env.token_dim()
    }

    /// History window length in tokens.
    pub fn window(&self) -> usize {
        self.lanes[0].env.window()
    }

    /// Whether this VecEnv runs in the bit-for-bit scalar-compatible mode
    /// (exactly one lane; all draws come from the caller's RNG).
    pub fn is_scalar_compat(&self) -> bool {
        self.lanes.len() == 1
    }

    /// Borrows lane `i`'s environment.
    pub fn lane(&self, i: usize) -> &E {
        &self.lanes[i].env
    }

    /// Mutably borrows lane `i`'s environment (evaluation, forcing
    /// secrets). Touching env state mid-rollout invalidates the lane's
    /// episode accounting; do it between rollouts.
    pub fn lane_mut(&mut self, i: usize) -> &mut E {
        &mut self.lanes[i].env
    }

    /// The current observations, flattened row-major: `num_lanes` rows of
    /// `obs_dim` columns, ready to become one batched network input.
    pub fn obs_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.lanes.len() * self.obs_dim());
        for lane in &self.lanes {
            out.extend_from_slice(&lane.obs);
        }
        out
    }

    /// Snapshots every lane's RNG state (for trainer checkpoints).
    /// Restore with [`VecEnv::restore_rng_states`].
    pub fn rng_states(&self) -> Vec<[u64; 4]> {
        self.lanes.iter().map(|lane| lane.rng.state()).collect()
    }

    /// Restores per-lane RNG states captured by [`VecEnv::rng_states`].
    ///
    /// Episode state is *not* restored — checkpoints are taken at update
    /// boundaries, where the next collection resets every lane anyway, so
    /// the lane RNG streams are the only state that must survive.
    ///
    /// # Errors
    ///
    /// Returns an error if `states` does not have one entry per lane.
    pub fn restore_rng_states(&mut self, states: &[[u64; 4]]) -> Result<(), String> {
        if states.len() != self.lanes.len() {
            return Err(format!(
                "checkpoint has {} lane RNG states, VecEnv has {} lanes",
                states.len(),
                self.lanes.len()
            ));
        }
        for (lane, &state) in self.lanes.iter_mut().zip(states) {
            lane.rng = StdRng::from_state(state);
        }
        Ok(())
    }

    /// Resets every lane, discarding any episodes in progress (the scalar
    /// rollout loop did the same at the start of each collection).
    pub fn reset_all(&mut self, rng: &mut StdRng) {
        if self.is_scalar_compat() {
            self.lanes[0].reset(rng);
        } else {
            for lane in &mut self.lanes {
                lane.with_own_rng(|lane, rng| lane.reset(rng));
            }
        }
    }
}

impl<E: Environment + Send> VecEnv<E> {
    /// Steps every lane once. `choose` maps `(lane_index, lane_rng)` to the
    /// action index plus an arbitrary payload (rollout collection passes the
    /// action's log-probability through); it is called exactly once per
    /// lane. Lanes that finish their episode auto-reset.
    ///
    /// With one lane, all draws (including `choose`'s) come from the
    /// caller's `rng`, preserving the scalar code path's RNG stream. With
    /// multiple lanes each lane draws from its own stream and stepping is
    /// spread across rayon workers in contiguous chunks, so results do not
    /// depend on thread count.
    pub fn step_each<A, C>(&mut self, choose: C, rng: &mut StdRng) -> Vec<LaneStep<A>>
    where
        A: Send,
        C: Fn(usize, &mut StdRng) -> (usize, A) + Sync,
    {
        if self.is_scalar_compat() {
            let lane = &mut self.lanes[0];
            let (action, payload) = choose(0, rng);
            return vec![lane.step(action, payload, rng)];
        }
        let workers = rayon::current_num_threads().min(self.lanes.len()).max(1);
        if workers == 1 {
            return self
                .lanes
                .iter_mut()
                .enumerate()
                .map(|(i, lane)| {
                    lane.with_own_rng(|lane, rng| {
                        let (action, payload) = choose(i, rng);
                        lane.step(action, payload, rng)
                    })
                })
                .collect();
        }
        let chunk_len = self.lanes.len().div_ceil(workers);
        let mut results: Vec<Option<LaneStep<A>>> = Vec::new();
        results.resize_with(self.lanes.len(), || None);
        {
            let choose = &choose;
            let step_chunk = |base: usize,
                              lanes: &mut [Lane<E>],
                              out: &mut [Option<LaneStep<A>>]| {
                for (offset, (lane, slot)) in lanes.iter_mut().zip(out.iter_mut()).enumerate() {
                    let i = base + offset;
                    let mut lane_rng = std::mem::replace(&mut lane.rng, StdRng::seed_from_u64(0));
                    let (action, payload) = choose(i, &mut lane_rng);
                    *slot = Some(lane.step(action, payload, &mut lane_rng));
                    lane.rng = lane_rng;
                }
            };
            let mut lane_chunks = self.lanes.chunks_mut(chunk_len);
            let mut result_chunks = results.chunks_mut(chunk_len);
            // The caller participates: chunk 0 runs inline on this thread
            // while the pool workers handle the rest, so the worker count
            // (which includes this thread) matches the threads doing work.
            let first = lane_chunks.next().zip(result_chunks.next());
            rayon::scope(|scope| {
                for (chunk_idx, (lanes, out)) in lane_chunks.zip(result_chunks).enumerate() {
                    let base = (chunk_idx + 1) * chunk_len;
                    scope.spawn(move |_| step_chunk(base, lanes, out));
                }
                if let Some((lanes, out)) = first {
                    step_chunk(0, lanes, out);
                }
            });
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every lane must be stepped"))
            .collect()
    }

    /// Steps every lane once with a fused per-group *prepare* stage,
    /// overlapping batched policy inference with environment stepping.
    ///
    /// Lanes are partitioned into contiguous groups of `group_len` (the
    /// last group may be shorter). For each group, `prepare(base_lane,
    /// group_obs, group_rows)` runs first with the group's pre-step
    /// observations flattened row-major (rollout collection runs the
    /// batched policy forward here), then `choose(&ctx, local_row,
    /// lane_rng)` picks each lane's action from the prepared context and
    /// the lane steps. Groups are distributed across rayon workers, so one
    /// group's `prepare` overlaps other groups' environment stepping —
    /// unlike [`VecEnv::step_each`], where the caller must finish one
    /// whole-batch forward before any lane can move.
    ///
    /// Determinism: every random draw comes from the same per-lane streams
    /// (or, with one lane, the caller's RNG in [`VecEnv::step_each`]'s
    /// scalar-compatible order), so trajectories are bit-identical to
    /// `step_each` for **any** `group_len` and any worker count — provided
    /// `prepare` itself is group-local and draws no randomness. Callers
    /// whose `prepare` is batch-size-sensitive (blocked matmul kernels)
    /// should pick `group_len` on the kernel's row-block boundary; see
    /// `autocat_ppo::rollout`.
    ///
    /// # Panics
    ///
    /// Panics if `group_len` is zero.
    pub fn step_pipelined<A, G, P, C>(
        &mut self,
        group_len: usize,
        prepare: P,
        choose: C,
        rng: &mut StdRng,
    ) -> Vec<LaneStep<A>>
    where
        A: Send,
        P: Fn(usize, &[f32], usize) -> G + Sync,
        C: Fn(&G, usize, &mut StdRng) -> (usize, A) + Sync,
    {
        assert!(group_len > 0, "group_len must be positive");
        if self.is_scalar_compat() {
            let lane = &mut self.lanes[0];
            let ctx = prepare(0, &lane.obs, 1);
            let (action, payload) = choose(&ctx, 0, rng);
            return vec![lane.step(action, payload, rng)];
        }
        let obs_dim = self.obs_dim();
        let mut results: Vec<Option<LaneStep<A>>> = Vec::new();
        results.resize_with(self.lanes.len(), || None);
        {
            let prepare = &prepare;
            let choose = &choose;
            let run_group = move |base: usize,
                                  lanes: &mut [Lane<E>],
                                  out: &mut [Option<LaneStep<A>>]| {
                // Snapshot this group's observations before stepping
                // mutates them; groups own disjoint lane ranges, so the
                // concatenation over groups equals a pre-step obs_flat().
                let mut group_obs = Vec::with_capacity(lanes.len() * obs_dim);
                for lane in lanes.iter() {
                    group_obs.extend_from_slice(&lane.obs);
                }
                let ctx = prepare(base, &group_obs, lanes.len());
                for (local, (lane, slot)) in lanes.iter_mut().zip(out.iter_mut()).enumerate() {
                    let mut lane_rng = std::mem::replace(&mut lane.rng, StdRng::seed_from_u64(0));
                    let (action, payload) = choose(&ctx, local, &mut lane_rng);
                    *slot = Some(lane.step(action, payload, &mut lane_rng));
                    lane.rng = lane_rng;
                }
            };
            let mut lane_chunks = self.lanes.chunks_mut(group_len);
            let mut result_chunks = results.chunks_mut(group_len);
            // The caller participates: group 0 runs inline on this thread
            // while the pool workers pipeline the rest.
            let first = lane_chunks.next().zip(result_chunks.next());
            rayon::scope(|scope| {
                for (group_idx, (lanes, out)) in lane_chunks.zip(result_chunks).enumerate() {
                    let base = (group_idx + 1) * group_len;
                    scope.spawn(move |_| run_group(base, lanes, out));
                }
                if let Some((lanes, out)) = first {
                    run_group(0, lanes, out);
                }
            });
        }
        results
            .into_iter()
            .map(|slot| slot.expect("every lane must be stepped"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use crate::env::CacheGuessingGame;
    use crate::StepResult;

    fn game() -> CacheGuessingGame {
        CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Random-action trajectory helper: steps `venv` `steps` times and
    /// returns (actions, rewards, dones) per call in lane-major order.
    fn drive(
        venv: &mut VecEnv<CacheGuessingGame>,
        steps: usize,
        master: &mut StdRng,
    ) -> Vec<(usize, f32, bool)> {
        use rand::Rng;
        let num_actions = venv.num_actions();
        let mut out = Vec::new();
        for _ in 0..steps {
            let results = venv.step_each(
                |_, lane_rng| (lane_rng.gen_range(0..num_actions), ()),
                master,
            );
            for s in results {
                out.push((s.action, s.reward, s.done));
            }
        }
        out
    }

    #[test]
    fn zero_lanes_is_an_error() {
        assert!(VecEnv::new(0, game(), 1).is_err());
    }

    #[test]
    fn mismatched_lanes_are_rejected() {
        let a = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let b = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        assert!(VecEnv::from_envs(vec![a, b], 1).is_err());
    }

    #[test]
    fn obs_flat_has_lane_major_layout() {
        let mut venv = VecEnv::new(3, game(), 7).unwrap();
        venv.reset_all(&mut rng(1));
        let flat = venv.obs_flat();
        assert_eq!(flat.len(), 3 * venv.obs_dim());
    }

    #[test]
    fn single_lane_matches_raw_env_bit_for_bit() {
        use rand::Rng;
        // The scalar-compat contract: a 1-lane VecEnv driven by a master
        // RNG reproduces exactly the raw-env loop with the same RNG.
        let mut venv = VecEnv::new(1, game(), 99).unwrap();
        let mut m1 = rng(5);
        venv.reset_all(&mut m1);
        let vec_traj = drive(&mut venv, 300, &mut m1);

        let mut env = game();
        let mut m2 = rng(5);
        let mut raw_traj = Vec::new();
        env.reset(&mut m2);
        let num_actions = env.num_actions();
        for _ in 0..300 {
            let a = m2.gen_range(0..num_actions);
            let StepResult { reward, done, .. } = env.step(a, &mut m2);
            raw_traj.push((a, reward, done));
            if done {
                env.reset(&mut m2);
            }
        }
        assert_eq!(vec_traj, raw_traj);
    }

    #[test]
    fn multi_lane_is_deterministic_for_fixed_seed() {
        let run = |seed| {
            let mut venv = VecEnv::new(4, game(), seed).unwrap();
            let mut master = rng(0);
            venv.reset_all(&mut master);
            drive(&mut venv, 200, &mut master)
        };
        assert_eq!(run(11), run(11));
        assert_ne!(
            run(11),
            run(12),
            "different seeds must give different trajectories"
        );
    }

    #[test]
    fn lanes_decorrelate() {
        // With distinct RNG streams, 8 lanes must not all play the same
        // action at every step.
        let mut venv = VecEnv::new(8, game(), 3).unwrap();
        let mut master = rng(0);
        venv.reset_all(&mut master);
        let traj = drive(&mut venv, 50, &mut master);
        let mut any_diverged = false;
        for step in traj.chunks(8) {
            if step.iter().any(|s| s.0 != step[0].0) {
                any_diverged = true;
                break;
            }
        }
        assert!(any_diverged, "lanes must explore independently");
    }

    #[test]
    fn restored_rng_states_resume_trajectories_at_an_update_boundary() {
        // The checkpoint premise: a fresh VecEnv built from the same
        // prototype env, with lane RNG states restored, behaves exactly
        // like the original from the next reset_all onward.
        let mut original = VecEnv::new(4, game(), 17).unwrap();
        let mut master_a = rng(2);
        original.reset_all(&mut master_a);
        drive(&mut original, 150, &mut master_a);

        let mut restored = VecEnv::new(4, game(), 0).unwrap();
        restored.restore_rng_states(&original.rng_states()).unwrap();
        let mut master_b = StdRng::from_state(master_a.state());

        original.reset_all(&mut master_a);
        restored.reset_all(&mut master_b);
        assert_eq!(
            drive(&mut original, 200, &mut master_a),
            drive(&mut restored, 200, &mut master_b)
        );
    }

    #[test]
    fn restore_rejects_a_lane_count_mismatch() {
        let mut venv = VecEnv::new(2, game(), 0).unwrap();
        let states = venv.rng_states();
        assert!(venv.restore_rng_states(&states[..1]).is_err());
    }

    #[test]
    fn auto_reset_reports_episode_summaries() {
        let mut venv = VecEnv::new(2, game(), 21).unwrap();
        let mut master = rng(0);
        venv.reset_all(&mut master);
        let guess = venv.lane(0).action_space().guess_indices()[0];
        let mut summaries = 0;
        for _ in 0..5 {
            let results = venv.step_each(|_, _| (guess, ()), &mut master);
            for s in &results {
                assert!(s.done, "a guess ends the episode");
                let f = s.finished.expect("done lanes report a summary");
                assert_eq!(f.length, 1);
                assert!((f.episode_return - s.reward).abs() < 1e-6);
                summaries += 1;
            }
        }
        assert_eq!(summaries, 10);
        // After auto-reset the lanes are live (stepping does not panic).
        let _ = venv.step_each(|_, _| (0, ()), &mut master);
    }

    #[test]
    fn episode_return_accumulates_across_steps() {
        let mut venv = VecEnv::new(1, game(), 0).unwrap();
        let mut master = rng(9);
        venv.reset_all(&mut master);
        let guess = venv.lane(0).action_space().guess_indices()[0];
        // Two no-op steps then a guess: the summary must cover all three.
        let r1 = venv.step_each(|_, _| (0, ()), &mut master)[0].reward;
        let r2 = venv.step_each(|_, _| (0, ()), &mut master)[0].reward;
        let s = venv.step_each(|_, _| (guess, ()), &mut master);
        let f = s[0].finished.unwrap();
        assert_eq!(f.length, 3);
        assert!((f.episode_return - (r1 + r2 + s[0].reward)).abs() < 1e-6);
    }

    #[test]
    fn pipelined_step_matches_step_each_for_any_group_len() {
        use rand::Rng;
        // Fused stepping must be bit-identical to step_each regardless of
        // how lanes are grouped (full, partial-last, degenerate groups).
        for group_len in [1usize, 2, 3, 4, 8] {
            let mut plain = VecEnv::new(5, game(), 33).unwrap();
            let mut fused = VecEnv::new(5, game(), 33).unwrap();
            let num_actions = plain.num_actions();
            let obs_dim = plain.obs_dim();
            let (mut ma, mut mb) = (rng(4), rng(4));
            plain.reset_all(&mut ma);
            fused.reset_all(&mut mb);
            for _ in 0..64 {
                let pre_step_obs = fused.obs_flat();
                let ra = plain.step_each(
                    |_, lane_rng| (lane_rng.gen_range(0..num_actions), ()),
                    &mut ma,
                );
                let rb = fused.step_pipelined(
                    group_len,
                    |base, group_obs, group_rows| {
                        // prepare sees this group's *pre-step* observations.
                        assert_eq!(group_obs.len(), group_rows * obs_dim);
                        let lo = base * obs_dim;
                        assert_eq!(group_obs, &pre_step_obs[lo..lo + group_obs.len()]);
                    },
                    |_, _, lane_rng| (lane_rng.gen_range(0..num_actions), ()),
                    &mut mb,
                );
                assert_eq!(ra, rb, "group_len={group_len}");
            }
        }
    }

    #[test]
    fn pipelined_step_is_scalar_compatible_at_one_lane() {
        use rand::Rng;
        // With a single lane the pipelined step must consume the caller's
        // RNG exactly like step_each (the scalar-compat contract), so a
        // trailing draw from each master RNG still agrees.
        let mut plain = VecEnv::new(1, game(), 12).unwrap();
        let mut fused = VecEnv::new(1, game(), 12).unwrap();
        let num_actions = plain.num_actions();
        let (mut ma, mut mb) = (rng(8), rng(8));
        plain.reset_all(&mut ma);
        fused.reset_all(&mut mb);
        for _ in 0..64 {
            let ra = plain.step_each(
                |_, lane_rng| (lane_rng.gen_range(0..num_actions), ()),
                &mut ma,
            );
            let rb = fused.step_pipelined(
                1,
                |_, _, _| (),
                |_, _, lane_rng| (lane_rng.gen_range(0..num_actions), ()),
                &mut mb,
            );
            assert_eq!(ra, rb);
        }
        assert_eq!(ma.gen::<u64>(), mb.gen::<u64>());
    }

    #[test]
    #[should_panic(expected = "group_len must be positive")]
    fn pipelined_step_rejects_zero_group_len() {
        let mut venv = VecEnv::new(2, game(), 1).unwrap();
        let mut master = rng(0);
        venv.reset_all(&mut master);
        let _ = venv.step_pipelined(0, |_, _, _| (), |_, _, _| (0, ()), &mut master);
    }
}
