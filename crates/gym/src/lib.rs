//! Cache guessing-game RL environments (paper Sec. III-B / IV).
//!
//! AutoCAT formulates a cache-timing attack as a guessing game: the RL agent
//! controls the attack program — memory accesses `aX`, optional flushes
//! `afX`, triggering the victim `av` — and ends an episode by guessing the
//! victim's secret address (`agY`, or `agE` for "victim made no access").
//! The environment owns the cache implementation, the secret, and the guess
//! evaluator, and returns rewards per Table II.
//!
//! * [`env::CacheGuessingGame`] — the single-secret episode environment used
//!   by Tables III–VII.
//! * [`multi::MultiGuessEnv`] — fixed-length episodes transmitting many
//!   secrets, with optional autocorrelation / SVM / miss-count detectors in
//!   the loop (Fig. 3, Tables VIII & IX).
//! * [`hardware::SimulatedProcessor`] — the blackbox "real hardware" backend
//!   substituting for CacheQuery on Intel machines (Table III); hidden
//!   replacement policy, timing noise, optional batched-measurement masking.
//! * [`vecenv::VecEnv`] — N independent lanes of any [`Environment`],
//!   stepped together so the policy can run one batched forward per step;
//!   a single lane is bit-for-bit compatible with the scalar loop.
//!
//! The environments are pluggable on both sides of the boundary: any
//! [`CacheBackend`] implementation can serve as the memory
//! ([`env::CacheGuessingGame::with_backend`]), and any
//! [`Monitor`] built from the [`MonitorSpec`] in
//! [`EnvConfig::detection`] runs in-loop as the episode guard.
//!
//! # Example
//!
//! ```
//! use autocat_gym::{EnvConfig, Environment, env::CacheGuessingGame};
//! use rand::SeedableRng;
//!
//! let config = EnvConfig::flush_reload_fa4(); // paper Table IV config 6
//! let mut env = CacheGuessingGame::new(config).unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let _obs = env.reset(&mut rng);
//! let result = env.step(0, &mut rng); // take the first action
//! assert!(!result.obs.is_empty());
//! ```

pub mod action;
pub mod config;
pub mod env;
pub mod hardware;
pub mod multi;
pub mod obs;
pub mod vecenv;

pub use action::{Action, ActionSpace};
pub use autocat_cache::CacheBackend;
pub use autocat_detect::{Monitor, MonitorSpec, Verdict};
pub use config::{CacheSpec, EnvConfig, RewardConfig};
pub use env::{backend_from_spec, CacheEnv, CacheGuessingGame};
pub use hardware::{HardwareProfile, NoiseModel, SimulatedProcessor};
pub use multi::{MultiGuessConfig, MultiGuessEnv};
pub use obs::ObsEncoder;
pub use vecenv::{lane_seed, FinishedEpisode, LaneStep, VecEnv};

use rand::rngs::StdRng;

/// Outcome of one environment step.
#[derive(Clone, Debug, PartialEq)]
pub struct StepResult {
    /// Flattened observation (window of per-step tokens).
    pub obs: Vec<f32>,
    /// Reward for the step just taken.
    pub reward: f32,
    /// Whether the episode ended.
    pub done: bool,
    /// Auxiliary step information.
    pub info: StepInfo,
}

/// Auxiliary information attached to a step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct StepInfo {
    /// `Some(correct)` when this step was a guess.
    pub guessed: Option<bool>,
    /// Whether a detector terminated/penalized the episode on this step.
    pub detected: bool,
    /// Whether the episode ended due to the length limit.
    pub length_violation: bool,
}

/// The interface PPO uses to interact with environments.
///
/// All AutoCAT environments expose a discrete action space and a fixed-size
/// flattened observation (a window of per-step tokens; see [`obs`]).
pub trait Environment {
    /// Flattened observation dimension (`window * token_dim`).
    fn obs_dim(&self) -> usize;
    /// Number of discrete actions.
    fn num_actions(&self) -> usize;
    /// Features per history token (for sequence models).
    fn token_dim(&self) -> usize;
    /// History window length in tokens.
    fn window(&self) -> usize;
    /// Starts a new episode, returning the initial observation.
    fn reset(&mut self, rng: &mut StdRng) -> Vec<f32>;
    /// Applies the action with the given index.
    ///
    /// # Panics
    ///
    /// Implementations panic if `action` is out of range or the episode is
    /// already done.
    fn step(&mut self, action: usize, rng: &mut StdRng) -> StepResult;
}
