//! Environment configuration (the paper's Table II).

use autocat_cache::{CacheConfig, PolicyKind, TwoLevelConfig};
use autocat_detect::MonitorSpec;
use serde::{Deserialize, Serialize};

use crate::hardware::HardwareProfile;

/// Which cache implementation backs the environment (paper Fig. 2: a cache
/// simulator or real hardware).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CacheSpec {
    /// A single-level simulated cache.
    Single(CacheConfig),
    /// A two-level hierarchy; the attacker runs on core 1 and the victim on
    /// core 0 (configs 16/17).
    TwoLevel(TwoLevelConfig),
    /// The simulated blackbox processor (Table III substitution).
    Hardware(HardwareProfile),
}

/// Reward values (Table II, RL config block).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Reward for a correct guess (paper: 1.0).
    pub correct_guess: f32,
    /// Reward for a wrong guess (paper: -1.0).
    pub wrong_guess: f32,
    /// Per-step penalty (paper: -0.01; -0.005 for hardware runs).
    pub step: f32,
    /// Penalty when the episode exceeds the length limit.
    pub length_violation: f32,
    /// Penalty when a detector flags the sequence.
    pub detection: f32,
}

impl Default for RewardConfig {
    fn default() -> Self {
        Self {
            correct_guess: 1.0,
            wrong_guess: -1.0,
            step: -0.01,
            length_violation: -2.0,
            detection: -2.0,
        }
    }
}

/// Full environment configuration, mirroring the paper's Table II options.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Cache implementation.
    pub cache: CacheSpec,
    /// First address accessible to the attack program (inclusive).
    pub attacker_addr_s: u64,
    /// Last address accessible to the attack program (inclusive).
    pub attacker_addr_e: u64,
    /// First address accessible to the victim program (inclusive).
    pub victim_addr_s: u64,
    /// Last address accessible to the victim program (inclusive).
    pub victim_addr_e: u64,
    /// Whether the attack program may flush (`clflush`).
    pub flush_enable: bool,
    /// Whether the victim may make no access when triggered ("0/E" configs).
    pub victim_no_access_enable: bool,
    /// In-episode detection (Table II `detection_enable`): any
    /// [`autocat_detect::Monitor`] built from this spec guards the episode,
    /// terminating it with `detection_reward` when the monitor flags an
    /// event (Sec. V-D).
    pub detection: MonitorSpec,
    /// History window size; also the episode length limit (paper sets it to
    /// 4–8 × `num_blocks`).
    pub window_size: usize,
    /// Reward values.
    pub rewards: RewardConfig,
    /// Number of random warm-up accesses initializing the cache at reset
    /// (paper Sec. VI-B).
    pub init_accesses: usize,
    /// PL cache: pre-install and lock every victim address at reset
    /// (Table VII experiment).
    pub pl_lock_victim: bool,
    /// Mask latency observations until the agent first signals a guess
    /// (the paper's batched-measurement mode for real hardware).
    pub masked_latency: bool,
}

impl EnvConfig {
    /// Creates a config over a single-level cache with the given address
    /// ranges and paper-default rewards.
    pub fn new(cache: CacheConfig, attacker_addrs: (u64, u64), victim_addrs: (u64, u64)) -> Self {
        let num_blocks = cache.num_blocks();
        Self {
            cache: CacheSpec::Single(cache),
            attacker_addr_s: attacker_addrs.0,
            attacker_addr_e: attacker_addrs.1,
            victim_addr_s: victim_addrs.0,
            victim_addr_e: victim_addrs.1,
            flush_enable: false,
            victim_no_access_enable: false,
            detection: MonitorSpec::Off,
            window_size: (6 * num_blocks).clamp(8, 64),
            rewards: RewardConfig::default(),
            init_accesses: num_blocks,
            pl_lock_victim: false,
            masked_latency: false,
        }
    }

    /// Paper Table IV config 1: direct-mapped 4-set cache, victim 0–3,
    /// attacker 4–7 (prime+probe expected).
    pub fn prime_probe_dm4() -> Self {
        Self::new(CacheConfig::direct_mapped(4), (4, 7), (0, 3))
    }

    /// Paper Table IV config 6: fully-associative 4-way LRU cache, victim
    /// accesses address 0 or nothing, attacker 0–3 with flush
    /// (flush+reload expected).
    pub fn flush_reload_fa4() -> Self {
        let mut c = Self::new(
            CacheConfig::fully_associative(4).with_policy(PolicyKind::Lru),
            (0, 3),
            (0, 0),
        );
        c.flush_enable = true;
        c.victim_no_access_enable = true;
        c
    }

    /// The Table V / case-study-1 config: 4-way set with the given policy,
    /// attacker 0–4 (big enough to fill the set), victim accesses 0 or
    /// nothing.
    pub fn replacement_study(policy: PolicyKind) -> Self {
        let mut c = Self::new(
            CacheConfig::fully_associative(4).with_policy(policy),
            (0, 4),
            (0, 0),
        );
        c.victim_no_access_enable = true;
        c
    }

    /// The Table VII PL-cache config: 4-way PLRU, attacker 1–5, victim locks
    /// and accesses address 0 (or nothing).
    pub fn pl_cache_study(locked: bool) -> Self {
        let mut c = Self::new(
            CacheConfig::fully_associative(4).with_policy(PolicyKind::Plru),
            (1, 5),
            (0, 0),
        );
        c.victim_no_access_enable = true;
        c.pl_lock_victim = locked;
        c
    }

    /// Enables flush actions.
    pub fn with_flush(mut self, enable: bool) -> Self {
        self.flush_enable = enable;
        self
    }

    /// Enables the victim-no-access secret value.
    pub fn with_victim_no_access(mut self, enable: bool) -> Self {
        self.victim_no_access_enable = enable;
        self
    }

    /// Sets the in-loop detection monitor.
    pub fn with_detection(mut self, detection: MonitorSpec) -> Self {
        self.detection = detection;
        self
    }

    /// Sets the window size / episode length limit.
    pub fn with_window(mut self, window: usize) -> Self {
        self.window_size = window;
        self
    }

    /// Sets the reward configuration.
    pub fn with_rewards(mut self, rewards: RewardConfig) -> Self {
        self.rewards = rewards;
        self
    }

    /// Number of attacker-accessible addresses.
    pub fn num_attacker_addrs(&self) -> usize {
        (self.attacker_addr_e - self.attacker_addr_s + 1) as usize
    }

    /// Number of victim-accessible addresses.
    pub fn num_victim_addrs(&self) -> usize {
        (self.victim_addr_e - self.victim_addr_s + 1) as usize
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.attacker_addr_e < self.attacker_addr_s {
            return Err("attacker address range is empty".into());
        }
        if self.victim_addr_e < self.victim_addr_s {
            return Err("victim address range is empty".into());
        }
        if self.window_size < 2 {
            return Err("window_size must be at least 2".into());
        }
        if self.rewards.correct_guess <= 0.0 {
            return Err("correct_guess_reward must be positive".into());
        }
        if self.rewards.wrong_guess > 0.0 || self.rewards.step > 0.0 {
            return Err("wrong_guess/step rewards must be non-positive".into());
        }
        self.detection
            .validate()
            .map_err(|e| format!("detection: {e}"))?;
        if matches!(self.cache, CacheSpec::TwoLevel(_)) && self.flush_enable {
            // Supported, but flush in the hierarchy clears all levels.
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rewards_match_paper() {
        let r = RewardConfig::default();
        assert_eq!(r.correct_guess, 1.0);
        assert_eq!(r.wrong_guess, -1.0);
        assert_eq!(r.step, -0.01);
    }

    #[test]
    fn preset_configs_validate() {
        assert!(EnvConfig::prime_probe_dm4().validate().is_ok());
        assert!(EnvConfig::flush_reload_fa4().validate().is_ok());
        assert!(EnvConfig::replacement_study(PolicyKind::Rrip)
            .validate()
            .is_ok());
        assert!(EnvConfig::pl_cache_study(true).validate().is_ok());
    }

    #[test]
    fn address_counts() {
        let c = EnvConfig::prime_probe_dm4();
        assert_eq!(c.num_attacker_addrs(), 4);
        assert_eq!(c.num_victim_addrs(), 4);
    }

    #[test]
    fn invalid_ranges_rejected() {
        let mut c = EnvConfig::prime_probe_dm4();
        c.attacker_addr_e = 0;
        c.attacker_addr_s = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_monitor_rejected() {
        // A malformed monitor spec (SVM weights not matching the feature
        // dimensionality) must fail validation, not panic mid-training.
        let c = EnvConfig::prime_probe_dm4().with_detection(MonitorSpec::CycloneSvm {
            w: vec![1.0; 4],
            b: -1.5,
            num_intervals: 8,
            proximity_window: 12,
        });
        let err = c.validate().unwrap_err();
        assert!(err.contains("detection"), "{err}");
        let c =
            EnvConfig::prime_probe_dm4().with_detection(MonitorSpec::VictimMiss { threshold: 0 });
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_rewards_rejected() {
        let mut c = EnvConfig::prime_probe_dm4();
        c.rewards.step = 0.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn flush_reload_preset_enables_flush_and_no_access() {
        let c = EnvConfig::flush_reload_fa4();
        assert!(c.flush_enable);
        assert!(c.victim_no_access_enable);
    }
}
