//! The discrete action space (paper Sec. IV-C, "RL Action Space").

use crate::config::EnvConfig;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One attack-program action.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Action {
    /// `aX` — access attacker-accessible address `X`.
    Access(u64),
    /// `afX` — flush address `X` (only when `flush_enable`).
    Flush(u64),
    /// `av` — trigger the victim program's secret access.
    TriggerVictim,
    /// `agY` — guess the secret is address `Y` (ends the episode, or
    /// re-arms the secret in multi-guess episodes).
    Guess(u64),
    /// `agE` — guess the victim made no access (only when
    /// `victim_no_access_enable`).
    GuessNoAccess,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Access(x) => write!(f, "{x}"),
            Action::Flush(x) => write!(f, "f{x}"),
            Action::TriggerVictim => write!(f, "v"),
            Action::Guess(y) => write!(f, "g{y}"),
            Action::GuessNoAccess => write!(f, "gE"),
        }
    }
}

/// Bijection between action indices and [`Action`]s for a configuration.
///
/// Layout: accesses, then flushes (if enabled), then the victim trigger,
/// then guesses (victim addresses), then guess-no-access (if enabled).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActionSpace {
    actions: Vec<Action>,
}

impl ActionSpace {
    /// Builds the action space for an environment configuration.
    pub fn from_config(config: &EnvConfig) -> Self {
        let mut actions = Vec::new();
        for a in config.attacker_addr_s..=config.attacker_addr_e {
            actions.push(Action::Access(a));
        }
        if config.flush_enable {
            for a in config.attacker_addr_s..=config.attacker_addr_e {
                actions.push(Action::Flush(a));
            }
        }
        actions.push(Action::TriggerVictim);
        for v in config.victim_addr_s..=config.victim_addr_e {
            actions.push(Action::Guess(v));
        }
        if config.victim_no_access_enable {
            actions.push(Action::GuessNoAccess);
        }
        Self { actions }
    }

    /// Number of actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the space is empty (never true for valid configs).
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Decodes an action index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn decode(&self, index: usize) -> Action {
        assert!(
            index < self.actions.len(),
            "action index {index} out of range"
        );
        self.actions[index]
    }

    /// Encodes an action to its index, if present in this space.
    pub fn encode(&self, action: Action) -> Option<usize> {
        self.actions.iter().position(|&a| a == action)
    }

    /// All actions in index order.
    pub fn actions(&self) -> &[Action] {
        &self.actions
    }

    /// Indices of all guess actions (`agY` and `agE`).
    pub fn guess_indices(&self) -> Vec<usize> {
        self.actions
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, Action::Guess(_) | Action::GuessNoAccess))
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;

    #[test]
    fn prime_probe_space_layout() {
        // Config 1: attacker 4-7 (4 accesses), no flush, trigger, guesses
        // 0-3, no agE → 4 + 1 + 4 = 9 actions.
        let space = ActionSpace::from_config(&EnvConfig::prime_probe_dm4());
        assert_eq!(space.len(), 9);
        assert_eq!(space.decode(0), Action::Access(4));
        assert_eq!(space.decode(4), Action::TriggerVictim);
        assert_eq!(space.decode(5), Action::Guess(0));
    }

    #[test]
    fn flush_reload_space_layout() {
        // Config 6: attacker 0-3 accesses + 4 flushes + trigger + guess 0 +
        // agE = 4 + 4 + 1 + 1 + 1 = 11.
        let space = ActionSpace::from_config(&EnvConfig::flush_reload_fa4());
        assert_eq!(space.len(), 11);
        assert_eq!(space.decode(4), Action::Flush(0));
        assert_eq!(space.decode(8), Action::TriggerVictim);
        assert_eq!(space.decode(9), Action::Guess(0));
        assert_eq!(space.decode(10), Action::GuessNoAccess);
    }

    #[test]
    fn encode_decode_round_trip() {
        let space = ActionSpace::from_config(&EnvConfig::flush_reload_fa4());
        for i in 0..space.len() {
            assert_eq!(space.encode(space.decode(i)), Some(i));
        }
    }

    #[test]
    fn encode_missing_action_is_none() {
        let space = ActionSpace::from_config(&EnvConfig::prime_probe_dm4());
        assert_eq!(space.encode(Action::Flush(4)), None);
        assert_eq!(space.encode(Action::GuessNoAccess), None);
    }

    #[test]
    fn guess_indices_cover_all_guesses() {
        let space = ActionSpace::from_config(&EnvConfig::flush_reload_fa4());
        let g = space.guess_indices();
        assert_eq!(g, vec![9, 10]);
    }

    #[test]
    fn display_formats_match_paper_notation() {
        assert_eq!(Action::Access(7).to_string(), "7");
        assert_eq!(Action::Flush(0).to_string(), "f0");
        assert_eq!(Action::TriggerVictim.to_string(), "v");
        assert_eq!(Action::Guess(2).to_string(), "g2");
        assert_eq!(Action::GuessNoAccess.to_string(), "gE");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn decode_out_of_range_panics() {
        let space = ActionSpace::from_config(&EnvConfig::prime_probe_dm4());
        let _ = space.decode(100);
    }
}
