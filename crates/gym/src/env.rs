//! The single-secret cache guessing game (paper Sec. III-B).

use autocat_cache::{Cache, CacheBackend, CacheEvent, Domain, TwoLevelCache};
use autocat_detect::Monitor;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::action::{Action, ActionSpace};
use crate::config::{CacheSpec, EnvConfig};
use crate::hardware::SimulatedProcessor;
use crate::obs::{Latency, ObsEncoder, StepRecord};
use crate::{Environment, StepInfo, StepResult};

/// The victim's secret for an episode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Secret {
    /// The victim accesses this address when triggered.
    Addr(u64),
    /// The victim makes no access when triggered
    /// (`victim_no_access_enable`).
    NoAccess,
}

/// Builds the [`CacheBackend`] a [`CacheSpec`] describes.
///
/// This is the built-in spec → backend factory; environments accept any
/// other implementation through [`CacheGuessingGame::with_backend`].
pub fn backend_from_spec(spec: &CacheSpec, seed: u64) -> Box<dyn CacheBackend> {
    match spec {
        CacheSpec::Single(cfg) => Box::new(Cache::new(cfg.clone())),
        CacheSpec::TwoLevel(cfg) => Box::new(TwoLevelCache::new(cfg.clone())),
        CacheSpec::Hardware(profile) => Box::new(SimulatedProcessor::new(*profile, seed)),
    }
}

/// The single-secret guessing-game environment (Tables III–VII).
///
/// Each episode: the environment samples `addr_secret` (or "no access"),
/// the agent takes access/flush/trigger actions observing hit/miss
/// latencies, and ends the episode with a guess. See [`EnvConfig`] for all
/// the knobs.
///
/// The environment is generic over a boxed [`CacheBackend`]: by default the
/// backend is built from [`EnvConfig::cache`], and
/// [`CacheGuessingGame::with_backend`] accepts any third-party memory
/// model. An optional in-loop [`Monitor`] (built from
/// [`EnvConfig::detection`]) observes every cache event and terminates the
/// episode with the detection penalty when it flags one.
#[derive(Clone, Debug)]
pub struct CacheGuessingGame {
    config: EnvConfig,
    space: ActionSpace,
    encoder: ObsEncoder,
    backend: Box<dyn CacheBackend>,
    monitor: Option<Box<dyn Monitor>>,
    secret: Secret,
    forced_secret: Option<Secret>,
    history: Vec<StepRecord>,
    victim_triggered: bool,
    steps: usize,
    done: bool,
    revealed: bool,
}

/// Alias emphasizing the pluggable-backend view of the environment: a
/// guessing game over any boxed [`CacheBackend`].
pub type CacheEnv = CacheGuessingGame;

impl CacheGuessingGame {
    /// Creates the environment with the backend described by
    /// [`EnvConfig::cache`].
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration fails
    /// [`EnvConfig::validate`].
    pub fn new(config: EnvConfig) -> Result<Self, String> {
        let backend = backend_from_spec(&config.cache, 0);
        Self::with_backend(config, backend)
    }

    /// Creates the environment over a caller-supplied [`CacheBackend`],
    /// ignoring [`EnvConfig::cache`] (which then only documents the
    /// intended memory). This is the third-party plugin entry point: new
    /// memories run in the guessing game without touching this crate.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration fails
    /// [`EnvConfig::validate`].
    pub fn with_backend(config: EnvConfig, backend: Box<dyn CacheBackend>) -> Result<Self, String> {
        config.validate()?;
        let space = ActionSpace::from_config(&config);
        let encoder = ObsEncoder::new(config.window_size, space.len());
        let monitor = config.detection.build();
        Ok(Self {
            config,
            space,
            encoder,
            backend,
            monitor,
            secret: Secret::NoAccess,
            forced_secret: None,
            history: Vec::new(),
            victim_triggered: false,
            steps: 0,
            done: true,
            revealed: false,
        })
    }

    /// The environment configuration.
    pub fn config(&self) -> &EnvConfig {
        &self.config
    }

    /// The action space.
    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    /// The current episode's secret (for evaluation and channel replay).
    pub fn secret(&self) -> Secret {
        self.secret
    }

    /// Forces the next episodes' secret (covert-channel sender role). Pass
    /// `None` to return to random secrets.
    pub fn force_secret(&mut self, secret: Option<Secret>) {
        self.forced_secret = secret;
        if let Some(s) = secret {
            self.secret = s;
        }
    }

    /// Whether the current episode has ended.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// The action history of the current episode.
    pub fn history(&self) -> &[StepRecord] {
        &self.history
    }

    /// Drains cache events accumulated since the last drain (detector
    /// experiments). With an in-loop monitor configured the environment
    /// consumes events itself after every step, so this returns only
    /// events emitted since then.
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.backend.drain_events()
    }

    /// The cache backend driving this environment.
    pub fn backend(&self) -> &dyn CacheBackend {
        self.backend.as_ref()
    }

    /// The in-loop detection monitor, if one is configured.
    pub fn monitor(&self) -> Option<&dyn Monitor> {
        self.monitor.as_deref()
    }

    fn sample_secret(&self, rng: &mut StdRng) -> Secret {
        if let Some(s) = self.forced_secret {
            return s;
        }
        let num_victim = self.config.num_victim_addrs();
        let options = num_victim + usize::from(self.config.victim_no_access_enable);
        let pick = rng.gen_range(0..options);
        if pick < num_victim {
            Secret::Addr(self.config.victim_addr_s + pick as u64)
        } else {
            Secret::NoAccess
        }
    }

    fn init_cache(&mut self, rng: &mut StdRng) {
        self.backend.reset();
        // Warm up with random accesses from the combined address range
        // (paper Sec. VI-B).
        let lo = self.config.attacker_addr_s.min(self.config.victim_addr_s);
        let hi = self.config.attacker_addr_e.max(self.config.victim_addr_e);
        for _ in 0..self.config.init_accesses {
            let addr = rng.gen_range(lo..=hi);
            self.backend.access(addr, Domain::Attacker);
        }
        if self.config.pl_lock_victim {
            for v in self.config.victim_addr_s..=self.config.victim_addr_e {
                let _ = self.backend.lock(v);
            }
        }
        // Detectors must not see the warm-up.
        let _ = self.backend.drain_events();
    }

    fn mask(&self) -> bool {
        self.config.masked_latency && !self.revealed
    }

    fn encode_obs(&self) -> Vec<f32> {
        self.encoder.encode(&self.history, self.mask())
    }

    /// Applies a decoded action, returning `(latency, reward, done, info)`.
    fn apply(&mut self, action: Action) -> (Latency, f32, bool, StepInfo) {
        let rewards = self.config.rewards;
        let mut info = StepInfo::default();
        match action {
            Action::Access(x) => {
                let (observed_hit, _) = self.backend.access(x, Domain::Attacker);
                let lat = if observed_hit {
                    Latency::Hit
                } else {
                    Latency::Miss
                };
                (lat, rewards.step, false, info)
            }
            Action::Flush(x) => {
                self.backend.flush(x, Domain::Attacker);
                (Latency::NotAvailable, rewards.step, false, info)
            }
            Action::TriggerVictim => {
                self.victim_triggered = true;
                if let Secret::Addr(s) = self.secret {
                    // Detection happens through the monitor observing the
                    // resulting cache events (see `step`), not here.
                    let _ = self.backend.access(s, Domain::Victim);
                }
                (Latency::NotAvailable, rewards.step, false, info)
            }
            Action::Guess(y) => {
                if self.mask() {
                    // Batched-measurement mode: the first guess intent
                    // reveals the latencies; the agent then takes its real
                    // guess based on the revealed window.
                    self.revealed = true;
                    return (Latency::NotAvailable, rewards.step, false, info);
                }
                // A guess concerns the victim's triggered access: before any
                // trigger there is nothing to guess and the guess is wrong.
                let correct = self.victim_triggered && self.secret == Secret::Addr(y);
                info.guessed = Some(correct);
                let r = if correct {
                    rewards.correct_guess
                } else {
                    rewards.wrong_guess
                };
                (Latency::NotAvailable, r, true, info)
            }
            Action::GuessNoAccess => {
                if self.mask() {
                    self.revealed = true;
                    return (Latency::NotAvailable, rewards.step, false, info);
                }
                let correct = self.victim_triggered && self.secret == Secret::NoAccess;
                info.guessed = Some(correct);
                let r = if correct {
                    rewards.correct_guess
                } else {
                    rewards.wrong_guess
                };
                (Latency::NotAvailable, r, true, info)
            }
        }
    }
}

impl Environment for CacheGuessingGame {
    fn obs_dim(&self) -> usize {
        self.encoder.obs_dim()
    }

    fn num_actions(&self) -> usize {
        self.space.len()
    }

    fn token_dim(&self) -> usize {
        self.encoder.token_dim()
    }

    fn window(&self) -> usize {
        self.config.window_size
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f32> {
        if self.backend.is_stochastic() {
            // A fresh measurement run reseeds the noise stream.
            self.backend.reseed(rng.gen());
        }
        self.init_cache(rng);
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.reset();
        }
        self.secret = self.sample_secret(rng);
        self.history.clear();
        self.victim_triggered = false;
        self.steps = 0;
        self.done = false;
        self.revealed = false;
        self.encode_obs()
    }

    fn step(&mut self, action: usize, _rng: &mut StdRng) -> StepResult {
        assert!(!self.done, "step on finished episode; call reset first");
        let decoded = self.space.decode(action);
        self.steps += 1;
        let (latency, mut reward, mut done, mut info) = self.apply(decoded);
        if let Some(monitor) = self.monitor.as_mut() {
            let mut flagged = false;
            for event in self.backend.drain_events() {
                flagged |= monitor.observe(&event).is_attack();
            }
            if flagged {
                info.detected = true;
                if !done {
                    // The monitor ends the episode with the detection
                    // penalty (paper Sec. V-D).
                    reward = self.config.rewards.detection;
                    done = true;
                }
            }
        }
        self.history.push(StepRecord {
            action,
            latency,
            step_index: self.steps - 1,
            victim_triggered: self.victim_triggered,
        });
        if !done && self.steps >= self.config.window_size {
            done = true;
            reward += self.config.rewards.length_violation;
            info.length_violation = true;
        }
        self.done = done;
        StepResult {
            obs: self.encode_obs(),
            reward,
            done,
            info,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EnvConfig;
    use autocat_cache::PolicyKind;
    use autocat_detect::MonitorSpec;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(77)
    }

    /// Runs a fixed action sequence, returning the final StepResult.
    fn run(env: &mut CacheGuessingGame, rng: &mut StdRng, actions: &[Action]) -> StepResult {
        let mut last = None;
        for &a in actions {
            let idx = env.action_space().encode(a).expect("action must exist");
            last = Some(env.step(idx, rng));
        }
        last.expect("at least one action")
    }

    #[test]
    fn flush_reload_attack_wins() {
        // Config 6's known attack: f0 -> v -> 0 -> guess.
        let mut env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut r = rng();
        let mut correct = 0;
        let episodes = 40;
        for _ in 0..episodes {
            env.reset(&mut r);
            env.step(env.action_space().encode(Action::Flush(0)).unwrap(), &mut r);
            env.step(
                env.action_space().encode(Action::TriggerVictim).unwrap(),
                &mut r,
            );
            let probe = env.step(
                env.action_space().encode(Action::Access(0)).unwrap(),
                &mut r,
            );
            // Decode: hit -> victim accessed 0; miss -> no access.
            let token_start = 0;
            let hit = probe.obs[token_start] == 1.0;
            let guess = if hit {
                Action::Guess(0)
            } else {
                Action::GuessNoAccess
            };
            let fin = env.step(env.action_space().encode(guess).unwrap(), &mut r);
            assert!(fin.done);
            if fin.info.guessed == Some(true) {
                correct += 1;
            }
        }
        assert_eq!(
            correct, episodes,
            "flush+reload must be 100% accurate on LRU sim"
        );
    }

    #[test]
    fn prime_probe_attack_wins() {
        // Config 1: prime 4..7, trigger, probe; first probe miss names the set.
        let mut env = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        let mut r = rng();
        for _ in 0..20 {
            env.reset(&mut r);
            for a in 4..8u64 {
                env.step(
                    env.action_space().encode(Action::Access(a)).unwrap(),
                    &mut r,
                );
            }
            env.step(
                env.action_space().encode(Action::TriggerVictim).unwrap(),
                &mut r,
            );
            let mut missed_set = None;
            for a in 4..8u64 {
                let res = env.step(
                    env.action_space().encode(Action::Access(a)).unwrap(),
                    &mut r,
                );
                let miss = res.obs[1] == 1.0;
                if miss && missed_set.is_none() {
                    missed_set = Some(a - 4);
                }
            }
            let secret = match env.secret() {
                Secret::Addr(s) => s,
                Secret::NoAccess => unreachable!("config 1 has no agE"),
            };
            let guessed = missed_set.expect("victim access must evict one primed line");
            assert_eq!(guessed, secret, "probe miss must identify the victim set");
        }
    }

    #[test]
    fn wrong_guess_gets_negative_reward() {
        let mut env = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        env.force_secret(Some(Secret::Addr(0)));
        env.reset(&mut r);
        let res = run(&mut env, &mut r, &[Action::Guess(3)]);
        assert!(res.done);
        assert_eq!(res.reward, -1.0);
        assert_eq!(res.info.guessed, Some(false));
    }

    #[test]
    fn correct_guess_gets_positive_reward() {
        let mut env = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        let mut r = rng();
        env.force_secret(Some(Secret::Addr(2)));
        env.reset(&mut r);
        let res = run(&mut env, &mut r, &[Action::TriggerVictim, Action::Guess(2)]);
        assert_eq!(res.reward, 1.0);
        assert_eq!(res.info.guessed, Some(true));
    }

    #[test]
    fn guess_before_trigger_is_always_wrong() {
        let mut env = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        let mut r = rng();
        env.force_secret(Some(Secret::Addr(1)));
        env.reset(&mut r);
        // Correct address, but the victim was never triggered.
        let res = run(&mut env, &mut r, &[Action::Guess(1)]);
        assert_eq!(res.info.guessed, Some(false));
        assert_eq!(res.reward, -1.0);
    }

    #[test]
    fn episode_length_limit_enforced() {
        let mut env = CacheGuessingGame::new(EnvConfig::prime_probe_dm4().with_window(4)).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        let mut last = None;
        for _ in 0..4 {
            last = Some(env.step(0, &mut r));
        }
        let last = last.unwrap();
        assert!(last.done);
        assert!(last.info.length_violation);
        assert!(last.reward < -1.0);
    }

    #[test]
    #[should_panic(expected = "finished episode")]
    fn step_after_done_panics() {
        let mut env = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        let g = env.action_space().guess_indices()[0];
        env.step(g, &mut r);
        env.step(0, &mut r);
    }

    #[test]
    fn victim_miss_detection_terminates() {
        // With detection on and an empty-ish cache, triggering the victim
        // after flushing its line must miss and be detected.
        let cfg = EnvConfig::flush_reload_fa4().with_detection(MonitorSpec::strict_miss());
        let mut env = CacheGuessingGame::new(cfg).unwrap();
        let mut r = rng();
        env.force_secret(Some(Secret::Addr(0)));
        env.reset(&mut r);
        env.step(env.action_space().encode(Action::Flush(0)).unwrap(), &mut r);
        let res = env.step(
            env.action_space().encode(Action::TriggerVictim).unwrap(),
            &mut r,
        );
        assert!(res.done);
        assert!(res.info.detected);
        assert_eq!(res.reward, env.config().rewards.detection);
    }

    #[test]
    fn pl_locked_victim_line_never_evicted() {
        let cfg = EnvConfig::pl_cache_study(true);
        let mut env = CacheGuessingGame::new(cfg).unwrap();
        let mut r = rng();
        env.force_secret(Some(Secret::Addr(0)));
        env.reset(&mut r);
        // Hammer the set with attacker lines; the victim's locked line must
        // still hit when triggered (no victim miss ever).
        for a in 1..=5u64 {
            env.step(
                env.action_space().encode(Action::Access(a)).unwrap(),
                &mut r,
            );
        }
        // Victim access must hit (line locked in cache).
        let before = env.drain_events();
        drop(before);
        env.step(
            env.action_space().encode(Action::TriggerVictim).unwrap(),
            &mut r,
        );
        let events = env.drain_events();
        let victim_miss = events.iter().any(|e| {
            matches!(
                e,
                CacheEvent::Access {
                    domain: Domain::Victim,
                    hit: false,
                    ..
                }
            )
        });
        assert!(!victim_miss, "locked victim line must hit");
    }

    #[test]
    fn third_party_backend_plugs_in() {
        // Boxing a bare `Cache` through the public `CacheBackend` trait
        // reproduces the spec-built environment exactly — the plugin path
        // needs no gym-internal types.
        let cfg = EnvConfig::prime_probe_dm4();
        let backend: Box<dyn CacheBackend> =
            Box::new(Cache::new(autocat_cache::CacheConfig::direct_mapped(4)));
        let mut env = CacheGuessingGame::with_backend(cfg.clone(), backend).unwrap();
        let mut reference = CacheGuessingGame::new(cfg).unwrap();
        let (mut r1, mut r2) = (rng(), rng());
        for _ in 0..3 {
            assert_eq!(env.reset(&mut r1), reference.reset(&mut r2));
            for action in 0..4 {
                assert_eq!(env.step(action, &mut r1), reference.step(action, &mut r2));
            }
        }
    }

    #[test]
    fn composite_monitor_guards_episode() {
        // A stacked monitor (CC-Hunter + miss-count) must flag through the
        // miss-count member when the victim misses.
        let cfg = EnvConfig::flush_reload_fa4().with_detection(MonitorSpec::Composite(vec![
            MonitorSpec::cc_hunter(),
            MonitorSpec::strict_miss(),
        ]));
        let mut env = CacheGuessingGame::new(cfg).unwrap();
        let mut r = rng();
        env.force_secret(Some(Secret::Addr(0)));
        env.reset(&mut r);
        env.step(env.action_space().encode(Action::Flush(0)).unwrap(), &mut r);
        let res = env.step(
            env.action_space().encode(Action::TriggerVictim).unwrap(),
            &mut r,
        );
        assert!(res.done);
        assert!(res.info.detected);
    }

    #[test]
    fn secret_distribution_covers_all_options() {
        let mut env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut r = rng();
        let mut saw_addr = false;
        let mut saw_none = false;
        for _ in 0..50 {
            env.reset(&mut r);
            match env.secret() {
                Secret::Addr(_) => saw_addr = true,
                Secret::NoAccess => saw_none = true,
            }
        }
        assert!(saw_addr && saw_none);
    }

    #[test]
    fn masked_mode_hides_latency_until_reveal() {
        let mut cfg = EnvConfig::replacement_study(PolicyKind::Lru);
        cfg.masked_latency = true;
        let mut env = CacheGuessingGame::new(cfg).unwrap();
        let mut r = rng();
        env.force_secret(Some(Secret::Addr(0)));
        env.reset(&mut r);
        let res = env.step(
            env.action_space().encode(Action::Access(1)).unwrap(),
            &mut r,
        );
        // Latency slot must read N.A. (index 2 of the most recent token).
        assert_eq!(res.obs[2], 1.0, "latency must be masked");
        assert_eq!(res.obs[0] + res.obs[1], 0.0);
        // First guess intent reveals instead of terminating.
        let g = env.action_space().encode(Action::Guess(0)).unwrap();
        let res = env.step(g, &mut r);
        assert!(!res.done, "first guess in masked mode reveals");
        // Now the access's latency is visible in the window (token slot 1).
        let token = env.token_dim();
        let lat_na = res.obs[token + 2];
        assert_eq!(lat_na, 0.0, "latency revealed after guess intent");
        // Second guess actually terminates.
        let fin = env.step(g, &mut r);
        assert!(fin.done);
    }

    #[test]
    fn two_level_backend_runs_episodes() {
        use autocat_cache::TwoLevelConfig;
        let mut cfg = EnvConfig::new(
            autocat_cache::CacheConfig::direct_mapped(4),
            (4, 11),
            (0, 3),
        );
        cfg.cache = CacheSpec::TwoLevel(TwoLevelConfig::paper_config16());
        let mut env = CacheGuessingGame::new(cfg).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        let res = env.step(0, &mut r);
        assert!(!res.done);
    }

    #[test]
    fn hardware_backend_runs_episodes() {
        let mut cfg = EnvConfig::new(
            autocat_cache::CacheConfig::fully_associative(8),
            HardwareProfile::SkylakeL1.attacker_range(),
            (0, 0),
        );
        cfg.cache = CacheSpec::Hardware(HardwareProfile::SkylakeL1);
        cfg.victim_no_access_enable = true;
        let mut env = CacheGuessingGame::new(cfg).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        let res = env.step(0, &mut r);
        assert!(!res.done);
        assert_eq!(res.reward, env.config().rewards.step);
    }

    use crate::hardware::HardwareProfile;
}
