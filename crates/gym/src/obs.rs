//! Observation encoding (paper Sec. IV-C, "RL State Space").
//!
//! The state is the Cartesian product over a window of `W` steps of
//! latency × action × step-index × victim-triggered subspaces. Each step
//! becomes one fixed-width token; the window is flattened for the MLP
//! backbone and reshaped to `(W, token_dim)` by the Transformer backbone.

use serde::{Deserialize, Serialize};

/// The latency observation of a step (`S_lat = {hit, miss, N.A.}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Latency {
    /// The attacker's access hit.
    Hit,
    /// The attacker's access missed.
    Miss,
    /// No latency visible (victim trigger, flush, guess, or masked mode).
    NotAvailable,
}

/// One step of history.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Index of the action taken.
    pub action: usize,
    /// Observed latency.
    pub latency: Latency,
    /// Zero-based step index within the episode.
    pub step_index: usize,
    /// Whether the victim had been triggered at or before this step.
    pub victim_triggered: bool,
}

/// Encodes a history of [`StepRecord`]s into the flattened observation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObsEncoder {
    window: usize,
    num_actions: usize,
}

impl ObsEncoder {
    /// Creates an encoder for the given window and action-space size.
    ///
    /// # Panics
    ///
    /// Panics if either argument is zero.
    pub fn new(window: usize, num_actions: usize) -> Self {
        assert!(
            window > 0 && num_actions > 0,
            "window and num_actions must be positive"
        );
        Self {
            window,
            num_actions,
        }
    }

    /// Features per token: 3 (latency one-hot) + `num_actions` (action
    /// one-hot) + 1 (step fraction) + 1 (victim-triggered flag).
    pub fn token_dim(&self) -> usize {
        3 + self.num_actions + 2
    }

    /// Flattened observation dimension.
    pub fn obs_dim(&self) -> usize {
        self.window * self.token_dim()
    }

    /// The window length.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Encodes the most recent `window` records (most recent first) into a
    /// flat vector; unused slots are all-zero.
    ///
    /// When `mask_latency` is set, every latency is encoded as
    /// `NotAvailable` (the paper's batched real-hardware mode).
    pub fn encode(&self, history: &[StepRecord], mask_latency: bool) -> Vec<f32> {
        let token = self.token_dim();
        let mut obs = vec![0.0f32; self.obs_dim()];
        for (slot, rec) in history.iter().rev().take(self.window).enumerate() {
            let base = slot * token;
            let latency = if mask_latency {
                Latency::NotAvailable
            } else {
                rec.latency
            };
            let lat_idx = match latency {
                Latency::Hit => 0,
                Latency::Miss => 1,
                Latency::NotAvailable => 2,
            };
            obs[base + lat_idx] = 1.0;
            debug_assert!(rec.action < self.num_actions, "action out of range");
            obs[base + 3 + rec.action] = 1.0;
            obs[base + 3 + self.num_actions] = (rec.step_index as f32 + 1.0) / self.window as f32;
            obs[base + 3 + self.num_actions + 1] = if rec.victim_triggered { 1.0 } else { 0.0 };
        }
        obs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(action: usize, latency: Latency, step: usize, trig: bool) -> StepRecord {
        StepRecord {
            action,
            latency,
            step_index: step,
            victim_triggered: trig,
        }
    }

    #[test]
    fn dimensions() {
        let e = ObsEncoder::new(4, 5);
        assert_eq!(e.token_dim(), 10);
        assert_eq!(e.obs_dim(), 40);
    }

    #[test]
    fn empty_history_is_all_zero() {
        let e = ObsEncoder::new(4, 3);
        assert!(e.encode(&[], false).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn most_recent_record_fills_slot_zero() {
        let e = ObsEncoder::new(2, 3);
        let h = vec![
            rec(0, Latency::Hit, 0, false),
            rec(2, Latency::Miss, 1, true),
        ];
        let obs = e.encode(&h, false);
        let token = e.token_dim();
        // Slot 0 = most recent (action 2, miss, triggered).
        assert_eq!(obs[1], 1.0, "miss one-hot in slot 0");
        assert_eq!(obs[3 + 2], 1.0, "action 2 one-hot in slot 0");
        assert_eq!(obs[3 + 3 + 1], 1.0, "triggered flag in slot 0");
        // Slot 1 = older (action 0, hit).
        assert_eq!(obs[token], 1.0, "hit one-hot in slot 1");
        assert_eq!(obs[token + 3], 1.0, "action 0 one-hot in slot 1");
    }

    #[test]
    fn window_truncates_old_history() {
        let e = ObsEncoder::new(2, 2);
        let h = vec![
            rec(0, Latency::Hit, 0, false),
            rec(1, Latency::Hit, 1, false),
            rec(0, Latency::Miss, 2, false),
        ];
        let obs = e.encode(&h, false);
        let token = e.token_dim();
        // Slot 0 = step 2 (action 0, miss), slot 1 = step 1 (action 1).
        assert_eq!(obs[1], 1.0);
        assert_eq!(obs[token + 3 + 1], 1.0);
        // The oldest record is dropped: total one-hot mass is 2 tokens.
        let lat_mass: f32 = (0..2)
            .map(|s| obs[s * token] + obs[s * token + 1] + obs[s * token + 2])
            .sum();
        assert_eq!(lat_mass, 2.0);
    }

    #[test]
    fn masking_forces_na() {
        let e = ObsEncoder::new(1, 2);
        let h = vec![rec(0, Latency::Hit, 0, false)];
        let obs = e.encode(&h, true);
        assert_eq!(obs[0], 0.0);
        assert_eq!(obs[2], 1.0, "masked latency must read N.A.");
    }

    #[test]
    fn step_fraction_increases() {
        let e = ObsEncoder::new(4, 2);
        let h = vec![
            rec(0, Latency::Hit, 0, false),
            rec(0, Latency::Hit, 3, false),
        ];
        let obs = e.encode(&h, false);
        let token = e.token_dim();
        let frac_recent = obs[3 + 2];
        let frac_old = obs[token + 3 + 2];
        assert!(frac_recent > frac_old);
        assert_eq!(frac_recent, 1.0); // step 3 of window 4
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_window_panics() {
        let _ = ObsEncoder::new(0, 3);
    }
}
