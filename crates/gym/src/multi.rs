//! Fixed-length multi-secret episodes (Fig. 3, Tables VIII & IX).
//!
//! For the detector-bypass case studies the paper trains "a baseline attack
//! agent where multiple guesses happen in one fixed-step (e.g., 160-step)
//! episode and each guess corresponds to one secret". After every guess the
//! secret is re-randomized; at episode end the environment can add shaped
//! penalties:
//!
//! * an L2 autocorrelation penalty `R_L2 = a · Σ_p C_p² / P` (RL-autocor),
//! * an SVM detection penalty when the Cyclone classifier flags the episode
//!   trace (RL-SVM),
//! * a no-guess penalty when the agent never guessed.

use autocat_cache::{CacheBackend, CacheEvent};
use autocat_detect::{CycloneFeatures, EventTrain, LinearSvm, Monitor};
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::VecDeque;

use crate::action::{Action, ActionSpace};
use crate::config::{CacheSpec, EnvConfig};
use crate::env::{backend_from_spec, Secret};
use crate::obs::{Latency, ObsEncoder, StepRecord};
use crate::{Environment, StepInfo, StepResult};

/// Autocorrelation penalty parameters (RL-autocor agent).
#[derive(Clone, Debug, PartialEq)]
pub struct AutocorrPenalty {
    /// Weight `a` (negative) of the L2 penalty.
    pub weight: f32,
    /// Maximum lag `P`.
    pub max_lag: usize,
}

/// SVM detection penalty parameters (RL-SVM agent).
#[derive(Clone, Debug)]
pub struct SvmPenalty {
    /// The trained Cyclone SVM.
    pub svm: LinearSvm,
    /// Feature extractor matching the SVM's training features.
    pub features: CycloneFeatures,
    /// Penalty added when the SVM classifies the episode as an attack.
    pub penalty: f32,
}

/// Configuration of [`MultiGuessEnv`].
#[derive(Clone, Debug)]
pub struct MultiGuessConfig {
    /// Base configuration: cache, address ranges, rewards, window.
    pub base: EnvConfig,
    /// Fixed episode length in steps (the paper uses 160).
    pub episode_len: usize,
    /// Penalty when an episode contains no guess at all.
    pub no_guess_penalty: f32,
    /// Optional autocorrelation shaping.
    pub autocorr: Option<AutocorrPenalty>,
    /// Optional SVM detection shaping.
    pub svm: Option<SvmPenalty>,
}

impl MultiGuessConfig {
    /// The paper's Fig. 3 setting: 4-set direct-mapped cache, victim 0–3,
    /// attacker 4–7, 160-step episodes.
    pub fn fig3_baseline() -> Self {
        let mut base = EnvConfig::prime_probe_dm4();
        base.window_size = 16;
        Self {
            base,
            episode_len: 160,
            no_guess_penalty: -2.0,
            autocorr: None,
            svm: None,
        }
    }

    /// Adds the autocorrelation L2 penalty (RL-autocor).
    pub fn with_autocorr(mut self, weight: f32, max_lag: usize) -> Self {
        self.autocorr = Some(AutocorrPenalty { weight, max_lag });
        self
    }

    /// Adds the SVM detection penalty (RL-SVM).
    pub fn with_svm(mut self, svm: LinearSvm, features: CycloneFeatures, penalty: f32) -> Self {
        self.svm = Some(SvmPenalty {
            svm,
            features,
            penalty,
        });
        self
    }
}

/// Statistics of a finished episode.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct EpisodeStats {
    /// Steps taken.
    pub steps: usize,
    /// Number of guesses made.
    pub guesses: usize,
    /// Number of correct guesses.
    pub correct_guesses: usize,
    /// Maximum autocorrelation of the episode's conflict-miss train.
    pub max_autocorr: f64,
    /// Whether the SVM (if configured) flagged the episode.
    pub svm_detected: bool,
    /// Total victim misses during the episode.
    pub victim_misses: usize,
}

impl EpisodeStats {
    /// Bit rate in guesses per step (paper Table VIII metric).
    pub fn bit_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.guesses as f64 / self.steps as f64
        }
    }

    /// Guess accuracy.
    pub fn accuracy(&self) -> f64 {
        if self.guesses == 0 {
            0.0
        } else {
            self.correct_guesses as f64 / self.guesses as f64
        }
    }
}

/// Multi-secret fixed-length environment.
#[derive(Clone, Debug)]
pub struct MultiGuessEnv {
    config: MultiGuessConfig,
    space: ActionSpace,
    encoder: ObsEncoder,
    backend: Box<dyn CacheBackend>,
    monitor: Option<Box<dyn Monitor>>,
    secret: Secret,
    secret_queue: VecDeque<Secret>,
    history: Vec<StepRecord>,
    episode_events: Vec<CacheEvent>,
    victim_triggered: bool,
    steps: usize,
    done: bool,
    stats: EpisodeStats,
}

impl MultiGuessEnv {
    /// Creates the environment.
    ///
    /// # Errors
    ///
    /// Returns an error if the base config is invalid, uses a hardware
    /// backend (detectors need the simulator's event stream), or the episode
    /// length is shorter than 2.
    pub fn new(config: MultiGuessConfig) -> Result<Self, String> {
        config.base.validate()?;
        if config.episode_len < 2 {
            return Err("episode_len must be at least 2".into());
        }
        if matches!(config.base.cache, CacheSpec::Hardware(_)) {
            return Err("multi-guess detector episodes require a simulated cache".into());
        }
        let space = ActionSpace::from_config(&config.base);
        let encoder = ObsEncoder::new(config.base.window_size, space.len());
        let backend = backend_from_spec(&config.base.cache, 0);
        let monitor = config.base.detection.build();
        Ok(Self {
            config,
            space,
            encoder,
            backend,
            monitor,
            secret: Secret::NoAccess,
            secret_queue: VecDeque::new(),
            history: Vec::new(),
            episode_events: Vec::new(),
            victim_triggered: false,
            steps: 0,
            done: true,
            stats: EpisodeStats::default(),
        })
    }

    /// The action space.
    pub fn action_space(&self) -> &ActionSpace {
        &self.space
    }

    /// The configuration.
    pub fn config(&self) -> &MultiGuessConfig {
        &self.config
    }

    /// Current secret (covert-channel evaluation).
    pub fn secret(&self) -> Secret {
        self.secret
    }

    /// Queues secrets to transmit in order (covert-channel sender role);
    /// when the queue empties, secrets are random again.
    pub fn queue_secrets(&mut self, secrets: impl IntoIterator<Item = Secret>) {
        self.secret_queue.extend(secrets);
    }

    /// Statistics of the episode in progress (or just finished).
    pub fn stats(&self) -> &EpisodeStats {
        &self.stats
    }

    /// The full event log of the episode so far.
    pub fn episode_events(&self) -> &[CacheEvent] {
        &self.episode_events
    }

    fn sample_secret(&mut self, rng: &mut StdRng) -> Secret {
        if let Some(s) = self.secret_queue.pop_front() {
            return s;
        }
        let num_victim = self.config.base.num_victim_addrs();
        let options = num_victim + usize::from(self.config.base.victim_no_access_enable);
        let pick = rng.gen_range(0..options);
        if pick < num_victim {
            Secret::Addr(self.config.base.victim_addr_s + pick as u64)
        } else {
            Secret::NoAccess
        }
    }

    fn end_of_episode_penalty(&mut self) -> (f32, bool) {
        let mut penalty = 0.0;
        let mut detected = false;
        if self.stats.guesses == 0 {
            penalty += self.config.no_guess_penalty;
        }
        let train = EventTrain::from_events(self.episode_events.iter());
        if let Some(ac) = &self.config.autocorr {
            let sum_sq: f64 = (1..=ac.max_lag)
                .map(|p| train.autocorrelation(p).powi(2))
                .sum();
            penalty += ac.weight * (sum_sq / ac.max_lag as f64) as f32;
        }
        self.stats.max_autocorr = train.max_autocorrelation(
            self.config
                .autocorr
                .as_ref()
                .map(|a| a.max_lag)
                .unwrap_or(30),
        );
        if let Some(svm) = &self.config.svm {
            let features = svm.features.extract(&self.episode_events);
            if svm.svm.predict(&features) == 1 {
                penalty += svm.penalty;
                self.stats.svm_detected = true;
                detected = true;
            }
        }
        (penalty, detected)
    }
}

impl Environment for MultiGuessEnv {
    fn obs_dim(&self) -> usize {
        self.encoder.obs_dim()
    }

    fn num_actions(&self) -> usize {
        self.space.len()
    }

    fn token_dim(&self) -> usize {
        self.encoder.token_dim()
    }

    fn window(&self) -> usize {
        self.config.base.window_size
    }

    fn reset(&mut self, rng: &mut StdRng) -> Vec<f32> {
        self.backend.reset();
        let lo = self
            .config
            .base
            .attacker_addr_s
            .min(self.config.base.victim_addr_s);
        let hi = self
            .config
            .base
            .attacker_addr_e
            .max(self.config.base.victim_addr_e);
        for _ in 0..self.config.base.init_accesses {
            let addr = rng.gen_range(lo..=hi);
            self.backend.access(addr, autocat_cache::Domain::Attacker);
        }
        let _ = self.backend.drain_events();
        if let Some(monitor) = self.monitor.as_mut() {
            monitor.reset();
        }
        self.secret = self.sample_secret(rng);
        self.history.clear();
        self.episode_events.clear();
        self.victim_triggered = false;
        self.steps = 0;
        self.done = false;
        self.stats = EpisodeStats::default();
        self.encoder.encode(&self.history, false)
    }

    fn step(&mut self, action: usize, rng: &mut StdRng) -> StepResult {
        assert!(!self.done, "step on finished episode; call reset first");
        let rewards = self.config.base.rewards;
        let decoded = self.space.decode(action);
        self.steps += 1;
        self.stats.steps = self.steps;
        let mut info = StepInfo::default();
        let mut reward = rewards.step;
        let latency = match decoded {
            Action::Access(x) => {
                let (hit, _) = self.backend.access(x, autocat_cache::Domain::Attacker);
                if hit {
                    Latency::Hit
                } else {
                    Latency::Miss
                }
            }
            Action::Flush(x) => {
                self.backend.flush(x, autocat_cache::Domain::Attacker);
                Latency::NotAvailable
            }
            Action::TriggerVictim => {
                self.victim_triggered = true;
                if let Secret::Addr(s) = self.secret {
                    let (_, true_hit) = self.backend.access(s, autocat_cache::Domain::Victim);
                    if !true_hit {
                        self.stats.victim_misses += 1;
                    }
                }
                Latency::NotAvailable
            }
            Action::Guess(y) => {
                // Guesses concern the victim's triggered access; an
                // un-triggered guess is always wrong (and does not consume
                // the secret).
                let correct = self.victim_triggered && self.secret == Secret::Addr(y);
                self.stats.guesses += 1;
                self.stats.correct_guesses += usize::from(correct);
                info.guessed = Some(correct);
                reward = if correct {
                    rewards.correct_guess
                } else {
                    rewards.wrong_guess
                };
                if self.victim_triggered {
                    // Next secret; the victim must be re-triggered for it.
                    self.secret = self.sample_secret(rng);
                    self.victim_triggered = false;
                }
                Latency::NotAvailable
            }
            Action::GuessNoAccess => {
                let correct = self.victim_triggered && self.secret == Secret::NoAccess;
                self.stats.guesses += 1;
                self.stats.correct_guesses += usize::from(correct);
                info.guessed = Some(correct);
                reward = if correct {
                    rewards.correct_guess
                } else {
                    rewards.wrong_guess
                };
                if self.victim_triggered {
                    self.secret = self.sample_secret(rng);
                    self.victim_triggered = false;
                }
                Latency::NotAvailable
            }
        };
        let step_events = self.backend.drain_events();
        if let Some(monitor) = self.monitor.as_mut() {
            // In-loop detection: fixed-length episodes are penalized per
            // flagged event instead of terminating early.
            for event in &step_events {
                if monitor.observe(event).is_attack() {
                    reward += rewards.detection;
                    info.detected = true;
                }
            }
        }
        self.episode_events.extend(step_events);
        self.history.push(StepRecord {
            action,
            latency,
            step_index: (self.steps - 1) % self.config.base.window_size,
            victim_triggered: self.victim_triggered,
        });
        let mut done = false;
        if self.steps >= self.config.episode_len {
            done = true;
            let (penalty, detected) = self.end_of_episode_penalty();
            reward += penalty;
            info.detected |= detected;
        }
        self.done = done;
        StepResult {
            obs: self.encoder.encode(&self.history, false),
            reward,
            done,
            info,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_detect::svm::SvmTrainConfig;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    /// Scripted textbook prime+probe over the whole episode.
    fn run_textbook(env: &mut MultiGuessEnv, r: &mut StdRng) {
        env.reset(r);
        let space = env.action_space().clone();
        'outer: loop {
            // Prime 4..8.
            for a in 4..8u64 {
                let res = env.step(space.encode(Action::Access(a)).unwrap(), r);
                if res.done {
                    break 'outer;
                }
            }
            // Trigger.
            let res = env.step(space.encode(Action::TriggerVictim).unwrap(), r);
            if res.done {
                break;
            }
            // Probe and record misses.
            let mut miss_set = None;
            for a in 4..8u64 {
                let res = env.step(space.encode(Action::Access(a)).unwrap(), r);
                if res.obs[1] == 1.0 && miss_set.is_none() {
                    miss_set = Some(a - 4);
                }
                if res.done {
                    break 'outer;
                }
            }
            let guess = miss_set.unwrap_or(0);
            let res = env.step(space.encode(Action::Guess(guess)).unwrap(), r);
            if res.done {
                break;
            }
        }
    }

    #[test]
    fn episode_has_fixed_length() {
        let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        let mut steps = 0;
        loop {
            let res = env.step(0, &mut r);
            steps += 1;
            if res.done {
                break;
            }
        }
        assert_eq!(steps, 160);
    }

    #[test]
    fn textbook_prime_probe_is_accurate_and_periodic() {
        let mut env =
            MultiGuessEnv::new(MultiGuessConfig::fig3_baseline().with_autocorr(-1.0, 30)).unwrap();
        let mut r = rng();
        run_textbook(&mut env, &mut r);
        let stats = env.stats().clone();
        assert!(stats.guesses >= 10, "guesses {}", stats.guesses);
        assert!(stats.accuracy() > 0.95, "accuracy {}", stats.accuracy());
        assert!(
            stats.max_autocorr > 0.75,
            "textbook PP should look periodic, C = {}",
            stats.max_autocorr
        );
    }

    #[test]
    fn guess_rearms_secret() {
        let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
        let mut r = rng();
        env.queue_secrets([Secret::Addr(1), Secret::Addr(2)]);
        env.reset(&mut r);
        assert_eq!(env.secret(), Secret::Addr(1));
        let g = env.action_space().encode(Action::Guess(1)).unwrap();
        // A guess before triggering the victim is wrong and keeps the secret.
        let res = env.step(g, &mut r);
        assert_eq!(res.info.guessed, Some(false));
        assert_eq!(env.secret(), Secret::Addr(1));
        // Trigger, then guess: correct, and the next secret is armed.
        env.step(
            env.action_space().encode(Action::TriggerVictim).unwrap(),
            &mut r,
        );
        let res = env.step(g, &mut r);
        assert_eq!(res.info.guessed, Some(true));
        assert_eq!(env.secret(), Secret::Addr(2));
    }

    #[test]
    fn no_guess_penalty_applied() {
        let mut cfg = MultiGuessConfig::fig3_baseline();
        cfg.episode_len = 8;
        cfg.no_guess_penalty = -5.0;
        let mut env = MultiGuessEnv::new(cfg).unwrap();
        let mut r = rng();
        env.reset(&mut r);
        let mut total = 0.0;
        loop {
            let res = env.step(0, &mut r);
            total += res.reward;
            if res.done {
                break;
            }
        }
        assert!(
            total < -5.0 + 0.5,
            "total {total} must include no-guess penalty"
        );
    }

    #[test]
    fn svm_penalty_marks_detection() {
        // Train a trivial SVM that flags anything with cyclic activity.
        let features = CycloneFeatures::new(4);
        let data = vec![
            (vec![0.0, 0.0, 0.0, 0.0], -1i8),
            (vec![5.0, 5.0, 5.0, 5.0], 1i8),
            (vec![0.5, 0.0, 0.0, 0.0], -1i8),
            (vec![4.0, 6.0, 5.0, 4.0], 1i8),
        ];
        let svm = LinearSvm::train(&data, &SvmTrainConfig::default(), &mut rng());
        let mut cfg = MultiGuessConfig::fig3_baseline().with_svm(svm, features, -3.0);
        cfg.episode_len = 80;
        let mut env = MultiGuessEnv::new(cfg).unwrap();
        let mut r = rng();
        run_textbook(&mut env, &mut r);
        assert!(
            env.stats().svm_detected,
            "textbook PP must trip the toy SVM"
        );
    }

    #[test]
    fn in_loop_misscount_penalizes_without_terminating() {
        use autocat_detect::MonitorSpec;
        let mut cfg = MultiGuessConfig::fig3_baseline();
        cfg.base.detection = MonitorSpec::strict_miss();
        cfg.episode_len = 8;
        let mut env = MultiGuessEnv::new(cfg).unwrap();
        let mut r = rng();
        env.queue_secrets([Secret::Addr(0)]);
        env.reset(&mut r);
        // Evict the victim's line (addr 4 shares set 0), then trigger: the
        // victim misses, the in-loop monitor adds the detection penalty,
        // and the fixed-length episode continues.
        env.step(
            env.action_space().encode(Action::Access(4)).unwrap(),
            &mut r,
        );
        let res = env.step(
            env.action_space().encode(Action::TriggerVictim).unwrap(),
            &mut r,
        );
        assert!(res.info.detected, "victim miss must be flagged in-loop");
        assert!(
            res.reward <= env.config().base.rewards.detection,
            "reward {} must include the detection penalty",
            res.reward
        );
        assert!(!res.done, "fixed-length episodes are penalized, not cut");
    }

    #[test]
    fn hardware_backend_rejected() {
        let mut cfg = MultiGuessConfig::fig3_baseline();
        cfg.base.cache = CacheSpec::Hardware(crate::hardware::HardwareProfile::SkylakeL1);
        assert!(MultiGuessEnv::new(cfg).is_err());
    }
}
