//! # AutoCAT — RL for automated exploration of cache-timing attacks
//!
//! A from-scratch Rust reproduction of *"AutoCAT: Reinforcement Learning
//! for Automated Exploration of Cache-Timing Attacks"* (HPCA 2023).
//!
//! AutoCAT frames a cache-timing attack as a guessing game: an RL agent
//! controls the attack program (accesses, flushes, victim triggers) against
//! a cache holding a victim secret, and is rewarded for guessing the secret
//! in few steps. Trained with PPO, the agent rediscovers prime+probe,
//! flush+reload, evict+reload and replacement-state attacks across cache
//! configurations, learns to bypass detectors, and discovered the
//! `StealthyStreamline` attack.
//!
//! This crate is the facade: it re-exports the substrate crates and offers
//! the high-level [`Explorer`] API.
//!
//! ```no_run
//! use autocat::{Explorer, gym::EnvConfig};
//!
//! // Explore attacks on the paper's Table IV config 6 (flush+reload).
//! let report = Explorer::new(EnvConfig::flush_reload_fa4())
//!     .seed(7)
//!     .max_steps(300_000)
//!     .run()
//!     .expect("valid configuration");
//! println!("found: {} ({})", report.sequence_notation, report.category);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`cache`] | cache simulator: policies, prefetchers, hierarchy, PL locking |
//! | [`detect`] | CC-Hunter autocorrelation, Cyclone SVM, miss-count detectors |
//! | [`gym`] | the guessing-game environments + simulated hardware backend |
//! | [`nn`] | matrices, manual-backprop layers, MLP/Transformer, Adam |
//! | [`ppo`] | the PPO trainer, evaluation, deterministic replay |
//! | [`attacks`] | textbook attacks, classifier, covert-channel model, search |
//!
//! The sibling `autocat-scenario` crate (which layers on top of this
//! facade) adds the declarative scenario registry and TOML/JSON scenario
//! files; its `scenario-run` harness drives [`Explorer`] from data.

pub use autocat_attacks as attacks;
pub use autocat_cache as cache;
pub use autocat_detect as detect;
pub use autocat_gym as gym;
pub use autocat_nn as nn;
pub use autocat_ppo as ppo;

use autocat_attacks::classify::{classify_sequence, AttackCategory};
use autocat_gym::{Action, CacheGuessingGame, EnvConfig};
use autocat_ppo::{eval, Backbone, PpoConfig, Trainer};

/// The outcome of one exploration run.
#[derive(Clone, Debug)]
pub struct ExplorationReport {
    /// The attack sequence found by deterministic replay (action indices).
    pub sequence: Vec<Action>,
    /// The sequence in the paper's notation (`f0 -> v -> 0 -> g`).
    pub sequence_notation: String,
    /// Heuristic attack category (the paper's "attack analysis").
    pub category: AttackCategory,
    /// Guess accuracy (correct / episodes) over the evaluation episodes.
    pub accuracy: f64,
    /// Fraction of evaluation episodes terminated by a detector (the
    /// Sec. V-D defense metric).
    pub detection_rate: f64,
    /// Evaluation episodes behind the two rates above.
    pub eval_episodes: usize,
    /// Environment steps spent training.
    pub training_steps: u64,
    /// Paper-style epochs (3000 steps each) to convergence, if converged.
    pub epochs_to_converge: Option<f64>,
    /// Average episode length at the end of training.
    pub episode_length: f32,
    /// Whether training met the convergence criterion.
    pub converged: bool,
}

/// High-level exploration driver: train PPO on a guessing-game
/// configuration, extract the attack by deterministic replay, evaluate its
/// accuracy and classify it.
#[derive(Clone, Debug)]
pub struct Explorer {
    config: EnvConfig,
    backbone: Backbone,
    ppo: PpoConfig,
    lanes: Option<usize>,
    shards: Option<usize>,
    seed: u64,
    max_steps: u64,
    return_threshold: f32,
    eval_episodes: usize,
}

impl Explorer {
    /// Creates an explorer with the hyper-parameters validated on the
    /// paper's small cache configurations.
    pub fn new(config: EnvConfig) -> Self {
        Self {
            config,
            backbone: Backbone::Mlp {
                hidden: vec![64, 64],
            },
            ppo: PpoConfig::small_env(),
            lanes: None,
            shards: None,
            seed: 0,
            max_steps: 400_000,
            return_threshold: 0.85,
            eval_episodes: 200,
        }
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of parallel rollout lanes (`VecEnv` width). One lane
    /// (the default) reproduces the scalar training path bit-for-bit;
    /// more lanes batch the policy forwards and parallelize stepping.
    /// Takes effect regardless of builder-call order: it overrides the
    /// `num_lanes` of any [`PpoConfig`] passed to [`Explorer::ppo`].
    pub fn lanes(mut self, lanes: usize) -> Self {
        self.lanes = Some(lanes.max(1));
        self
    }

    /// Sets the number of data-parallel gradient shards per minibatch
    /// (`PpoConfig::grad_shards`). One shard (the default) is the
    /// historical single-threaded update; more shards split each
    /// minibatch's forward/backward across the rayon pool with a
    /// fixed-order reduction that keeps training bit-identical for every
    /// thread count. Overrides any [`PpoConfig`] passed to
    /// [`Explorer::ppo`], like [`Explorer::lanes`].
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = Some(shards.max(1));
        self
    }

    /// Sets the training-step budget.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Sets the network backbone.
    pub fn backbone(mut self, backbone: Backbone) -> Self {
        self.backbone = backbone;
        self
    }

    /// Sets the PPO hyper-parameters.
    pub fn ppo(mut self, ppo: PpoConfig) -> Self {
        self.ppo = ppo;
        self
    }

    /// Sets the trailing-average-return threshold treated as convergence.
    pub fn return_threshold(mut self, threshold: f32) -> Self {
        self.return_threshold = threshold;
        self
    }

    /// Sets the number of evaluation episodes. Evaluation always runs on
    /// the canonical `eval::EVAL_LANES` batched width (shared with the
    /// sweep report), independent of the training lane count.
    pub fn eval_episodes(mut self, episodes: usize) -> Self {
        self.eval_episodes = episodes;
        self
    }

    /// Trains, evaluates, extracts and classifies.
    ///
    /// # Errors
    ///
    /// Returns an error if the environment configuration is invalid.
    pub fn run(self) -> Result<ExplorationReport, String> {
        let env = CacheGuessingGame::new(self.config.clone())?;
        let mut ppo = self.ppo;
        if let Some(lanes) = self.lanes {
            ppo.num_lanes = lanes;
        }
        if let Some(shards) = self.shards {
            ppo.grad_shards = shards;
        }
        let mut trainer = Trainer::new(env, self.backbone, ppo, self.seed);
        let result = trainer.train_until(self.return_threshold, self.max_steps);
        // Evaluate with sampling (matters on stochastic caches) on the
        // canonical EVAL_LANES width — the same sampling plan the sweep
        // report uses, so both front ends report identical statistics for
        // identical policies — then extract the canonical sequence by
        // greedy replay.
        let (env, net, rng) = trainer.parts_mut();
        let stats =
            eval::evaluate_batched(&*env, net, self.eval_episodes, eval::EVAL_LANES, false, rng)
                .stats;
        let seq = eval::extract_sequence(env, net, rng);
        let actions: Vec<Action> = seq
            .actions
            .iter()
            .map(|&i| env.action_space().decode(i))
            .collect();
        let notation = actions
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" -> ");
        let category = classify_sequence(&actions, env.config());
        Ok(ExplorationReport {
            sequence: actions,
            sequence_notation: notation,
            category,
            accuracy: stats.accuracy(),
            detection_rate: stats.detection_rate(),
            eval_episodes: stats.episodes,
            training_steps: result.total_steps,
            epochs_to_converge: result.converged_at_epochs,
            episode_length: result.final_avg_length,
            converged: result.converged_at_steps.is_some(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explorer_builder_round_trips() {
        let e = Explorer::new(EnvConfig::flush_reload_fa4())
            .seed(3)
            .max_steps(1000)
            .return_threshold(0.5)
            .lanes(6)
            .eval_episodes(10);
        assert_eq!(e.seed, 3);
        assert_eq!(e.max_steps, 1000);
        assert_eq!(e.eval_episodes, 10);
        assert_eq!(e.lanes, Some(6));
    }

    #[test]
    fn lanes_survive_a_later_ppo_override() {
        // .lanes() must win regardless of builder-call order.
        let e = Explorer::new(EnvConfig::flush_reload_fa4())
            .lanes(4)
            .ppo(PpoConfig::small_env());
        assert_eq!(e.lanes, Some(4));
        assert_eq!(e.ppo.num_lanes, 1, "merged only at run()");
    }

    #[test]
    fn multi_lane_exploration_completes() {
        // The vectorized engine must run the full pipeline end to end.
        let report = Explorer::new(EnvConfig::flush_reload_fa4().with_window(8))
            .lanes(4)
            .max_steps(2048)
            .ppo(PpoConfig {
                horizon: 512,
                ..PpoConfig::small_env()
            })
            .run()
            .unwrap();
        assert!(!report.sequence.is_empty());
        assert!(report.training_steps >= 2048);
    }

    #[test]
    fn invalid_config_is_reported() {
        let mut cfg = EnvConfig::flush_reload_fa4();
        cfg.window_size = 1;
        assert!(Explorer::new(cfg).run().is_err());
    }

    #[test]
    fn tiny_budget_run_completes_without_convergence() {
        // A minimal budget exercises the full pipeline (train → evaluate →
        // extract → classify) without waiting for convergence.
        let report = Explorer::new(EnvConfig::flush_reload_fa4().with_window(8))
            .max_steps(2048)
            .ppo(PpoConfig {
                horizon: 512,
                ..PpoConfig::small_env()
            })
            .run()
            .unwrap();
        assert!(!report.sequence.is_empty());
        assert!(report.training_steps >= 2048);
        assert!(!report.sequence_notation.is_empty());
    }
}
