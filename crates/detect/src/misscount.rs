//! µarch-statistics detection based on victim cache misses (paper Sec. V-D).
//!
//! Most cache-timing attacks force the victim program to miss; hardware
//! performance counters can monitor the victim's hit rate and flag an attack
//! when misses exceed a threshold. The paper's RL experiment uses the
//! finest-grained version: "an attack is detected when the victim program's
//! access triggers a cache miss", which corresponds to `threshold = 1`.

use autocat_cache::{CacheEvent, Domain};
use serde::{Deserialize, Serialize};

/// Detector counting victim-program demand misses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissCountDetector {
    /// Number of victim misses at or above which an attack is signalled.
    pub threshold: u64,
    victim_misses: u64,
}

impl MissCountDetector {
    /// Creates a detector flagging at `threshold` victim misses.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: u64) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        Self {
            threshold,
            victim_misses: 0,
        }
    }

    /// The paper's configuration: any victim miss is an attack.
    pub fn strict() -> Self {
        Self::new(1)
    }

    /// Feeds one cache event.
    pub fn observe(&mut self, event: &CacheEvent) {
        if let CacheEvent::Access {
            domain: Domain::Victim,
            hit: false,
            ..
        } = event
        {
            self.victim_misses += 1;
        }
    }

    /// Feeds a batch of cache events.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a CacheEvent>) {
        for ev in events {
            self.observe(ev);
        }
    }

    /// Victim misses seen so far.
    pub fn victim_misses(&self) -> u64 {
        self.victim_misses
    }

    /// Whether the detector currently signals an attack.
    pub fn is_attack(&self) -> bool {
        self.victim_misses >= self.threshold
    }

    /// Clears the miss counter.
    pub fn reset(&mut self) {
        self.victim_misses = 0;
    }
}

impl Default for MissCountDetector {
    fn default() -> Self {
        Self::strict()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn victim_miss() -> CacheEvent {
        CacheEvent::Access {
            domain: Domain::Victim,
            addr: 0,
            set: 0,
            hit: false,
        }
    }

    fn victim_hit() -> CacheEvent {
        CacheEvent::Access {
            domain: Domain::Victim,
            addr: 0,
            set: 0,
            hit: true,
        }
    }

    fn attacker_miss() -> CacheEvent {
        CacheEvent::Access {
            domain: Domain::Attacker,
            addr: 0,
            set: 0,
            hit: false,
        }
    }

    #[test]
    fn strict_flags_first_victim_miss() {
        let mut d = MissCountDetector::strict();
        assert!(!d.is_attack());
        d.observe(&victim_miss());
        assert!(d.is_attack());
    }

    #[test]
    fn hits_and_attacker_misses_do_not_count() {
        let mut d = MissCountDetector::strict();
        d.observe(&victim_hit());
        d.observe(&attacker_miss());
        assert!(!d.is_attack());
        assert_eq!(d.victim_misses(), 0);
    }

    #[test]
    fn threshold_requires_that_many_misses() {
        let mut d = MissCountDetector::new(3);
        d.observe_all(&[victim_miss(), victim_miss()]);
        assert!(!d.is_attack());
        d.observe(&victim_miss());
        assert!(d.is_attack());
    }

    #[test]
    fn reset_clears_state() {
        let mut d = MissCountDetector::strict();
        d.observe(&victim_miss());
        d.reset();
        assert!(!d.is_attack());
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_panics() {
        let _ = MissCountDetector::new(0);
    }
}
