//! Cyclone-style cyclic-interference features (paper Sec. V-D).
//!
//! Cyclone tracks, per cache line *frame*, which security domains interfere
//! and counts *cyclic* interference `a ⇝ b ⇝ a`: domain `a`'s line is
//! evicted by `b`, whose line is then evicted back by `a` re-claiming the
//! frame. In a prime+probe loop the victim's secret line and the attacker's
//! primed line ping-pong through the same frame every round, while benign
//! co-runners conflict in bursts without tight address ping-pong. The
//! per-interval cyclic counts form the SVM's feature vector.

use autocat_cache::{CacheEvent, Domain};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Extracts Cyclone features from a cache event log.
///
/// The trace is split into `num_intervals` equal time intervals (by access
/// index); the feature vector holds the cyclic-interference count of each
/// interval.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CycloneFeatures {
    /// Number of intervals (feature dimension).
    pub num_intervals: usize,
    /// Maximum accesses between the two evictions of a ping-pong pair for
    /// it to count as cyclic (attacks reverse within one probe round;
    /// benign reversals straggle over full scan periods).
    pub proximity_window: usize,
}

impl CycloneFeatures {
    /// Creates an extractor with the given feature dimensionality.
    ///
    /// # Panics
    ///
    /// Panics if `num_intervals` is zero.
    pub fn new(num_intervals: usize) -> Self {
        assert!(num_intervals > 0, "need at least one interval");
        Self {
            num_intervals,
            proximity_window: 12,
        }
    }

    /// Overrides the proximity window.
    pub fn with_proximity_window(mut self, window: usize) -> Self {
        self.proximity_window = window;
        self
    }

    /// Counts cyclic interference events over the whole trace.
    pub fn total_cyclic(&self, events: &[CacheEvent]) -> usize {
        self.cyclic_marks(events).len()
    }

    /// Extracts the per-interval cyclic counts as a `num_intervals`-dim
    /// feature vector.
    pub fn extract(&self, events: &[CacheEvent]) -> Vec<f32> {
        let marks = self.cyclic_marks(events);
        let total_accesses = events
            .iter()
            .filter(|e| matches!(e, CacheEvent::Access { .. }))
            .count()
            .max(1);
        let mut features = vec![0.0f32; self.num_intervals];
        for access_idx in marks {
            let interval = (access_idx * self.num_intervals) / total_accesses;
            features[interval.min(self.num_intervals - 1)] += 1.0;
        }
        features
    }

    /// Positions (by access index) of cyclic-interference events: a
    /// cross-domain eviction whose `(evicted, incoming)` address pair is the
    /// reverse of the previous cross-domain eviction in the same set.
    fn cyclic_marks(&self, events: &[CacheEvent]) -> Vec<usize> {
        // Per set: the last cross-domain eviction (evicted, incoming,
        // evictor, access index). BTreeMap, not HashMap: this feeds SVM
        // feature vectors and through them detection verdicts in reports,
        // so lookups must never depend on hash order (lint rule D1).
        let mut last: BTreeMap<usize, (u64, u64, Domain, usize)> = BTreeMap::new();
        let mut marks = Vec::new();
        let mut access_idx = 0usize;
        for ev in events {
            match *ev {
                CacheEvent::Access { .. } => access_idx += 1,
                CacheEvent::Eviction {
                    victim_domain,
                    evictor_domain,
                    evicted_addr,
                    incoming_addr,
                    set,
                } => {
                    if victim_domain == evictor_domain
                        || victim_domain == Domain::Prefetcher
                        || evictor_domain == Domain::Prefetcher
                    {
                        continue;
                    }
                    if let Some(&(prev_evicted, prev_incoming, prev_evictor, prev_idx)) =
                        last.get(&set)
                    {
                        if prev_evictor != evictor_domain
                            && evicted_addr == prev_incoming
                            && incoming_addr == prev_evicted
                            && access_idx.saturating_sub(prev_idx) <= self.proximity_window
                        {
                            marks.push(access_idx.saturating_sub(1));
                        }
                    }
                    last.insert(
                        set,
                        (evicted_addr, incoming_addr, evictor_domain, access_idx),
                    );
                }
                CacheEvent::Flush { .. } => {}
            }
        }
        marks
    }
}

impl Default for CycloneFeatures {
    fn default() -> Self {
        Self::new(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn access(domain: Domain, addr: u64) -> CacheEvent {
        CacheEvent::Access {
            domain,
            addr,
            set: (addr % 4) as usize,
            hit: false,
        }
    }

    fn eviction(
        victim_domain: Domain,
        evictor_domain: Domain,
        evicted: u64,
        incoming: u64,
        set: usize,
    ) -> CacheEvent {
        CacheEvent::Eviction {
            victim_domain,
            evictor_domain,
            evicted_addr: evicted,
            incoming_addr: incoming,
            set,
        }
    }

    #[test]
    fn detects_ping_pong_pair() {
        // Victim's addr 1 evicts attacker's 5 in set 1, attacker's 5 evicts
        // 1 back: cyclic interference.
        let events = vec![
            access(Domain::Victim, 1),
            eviction(Domain::Attacker, Domain::Victim, 5, 1, 1),
            access(Domain::Attacker, 5),
            eviction(Domain::Victim, Domain::Attacker, 1, 5, 1),
        ];
        assert_eq!(CycloneFeatures::default().total_cyclic(&events), 1);
    }

    #[test]
    fn one_directional_evictions_are_not_cyclic() {
        // Attacker sweeping over the victim's data: A evicts V repeatedly
        // with fresh addresses (benign-sweep shape).
        let events = vec![
            eviction(Domain::Victim, Domain::Attacker, 0, 4, 0),
            eviction(Domain::Victim, Domain::Attacker, 4, 8, 0),
            eviction(Domain::Victim, Domain::Attacker, 8, 12, 0),
        ];
        assert_eq!(CycloneFeatures::default().total_cyclic(&events), 0);
    }

    #[test]
    fn alternating_domains_without_pair_reversal_not_cyclic() {
        // Domains alternate but the address pairs move on (streaming).
        let events = vec![
            eviction(Domain::Attacker, Domain::Victim, 4, 1, 1),
            eviction(Domain::Victim, Domain::Attacker, 2, 6, 1),
            eviction(Domain::Attacker, Domain::Victim, 7, 3, 1),
        ];
        assert_eq!(CycloneFeatures::default().total_cyclic(&events), 0);
    }

    #[test]
    fn same_domain_evictions_ignored() {
        let events = vec![
            eviction(Domain::Attacker, Domain::Attacker, 0, 4, 0),
            eviction(Domain::Attacker, Domain::Attacker, 4, 0, 0),
        ];
        assert_eq!(CycloneFeatures::default().total_cyclic(&events), 0);
    }

    #[test]
    fn cycles_tracked_per_set() {
        // Reversals land in different sets: no cycle.
        let events = vec![
            eviction(Domain::Attacker, Domain::Victim, 5, 1, 1),
            eviction(Domain::Victim, Domain::Attacker, 1, 5, 2),
        ];
        assert_eq!(CycloneFeatures::default().total_cyclic(&events), 0);
    }

    #[test]
    fn prime_probe_loop_generates_many_cycles() {
        // Each round: victim's line evicts the attacker's primed line; the
        // probe re-claims it.
        let mut events = Vec::new();
        for _ in 0..10 {
            events.push(access(Domain::Victim, 1));
            events.push(eviction(Domain::Attacker, Domain::Victim, 5, 1, 1));
            events.push(access(Domain::Attacker, 5));
            events.push(eviction(Domain::Victim, Domain::Attacker, 1, 5, 1));
        }
        let total = CycloneFeatures::default().total_cyclic(&events);
        assert!(total >= 19, "expected ~19 cycles, got {total}");
    }

    #[test]
    fn feature_vector_has_configured_dim_and_mass() {
        let mut events = Vec::new();
        for _ in 0..10 {
            events.push(access(Domain::Victim, 1));
            events.push(eviction(Domain::Attacker, Domain::Victim, 5, 1, 1));
            events.push(access(Domain::Attacker, 5));
            events.push(eviction(Domain::Victim, Domain::Attacker, 1, 5, 1));
        }
        let fx = CycloneFeatures::new(4);
        let features = fx.extract(&events);
        assert_eq!(features.len(), 4);
        let sum: f32 = features.iter().sum();
        assert_eq!(sum as usize, fx.total_cyclic(&events));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let features = CycloneFeatures::default().extract(&[]);
        assert!(features.iter().all(|&f| f == 0.0));
    }

    #[test]
    fn prefetcher_evictions_ignored() {
        let events = vec![
            eviction(Domain::Attacker, Domain::Victim, 5, 1, 1),
            eviction(Domain::Victim, Domain::Prefetcher, 1, 5, 1),
            eviction(Domain::Attacker, Domain::Victim, 5, 1, 1),
        ];
        assert_eq!(CycloneFeatures::default().total_cyclic(&events), 0);
    }
}
