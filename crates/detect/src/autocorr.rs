//! Autocorrelation-based detection (CC-Hunter, paper Sec. V-D).
//!
//! CC-Hunter encodes the two kinds of cross-domain conflict misses into a
//! binary event train — the victim evicting the attacker (`V→A`, encoded 0)
//! and the attacker evicting the victim (`A→V`, encoded 1) — and flags an
//! attack when the train's autocorrelation exceeds a threshold at any lag
//! `1 ≤ p ≤ P`.

use autocat_cache::{CacheEvent, Domain};
use serde::{Deserialize, Serialize};

/// A binary train of cross-domain conflict-miss events.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventTrain {
    events: Vec<u8>,
}

impl EventTrain {
    /// Creates an empty train.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a train from a cache event log, keeping only cross-domain
    /// conflict misses: `V→A` encodes 0, `A→V` encodes 1 (paper Fig. 3).
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a CacheEvent>) -> Self {
        let mut train = Self::new();
        for ev in events {
            train.observe(ev);
        }
        train
    }

    /// Feeds one cache event; conflict misses are appended to the train.
    pub fn observe(&mut self, event: &CacheEvent) {
        if let Some((victim_domain, evictor_domain)) = event.as_conflict_miss() {
            match (victim_domain, evictor_domain) {
                // Attacker's line evicted by the victim: V→A, encoded 0.
                (Domain::Attacker, Domain::Victim) => self.events.push(0),
                // Victim's line evicted by the attacker: A→V, encoded 1.
                (Domain::Victim, Domain::Attacker) => self.events.push(1),
                _ => {}
            }
        }
    }

    /// The raw binary train.
    pub fn as_slice(&self) -> &[u8] {
        &self.events
    }

    /// Number of recorded conflict events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the train is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Autocorrelation coefficient at lag `p`, using the paper's estimator:
    ///
    /// `C_p = n * Σ_{i=0}^{n-p} (X_i - X̄)(X_{i+p} - X̄)
    ///        / ((n-p) * Σ_{i=0}^{n} (X_i - X̄)²)`.
    ///
    /// Returns 0 when the train is constant or shorter than `p + 2`.
    pub fn autocorrelation(&self, p: usize) -> f64 {
        let n = self.events.len();
        if n < p + 2 {
            return 0.0;
        }
        let mean = self.events.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
        let denom: f64 = self.events.iter().map(|&x| (x as f64 - mean).powi(2)).sum();
        if denom == 0.0 {
            return 0.0;
        }
        let num: f64 = (0..n - p)
            .map(|i| (self.events[i] as f64 - mean) * (self.events[i + p] as f64 - mean))
            .sum();
        (n as f64 * num) / ((n - p) as f64 * denom)
    }

    /// The full autocorrelogram for lags `0..=max_lag`.
    pub fn autocorrelogram(&self, max_lag: usize) -> Vec<f64> {
        (0..=max_lag).map(|p| self.autocorrelation(p)).collect()
    }

    /// Maximum autocorrelation over lags `1..=max_lag`.
    pub fn max_autocorrelation(&self, max_lag: usize) -> f64 {
        (1..=max_lag)
            .map(|p| self.autocorrelation(p))
            .fold(f64::NEG_INFINITY, f64::max)
            .max(0.0)
    }
}

/// CC-Hunter-style detector: flags an attack when the event train's
/// autocorrelation exceeds `threshold` at any lag `1..=max_lag`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AutocorrDetector {
    /// Detection threshold on `C_p` (the paper uses 0.75).
    pub threshold: f64,
    /// Maximum lag `P` examined.
    pub max_lag: usize,
    train: EventTrain,
}

impl AutocorrDetector {
    /// Creates a detector with the paper's parameters (threshold 0.75,
    /// lags up to `max_lag`).
    pub fn new(threshold: f64, max_lag: usize) -> Self {
        Self {
            threshold,
            max_lag,
            train: EventTrain::new(),
        }
    }

    /// Feeds cache events.
    pub fn observe_all<'a>(&mut self, events: impl IntoIterator<Item = &'a CacheEvent>) {
        for ev in events {
            self.train.observe(ev);
        }
    }

    /// The accumulated event train.
    pub fn train(&self) -> &EventTrain {
        &self.train
    }

    /// Whether the accumulated train is classified as an attack.
    pub fn is_attack(&self) -> bool {
        self.train.max_autocorrelation(self.max_lag) > self.threshold
    }

    /// Maximum autocorrelation of the accumulated train.
    pub fn max_autocorrelation(&self) -> f64 {
        self.train.max_autocorrelation(self.max_lag)
    }

    /// Clears the accumulated train.
    pub fn reset(&mut self) {
        self.train = EventTrain::new();
    }
}

impl Default for AutocorrDetector {
    fn default() -> Self {
        Self::new(0.75, 30)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_from_bits(bits: &[u8]) -> EventTrain {
        EventTrain {
            events: bits.to_vec(),
        }
    }

    #[test]
    fn periodic_train_has_high_autocorrelation() {
        // A strictly alternating 0,1,0,1,... train: C_2 should be ~1.
        let bits: Vec<u8> = (0..64).map(|i| (i % 2) as u8).collect();
        let train = train_from_bits(&bits);
        assert!(
            train.autocorrelation(2) > 0.9,
            "C_2 = {}",
            train.autocorrelation(2)
        );
        assert!(train.autocorrelation(1) < -0.9);
        assert!(train.max_autocorrelation(10) > 0.9);
    }

    #[test]
    fn prime_probe_like_train_is_periodic() {
        // Prime+probe on a 4-line region: one V→A (0) then four A→V (1)s,
        // repeated — strong periodicity at lag 5.
        let mut bits = Vec::new();
        for _ in 0..16 {
            bits.push(0);
            bits.extend_from_slice(&[1, 1, 1, 1]);
        }
        let train = train_from_bits(&bits);
        assert!(
            train.autocorrelation(5) > 0.75,
            "C_5 = {}",
            train.autocorrelation(5)
        );
    }

    #[test]
    fn random_train_has_low_autocorrelation() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let bits: Vec<u8> = (0..512).map(|_| rng.gen_range(0..=1) as u8).collect();
        let train = train_from_bits(&bits);
        assert!(
            train.max_autocorrelation(30) < 0.3,
            "max C = {}",
            train.max_autocorrelation(30)
        );
    }

    #[test]
    fn constant_train_is_not_flagged() {
        let train = train_from_bits(&[1; 100]);
        assert_eq!(train.max_autocorrelation(10), 0.0);
    }

    #[test]
    fn short_train_returns_zero() {
        let train = train_from_bits(&[0, 1]);
        assert_eq!(train.autocorrelation(5), 0.0);
    }

    #[test]
    fn detector_flags_periodic_not_random() {
        let mut bits = Vec::new();
        for _ in 0..20 {
            bits.push(0u8);
            bits.extend_from_slice(&[1, 1, 1]);
        }
        let mut det = AutocorrDetector {
            train: train_from_bits(&bits),
            ..Default::default()
        };
        assert!(det.is_attack());
        det.reset();
        assert!(!det.is_attack());
    }

    #[test]
    fn observe_encodes_directions() {
        use autocat_cache::{CacheEvent, Domain};
        let mut train = EventTrain::new();
        train.observe(&CacheEvent::Eviction {
            victim_domain: Domain::Victim,
            evictor_domain: Domain::Attacker,
            evicted_addr: 0,
            incoming_addr: 4,
            set: 0,
        });
        train.observe(&CacheEvent::Eviction {
            victim_domain: Domain::Attacker,
            evictor_domain: Domain::Victim,
            evicted_addr: 4,
            incoming_addr: 0,
            set: 0,
        });
        assert_eq!(train.as_slice(), &[1, 0]);
    }

    #[test]
    fn autocorrelogram_starts_at_one() {
        let bits: Vec<u8> = (0..32).map(|i| (i % 2) as u8).collect();
        let gram = train_from_bits(&bits).autocorrelogram(5);
        assert!((gram[0] - 1.0).abs() < 1e-9);
        assert_eq!(gram.len(), 6);
    }
}
