//! The public in-loop detection boundary: the [`Monitor`] trait.
//!
//! The guessing-game environments guard episodes with a monitor: every
//! [`CacheEvent`] the backend emits is fed to [`Monitor::observe`], and an
//! [`Verdict::Attack`] terminates (or penalizes) the episode. All three
//! paper detectors implement the trait, [`CompositeMonitor`] stacks any
//! number of them, and [`MonitorSpec`] is the serializable description a
//! scenario file uses to pick one.

use crate::autocorr::AutocorrDetector;
use crate::cyclone::CycloneFeatures;
use crate::misscount::MissCountDetector;
use crate::svm::LinearSvm;
use autocat_cache::CacheEvent;
use serde::{Deserialize, Serialize};

/// A monitor's judgement after observing one event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Nothing suspicious about this event.
    Clean,
    /// This event pushed the monitor over its detection threshold.
    Attack,
}

impl Verdict {
    /// Whether this verdict signals an attack.
    pub fn is_attack(self) -> bool {
        self == Verdict::Attack
    }
}

/// An object-safe in-loop detector.
///
/// `observe` returns the verdict *attributable to the observed event*: a
/// monitor that is already past its threshold keeps returning
/// [`Verdict::Clean`] for events that do not themselves trip it, so an
/// environment can penalize per offending event rather than per step.
/// [`Monitor::score`] exposes the detector's running statistic (miss
/// count, max autocorrelation, SVM decision value) for reporting, and
/// [`Monitor::reset`] clears all accumulated state for a new episode:
///
/// ```
/// use autocat_cache::{CacheEvent, Domain};
/// use autocat_detect::{MissCountDetector, Monitor, Verdict};
///
/// let miss = |domain| CacheEvent::Access { domain, addr: 0, set: 0, hit: false };
/// let mut monitor: Box<dyn Monitor> = Box::new(MissCountDetector::new(2));
///
/// // Attacker misses never implicate the victim's hit rate.
/// assert_eq!(monitor.observe(&miss(Domain::Attacker)), Verdict::Clean);
/// // The first victim miss is below the threshold of 2...
/// assert_eq!(monitor.observe(&miss(Domain::Victim)), Verdict::Clean);
/// // ...the second trips it, and the verdict blames exactly that event.
/// assert_eq!(monitor.observe(&miss(Domain::Victim)), Verdict::Attack);
/// assert!(monitor.observe(&miss(Domain::Victim)).is_attack());
/// assert_eq!(monitor.score(), 3.0, "running statistic: victim misses seen");
///
/// // A new episode starts clean.
/// monitor.reset();
/// assert_eq!(monitor.score(), 0.0);
/// assert_eq!(monitor.observe(&miss(Domain::Victim)), Verdict::Clean);
/// ```
pub trait Monitor: std::fmt::Debug + Send {
    /// Feeds one cache event, returning the verdict it triggers.
    fn observe(&mut self, event: &CacheEvent) -> Verdict;

    /// Clears accumulated state for a new episode.
    fn reset(&mut self);

    /// The detector's running score (higher = more attack-like).
    fn score(&self) -> f64;

    /// Short human-readable detector name.
    fn name(&self) -> &'static str;

    /// Clones the monitor behind a fresh box (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn Monitor>;
}

impl Clone for Box<dyn Monitor> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl Monitor for MissCountDetector {
    /// Flags every victim-program demand miss at or past the threshold
    /// (µarch-statistics detection, paper Sec. V-D).
    fn observe(&mut self, event: &CacheEvent) -> Verdict {
        let before = self.victim_misses();
        MissCountDetector::observe(self, event);
        if self.victim_misses() > before && self.is_attack() {
            Verdict::Attack
        } else {
            Verdict::Clean
        }
    }

    fn reset(&mut self) {
        MissCountDetector::reset(self);
    }

    fn score(&self) -> f64 {
        self.victim_misses() as f64
    }

    fn name(&self) -> &'static str {
        "miss-count"
    }

    fn box_clone(&self) -> Box<dyn Monitor> {
        Box::new(self.clone())
    }
}

impl Monitor for AutocorrDetector {
    /// Flags a cross-domain conflict miss that lifts the event train's
    /// autocorrelation past the threshold (CC-Hunter, paper Sec. V-D).
    fn observe(&mut self, event: &CacheEvent) -> Verdict {
        let before = self.train().len();
        self.observe_all(std::iter::once(event));
        if self.train().len() > before && self.is_attack() {
            Verdict::Attack
        } else {
            Verdict::Clean
        }
    }

    fn reset(&mut self) {
        AutocorrDetector::reset(self);
    }

    fn score(&self) -> f64 {
        self.max_autocorrelation()
    }

    fn name(&self) -> &'static str {
        "cc-hunter-autocorr"
    }

    fn box_clone(&self) -> Box<dyn Monitor> {
        Box::new(self.clone())
    }
}

/// Cyclone's cyclic-interference features fed to a linear SVM, packaged as
/// an in-loop [`Monitor`] (paper Sec. V-D).
///
/// Events are buffered for the episode; the SVM is re-evaluated on every
/// eviction event (the only events that add cyclic-interference marks).
#[derive(Clone, Debug)]
pub struct CycloneSvmMonitor {
    svm: LinearSvm,
    features: CycloneFeatures,
    events: Vec<CacheEvent>,
}

impl CycloneSvmMonitor {
    /// Wraps a trained SVM and a matching feature extractor.
    pub fn new(svm: LinearSvm, features: CycloneFeatures) -> Self {
        Self {
            svm,
            features,
            events: Vec::new(),
        }
    }

    /// The SVM decision value over the events observed so far.
    pub fn decision(&self) -> f32 {
        self.svm.decision(&self.features.extract(&self.events))
    }

    /// Whether the accumulated trace classifies as an attack.
    pub fn is_attack(&self) -> bool {
        self.svm.predict(&self.features.extract(&self.events)) == 1
    }
}

impl Monitor for CycloneSvmMonitor {
    fn observe(&mut self, event: &CacheEvent) -> Verdict {
        self.events.push(*event);
        if matches!(event, CacheEvent::Eviction { .. }) && self.is_attack() {
            Verdict::Attack
        } else {
            Verdict::Clean
        }
    }

    fn reset(&mut self) {
        self.events.clear();
    }

    fn score(&self) -> f64 {
        f64::from(self.decision())
    }

    fn name(&self) -> &'static str {
        "cyclone-svm"
    }

    fn box_clone(&self) -> Box<dyn Monitor> {
        Box::new(self.clone())
    }
}

/// Stacks several monitors: any member flagging an event flags the stack.
#[derive(Clone, Debug, Default)]
pub struct CompositeMonitor {
    monitors: Vec<Box<dyn Monitor>>,
}

impl CompositeMonitor {
    /// Builds a stack from already-boxed monitors.
    pub fn new(monitors: Vec<Box<dyn Monitor>>) -> Self {
        Self { monitors }
    }

    /// Adds a monitor to the stack.
    pub fn push(&mut self, monitor: Box<dyn Monitor>) {
        self.monitors.push(monitor);
    }

    /// The stacked monitors.
    pub fn members(&self) -> &[Box<dyn Monitor>] {
        &self.monitors
    }
}

impl Monitor for CompositeMonitor {
    fn observe(&mut self, event: &CacheEvent) -> Verdict {
        let mut verdict = Verdict::Clean;
        for m in &mut self.monitors {
            if m.observe(event).is_attack() {
                verdict = Verdict::Attack;
            }
        }
        verdict
    }

    fn reset(&mut self) {
        for m in &mut self.monitors {
            m.reset();
        }
    }

    /// The maximum member score (0.0 for an empty stack; negative member
    /// scores such as benign SVM decision values are preserved).
    fn score(&self) -> f64 {
        if self.monitors.is_empty() {
            return 0.0;
        }
        self.monitors
            .iter()
            .map(|m| m.score())
            .fold(f64::NEG_INFINITY, f64::max)
    }

    fn name(&self) -> &'static str {
        "composite"
    }

    fn box_clone(&self) -> Box<dyn Monitor> {
        Box::new(self.clone())
    }
}

/// Serializable description of an in-loop monitor (what scenario files
/// store). [`MonitorSpec::build`] instantiates the described detector.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum MonitorSpec {
    /// No in-loop detection.
    #[default]
    Off,
    /// µarch-statistics detection: flag when the victim program's demand
    /// misses reach `threshold` (the paper uses 1).
    VictimMiss {
        /// Victim misses at or above which an attack is signalled.
        threshold: u64,
    },
    /// CC-Hunter autocorrelation over the conflict-miss event train.
    Autocorr {
        /// Detection threshold on the autocorrelation coefficient.
        threshold: f64,
        /// Maximum lag examined.
        max_lag: usize,
    },
    /// Cyclone cyclic-interference features through a linear SVM with the
    /// given (pre-trained) weights.
    CycloneSvm {
        /// SVM weight vector (one weight per feature interval).
        w: Vec<f32>,
        /// SVM bias.
        b: f32,
        /// Feature dimensionality (trace intervals).
        num_intervals: usize,
        /// Cyclic-interference proximity window.
        proximity_window: usize,
    },
    /// A stack of monitors; any member flagging flags the stack.
    Composite(
        /// Member specifications.
        Vec<MonitorSpec>,
    ),
}

impl MonitorSpec {
    /// The paper's strictest µarch-statistics detector: any victim miss is
    /// an attack.
    pub fn strict_miss() -> Self {
        MonitorSpec::VictimMiss { threshold: 1 }
    }

    /// CC-Hunter with the paper's parameters (threshold 0.75, lags ≤ 30).
    pub fn cc_hunter() -> Self {
        MonitorSpec::Autocorr {
            threshold: 0.75,
            max_lag: 30,
        }
    }

    /// Whether this spec describes "no detection".
    pub fn is_off(&self) -> bool {
        match self {
            MonitorSpec::Off => true,
            MonitorSpec::Composite(members) => members.iter().all(MonitorSpec::is_off),
            _ => false,
        }
    }

    /// Checks the spec for values [`MonitorSpec::build`] cannot honor, so
    /// malformed scenario files fail at configuration time instead of
    /// panicking mid-training.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            MonitorSpec::Off => Ok(()),
            MonitorSpec::VictimMiss { threshold } => {
                if *threshold == 0 {
                    Err("victim-miss threshold must be positive".into())
                } else {
                    Ok(())
                }
            }
            MonitorSpec::Autocorr { threshold, max_lag } => {
                if *max_lag == 0 {
                    Err("autocorr max_lag must be positive".into())
                } else if !(*threshold > 0.0 && *threshold <= 1.0) {
                    // Autocorrelation coefficients are bounded in [-1, 1];
                    // anything outside (0, 1] flags everything or nothing.
                    Err(format!(
                        "autocorr threshold must be in (0, 1], got {threshold}"
                    ))
                } else {
                    Ok(())
                }
            }
            MonitorSpec::CycloneSvm {
                w, num_intervals, ..
            } => {
                if *num_intervals == 0 {
                    Err("cyclone-svm num_intervals must be positive".into())
                } else if w.len() != *num_intervals {
                    Err(format!(
                        "cyclone-svm weight vector has {} entries but num_intervals is {}",
                        w.len(),
                        num_intervals
                    ))
                } else {
                    Ok(())
                }
            }
            MonitorSpec::Composite(members) => members.iter().try_for_each(MonitorSpec::validate),
        }
    }

    /// Instantiates the described monitor (`None` when off).
    ///
    /// Call [`MonitorSpec::validate`] first for a graceful error: building
    /// an invalid spec clamps or panics (e.g. an SVM weight/interval
    /// mismatch panics on the first evaluated event).
    pub fn build(&self) -> Option<Box<dyn Monitor>> {
        match self {
            MonitorSpec::Off => None,
            MonitorSpec::VictimMiss { threshold } => {
                Some(Box::new(MissCountDetector::new((*threshold).max(1))))
            }
            MonitorSpec::Autocorr { threshold, max_lag } => {
                Some(Box::new(AutocorrDetector::new(*threshold, *max_lag)))
            }
            MonitorSpec::CycloneSvm {
                w,
                b,
                num_intervals,
                proximity_window,
            } => Some(Box::new(CycloneSvmMonitor::new(
                LinearSvm {
                    w: w.clone(),
                    b: *b,
                },
                CycloneFeatures::new(*num_intervals).with_proximity_window(*proximity_window),
            ))),
            MonitorSpec::Composite(members) => {
                let built: Vec<Box<dyn Monitor>> =
                    members.iter().filter_map(MonitorSpec::build).collect();
                if built.is_empty() {
                    None
                } else {
                    Some(Box::new(CompositeMonitor::new(built)))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_cache::Domain;

    fn victim_miss() -> CacheEvent {
        CacheEvent::Access {
            domain: Domain::Victim,
            addr: 0,
            set: 0,
            hit: false,
        }
    }

    fn attacker_hit() -> CacheEvent {
        CacheEvent::Access {
            domain: Domain::Attacker,
            addr: 1,
            set: 0,
            hit: true,
        }
    }

    fn conflict(victim: Domain, evictor: Domain, evicted: u64, incoming: u64) -> CacheEvent {
        CacheEvent::Eviction {
            victim_domain: victim,
            evictor_domain: evictor,
            evicted_addr: evicted,
            incoming_addr: incoming,
            set: 0,
        }
    }

    #[test]
    fn misscount_monitor_flags_only_the_offending_event() {
        let mut m: Box<dyn Monitor> = Box::new(MissCountDetector::strict());
        assert_eq!(m.observe(&attacker_hit()), Verdict::Clean);
        assert_eq!(m.observe(&victim_miss()), Verdict::Attack);
        // Past the threshold, unrelated events stay clean...
        assert_eq!(m.observe(&attacker_hit()), Verdict::Clean);
        // ...but every further victim miss flags again.
        assert_eq!(m.observe(&victim_miss()), Verdict::Attack);
        assert_eq!(m.score(), 2.0);
        m.reset();
        assert_eq!(m.score(), 0.0);
    }

    #[test]
    fn autocorr_monitor_flags_periodic_conflict_train() {
        let mut m: Box<dyn Monitor> = Box::new(AutocorrDetector::new(0.7, 10));
        let mut flagged = false;
        // Strictly alternating A→V / V→A conflicts: maximal periodicity.
        for i in 0..40 {
            let ev = if i % 2 == 0 {
                conflict(Domain::Victim, Domain::Attacker, 0, 4)
            } else {
                conflict(Domain::Attacker, Domain::Victim, 4, 0)
            };
            flagged |= m.observe(&ev).is_attack();
        }
        assert!(
            flagged,
            "periodic train must trip CC-Hunter (C = {})",
            m.score()
        );
        assert!(m.score() > 0.7);
        // Non-conflict events never flag.
        assert_eq!(m.observe(&victim_miss()), Verdict::Clean);
    }

    #[test]
    fn composite_flags_when_any_member_flags() {
        let mut m = CompositeMonitor::new(vec![
            Box::new(AutocorrDetector::new(0.99, 5)),
            Box::new(MissCountDetector::new(2)),
        ]);
        assert_eq!(Monitor::observe(&mut m, &victim_miss()), Verdict::Clean);
        assert_eq!(Monitor::observe(&mut m, &victim_miss()), Verdict::Attack);
        assert_eq!(m.members().len(), 2);
        assert_eq!(Monitor::score(&m), 2.0, "max member score");
        Monitor::reset(&mut m);
        assert_eq!(Monitor::score(&m), 0.0);
    }

    #[test]
    fn cyclone_monitor_flags_ping_pong_with_biased_svm() {
        // An SVM that fires once any interval holds ≥ 2 cyclic marks.
        let svm = LinearSvm {
            w: vec![1.0; 4],
            b: -1.5,
        };
        let mut m = CycloneSvmMonitor::new(svm, CycloneFeatures::new(4));
        let mut flagged = false;
        for _ in 0..8 {
            flagged |= Monitor::observe(&mut m, &conflict(Domain::Victim, Domain::Attacker, 0, 4))
                .is_attack();
            flagged |= Monitor::observe(&mut m, &conflict(Domain::Attacker, Domain::Victim, 4, 0))
                .is_attack();
        }
        assert!(flagged, "tight ping-pong must trip the toy SVM");
        Monitor::reset(&mut m);
        assert!(!m.is_attack());
    }

    #[test]
    fn spec_builds_the_described_monitor() {
        assert!(MonitorSpec::Off.build().is_none());
        assert!(MonitorSpec::Off.is_off());
        assert!(MonitorSpec::Composite(vec![]).build().is_none());
        assert!(MonitorSpec::Composite(vec![MonitorSpec::Off]).is_off());
        let m = MonitorSpec::strict_miss().build().unwrap();
        assert_eq!(m.name(), "miss-count");
        let m = MonitorSpec::cc_hunter().build().unwrap();
        assert_eq!(m.name(), "cc-hunter-autocorr");
        let m = MonitorSpec::CycloneSvm {
            w: vec![0.5; 8],
            b: -1.0,
            num_intervals: 8,
            proximity_window: 12,
        }
        .build()
        .unwrap();
        assert_eq!(m.name(), "cyclone-svm");
        let m = MonitorSpec::Composite(vec![
            MonitorSpec::strict_miss(),
            MonitorSpec::cc_hunter(),
            MonitorSpec::Off,
        ])
        .build()
        .unwrap();
        assert_eq!(m.name(), "composite");
    }

    #[test]
    fn validate_rejects_unbuildable_specs() {
        assert!(MonitorSpec::Off.validate().is_ok());
        assert!(MonitorSpec::strict_miss().validate().is_ok());
        assert!(MonitorSpec::cc_hunter().validate().is_ok());
        assert!(MonitorSpec::VictimMiss { threshold: 0 }.validate().is_err());
        assert!(MonitorSpec::Autocorr {
            threshold: 0.75,
            max_lag: 0
        }
        .validate()
        .is_err());
        // Autocorrelation is bounded in [-1, 1]: a sign typo or an
        // impossible threshold must fail at configuration time.
        for threshold in [-0.75, 0.0, 1.5, f64::NAN] {
            assert!(
                MonitorSpec::Autocorr {
                    threshold,
                    max_lag: 30
                }
                .validate()
                .is_err(),
                "threshold {threshold} must be rejected"
            );
        }
        // SVM weight vector must match the feature dimensionality, or the
        // monitor would panic on its first evaluated event.
        let mismatched = MonitorSpec::CycloneSvm {
            w: vec![1.0; 4],
            b: -1.5,
            num_intervals: 8,
            proximity_window: 12,
        };
        assert!(mismatched.validate().unwrap_err().contains("4 entries"));
        // Composite validation recurses into members.
        assert!(
            MonitorSpec::Composite(vec![MonitorSpec::strict_miss(), mismatched])
                .validate()
                .is_err()
        );
    }

    #[test]
    fn boxed_monitor_clones_independently() {
        let mut a: Box<dyn Monitor> = Box::new(MissCountDetector::strict());
        a.observe(&victim_miss());
        let b = a.clone();
        a.observe(&victim_miss());
        assert_eq!(a.score(), 2.0);
        assert_eq!(b.score(), 1.0);
    }
}
