//! Synthetic benign workload generator.
//!
//! The paper trains its Cyclone SVM on SPEC2017 memory traces as the benign
//! class. Those traces are not available offline, so this module generates
//! synthetic benign co-running programs with realistic locality (sequential
//! scans, strided loops, small hot working sets and Zipf-like randoms),
//! interleaved on a shared cache. What the SVM consumes is only the
//! cyclic-interference feature vector, and benign programs — which touch
//! shared lines rarely and without tight ping-pong patterns — produce the
//! same low-cyclic-count contrast to attacks that SPEC traces do (see
//! DESIGN.md, substitution 3).

use autocat_cache::{Cache, CacheConfig, CacheEvent, Domain};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Access pattern of one benign program.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum BenignPattern {
    /// Sequential scan through a region.
    Sequential,
    /// Strided walk with the given stride.
    Strided(u64),
    /// Repeated loop over a small hot working set.
    HotLoop {
        /// Working-set size in lines.
        working_set: u64,
    },
    /// Zipf-like random access (low addresses are hot).
    ZipfRandom,
}

impl BenignPattern {
    /// Address at logical step `i` within a region of `region` lines.
    fn address(&self, i: u64, region: u64, rng: &mut impl Rng) -> u64 {
        match *self {
            BenignPattern::Sequential => i % region,
            BenignPattern::Strided(s) => (i * s.max(1)) % region,
            BenignPattern::HotLoop { working_set } => i % working_set.clamp(1, region),
            BenignPattern::ZipfRandom => {
                // Approximate Zipf: squash a uniform sample toward zero.
                let u: f64 = rng.gen_range(0.0f64..1.0);
                ((u * u) * region as f64) as u64 % region
            }
        }
    }
}

/// A pair of benign programs co-running on a shared cache.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenignWorkload {
    /// Pattern of the program mapped to the attacker domain slot.
    pub pattern_a: BenignPattern,
    /// Pattern of the program mapped to the victim domain slot.
    pub pattern_b: BenignPattern,
    /// Total number of accesses to generate.
    pub length: usize,
    /// Lines in each program's private region.
    pub region: u64,
    /// Probability an access goes to the small shared region (models shared
    /// libraries/data; benign sharing is sparse and unstructured).
    pub shared_prob: f64,
}

impl Default for BenignWorkload {
    fn default() -> Self {
        Self {
            pattern_a: BenignPattern::Sequential,
            pattern_b: BenignPattern::HotLoop { working_set: 10 },
            length: 256,
            region: 64,
            shared_prob: 0.02,
        }
    }
}

/// All pattern combinations used to build a diverse benign training set.
pub fn benign_pattern_suite() -> Vec<(BenignPattern, BenignPattern)> {
    let patterns = [
        BenignPattern::Sequential,
        BenignPattern::Strided(3),
        BenignPattern::HotLoop { working_set: 10 },
        BenignPattern::ZipfRandom,
    ];
    let mut combos = Vec::new();
    for &a in &patterns {
        for &b in &patterns {
            combos.push((a, b));
        }
    }
    combos
}

/// Runs the workload on a fresh cache of the given configuration and returns
/// the event log.
pub fn generate_trace(
    cache_config: &CacheConfig,
    workload: &BenignWorkload,
    rng: &mut impl Rng,
) -> Vec<CacheEvent> {
    let mut cache = Cache::new(cache_config.clone());
    let shared_base = 1_000_000u64; // distinct region for shared lines
    let mut step_a = 0u64;
    let mut step_b = 0u64;
    for _ in 0..workload.length {
        // Benign co-runners interleave burstily rather than strictly
        // alternating.
        let use_a = rng.gen_bool(0.5);
        let (domain, pattern, step, base) = if use_a {
            step_a += 1;
            (Domain::Attacker, workload.pattern_a, step_a, 0u64)
        } else {
            step_b += 1;
            (Domain::Victim, workload.pattern_b, step_b, workload.region)
        };
        // The second program's addresses are phase-shifted within its
        // region: real co-runners' hot lines do not systematically land in
        // the same cache sets.
        let phase = if use_a { 0 } else { workload.region / 3 };
        let addr = if rng.gen_bool(workload.shared_prob) {
            shared_base + rng.gen_range(0..8u64)
        } else {
            base + (pattern.address(step, workload.region, rng) + phase) % workload.region
        };
        cache.access(addr, domain);
    }
    cache.drain_events()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cyclone::CycloneFeatures;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(33)
    }

    #[test]
    fn trace_has_requested_length_of_accesses() {
        let cfg = CacheConfig::new(4, 2);
        let wl = BenignWorkload {
            length: 100,
            ..BenignWorkload::default()
        };
        let trace = generate_trace(&cfg, &wl, &mut rng());
        let accesses = trace
            .iter()
            .filter(|e| matches!(e, CacheEvent::Access { .. }))
            .count();
        assert_eq!(accesses, 100);
    }

    #[test]
    fn both_domains_appear() {
        let cfg = CacheConfig::new(4, 2);
        let trace = generate_trace(&cfg, &BenignWorkload::default(), &mut rng());
        let has = |d: Domain| {
            trace
                .iter()
                .any(|e| matches!(e, CacheEvent::Access { domain, .. } if *domain == d))
        };
        assert!(has(Domain::Attacker));
        assert!(has(Domain::Victim));
    }

    #[test]
    fn benign_traces_have_low_cyclic_interference() {
        // The separation Cyclone exploits: benign co-runners produce far
        // fewer a⇝b⇝a cycles per access than a prime+probe loop.
        // A textbook prime+probe produces ≥ 0.11 cycles per access; benign
        // co-runners must stay clearly below that, both per combination and
        // on average (a couple of thrash-prone combos are tolerated — the
        // paper's SVM is 98.8% accurate, not perfect).
        let cfg = CacheConfig::direct_mapped(4);
        let fx = CycloneFeatures::default();
        let mut total = 0usize;
        let suite = benign_pattern_suite();
        for &(a, b) in &suite {
            let wl = BenignWorkload {
                pattern_a: a,
                pattern_b: b,
                length: 400,
                ..BenignWorkload::default()
            };
            let trace = generate_trace(&cfg, &wl, &mut rng());
            let cycles = fx.total_cyclic(&trace);
            total += cycles;
            assert!(
                (cycles as f64) < 0.075 * 400.0,
                "patterns {a:?}/{b:?}: {cycles} cycles is not benign-like"
            );
        }
        let mean = total as f64 / suite.len() as f64;
        assert!(mean < 0.045 * 400.0, "mean cycles {mean} too attack-like");
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = CacheConfig::new(4, 2);
        let wl = BenignWorkload::default();
        let t1 = generate_trace(&cfg, &wl, &mut rand::rngs::StdRng::seed_from_u64(1));
        let t2 = generate_trace(&cfg, &wl, &mut rand::rngs::StdRng::seed_from_u64(1));
        assert_eq!(t1, t2);
    }

    #[test]
    fn pattern_suite_covers_all_combinations() {
        assert_eq!(benign_pattern_suite().len(), 16);
    }

    #[test]
    fn patterns_stay_in_region() {
        let mut r = rng();
        for p in [
            BenignPattern::Sequential,
            BenignPattern::Strided(5),
            BenignPattern::HotLoop { working_set: 2 },
            BenignPattern::ZipfRandom,
        ] {
            for i in 0..64 {
                assert!(p.address(i, 16, &mut r) < 16);
            }
        }
    }
}
