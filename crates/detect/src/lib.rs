//! Cache timing-channel detectors for the AutoCAT reproduction.
//!
//! Sec. V-D of the paper evaluates four protection schemes; three of them
//! are detectors implemented here (the fourth, the PL cache, lives in the
//! cache simulator's locking support):
//!
//! * [`autocorr`] — CC-Hunter-style autocorrelation over conflict-miss event
//!   trains.
//! * [`cyclone`] + [`svm`] — Cyclone-style cyclic-interference features fed
//!   to a linear SVM (trained here by Pegasos SGD; the paper trains on
//!   SPEC2017 benign traces, we substitute the synthetic generator in
//!   [`benign`]).
//! * [`misscount`] — µarch-statistics detection flagging victim-program
//!   cache misses.
//!
//! All detectors consume the [`autocat_cache::CacheEvent`] stream emitted by
//! the simulator, and all of them implement the object-safe
//! [`monitor::Monitor`] trait so any detector — or a
//! [`monitor::CompositeMonitor`] stack of them — can run in-loop as an
//! episode guard inside the gym environments.

pub mod autocorr;
pub mod benign;
pub mod cyclone;
pub mod misscount;
pub mod monitor;
pub mod svm;

pub use autocorr::{AutocorrDetector, EventTrain};
pub use cyclone::CycloneFeatures;
pub use misscount::MissCountDetector;
pub use monitor::{CompositeMonitor, CycloneSvmMonitor, Monitor, MonitorSpec, Verdict};
pub use svm::LinearSvm;
