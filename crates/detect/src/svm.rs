//! Linear SVM trained with Pegasos SGD.
//!
//! The Cyclone detector (paper Sec. V-D) feeds cyclic-interference features
//! to an SVM classifier. Offline ML crates are unavailable, so this module
//! implements a linear soft-margin SVM trained by the Pegasos
//! (primal sub-gradient) algorithm, plus the k-fold cross-validation used to
//! report the paper's 98.8% validation accuracy.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A linear SVM `f(x) = w·x + b`, classifying `f(x) >= 0` as positive
/// (attack) and `f(x) < 0` as negative (benign).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearSvm {
    /// Weight vector.
    pub w: Vec<f32>,
    /// Bias term.
    pub b: f32,
}

/// Training hyper-parameters for [`LinearSvm::train`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct SvmTrainConfig {
    /// Regularization strength (Pegasos λ).
    pub lambda: f32,
    /// Number of SGD epochs over the training set.
    pub epochs: usize,
}

impl Default for SvmTrainConfig {
    fn default() -> Self {
        Self {
            lambda: 1e-3,
            epochs: 60,
        }
    }
}

impl LinearSvm {
    /// Trains a linear SVM on `(x, y)` pairs with `y ∈ {-1, +1}`.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty, feature dimensions are inconsistent,
    /// or any label is not ±1.
    pub fn train(data: &[(Vec<f32>, i8)], config: &SvmTrainConfig, rng: &mut impl Rng) -> Self {
        assert!(!data.is_empty(), "empty training set");
        let dim = data[0].0.len();
        for (x, y) in data {
            assert_eq!(x.len(), dim, "inconsistent feature dimensions");
            assert!(*y == 1 || *y == -1, "labels must be +1/-1");
        }
        // Bias is folded into an augmented (regularized) coordinate so the
        // decaying Pegasos step cannot blow it up on the first samples; the
        // schedule is offset by the dataset size for the same reason.
        let mut w = vec![0.0f32; dim + 1];
        let mut order: Vec<usize> = (0..data.len()).collect();
        let t0 = data.len() as u64;
        let mut t = 0u64;
        for _ in 0..config.epochs {
            order.shuffle(rng);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (config.lambda * (t0 + t) as f32);
                let (x, y) = &data[i];
                let y = *y as f32;
                let margin = y * (dot(&w[..dim], x) + w[dim]);
                // Regularization shrink.
                let shrink = 1.0 - eta * config.lambda;
                for wi in &mut w {
                    *wi *= shrink;
                }
                if margin < 1.0 {
                    for (wi, xi) in w[..dim].iter_mut().zip(x.iter()) {
                        *wi += eta * y * xi;
                    }
                    w[dim] += eta * y;
                }
            }
        }
        let b = w.pop().expect("augmented bias present");
        Self { w, b }
    }

    /// Decision value `w·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimension.
    pub fn decision(&self, x: &[f32]) -> f32 {
        assert_eq!(x.len(), self.w.len(), "feature dimension mismatch");
        dot(&self.w, x) + self.b
    }

    /// Predicts the class label (+1 = attack, -1 = benign).
    pub fn predict(&self, x: &[f32]) -> i8 {
        if self.decision(x) >= 0.0 {
            1
        } else {
            -1
        }
    }

    /// Accuracy on a labelled dataset.
    pub fn accuracy(&self, data: &[(Vec<f32>, i8)]) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let correct = data.iter().filter(|(x, y)| self.predict(x) == *y).count();
        correct as f64 / data.len() as f64
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// k-fold cross-validation accuracy (the paper reports 5-fold, 98.8%).
///
/// # Panics
///
/// Panics if `k < 2` or the dataset has fewer than `k` samples.
pub fn cross_validate(
    data: &[(Vec<f32>, i8)],
    k: usize,
    config: &SvmTrainConfig,
    rng: &mut impl Rng,
) -> f64 {
    assert!(k >= 2, "k must be at least 2");
    assert!(data.len() >= k, "need at least k samples");
    let mut order: Vec<usize> = (0..data.len()).collect();
    order.shuffle(rng);
    let fold_size = data.len() / k;
    let mut total_acc = 0.0;
    for fold in 0..k {
        let lo = fold * fold_size;
        let hi = if fold + 1 == k {
            data.len()
        } else {
            lo + fold_size
        };
        let test: Vec<_> = order[lo..hi].iter().map(|&i| data[i].clone()).collect();
        let train: Vec<_> = order[..lo]
            .iter()
            .chain(order[hi..].iter())
            .map(|&i| data[i].clone())
            .collect();
        let svm = LinearSvm::train(&train, config, rng);
        total_acc += svm.accuracy(&test);
    }
    total_acc / k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(17)
    }

    fn separable_dataset(n: usize) -> Vec<(Vec<f32>, i8)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut data = Vec::new();
        for _ in 0..n {
            // Positive class near (2, 2), negative near (-2, -2).
            let mut jitter = || rng.gen_range(-0.5f32..0.5);
            data.push((vec![2.0 + jitter(), 2.0 + jitter()], 1));
            data.push((vec![-2.0 + jitter(), -2.0 + jitter()], -1));
        }
        data
    }

    #[test]
    fn learns_separable_data() {
        let data = separable_dataset(50);
        let svm = LinearSvm::train(&data, &SvmTrainConfig::default(), &mut rng());
        assert!(
            svm.accuracy(&data) > 0.98,
            "accuracy {}",
            svm.accuracy(&data)
        );
    }

    #[test]
    fn decision_sign_matches_predict() {
        let data = separable_dataset(20);
        let svm = LinearSvm::train(&data, &SvmTrainConfig::default(), &mut rng());
        let x = vec![2.0, 2.0];
        assert_eq!(
            svm.predict(&x),
            if svm.decision(&x) >= 0.0 { 1 } else { -1 }
        );
        assert_eq!(svm.predict(&x), 1);
        assert_eq!(svm.predict(&[-2.0, -2.0]), -1);
    }

    #[test]
    fn cross_validation_high_on_separable() {
        let data = separable_dataset(40);
        let acc = cross_validate(&data, 5, &SvmTrainConfig::default(), &mut rng());
        assert!(acc > 0.95, "cv accuracy {acc}");
    }

    #[test]
    #[should_panic(expected = "labels must be")]
    fn invalid_label_panics() {
        let data = vec![(vec![1.0], 0i8)];
        let _ = LinearSvm::train(&data, &SvmTrainConfig::default(), &mut rng());
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_data_panics() {
        let _ = LinearSvm::train(&[], &SvmTrainConfig::default(), &mut rng());
    }

    #[test]
    fn skewed_scales_still_learn() {
        // One informative dimension among noise.
        let mut r = rand::rngs::StdRng::seed_from_u64(8);
        let mut data = Vec::new();
        for i in 0..200 {
            let y: i8 = if i % 2 == 0 { 1 } else { -1 };
            let mut x: Vec<f32> = (0..8).map(|_| r.gen_range(-1.0..1.0)).collect();
            x[3] = y as f32 * 3.0 + r.gen_range(-0.5f32..0.5);
            data.push((x, y));
        }
        let svm = LinearSvm::train(&data, &SvmTrainConfig::default(), &mut rng());
        assert!(svm.accuracy(&data) > 0.95);
    }
}
