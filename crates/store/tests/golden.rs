//! Golden-file tests for the binary value codec: one checkpoint-shaped
//! tree pinned on disk in *both* codecs. The committed `.ckpt.bin` bytes
//! must be exactly what `codec::encode` emits today (byte stability — a
//! format drift breaks loudly), and the committed `.ckpt.json` must
//! round-trip through the binary codec bit-exactly (the interchange
//! contract of ISSUE 7).
//!
//! Regenerate after an *intentional* format bump with:
//! `STORE_BLESS=1 cargo test -p autocat-store --test golden`

use autocat_nn::value::{from_json, to_json, u64_value, Value};
use autocat_store::codec;

fn bin_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.ckpt.bin")
}

fn json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.ckpt.json")
}

/// A miniature checkpoint-shaped tree exercising every variant the real
/// `Trainer::to_checkpoint_value` emits: nested tables, tensor-like float
/// arrays (exact f32-widened values), RNG state words wider than i64, and
/// config scalars.
fn expected() -> Value {
    let mut net = Value::table();
    net.set("obs_dim", Value::Int(66));
    net.set("num_actions", Value::Int(10));

    let mut layer = Value::table();
    layer.set("rows", Value::Int(2));
    layer.set("cols", Value::Int(3));
    layer.set(
        "value",
        Value::Array(
            [0.125f32, -1.5, 0.1, 3.0e-5, -0.0, 17.0]
                .iter()
                .map(|&w| Value::Float(f64::from(w)))
                .collect(),
        ),
    );
    layer.set(
        "m",
        Value::Array(vec![Value::Float(f64::from(1.0e-8f32)); 6]),
    );
    layer.set(
        "v",
        Value::Array(vec![Value::Float(f64::from(2.0e-4f32)); 6]),
    );

    let mut rng = Value::table();
    rng.set(
        "state",
        Value::Array(vec![
            u64_value(0x9E37_79B9_7F4A_7C15),
            u64_value(0xBF58_476D_1CE4_E5B9),
            u64_value(3),
            u64_value(u64::MAX),
        ]),
    );

    let mut root = Value::table();
    root.set("version", Value::Int(1));
    root.set("backbone", Value::Str("mlp".into()));
    root.set("net", net);
    root.set("params", Value::Array(vec![layer]));
    root.set("rng", rng);
    root.set("total_steps", Value::Int(4096));
    root.set(
        "recent",
        Value::Array(vec![Value::Float(0.53), Value::Float(-1.02)]),
    );
    root
}

#[test]
fn golden_binary_is_byte_stable() {
    let value = expected();
    let bytes = codec::encode(&value);
    if std::env::var_os("STORE_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
        std::fs::write(bin_path(), &bytes).unwrap();
        std::fs::write(json_path(), to_json(&value)).unwrap();
    }
    let committed = std::fs::read(bin_path()).expect("committed golden.ckpt.bin");
    assert_eq!(
        bytes, committed,
        "binary encoding drifted from the committed fixture; if intentional, bump FORMAT_VERSION and re-bless"
    );
    assert!(codec::is_binary(&committed));
    assert_eq!(codec::decode(&committed).unwrap(), value);
}

#[test]
fn golden_json_round_trips_through_binary_bit_exactly() {
    // JSON fixture -> tree -> binary -> tree -> JSON reproduces the fixture
    // byte for byte: the two codecs carry the identical tree.
    let text = std::fs::read_to_string(json_path()).expect("committed golden.ckpt.json");
    let tree = from_json(&text).unwrap();
    assert_eq!(tree, expected());
    let back = codec::decode(&codec::encode(&tree)).unwrap();
    assert_eq!(back, tree);
    assert_eq!(to_json(&back), text);
}

#[test]
fn golden_digest_is_pinned() {
    // The content digest doubles as the store's object key; pin it so an
    // accidental codec change cannot silently re-key every stored object.
    let committed = std::fs::read(bin_path()).unwrap();
    assert_eq!(
        codec::content_digest(&committed),
        codec::content_digest(&codec::encode(&expected()))
    );
}
