//! A versioned append-only JSONL journal: the durability primitive under
//! the serving daemon's job table.
//!
//! The file's first line is a header naming the journal kind and format
//! version; every following line is one [`Value`] record, appended and
//! flushed as it happens. Replaying the journal is just reading the
//! records back in order — what they *mean* is the caller's business
//! (the daemon folds job-lifecycle records into a job table).
//!
//! ```text
//! {"journal": "autocat-jobs", "version": 1}
//! {"op": "submit", "job": 1, ...}
//! {"op": "running", "job": 1}
//! {"op": "done", "job": 1, ...}
//! ```
//!
//! # Durability contract
//!
//! A record is durable once its newline reaches the operating system —
//! `append` hands the whole line to the kernel in one unbuffered write,
//! so a killed *process* (SIGKILL included) loses nothing acknowledged.
//! A torn final line (a crash mid-append, a full disk) is tolerated on
//! open: the partial tail is truncated away and replay sees every record
//! up to it. A torn line is dropped even when its prefix happens to parse
//! — `"steps": 12` may be the torn prefix of `"steps": 123`, so only a
//! newline terminates a record. Anything else malformed (a bad header, an
//! unparsable *interior* line) is an error: refusing to run beats
//! replaying a journal we only partly understand.

use autocat_nn::value::{self, req, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

/// An open journal, positioned for appending. See the [module docs](self).
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: std::fs::File,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path`, verifying its
    /// header against `kind` and `version`, and returns it along with the
    /// replayed records in append order. A torn final line is truncated
    /// away; see the module docs for the durability contract.
    ///
    /// # Errors
    ///
    /// Returns an error on I/O failure, a header mismatch (wrong kind or
    /// version), or a malformed interior record.
    pub fn open(
        path: impl Into<PathBuf>,
        kind: &str,
        version: i64,
    ) -> Result<(Journal, Vec<Value>), String> {
        let path = path.into();
        let mut records = Vec::new();
        if path.exists() {
            let text = std::fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            // Only newline-terminated lines are records; a trailing
            // partial line is a torn append.
            let complete_len = text.rfind('\n').map_or(0, |i| i + 1);
            let mut lines = text[..complete_len].lines();
            let header = lines
                .next()
                .ok_or_else(|| format!("{}: empty journal (missing header)", path.display()))?;
            Self::check_header(header, kind, version)
                .map_err(|e| format!("{}: {e}", path.display()))?;
            for (i, line) in lines.enumerate() {
                let record = value::from_json(line)
                    .map_err(|e| format!("{}: record {}: {e}", path.display(), i + 1))?;
                records.push(record);
            }
            if complete_len != text.len() {
                // Truncate the torn tail so the next append starts a
                // clean line instead of corrupting it.
                let file = std::fs::OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .map_err(|e| format!("opening {}: {e}", path.display()))?;
                file.set_len(complete_len as u64)
                    .map_err(|e| format!("truncating {}: {e}", path.display()))?;
            }
        } else {
            let mut header = Value::table();
            header.set("journal", Value::Str(kind.to_string()));
            header.set("version", Value::Int(version));
            let mut line = value::to_json(&header);
            line.push('\n');
            std::fs::write(&path, line).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| format!("opening {}: {e}", path.display()))?;
        Ok((Journal { path, file }, records))
    }

    fn check_header(line: &str, kind: &str, version: i64) -> Result<(), String> {
        let header = value::from_json(line).map_err(|e| format!("journal header: {e}"))?;
        let table = header.as_table()?;
        let found_kind = req(table, "journal")?.as_str()?;
        if found_kind != kind {
            return Err(format!(
                "journal kind `{found_kind}` (this is a `{kind}` journal)"
            ));
        }
        let found_version = req(table, "version")?.as_i64()?;
        if found_version != version {
            return Err(format!(
                "unsupported journal version {found_version} (this build reads {version})"
            ));
        }
        Ok(())
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record as one line, handed to the kernel in a single
    /// unbuffered write (durable against process death; see module docs).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn append(&mut self, record: &Value) -> Result<(), String> {
        let mut line = value::to_json(record);
        line.push('\n');
        self.file
            .write_all(line.as_bytes())
            .map_err(|e| format!("appending to {}: {e}", self.path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("autocat-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    fn record(tag: i64) -> Value {
        let mut table = Value::table();
        table.set("op", Value::Str("test".into()));
        table.set("tag", Value::Int(tag));
        table
    }

    #[test]
    fn records_replay_in_append_order_across_reopens() {
        let path = temp_path("replay.jsonl");
        let (mut journal, records) = Journal::open(&path, "test", 1).unwrap();
        assert!(records.is_empty());
        journal.append(&record(1)).unwrap();
        journal.append(&record(2)).unwrap();
        drop(journal);

        let (mut journal, records) = Journal::open(&path, "test", 1).unwrap();
        assert_eq!(records, vec![record(1), record(2)]);
        journal.append(&record(3)).unwrap();
        drop(journal);

        let (_, records) = Journal::open(&path, "test", 1).unwrap();
        assert_eq!(records, vec![record(1), record(2), record(3)]);
    }

    #[test]
    fn torn_tail_is_truncated_and_appends_stay_clean() {
        let path = temp_path("torn.jsonl");
        let (mut journal, _) = Journal::open(&path, "test", 1).unwrap();
        journal.append(&record(1)).unwrap();
        drop(journal);
        // Simulate a crash mid-append: a record prefix with no newline.
        // The prefix parses as JSON on its own — it must still be dropped.
        let mut text = std::fs::read(&path).unwrap();
        text.extend_from_slice(b"{\"op\": \"test\", \"tag\": 2}");
        std::fs::write(&path, &text).unwrap();

        let (mut journal, records) = Journal::open(&path, "test", 1).unwrap();
        assert_eq!(records, vec![record(1)], "torn tail dropped");
        journal.append(&record(3)).unwrap();
        drop(journal);
        let (_, records) = Journal::open(&path, "test", 1).unwrap();
        assert_eq!(records, vec![record(1), record(3)], "no corruption");
    }

    #[test]
    fn header_mismatches_are_errors() {
        let path = temp_path("header.jsonl");
        let (journal, _) = Journal::open(&path, "test", 1).unwrap();
        drop(journal);
        let err = Journal::open(&path, "other", 1).unwrap_err();
        assert!(err.contains("kind"), "{err}");
        let err = Journal::open(&path, "test", 2).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn malformed_interior_record_is_an_error() {
        let path = temp_path("interior.jsonl");
        let (mut journal, _) = Journal::open(&path, "test", 1).unwrap();
        journal.append(&record(1)).unwrap();
        drop(journal);
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("not json\n");
        std::fs::write(&path, &text).unwrap();
        let err = Journal::open(&path, "test", 1).unwrap_err();
        assert!(err.contains("record"), "{err}");
    }

    #[test]
    fn missing_header_is_an_error() {
        let path = temp_path("empty.jsonl");
        std::fs::write(&path, "\n").unwrap();
        assert!(Journal::open(&path, "test", 1).is_err());
        std::fs::write(&path, "").unwrap();
        // A fully empty file has no complete lines at all.
        assert!(Journal::open(&path, "test", 1).is_err());
    }
}
