//! The content-addressed checkpoint store: an `objects/` directory of
//! canonical binary blobs keyed by their FNV-1a content digest, plus a
//! JSON index mapping `(scenario name, train-spec digest)` to checkpoint
//! entries.
//!
//! ```text
//! <root>/
//!   objects/<16-hex digest>.ckpt.bin   # canonical binary checkpoint bytes
//!   index.json                         # entry list (scenario, spec, digests, meta)
//! ```
//!
//! Content addressing gives three properties the serving layer leans on:
//! identical training runs (same scenario + spec, the deterministic
//! engine) produce the *same object file* and deduplicate on disk; a
//! fetched object is verified against its digest, so on-disk corruption
//! is an error, never silently-wrong weights; and the index is pure
//! metadata — rebuildable, atomically rewritten, and the only thing a
//! [`Store::gc`] pass mutates besides deleting unreferenced objects.

use crate::codec;
use crate::retention::RetentionPolicy;
use autocat_nn::value::{self, req, u64_from, u64_value, Value};
use std::path::{Path, PathBuf};

/// Index format version written into `index.json`.
pub const INDEX_VERSION: i64 = 1;

/// Formats a digest the way the store names objects: 16 lowercase hex
/// digits.
pub fn digest_hex(digest: u64) -> String {
    format!("{digest:016x}")
}

/// Parses a [`digest_hex`] digest.
///
/// # Errors
///
/// Returns an error on non-hexadecimal input.
pub fn digest_from_hex(text: &str) -> Result<u64, String> {
    u64::from_str_radix(text, 16).map_err(|_| format!("bad digest `{text}`"))
}

/// Everything the index records about one stored checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct StoreEntry {
    /// Scenario name the checkpoint was trained for.
    pub scenario: String,
    /// FNV-1a digest of the scenario's canonical JSON after overrides —
    /// the "train spec" half of the index key. Two submissions with
    /// different budgets/seeds/lane counts index separately.
    pub spec_digest: u64,
    /// Content digest of the canonical checkpoint bytes (the object key).
    pub digest: u64,
    /// `params_digest` of the checkpointed weights (the training
    /// bit-identity fingerprint).
    pub params_digest: u64,
    /// Environment steps trained.
    pub steps: u64,
    /// Evaluation accuracy recorded at store time (drives [`Store::best`]).
    pub accuracy: f64,
    /// Unix timestamp (seconds) the entry was recorded.
    pub created_unix: u64,
}

impl StoreEntry {
    /// Encodes the entry as a [`Value`] table — the form both the index
    /// file and the serve protocol's `fetch` response carry.
    pub fn to_value(&self) -> Value {
        let mut table = Value::table();
        table.set("scenario", Value::Str(self.scenario.clone()));
        table.set("spec_digest", Value::Str(digest_hex(self.spec_digest)));
        table.set("digest", Value::Str(digest_hex(self.digest)));
        table.set("params_digest", Value::Str(digest_hex(self.params_digest)));
        table.set("steps", u64_value(self.steps));
        table.set("accuracy", Value::Float(self.accuracy));
        table.set("created_unix", u64_value(self.created_unix));
        table
    }

    /// Decodes an entry written by [`StoreEntry::to_value`].
    ///
    /// # Errors
    ///
    /// Returns an error on missing keys or mistyped values.
    pub fn from_value(value: &Value) -> Result<StoreEntry, String> {
        let table = value.as_table()?;
        Ok(StoreEntry {
            scenario: req(table, "scenario")?.as_str()?.to_string(),
            spec_digest: digest_from_hex(req(table, "spec_digest")?.as_str()?)?,
            digest: digest_from_hex(req(table, "digest")?.as_str()?)?,
            params_digest: digest_from_hex(req(table, "params_digest")?.as_str()?)?,
            steps: u64_from(req(table, "steps")?)?,
            accuracy: req(table, "accuracy")?.as_f64()?,
            created_unix: u64_from(req(table, "created_unix")?)?,
        })
    }
}

/// Metadata for [`Store::put`] — a [`StoreEntry`] minus the content
/// digest, which the store computes from the bytes.
#[derive(Clone, Debug, PartialEq)]
pub struct EntryMeta {
    /// Scenario name.
    pub scenario: String,
    /// Train-spec digest (see [`StoreEntry::spec_digest`]).
    pub spec_digest: u64,
    /// Weight digest (see [`StoreEntry::params_digest`]).
    pub params_digest: u64,
    /// Environment steps trained.
    pub steps: u64,
    /// Evaluation accuracy.
    pub accuracy: f64,
    /// Unix timestamp (seconds); passed in, not sampled, so gc tests and
    /// replayed imports stay deterministic.
    pub created_unix: u64,
}

/// What a [`Store::gc`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Index entries removed.
    pub removed_entries: usize,
    /// Object files deleted (entries can share objects; only unreferenced
    /// objects are deleted).
    pub removed_objects: usize,
    /// Index entries surviving the pass.
    pub kept_entries: usize,
}

/// The content-addressed checkpoint store. See the [module docs](self).
pub struct Store {
    root: PathBuf,
    entries: Vec<StoreEntry>,
}

impl Store {
    /// Opens (creating if needed) a store rooted at `root` and loads its
    /// index.
    ///
    /// # Errors
    ///
    /// Returns an error if the directories cannot be created or the index
    /// is unreadable/malformed.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, String> {
        let root = root.into();
        let objects = root.join("objects");
        std::fs::create_dir_all(&objects)
            .map_err(|e| format!("creating {}: {e}", objects.display()))?;
        let index = root.join("index.json");
        let entries = if index.exists() {
            let text = std::fs::read_to_string(&index)
                .map_err(|e| format!("reading {}: {e}", index.display()))?;
            Self::entries_from_json(&text)
                .map_err(|e| format!("parsing {}: {e}", index.display()))?
        } else {
            Vec::new()
        };
        Ok(Self { root, entries })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Path of the object holding `digest`'s canonical bytes.
    pub fn object_path(&self, digest: u64) -> PathBuf {
        self.root
            .join("objects")
            .join(format!("{}.ckpt.bin", digest_hex(digest)))
    }

    /// All index entries, in insertion order.
    pub fn entries(&self) -> &[StoreEntry] {
        &self.entries
    }

    /// The newest entry for a scenario name (any spec).
    pub fn latest(&self, scenario: &str) -> Option<&StoreEntry> {
        self.entries.iter().rev().find(|e| e.scenario == scenario)
    }

    /// The best entry for a scenario name: highest recorded accuracy, ties
    /// broken toward the newest.
    pub fn best(&self, scenario: &str) -> Option<&StoreEntry> {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.scenario == scenario)
            .max_by(|(i, a), (j, b)| {
                a.accuracy
                    .total_cmp(&b.accuracy)
                    .then(a.created_unix.cmp(&b.created_unix))
                    .then(i.cmp(j))
            })
            .map(|(_, e)| e)
    }

    /// The newest entry for an exact `(scenario, spec digest)` key — the
    /// lookup the resumable sweep and the daemon's cache hit use.
    pub fn lookup(&self, scenario: &str, spec_digest: u64) -> Option<&StoreEntry> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.scenario == scenario && e.spec_digest == spec_digest)
    }

    /// The newest entry whose object is `digest` — the fetch-by-digest
    /// surface the serve protocol's host-independent `fetch` resolves
    /// through (entries can share an object; any of them describes it).
    pub fn find(&self, digest: u64) -> Option<&StoreEntry> {
        self.entries.iter().rev().find(|e| e.digest == digest)
    }

    /// Stores a checkpoint [`Value`] tree under `meta`, returning the
    /// content digest. The object write is skipped when the digest is
    /// already present (content addressing); an existing entry with the
    /// same `(scenario, spec digest, digest)` is refreshed in place
    /// instead of duplicated.
    ///
    /// # Errors
    ///
    /// Returns an error if the object or index cannot be written.
    pub fn put(&mut self, meta: EntryMeta, checkpoint: &Value) -> Result<u64, String> {
        self.put_bytes(meta, &codec::encode(checkpoint))
    }

    /// [`Store::put`] for already-encoded canonical bytes (the daemon's
    /// import path — no decode/re-encode round trip).
    ///
    /// # Errors
    ///
    /// Returns an error if `bytes` is not a framed binary document or a
    /// file cannot be written.
    pub fn put_bytes(&mut self, meta: EntryMeta, bytes: &[u8]) -> Result<u64, String> {
        // Reject junk imports up front: a store object must always decode.
        codec::decode(bytes).map_err(|e| format!("refusing to store undecodable bytes: {e}"))?;
        let digest = codec::content_digest(bytes);
        let path = self.object_path(digest);
        if !path.exists() {
            std::fs::write(&path, bytes).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
        let entry = StoreEntry {
            scenario: meta.scenario,
            spec_digest: meta.spec_digest,
            digest,
            params_digest: meta.params_digest,
            steps: meta.steps,
            accuracy: meta.accuracy,
            created_unix: meta.created_unix,
        };
        match self.entries.iter_mut().find(|e| {
            e.scenario == entry.scenario
                && e.spec_digest == entry.spec_digest
                && e.digest == entry.digest
        }) {
            Some(existing) => *existing = entry,
            None => self.entries.push(entry),
        }
        self.save_index()?;
        Ok(digest)
    }

    /// Reads and digest-verifies an object's canonical bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if the object is missing or its bytes do not hash
    /// to `digest` (corruption — never returned silently).
    pub fn fetch_bytes(&self, digest: u64) -> Result<Vec<u8>, String> {
        let path = self.object_path(digest);
        let bytes = std::fs::read(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let actual = codec::content_digest(&bytes);
        if actual != digest {
            return Err(format!(
                "digest mismatch on {}: file hashes to {}, index says {}",
                path.display(),
                digest_hex(actual),
                digest_hex(digest)
            ));
        }
        Ok(bytes)
    }

    /// Fetches and decodes an object into its checkpoint [`Value`] tree,
    /// after digest verification.
    ///
    /// # Errors
    ///
    /// Returns an error on a missing object, a digest mismatch or
    /// undecodable bytes.
    pub fn fetch(&self, digest: u64) -> Result<Value, String> {
        codec::decode(&self.fetch_bytes(digest)?)
    }

    /// The entries a gc pass under `policy` would remove at time `now`
    /// (Unix seconds) — the dry run behind [`Store::gc`].
    pub fn plan_gc(&self, policy: &RetentionPolicy, now_unix: u64) -> Vec<StoreEntry> {
        let mut drop: Vec<StoreEntry> = Vec::new();
        // Count survivors per scenario, newest first, among entries the
        // age rule and keep patterns leave eligible.
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        // Newest first; ties break toward the later index (later insert).
        order.sort_by_key(|&i| {
            (
                std::cmp::Reverse(self.entries[i].created_unix),
                std::cmp::Reverse(i),
            )
        });
        let mut kept_per_scenario: std::collections::BTreeMap<&str, usize> = Default::default();
        for &i in &order {
            let entry = &self.entries[i];
            if policy.is_kept(&entry.scenario) {
                continue;
            }
            let age = now_unix.saturating_sub(entry.created_unix);
            if policy.too_old(age) {
                drop.push(entry.clone());
                continue;
            }
            let kept = kept_per_scenario
                .entry(entry.scenario.as_str())
                .or_insert(0);
            *kept += 1;
            if policy.max_count != 0 && *kept > policy.max_count {
                drop.push(entry.clone());
            }
        }
        drop
    }

    /// Applies `policy` at time `now` (Unix seconds): removes the planned
    /// entries from the index and deletes object files no surviving entry
    /// references.
    ///
    /// # Errors
    ///
    /// Returns an error if the index cannot be rewritten or an object
    /// cannot be deleted.
    pub fn gc(&mut self, policy: &RetentionPolicy, now_unix: u64) -> Result<GcStats, String> {
        let drop = self.plan_gc(policy, now_unix);
        if drop.is_empty() {
            return Ok(GcStats {
                kept_entries: self.entries.len(),
                ..GcStats::default()
            });
        }
        let dropped: std::collections::BTreeSet<(String, u64, u64)> = drop
            .iter()
            .map(|e| (e.scenario.clone(), e.spec_digest, e.digest))
            .collect();
        let before = self.entries.len();
        self.entries
            .retain(|e| !dropped.contains(&(e.scenario.clone(), e.spec_digest, e.digest)));
        let removed_entries = before - self.entries.len();
        let live: std::collections::BTreeSet<u64> = self.entries.iter().map(|e| e.digest).collect();
        let mut removed_objects = 0;
        for entry in &drop {
            if live.contains(&entry.digest) {
                continue;
            }
            let path = self.object_path(entry.digest);
            if path.exists() {
                std::fs::remove_file(&path)
                    .map_err(|e| format!("deleting {}: {e}", path.display()))?;
                removed_objects += 1;
            }
        }
        self.save_index()?;
        Ok(GcStats {
            removed_entries,
            removed_objects,
            kept_entries: self.entries.len(),
        })
    }

    fn entries_from_json(text: &str) -> Result<Vec<StoreEntry>, String> {
        let root = value::from_json(text)?;
        let table = root.as_table()?;
        let version = req(table, "version")?.as_i64()?;
        if version != INDEX_VERSION {
            return Err(format!(
                "unsupported index version {version} (this build reads {INDEX_VERSION})"
            ));
        }
        req(table, "entries")?
            .as_array()?
            .iter()
            .map(StoreEntry::from_value)
            .collect()
    }

    fn save_index(&self) -> Result<(), String> {
        let mut root = Value::table();
        root.set("version", Value::Int(INDEX_VERSION));
        root.set(
            "entries",
            Value::Array(self.entries.iter().map(StoreEntry::to_value).collect()),
        );
        let path = self.root.join("index.json");
        let tmp = self.root.join("index.json.tmp");
        // Write-then-rename: a crash mid-write must never leave a torn
        // index behind (the objects it points at are append-only).
        std::fs::write(&tmp, value::to_json(&root))
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_store(name: &str) -> Store {
        let dir = std::env::temp_dir().join("autocat-store-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(dir).unwrap()
    }

    fn meta(scenario: &str, created: u64) -> EntryMeta {
        EntryMeta {
            scenario: scenario.to_string(),
            spec_digest: 0x1111,
            params_digest: 0x2222,
            steps: 512,
            accuracy: 0.5,
            created_unix: created,
        }
    }

    fn ckpt(tag: i64) -> Value {
        let mut table = Value::table();
        table.set("version", Value::Int(1));
        table.set("tag", Value::Int(tag));
        table
    }

    #[test]
    fn put_fetch_round_trips_with_digest_verification() {
        let mut store = temp_store("round-trip");
        let value = ckpt(7);
        let digest = store.put(meta("table4-6", 100), &value).unwrap();
        assert_eq!(store.fetch(digest).unwrap(), value);
        assert_eq!(store.entries().len(), 1);
        assert_eq!(store.latest("table4-6").unwrap().digest, digest);
        assert!(store.latest("absent").is_none());
    }

    #[test]
    fn corrupted_object_is_a_digest_mismatch_error() {
        let mut store = temp_store("corrupt");
        let digest = store.put(meta("table4-6", 100), &ckpt(7)).unwrap();
        let path = store.object_path(digest);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&path, &bytes).unwrap();
        let err = store.fetch(digest).unwrap_err();
        assert!(err.contains("digest mismatch"), "{err}");
        // A missing object is an error too (not a panic).
        assert!(store.fetch(digest ^ 0xdead).is_err());
    }

    #[test]
    fn index_survives_reopen_and_rejects_future_versions() {
        let root = {
            let mut store = temp_store("reopen");
            store.put(meta("table4-6", 100), &ckpt(1)).unwrap();
            store.put(meta("table4-7", 200), &ckpt(2)).unwrap();
            store.root().to_path_buf()
        };
        let store = Store::open(&root).unwrap();
        assert_eq!(store.entries().len(), 2);
        assert_eq!(store.latest("table4-7").unwrap().created_unix, 200);

        let index = root.join("index.json");
        let text = std::fs::read_to_string(&index).unwrap();
        std::fs::write(&index, text.replace("\"version\": 1", "\"version\": 99")).unwrap();
        let err = Store::open(&root).err().expect("future index version");
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn identical_content_deduplicates_and_refreshes() {
        let mut store = temp_store("dedup");
        let a = store.put(meta("table4-6", 100), &ckpt(1)).unwrap();
        let mut newer = meta("table4-6", 300);
        newer.accuracy = 0.9;
        let b = store.put(newer, &ckpt(1)).unwrap();
        assert_eq!(a, b, "same bytes, same object");
        assert_eq!(store.entries().len(), 1, "entry refreshed, not duplicated");
        assert_eq!(store.latest("table4-6").unwrap().created_unix, 300);

        // Same scenario, different spec: a second entry sharing the object.
        let mut other_spec = meta("table4-6", 400);
        other_spec.spec_digest = 0x9999;
        store.put(other_spec, &ckpt(1)).unwrap();
        assert_eq!(store.entries().len(), 2);
        assert_eq!(store.lookup("table4-6", 0x9999).unwrap().created_unix, 400);
        assert!(store.lookup("table4-6", 0x4444).is_none());
    }

    #[test]
    fn best_prefers_accuracy_then_recency() {
        let mut store = temp_store("best");
        let mut low = meta("table4-6", 300);
        low.accuracy = 0.4;
        low.spec_digest = 1;
        store.put(low, &ckpt(1)).unwrap();
        let mut high = meta("table4-6", 100);
        high.accuracy = 0.9;
        high.spec_digest = 2;
        store.put(high, &ckpt(2)).unwrap();
        assert_eq!(store.best("table4-6").unwrap().spec_digest, 2);
        assert_eq!(
            store.latest("table4-6").unwrap().spec_digest,
            2,
            "later insert"
        );

        let mut tie = meta("table4-6", 500);
        tie.accuracy = 0.9;
        tie.spec_digest = 3;
        store.put(tie, &ckpt(3)).unwrap();
        assert_eq!(
            store.best("table4-6").unwrap().spec_digest,
            3,
            "accuracy tie breaks toward the newest"
        );
    }

    #[test]
    fn find_resolves_objects_by_content_digest() {
        let mut store = temp_store("find");
        let digest = store.put(meta("table4-6", 100), &ckpt(1)).unwrap();
        let found = store.find(digest).unwrap();
        assert_eq!(found.scenario, "table4-6");
        assert!(store.find(digest ^ 1).is_none());
        // Value codec round trip (the form the fetch response ships).
        assert_eq!(StoreEntry::from_value(&found.to_value()).unwrap(), *found);
    }

    #[test]
    fn junk_bytes_are_refused_at_put() {
        let mut store = temp_store("junk");
        let err = store
            .put_bytes(meta("table4-6", 100), b"not a checkpoint")
            .unwrap_err();
        assert!(err.contains("refusing"), "{err}");
        assert!(store.entries().is_empty());
    }

    #[test]
    fn gc_enforces_max_count_per_scenario() {
        let mut store = temp_store("gc-count");
        for (i, t) in [100u64, 200, 300].iter().enumerate() {
            let mut m = meta("table4-6", *t);
            m.spec_digest = i as u64;
            store.put(m, &ckpt(i as i64)).unwrap();
        }
        let mut other = meta("table4-7", 150);
        other.spec_digest = 77;
        store.put(other, &ckpt(100)).unwrap();

        let policy = RetentionPolicy::default().with_max_count(2);
        let planned = store.plan_gc(&policy, 1_000);
        assert_eq!(planned.len(), 1);
        assert_eq!(planned[0].created_unix, 100, "oldest table4-6 entry goes");

        let stats = store.gc(&policy, 1_000).unwrap();
        assert_eq!(stats.removed_entries, 1);
        assert_eq!(stats.removed_objects, 1);
        assert_eq!(stats.kept_entries, 3);
        assert!(store.lookup("table4-6", 0).is_none());
        // Survivors still fetch.
        for entry in store.entries().to_vec() {
            store.fetch(entry.digest).unwrap();
        }
        // table4-7 (1 entry) was untouched by the per-scenario budget.
        assert!(store.latest("table4-7").is_some());
    }

    #[test]
    fn gc_enforces_max_age_and_keep_patterns() {
        let mut store = temp_store("gc-age");
        for (scenario, t, spec) in [
            ("table4-6", 100u64, 1u64),
            ("table4-6", 900, 2),
            ("defense-misscount", 50, 3),
        ] {
            let mut m = meta(scenario, t);
            m.spec_digest = spec;
            store.put(m, &ckpt(spec as i64)).unwrap();
        }
        // Horizon 500s at now=1000: the t=100 entry is too old, t=900
        // survives, and defense-* is pattern-exempt despite being oldest.
        let policy = RetentionPolicy::default()
            .with_max_age_secs(500)
            .keep("defense-*");
        let stats = store.gc(&policy, 1_000).unwrap();
        assert_eq!(stats.removed_entries, 1);
        assert_eq!(stats.kept_entries, 2);
        assert!(store.lookup("table4-6", 1).is_none());
        assert!(store.lookup("table4-6", 2).is_some());
        assert!(store.latest("defense-misscount").is_some());
    }

    #[test]
    fn gc_keeps_shared_objects_alive() {
        let mut store = temp_store("gc-shared");
        // Two entries, one object (identical checkpoint bytes).
        let mut a = meta("table4-6", 100);
        a.spec_digest = 1;
        let digest = store.put(a, &ckpt(42)).unwrap();
        let mut b = meta("table4-7", 200);
        b.spec_digest = 2;
        assert_eq!(store.put(b, &ckpt(42)).unwrap(), digest);

        // Age out only the older entry; the shared object must survive.
        let stats = store
            .gc(&RetentionPolicy::default().with_max_age_secs(500), 700)
            .unwrap();
        assert_eq!(stats.removed_entries, 1);
        assert_eq!(stats.removed_objects, 0, "object still referenced");
        assert_eq!(store.fetch(digest).unwrap(), ckpt(42));
    }

    #[test]
    fn unlimited_policy_removes_nothing() {
        let mut store = temp_store("gc-noop");
        store.put(meta("table4-6", 1), &ckpt(1)).unwrap();
        let stats = store.gc(&RetentionPolicy::default(), u64::MAX).unwrap();
        assert_eq!(
            stats,
            GcStats {
                removed_entries: 0,
                removed_objects: 0,
                kept_entries: 1
            }
        );
    }
}
