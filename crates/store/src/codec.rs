//! The compact versioned binary codec for [`Value`] trees.
//!
//! Checkpoints are [`Value`] trees (see `autocat_ppo::checkpoint`), and
//! the JSON text form — while exact — is the known bottleneck of short
//! sweep jobs: every `f32` round-trips through shortest-float formatting
//! and parsing. This codec serializes the identical tree as framed binary
//! (floats as raw `f64` bit patterns, integers little-endian), so
//! `encode`/`decode` is a bit-exact inverse pair **and** agrees with the
//! JSON codec tree-for-tree: `decode(encode(v)) == v == from_json(to_json(v))`
//! for every tree both codecs accept. JSON stays the interchange/golden
//! form; binary is the hot path.
//!
//! # Wire format
//!
//! ```text
//! file    := magic "ACSB" | version u16 LE | value
//! value   := tag u8 | payload
//! tag 0   := Str    (u32 LE byte length | UTF-8 bytes)
//! tag 1   := Int    (i64 LE)
//! tag 2   := Float  (f64 bit pattern, u64 LE)
//! tag 3   := Bool   (u8: 0 or 1)
//! tag 4   := Array  (u32 LE count | count values)
//! tag 5   := Table  (u32 LE count | count × (string payload key | value))
//! ```
//!
//! Tables serialize in `BTreeMap` key order, so encoding is a pure
//! function of the tree — the property the content-addressed store's
//! digests rely on. Trailing bytes after the root value are an error
//! (a truncated *or* padded file must never decode).

use autocat_nn::value::Value;
use std::collections::BTreeMap;

/// Leading magic of every binary value file.
pub const MAGIC: [u8; 4] = *b"ACSB";

/// Format version written after the magic.
pub const FORMAT_VERSION: u16 = 1;

const TAG_STR: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_FLOAT: u8 = 2;
const TAG_BOOL: u8 = 3;
const TAG_ARRAY: u8 = 4;
const TAG_TABLE: u8 = 5;

/// Whether `bytes` starts with the binary-codec magic — the sniff used by
/// loaders that fall back to JSON for legacy files.
pub fn is_binary(bytes: &[u8]) -> bool {
    bytes.len() >= MAGIC.len() && bytes[..MAGIC.len()] == MAGIC
}

/// Encodes a value as a framed binary document (magic + version + tree).
pub fn encode(value: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    encode_value(value, &mut out);
    out
}

fn encode_len(len: usize, out: &mut Vec<u8>) {
    // Checkpoint arrays are parameter tensors: u32 lengths are ample, and
    // a fixed width keeps the format trivially seekable.
    let len = u32::try_from(len).expect("value length exceeds u32");
    out.extend_from_slice(&len.to_le_bytes());
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    encode_len(s.len(), out);
    out.extend_from_slice(s.as_bytes());
}

fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Str(s) => {
            out.push(TAG_STR);
            encode_str(s, out);
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            encode_len(items.len(), out);
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Table(map) => {
            out.push(TAG_TABLE);
            encode_len(map.len(), out);
            for (key, item) in map {
                encode_str(key, out);
                encode_value(item, out);
            }
        }
    }
}

/// Decodes a framed binary document back into its [`Value`] tree.
///
/// # Errors
///
/// Returns an error on a bad magic, an unsupported format version,
/// truncation at any depth, an unknown tag, invalid UTF-8 or trailing
/// bytes — never panics on malformed input.
pub fn decode(bytes: &[u8]) -> Result<Value, String> {
    if bytes.len() < MAGIC.len() + 2 {
        return Err(format!(
            "binary value file truncated: {} byte(s), header needs {}",
            bytes.len(),
            MAGIC.len() + 2
        ));
    }
    if !is_binary(bytes) {
        return Err("bad magic: not a binary value file".into());
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(format!(
            "unsupported binary format version {version} (this build reads {FORMAT_VERSION})"
        ));
    }
    let mut cursor = Cursor {
        bytes,
        pos: MAGIC.len() + 2,
    };
    let value = cursor.value()?;
    if cursor.pos != bytes.len() {
        return Err(format!(
            "{} trailing byte(s) after the root value",
            bytes.len() - cursor.pos
        ));
    }
    Ok(value)
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| {
                format!(
                    "truncated: need {n} byte(s) at offset {}, file has {}",
                    self.pos,
                    self.bytes.len()
                )
            })?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn len(&mut self) -> Result<usize, String> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize)
    }

    fn string(&mut self) -> Result<String, String> {
        let len = self.len()?;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| "invalid UTF-8 in string".to_string())
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.u8()? {
            TAG_STR => Ok(Value::Str(self.string()?)),
            TAG_INT => {
                let raw = self.take(8)?;
                Ok(Value::Int(i64::from_le_bytes(
                    raw.try_into().expect("8 bytes"),
                )))
            }
            TAG_FLOAT => {
                let raw = self.take(8)?;
                Ok(Value::Float(f64::from_bits(u64::from_le_bytes(
                    raw.try_into().expect("8 bytes"),
                ))))
            }
            TAG_BOOL => match self.u8()? {
                0 => Ok(Value::Bool(false)),
                1 => Ok(Value::Bool(true)),
                other => Err(format!("bad bool byte {other}")),
            },
            TAG_ARRAY => {
                let count = self.len()?;
                let mut items = Vec::new();
                for _ in 0..count {
                    items.push(self.value()?);
                }
                Ok(Value::Array(items))
            }
            TAG_TABLE => {
                let count = self.len()?;
                let mut map = BTreeMap::new();
                for _ in 0..count {
                    let key = self.string()?;
                    let item = self.value()?;
                    map.insert(key, item);
                }
                Ok(Value::Table(map))
            }
            other => Err(format!("unknown value tag {other}")),
        }
    }
}

/// The content digest of an encoded document: 64-bit FNV-1a over the
/// canonical bytes — the store's object key. Reuses the workspace's one
/// digest kernel ([`autocat_nn::state::fnv1a`]), so every bit-identity
/// gate in the repo speaks the same fingerprint language.
pub fn content_digest(bytes: &[u8]) -> u64 {
    autocat_nn::state::fnv1a(bytes.iter().copied())
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_nn::value::{from_json, to_json};

    fn sample() -> Value {
        let mut inner = Value::table();
        inner.set("name", Value::Str("prime+probe \"PP\" → π".into()));
        inner.set("ways", Value::Int(-4));
        inner.set("big", Value::Int(i64::MAX));
        inner.set("rate", Value::Float(-0.012_345_678_9));
        inner.set("neg_zero", Value::Float(f64::from(-0.0f32)));
        inner.set("on", Value::Bool(true));
        inner.set("off", Value::Bool(false));
        inner.set(
            "hidden",
            Value::Array(vec![Value::Int(64), Value::Str("x".into()), Value::table()]),
        );
        let mut root = Value::table();
        root.set("scenario", inner);
        root.set("empty", Value::Array(vec![]));
        root.set("version", Value::Int(1));
        root
    }

    #[test]
    fn round_trips_every_variant() {
        let value = sample();
        let bytes = encode(&value);
        assert!(is_binary(&bytes));
        assert_eq!(decode(&bytes).unwrap(), value);
    }

    #[test]
    fn agrees_with_the_json_codec_tree_for_tree() {
        // The interchange contract: the same tree through either codec.
        let value = sample();
        let via_json = from_json(&to_json(&value)).unwrap();
        let via_binary = decode(&encode(&value)).unwrap();
        assert_eq!(via_json, via_binary);
    }

    #[test]
    fn nan_and_infinity_bits_survive() {
        // JSON cannot carry these; binary must (RNG-free sanity margin —
        // real checkpoints are finite, but the codec must not corrupt).
        for bits in [
            f64::NAN.to_bits(),
            0x7ff0_dead_beef_0001,
            f64::INFINITY.to_bits(),
        ] {
            let value = Value::Float(f64::from_bits(bits));
            match decode(&encode(&value)).unwrap() {
                Value::Float(f) => assert_eq!(f.to_bits(), bits),
                other => panic!("expected float, got {other:?}"),
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let value = sample();
        assert_eq!(encode(&value), encode(&value));
        assert_eq!(
            content_digest(&encode(&value)),
            content_digest(&encode(&value))
        );
    }

    #[test]
    fn truncation_at_every_length_is_an_error_not_a_panic() {
        let bytes = encode(&sample());
        for cut in 0..bytes.len() {
            assert!(
                decode(&bytes[..cut]).is_err(),
                "decode of {cut}/{} bytes must fail",
                bytes.len()
            );
        }
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode(&sample());
        let err = decode(b"JUNKJUNKJUNK").unwrap_err();
        assert!(err.contains("magic"), "{err}");

        bytes[4] = 0xFF; // version word
        let err = decode(&bytes).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn trailing_bytes_and_bad_tags_are_rejected() {
        let mut padded = encode(&sample());
        padded.push(0);
        let err = decode(&padded).unwrap_err();
        assert!(err.contains("trailing"), "{err}");

        let mut bad_tag = encode(&Value::Int(3));
        bad_tag[6] = 99; // the root tag byte
        let err = decode(&bad_tag).unwrap_err();
        assert!(err.contains("tag"), "{err}");

        let mut bad_bool = encode(&Value::Bool(true));
        *bad_bool.last_mut().unwrap() = 7;
        assert!(decode(&bad_bool).unwrap_err().contains("bool"));
    }

    #[test]
    fn invalid_utf8_in_strings_is_rejected() {
        let mut bytes = encode(&Value::Str("ab".into()));
        let n = bytes.len();
        bytes[n - 1] = 0xFF; // clobber a string byte with a non-UTF-8 one
        assert!(decode(&bytes).unwrap_err().contains("UTF-8"));
    }
}
