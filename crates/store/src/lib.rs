//! Content-addressed checkpoint store for the AutoCAT workspace.
//!
//! Three layers, each usable on its own:
//!
//! - [`codec`] — the compact versioned binary codec for
//!   `autocat_nn::value::Value` trees (magic `ACSB`). Bit-exact inverse
//!   of itself and tree-equal with the JSON codec; JSON remains the
//!   interchange/golden form, binary is the hot path.
//! - [`Store`] — `objects/<digest>.ckpt.bin` + `index.json`: put/fetch
//!   with digest verification, `(scenario, spec digest)` lookup,
//!   best/latest selection.
//! - [`RetentionPolicy`] — max-count / max-age / glob keep-patterns,
//!   applied only by an explicit [`Store::gc`] pass.
//! - [`Journal`] — a versioned append-only JSONL journal (header line +
//!   one record per line, torn-tail tolerant), the durability primitive
//!   the serving daemon's restart-safe job table is built on.
//!
//! The serving daemon (`autocat-serve`) and the resumable sweep sit on
//! top of this crate; all their persistence goes through it.

pub mod codec;
pub mod journal;
pub mod retention;
pub mod store;

pub use journal::Journal;
pub use retention::{glob_match, RetentionPolicy};
pub use store::{digest_from_hex, digest_hex, EntryMeta, GcStats, Store, StoreEntry};
