//! Policy-driven retention for the checkpoint store, in the style of a
//! relay cache policy: count limits, age limits and glob keep-patterns.
//!
//! A [`RetentionPolicy`] is *declarative* — nothing is deleted until an
//! explicit [`Store::gc`](crate::Store::gc) pass applies it, so operators
//! can dry-run a policy against [`Store::plan_gc`](crate::Store::plan_gc)
//! before committing. Rules compose as:
//!
//! 1. Entries whose scenario name matches any `keep_patterns` glob are
//!    exempt — never collected, never counted against `max_count`.
//! 2. `max_age_secs` (0 = unlimited) drops entries older than the horizon.
//! 3. `max_count` (0 = unlimited) keeps only the newest N entries **per
//!    scenario name** among what survives the age rule.
//!
//! The newest entry of every scenario always survives `max_count >= 1`, so
//! "fetch best checkpoint for scenario X" keeps working after any gc with
//! a non-zero count budget.

/// Glob match supporting `*` (any run of characters, including empty) and
/// `?` (exactly one character). Anchored at both ends, ASCII/UTF-8 safe
/// (matching is per `char`).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    fn rec(pat: &[char], text: &[char]) -> bool {
        match pat.split_first() {
            None => text.is_empty(),
            Some(('*', rest)) => (0..=text.len()).any(|skip| rec(rest, &text[skip..])),
            Some(('?', rest)) => !text.is_empty() && rec(rest, &text[1..]),
            Some((&c, rest)) => text.first() == Some(&c) && rec(rest, &text[1..]),
        }
    }
    let pat: Vec<char> = pattern.chars().collect();
    let text: Vec<char> = name.chars().collect();
    rec(&pat, &text)
}

/// What a gc pass may delete and what it must keep.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Newest checkpoints kept per scenario name (0 = unlimited).
    pub max_count: usize,
    /// Maximum entry age in seconds relative to the gc pass's `now`
    /// (0 = unlimited).
    pub max_age_secs: u64,
    /// Scenario-name globs (`*`/`?`) exempt from both limits.
    pub keep_patterns: Vec<String>,
}

impl Default for RetentionPolicy {
    /// Keep everything: no count limit, no age limit, no patterns.
    fn default() -> Self {
        Self {
            max_count: 0,
            max_age_secs: 0,
            keep_patterns: Vec::new(),
        }
    }
}

impl RetentionPolicy {
    /// A count-only policy.
    #[must_use]
    pub fn with_max_count(mut self, max_count: usize) -> Self {
        self.max_count = max_count;
        self
    }

    /// Adds an age horizon.
    #[must_use]
    pub fn with_max_age_secs(mut self, secs: u64) -> Self {
        self.max_age_secs = secs;
        self
    }

    /// Adds a keep pattern.
    #[must_use]
    pub fn keep(mut self, pattern: impl Into<String>) -> Self {
        self.keep_patterns.push(pattern.into());
        self
    }

    /// Whether the policy can ever delete anything.
    pub fn is_unlimited(&self) -> bool {
        self.max_count == 0 && self.max_age_secs == 0
    }

    /// Whether a scenario name is exempted by a keep pattern.
    pub fn is_kept(&self, scenario: &str) -> bool {
        self.keep_patterns.iter().any(|p| glob_match(p, scenario))
    }

    /// Whether an entry of `age_secs` violates the age rule.
    pub fn too_old(&self, age_secs: u64) -> bool {
        self.max_age_secs != 0 && age_secs > self.max_age_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn glob_matches_stars_and_question_marks() {
        assert!(glob_match("*", ""));
        assert!(glob_match("*", "table4-6"));
        assert!(glob_match("table4-*", "table4-16"));
        assert!(!glob_match("table4-*", "defense-misscount"));
        assert!(glob_match("table4-?", "table4-6"));
        assert!(!glob_match("table4-?", "table4-16"));
        assert!(glob_match("*miss*", "defense-misscount"));
        assert!(glob_match("a*b*c", "a-x-b-y-c"));
        assert!(!glob_match("a*b*c", "a-x-c"));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
    }

    #[test]
    fn policy_rules_compose() {
        let policy = RetentionPolicy::default()
            .with_max_count(2)
            .with_max_age_secs(100)
            .keep("defense-*");
        assert!(!policy.is_unlimited());
        assert!(policy.is_kept("defense-misscount"));
        assert!(!policy.is_kept("table4-6"));
        assert!(policy.too_old(101));
        assert!(!policy.too_old(100));

        assert!(RetentionPolicy::default().is_unlimited());
        assert!(!RetentionPolicy::default().too_old(u64::MAX));
    }
}
