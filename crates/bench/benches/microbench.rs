//! Criterion micro-benchmarks for the AutoCAT substrate.
//!
//! These measure the building blocks whose throughput determines how fast
//! the table/figure harnesses (and RL training generally) run: cache
//! accesses per replacement policy, environment steps, network
//! forward/backward passes, a full PPO update, detector feature extraction
//! and the covert-channel transmission loop.

use autocat::attacks::stealthy::StealthyStreamline;
use autocat::attacks::{ChannelKind, CovertChannelModel, MachineModel};
use autocat::cache::{Cache, CacheConfig, Domain, PolicyKind};
use autocat::detect::{CycloneFeatures, EventTrain};
use autocat::gym::{env::CacheGuessingGame, EnvConfig, Environment};
use autocat::nn::models::{
    MlpConfig, MlpPolicy, PolicyValueNet, TransformerConfig, TransformerPolicy,
};
use autocat::nn::Matrix;
use autocat::ppo::{Backbone, PpoConfig, Trainer};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn bench_cache_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_access");
    group
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    for policy in [
        PolicyKind::Lru,
        PolicyKind::Plru,
        PolicyKind::Rrip,
        PolicyKind::Random,
    ] {
        group.bench_function(policy.name(), |b| {
            let mut cache = Cache::new(CacheConfig::new(8, 8).with_policy(policy));
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            b.iter(|| {
                let addr = rng.gen_range(0..256u64);
                cache.access(addr, Domain::Attacker)
            });
        });
    }
    group.finish();
}

fn bench_env_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("env");
    group
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    group.bench_function("guessing_game_step", |b| {
        let mut env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        env.reset(&mut rng);
        let n = env.num_actions();
        b.iter(|| {
            // Avoid guess actions so episodes stay alive; reset when done.
            let a = rng.gen_range(0..n.min(4));
            let r = env.step(a, &mut rng);
            if r.done {
                env.reset(&mut rng);
            }
            r.reward
        });
    });
    group.finish();
}

fn bench_nn(c: &mut Criterion) {
    let mut group = c.benchmark_group("nn");
    group
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut mlp = MlpPolicy::new(&MlpConfig::new(256, 11), &mut rng);
    let obs = Matrix::full(32, 256, 0.3);
    group.bench_function("mlp_forward_batch32", |b| {
        b.iter(|| mlp.forward(&obs));
    });
    group.bench_function("mlp_train_batch32", |b| {
        b.iter(|| {
            mlp.zero_grad();
            mlp.train_batch(&obs, &mut |_, logits, _| (vec![0.01; logits.len()], 0.01));
        });
    });
    let tcfg = TransformerConfig::new(16, 16, 11).with_dims(32, 4, 64);
    let mut tf = TransformerPolicy::new(&tcfg, &mut rng);
    let tobs = Matrix::full(8, tcfg.obs_dim(), 0.3);
    group.bench_function("transformer_forward_batch8", |b| {
        b.iter(|| tf.forward(&tobs));
    });
    group.finish();
}

fn bench_rollout_lanes(c: &mut Criterion) {
    // The VecEnv engine's reason to exist: collecting a fixed number of
    // transitions must get cheaper per transition as lanes are added,
    // because N lanes share one batched forward per step.
    use autocat::gym::VecEnv;
    use autocat::ppo::rollout::collect;
    let mut group = c.benchmark_group("rollout");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    for lanes in [1usize, 8] {
        group.bench_function(&format!("collect_512_steps_{lanes}_lane"), |b| {
            let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            let mut venv = VecEnv::new(lanes, env, 7).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(7);
            let mut net = MlpPolicy::new(
                &MlpConfig::new(venv.obs_dim(), venv.num_actions()).with_hidden(vec![64, 64]),
                &mut rng,
            );
            b.iter(|| collect(&mut venv, &mut net, 512, 0.99, 0.95, &mut rng));
        });
    }
    group.finish();
}

fn bench_ppo_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("ppo");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(10);
    group.bench_function("update_256_steps", |b| {
        b.iter_batched(
            || {
                let env =
                    CacheGuessingGame::new(EnvConfig::flush_reload_fa4().with_window(8)).unwrap();
                Trainer::new(
                    env,
                    Backbone::Mlp { hidden: vec![32] },
                    PpoConfig {
                        horizon: 256,
                        minibatch: 64,
                        epochs_per_update: 2,
                        ..PpoConfig::default()
                    },
                    0,
                )
            },
            |mut t| t.train_update(),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_detectors(c: &mut Criterion) {
    let mut group = c.benchmark_group("detect");
    group
        .measurement_time(Duration::from_secs(1))
        .sample_size(30);
    // Build a realistic event log once.
    let mut cache = Cache::new(CacheConfig::direct_mapped(4));
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    for _ in 0..2000 {
        let domain = if rng.gen_bool(0.5) {
            Domain::Attacker
        } else {
            Domain::Victim
        };
        cache.access(rng.gen_range(0..16u64), domain);
    }
    let events = cache.drain_events();
    group.bench_function("autocorrelogram_lag30", |b| {
        let train = EventTrain::from_events(events.iter());
        b.iter(|| train.autocorrelogram(30));
    });
    group.bench_function("cyclone_features", |b| {
        let fx = CycloneFeatures::new(16);
        b.iter(|| fx.extract(&events));
    });
    group.finish();
}

fn bench_channel(c: &mut Criterion) {
    let mut group = c.benchmark_group("channel");
    group
        .measurement_time(Duration::from_secs(1))
        .sample_size(20);
    group.bench_function("ss_transmit_64_symbols", |b| {
        let ss = StealthyStreamline::new(8, PolicyKind::Lru, 2);
        let symbols: Vec<u64> = (0..64).map(|i| i % 4).collect();
        b.iter(|| ss.transmit(&symbols, || false));
    });
    group.bench_function("operating_point_sweep", |b| {
        let m = MachineModel::core_i7_6700();
        let model = CovertChannelModel::new(m, ChannelKind::StealthyStreamline2);
        b.iter(|| model.sweep(&[0.9, 1.0, 1.1], 20, 1));
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache_policies,
    bench_env_step,
    bench_nn,
    bench_rollout_lanes,
    bench_ppo_update,
    bench_detectors,
    bench_channel
);
criterion_main!(benches);
