//! Cross-thread-count determinism for the batched evaluation engine: the
//! same checkpointed policy evaluated under different `RAYON_NUM_THREADS`
//! settings must produce bit-identical statistics.
//!
//! Like `thread_determinism.rs`, the vendored rayon shim sizes its pool
//! once per process, so each thread count runs in its own subprocess: a
//! tiny `sweep` first produces real artifacts, then `eval-bench` is
//! spawned per thread count and its per-scenario stat digests compared.
//! `eval-bench` also hard-fails internally when batched eval at one lane
//! diverges from the serial evaluator, so every spawn doubles as the
//! serial-vs-batched bit-identity gate.

use std::path::PathBuf;
use std::process::Command;

fn sweep_dir() -> PathBuf {
    let dir = std::env::temp_dir().join("autocat-eval-determinism");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs one `eval-bench` process and returns its result-line digests,
/// keyed by scenario.
fn eval_digests(dir: &std::path::Path, threads: &str) -> Vec<(String, String)> {
    eval_digests_env(dir, threads, &[])
}

/// Like [`eval_digests`], with extra environment variables (e.g. a
/// `SIMD_TIER` override) applied to the child.
fn eval_digests_env(
    dir: &std::path::Path,
    threads: &str,
    envs: &[(&str, &str)],
) -> Vec<(String, String)> {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_eval-bench"));
    cmd.args(["--dir", dir.to_str().unwrap()])
        .args(["--eval-episodes", "40", "--lanes", "4"])
        .env("RAYON_NUM_THREADS", threads);
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("eval-bench must spawn");
    assert!(
        out.status.success(),
        "eval-bench failed under {threads} thread(s):\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let digests: Vec<(String, String)> = stdout
        .lines()
        .filter(|l| l.starts_with("eval-bench-result"))
        .map(|line| {
            let field = |key: &str| {
                line.split_whitespace()
                    .find_map(|f| f.strip_prefix(&format!("{key}=")))
                    .unwrap_or_else(|| panic!("missing `{key}` in `{line}`"))
                    .to_string()
            };
            (field("scenario"), field("digest"))
        })
        .collect();
    assert!(!digests.is_empty(), "no result lines in:\n{stdout}");
    digests
}

#[test]
fn batched_eval_stats_are_bit_identical_across_thread_counts() {
    let dir = sweep_dir();
    // Real artifacts: a one-update training run checkpointed by the sweep
    // pipeline (2 lanes + 2 shards exercise the parallel trainer paths).
    let out = Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(["--filter", "table4-6", "--steps", "1", "--seed", "11"])
        .args(["--lanes", "2", "--shards", "2", "--eval-episodes", "50"])
        .args(["--out", dir.to_str().unwrap()])
        .output()
        .expect("sweep must spawn");
    assert!(
        out.status.success(),
        "sweep failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let one = eval_digests(&dir, "1");
    let two = eval_digests(&dir, "2");
    let four = eval_digests(&dir, "4");
    assert_eq!(one, two, "eval stats diverged between 1 and 2 threads");
    assert_eq!(one, four, "eval stats diverged between 1 and 4 threads");

    // The SIMD half of the same contract: the scalar kernel instantiation
    // (`SIMD_TIER=scalar`) must reproduce the SIMD-tier evaluation bit for
    // bit, threaded included. Note the checkpoint being evaluated was
    // itself trained under the dispatch tier — the artifact is shared, so
    // this isolates the evaluation path.
    let scalar = eval_digests_env(&dir, "2", &[("SIMD_TIER", "scalar")]);
    assert_eq!(
        one, scalar,
        "eval stats diverged between the dispatch SIMD tier and SIMD_TIER=scalar"
    );
}
