//! End-to-end: a generated scenario saved to disk trains through the
//! real `scenario-run --file` binary, closing the loop from
//! `ScenarioGenerator` to the CLI surface users drive.

use autocat_scenario::generate::generate;
use std::process::Command;

#[test]
fn scenario_run_trains_a_generated_scenario_from_file() {
    let mut scenario = generate(42, 1).remove(0);
    // Shrink the training budget so the debug-profile binary finishes in
    // seconds: one tiny horizon, one lane, a handful of eval episodes.
    scenario.train.max_steps = 256;
    scenario.train.eval_episodes = 4;
    scenario.train.ppo.horizon = 64;
    scenario.train.ppo.minibatch = 32;
    scenario.train.ppo.epochs_per_update = 2;
    scenario.train.ppo.num_lanes = 1;

    let dir = std::env::temp_dir().join(format!("autocat-gen-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("generated.toml");
    scenario.save(&path).expect("save generated scenario");

    let out = Command::new(env!("CARGO_BIN_EXE_scenario-run"))
        .args([
            "--file",
            path.to_str().expect("utf-8 temp path"),
            "--steps",
            "256",
        ])
        .output()
        .expect("scenario-run must spawn");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    std::fs::remove_dir_all(&dir).ok();

    assert!(
        out.status.success(),
        "scenario-run failed\nstdout:\n{stdout}\nstderr:\n{stderr}"
    );
    assert!(
        stdout.contains(&scenario.name),
        "stdout names the scenario:\n{stdout}"
    );
    assert!(
        stdout.contains("accuracy"),
        "stdout reports evaluation stats:\n{stdout}"
    );
}
