//! Cross-thread-count determinism: the same training workload run under
//! different `RAYON_NUM_THREADS` settings must produce bit-identical
//! weights.
//!
//! The vendored rayon shim sizes its worker pool once per process, so the
//! only faithful way to vary the thread count is to vary it across
//! processes: these tests drive the `train-bench` binary's `--child` mode
//! (one full measurement per invocation) and compare the final-weight
//! digests it reports.

use std::process::Command;

/// Runs one `train-bench --child` measurement and returns its
/// `(steps, digest)` fields.
fn train_digest(threads: &str, extra: &[&str]) -> (u64, String) {
    train_digest_env(threads, extra, &[])
}

/// Like [`train_digest`], with extra environment variables (e.g. a
/// `SIMD_TIER` override) applied to the child.
fn train_digest_env(threads: &str, extra: &[&str], envs: &[(&str, &str)]) -> (u64, String) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_train-bench"));
    cmd.args([
        "--child",
        "--scenario",
        "table4-6",
        "--steps",
        "2048",
        "--lanes",
        "4",
        "--seed",
        "3",
    ])
    .args(extra)
    .env("RAYON_NUM_THREADS", threads);
    for (key, value) in envs {
        cmd.env(key, value);
    }
    let out = cmd.output().expect("train-bench --child must spawn");
    assert!(
        out.status.success(),
        "child failed under {threads} thread(s):\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find(|l| l.starts_with("train-bench-result"))
        .unwrap_or_else(|| panic!("no result line in:\n{stdout}"));
    let field = |key: &str| {
        line.split_whitespace()
            .find_map(|f| f.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("missing `{key}` in `{line}`"))
            .to_string()
    };
    (field("steps").parse().unwrap(), field("digest"))
}

#[test]
fn sharded_training_is_bit_identical_across_thread_counts() {
    // The tentpole acceptance criterion: N updates at 1 thread vs 4
    // threads, identical weights down to the last bit. 4 gradient shards
    // and 4 lanes ensure real parallel structure is exercised when
    // workers exist.
    let (steps_1, digest_1) = train_digest("1", &["--shards", "4"]);
    let (steps_4, digest_4) = train_digest("4", &["--shards", "4"]);
    assert_eq!(steps_1, steps_4, "both runs must do identical work");
    assert!(steps_1 >= 2048);
    assert_eq!(
        digest_1, digest_4,
        "weights diverged between 1 and 4 threads"
    );
}

#[test]
fn training_is_bit_identical_across_simd_tiers() {
    // The SIMD half of the determinism contract: kernel results are
    // defined by their canonical accumulation orders, so forcing the
    // scalar kernel instantiation (`SIMD_TIER=scalar`) must reproduce the
    // SIMD-tier training run to the last bit — including when the scalar
    // run is also multi-threaded and sharded. (The `scalar-fallback`
    // *feature* build is the compile-time version of the same claim; ci.sh
    // runs the test suite under it.)
    let (steps_simd, digest_simd) = train_digest_env("2", &["--shards", "2"], &[]);
    let (steps_scalar, digest_scalar) =
        train_digest_env("2", &["--shards", "2"], &[("SIMD_TIER", "scalar")]);
    assert_eq!(steps_simd, steps_scalar, "both runs must do identical work");
    assert_eq!(
        digest_simd, digest_scalar,
        "weights diverged between the dispatch SIMD tier and SIMD_TIER=scalar"
    );
}

#[test]
fn unsharded_training_is_also_thread_count_invariant() {
    // grad_shards = 1 keeps the historical single-threaded update, but
    // multi-lane rollout collection still uses the pool — it too must not
    // leak scheduling into the trajectory stream.
    let (_, digest_1) = train_digest("1", &["--shards", "1"]);
    let (_, digest_8) = train_digest("8", &["--shards", "1"]);
    assert_eq!(
        digest_1, digest_8,
        "rollout collection diverged between 1 and 8 threads"
    );
}
