//! CLI plumbing shared by the scenario-driven binaries (`scenario-run`,
//! `sweep`, `train-bench`) and the serving daemon: the common
//! training-override flags, parsed, applied and wire-encoded one way so
//! the front ends cannot drift.

use autocat_scenario::value::{self, u64_from, Value};
use autocat_scenario::Scenario;

/// The `--steps` / `--seed` / `--lanes` / `--shards` / `--threads` /
/// `--eval-episodes` override set.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TrainOverrides {
    /// `--steps N`: replaces the scenario's `train.max_steps`.
    pub steps: Option<u64>,
    /// `--seed N`: replaces the scenario's `train.seed`.
    pub seed: Option<u64>,
    /// `--lanes N`: replaces the scenario's VecEnv width (clamped to 1).
    pub lanes: Option<usize>,
    /// `--eval-episodes N`: replaces the scenario's post-training
    /// evaluation episode budget (`train.eval_episodes`, clamped to 1) —
    /// the N behind every per-policy accuracy/detection statistic.
    pub eval_episodes: Option<usize>,
    /// `--shards N`: replaces the scenario's data-parallel gradient shard
    /// count (`ppo.grad_shards`, clamped to 1). Part of the training math:
    /// different shard counts give different (all valid) float reductions.
    pub shards: Option<usize>,
    /// `--threads N`: caps the rayon worker pool via `RAYON_NUM_THREADS`.
    /// Scheduling only — never changes results (see the determinism
    /// contract in `autocat-ppo`'s sharded module).
    pub threads: Option<usize>,
}

impl TrainOverrides {
    /// Consumes `flag` if it is one of the override flags, pulling its
    /// value from `next_value`. Returns `Ok(true)` when consumed,
    /// `Ok(false)` when the flag is not an override flag.
    ///
    /// # Errors
    ///
    /// Returns an error if the flag's value is missing or not an integer.
    pub fn try_parse(
        &mut self,
        flag: &str,
        next_value: &mut dyn FnMut(&str) -> Result<String, String>,
    ) -> Result<bool, String> {
        fn parse<T: std::str::FromStr>(flag: &str, text: &str) -> Result<T, String> {
            text.parse()
                .map_err(|_| format!("{flag} expects an integer"))
        }
        match flag {
            "--steps" => self.steps = Some(parse(flag, &next_value(flag)?)?),
            "--seed" => self.seed = Some(parse(flag, &next_value(flag)?)?),
            "--lanes" => self.lanes = Some(parse(flag, &next_value(flag)?)?),
            "--eval-episodes" => self.eval_episodes = Some(parse(flag, &next_value(flag)?)?),
            "--shards" => self.shards = Some(parse(flag, &next_value(flag)?)?),
            "--threads" => self.threads = Some(parse(flag, &next_value(flag)?)?),
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Whether any override was given.
    pub fn any(&self) -> bool {
        self.steps.is_some()
            || self.seed.is_some()
            || self.lanes.is_some()
            || self.eval_episodes.is_some()
            || self.shards.is_some()
            || self.threads.is_some()
    }

    /// Applies the overrides to a scenario's training spec, and — for
    /// `--threads` — exports `RAYON_NUM_THREADS` so the lazily-started
    /// worker pool is sized accordingly. Call before the first parallel
    /// region (the binaries apply overrides before any training starts);
    /// once the pool exists the thread override has no effect.
    pub fn apply(&self, scenario: &mut Scenario) {
        if let Some(steps) = self.steps {
            scenario.train.max_steps = steps;
        }
        if let Some(seed) = self.seed {
            scenario.train.seed = seed;
        }
        if let Some(lanes) = self.lanes {
            scenario.train.ppo.num_lanes = lanes.max(1);
        }
        if let Some(episodes) = self.eval_episodes {
            scenario.train.eval_episodes = episodes.max(1);
        }
        if let Some(shards) = self.shards {
            scenario.train.ppo.grad_shards = shards.max(1);
        }
        if let Some(threads) = self.threads {
            std::env::set_var("RAYON_NUM_THREADS", threads.max(1).to_string());
        }
    }

    /// Encodes the job-relevant override subset as a [`Value`] table
    /// (empty table when nothing is overridden) — the form the serve
    /// protocol's `submit` request carries. `--threads` deliberately does
    /// not travel: the daemon's worker pool is daemon-global, and the
    /// determinism contract makes thread count a scheduling knob with no
    /// effect on results anyway.
    pub fn to_value(&self) -> Value {
        let mut table = Value::table();
        if let Some(steps) = self.steps {
            table.set("steps", value::u64_value(steps));
        }
        if let Some(seed) = self.seed {
            table.set("seed", value::u64_value(seed));
        }
        if let Some(lanes) = self.lanes {
            table.set("lanes", Value::Int(lanes as i64));
        }
        if let Some(episodes) = self.eval_episodes {
            table.set("eval_episodes", Value::Int(episodes as i64));
        }
        if let Some(shards) = self.shards {
            table.set("shards", Value::Int(shards as i64));
        }
        table
    }

    /// Decodes a table written by [`TrainOverrides::to_value`]. Unknown
    /// keys are an error — a client asking for an override the receiver
    /// would silently drop must hear about it.
    ///
    /// # Errors
    ///
    /// Returns an error on unknown keys or mistyped values.
    pub fn from_value(value: &Value) -> Result<TrainOverrides, String> {
        let table = value.as_table()?;
        let mut overrides = TrainOverrides::default();
        for (key, item) in table {
            match key.as_str() {
                "steps" => overrides.steps = Some(u64_from(item)?),
                "seed" => overrides.seed = Some(u64_from(item)?),
                "lanes" => overrides.lanes = Some(item.as_usize()?),
                "eval_episodes" => overrides.eval_episodes = Some(item.as_usize()?),
                "shards" => overrides.shards = Some(item.as_usize()?),
                other => return Err(format!("unknown override `{other}`")),
            }
        }
        Ok(overrides)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(args: &[&str]) -> Result<TrainOverrides, String> {
        let mut overrides = TrainOverrides::default();
        let mut it = args.iter().map(|s| s.to_string());
        while let Some(flag) = it.next() {
            let mut value =
                |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
            if !overrides.try_parse(&flag, &mut value)? {
                return Err(format!("unknown flag `{flag}`"));
            }
        }
        Ok(overrides)
    }

    #[test]
    fn parses_and_applies_the_trio() {
        let overrides = parse_all(&["--steps", "5000", "--seed", "7", "--lanes", "0"]).unwrap();
        assert!(overrides.any());
        let mut scenario = autocat_scenario::table4(1).unwrap();
        overrides.apply(&mut scenario);
        assert_eq!(scenario.train.max_steps, 5000);
        assert_eq!(scenario.train.seed, 7);
        assert_eq!(scenario.train.ppo.num_lanes, 1, "lanes clamp to 1");
    }

    #[test]
    fn parses_and_applies_shards() {
        let overrides = parse_all(&["--shards", "8"]).unwrap();
        assert!(overrides.any());
        let mut scenario = autocat_scenario::table4(1).unwrap();
        assert_eq!(scenario.train.ppo.grad_shards, 1);
        overrides.apply(&mut scenario);
        assert_eq!(scenario.train.ppo.grad_shards, 8);

        let zero = parse_all(&["--shards", "0"]).unwrap();
        zero.apply(&mut scenario);
        assert_eq!(scenario.train.ppo.grad_shards, 1, "shards clamp to 1");
    }

    #[test]
    fn parses_and_applies_eval_episodes() {
        let overrides = parse_all(&["--eval-episodes", "500"]).unwrap();
        assert!(overrides.any());
        let mut scenario = autocat_scenario::table4(1).unwrap();
        overrides.apply(&mut scenario);
        assert_eq!(scenario.train.eval_episodes, 500);

        let zero = parse_all(&["--eval-episodes", "0"]).unwrap();
        zero.apply(&mut scenario);
        assert_eq!(scenario.train.eval_episodes, 1, "episodes clamp to 1");
    }

    #[test]
    fn threads_override_parses_and_counts_as_an_override() {
        // `apply` exports RAYON_NUM_THREADS; don't call it here (the test
        // process shares one pool), just check the parse and `any`.
        let overrides = parse_all(&["--threads", "4"]).unwrap();
        assert!(overrides.any());
        assert_eq!(overrides.threads, Some(4));
    }

    #[test]
    fn value_codec_round_trips_and_rejects_unknown_keys() {
        let overrides = TrainOverrides {
            steps: Some(512),
            seed: Some(9),
            lanes: None,
            eval_episodes: Some(20),
            shards: None,
            threads: None,
        };
        let back = TrainOverrides::from_value(&overrides.to_value()).unwrap();
        assert_eq!(back, overrides);
        assert_eq!(
            TrainOverrides::from_value(&Value::table()).unwrap(),
            TrainOverrides::default()
        );

        // `--threads` never travels; a table carrying it is rejected, not
        // silently dropped.
        let mut bad = Value::table();
        bad.set("threads", Value::Int(4));
        let err = TrainOverrides::from_value(&bad).unwrap_err();
        assert!(err.contains("threads"), "{err}");
        let on_wire = TrainOverrides {
            threads: Some(4),
            ..TrainOverrides::default()
        };
        assert_eq!(on_wire.to_value(), Value::table(), "threads stays local");
    }

    #[test]
    fn rejects_bad_values_and_leaves_unknown_flags() {
        assert!(parse_all(&["--steps", "many"])
            .unwrap_err()
            .contains("--steps"));
        assert!(parse_all(&["--steps"]).unwrap_err().contains("--steps"));
        assert!(parse_all(&["--shards", "x"])
            .unwrap_err()
            .contains("--shards"));
        assert!(parse_all(&["--frobnicate"])
            .unwrap_err()
            .contains("unknown"));
        assert!(!parse_all(&[]).unwrap().any());
    }
}
