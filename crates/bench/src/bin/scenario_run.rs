//! Train and evaluate any named or file-loaded scenario.
//!
//! ```text
//! scenario-run --list                      # all registry names
//! scenario-run --scenario table4-6         # run a built-in scenario
//! scenario-run --file my_scenario.toml     # run a scenario file
//! scenario-run --scenario table4-1 --steps 50000 --seed 3 --lanes 4
//! scenario-run --scenario table4-6 --shards 8 --threads 8   # data-parallel update
//! scenario-run --scenario table4-16 --export cfg16.toml   # write, don't run
//! ```

use autocat_bench::cli::TrainOverrides;
use autocat_scenario::Scenario;

struct Args {
    scenario: Option<String>,
    file: Option<String>,
    overrides: TrainOverrides,
    export: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        file: None,
        overrides: TrainOverrides::default(),
        export: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        if args.overrides.try_parse(&flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--list" => args.list = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--file" => args.file = Some(value("--file")?),
            "--export" => args.export = Some(value("--export")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario-run [--list] [--scenario <name> | --file <path>] \
         [--steps N] [--seed N] [--lanes N] [--eval-episodes N] [--shards N] [--threads N] \
         [--export <path>]"
    );
    std::process::exit(2);
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    if args.list {
        println!("built-in scenarios:");
        for s in autocat_scenario::all() {
            println!("  {:<24} {}", s.name, s.summary);
        }
        return;
    }

    let mut scenario: Scenario = match (&args.scenario, &args.file) {
        (Some(name), None) => autocat_scenario::lookup(name).unwrap_or_else(|| {
            eprintln!("unknown scenario `{name}` (try --list)");
            std::process::exit(2);
        }),
        (None, Some(path)) => Scenario::load(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        _ => usage(),
    };

    args.overrides.apply(&mut scenario);

    if let Some(path) = &args.export {
        if let Err(e) = scenario.save(path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("wrote {} to {path}", scenario.name);
        return;
    }

    println!(
        "scenario : {} ({})\nbudget   : {} steps, seed {}, {} lane(s)",
        scenario.name,
        scenario.summary,
        scenario.train.max_steps,
        scenario.train.seed,
        scenario.train.ppo.num_lanes
    );
    let report = scenario.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("sequence : {}", report.sequence_notation);
    println!("category : {}", report.category);
    println!(
        "accuracy : {:.3} over {} episodes (detection rate {:.3})",
        report.accuracy, report.eval_episodes, report.detection_rate
    );
    println!("steps    : {}", report.training_steps);
    match report.epochs_to_converge {
        Some(epochs) => println!("converged: {epochs:.1} paper-epochs (3000 steps each)"),
        None => println!("converged: no (raise --steps for a full run)"),
    }
}
