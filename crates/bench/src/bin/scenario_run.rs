//! Train and evaluate any named or file-loaded scenario.
//!
//! ```text
//! scenario-run --list                      # all registry names
//! scenario-run --scenario table4-6         # run a built-in scenario
//! scenario-run --file my_scenario.toml     # run a scenario file
//! scenario-run --scenario table4-1 --steps 50000 --seed 3 --lanes 4
//! scenario-run --scenario table4-6 --shards 8 --threads 8   # data-parallel update
//! scenario-run --scenario table4-16 --export cfg16.toml   # write, don't run
//! scenario-run --scenario table4-3 --ckpt runs/t3.ckpt.bin  # train-or-load + digests
//! ```
//!
//! `--ckpt PATH` routes the run through the checkpoint layer: when the
//! file exists the policy is loaded from it (binary fast path, JSON
//! fallback — the codec is sniffed from the bytes) and only evaluated;
//! otherwise the scenario trains through the same shared path the sweep
//! and the serving daemon use and the checkpoint is written there. Either
//! way the run prints `params digest`/`eval digest` lines, which is what
//! lets ci.sh assert a daemon-trained checkpoint is bit-identical to this
//! one-shot equivalent.

use autocat::nn::state::params_digest;
use autocat::ppo::Trainer;
use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{row_and_stats, train_trainer};
use autocat_scenario::Scenario;

struct Args {
    scenario: Option<String>,
    file: Option<String>,
    overrides: TrainOverrides,
    export: Option<String>,
    ckpt: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: None,
        file: None,
        overrides: TrainOverrides::default(),
        export: None,
        ckpt: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        if args.overrides.try_parse(&flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--list" => args.list = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            "--file" => args.file = Some(value("--file")?),
            "--export" => args.export = Some(value("--export")?),
            "--ckpt" => args.ckpt = Some(value("--ckpt")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: scenario-run [--list] [--scenario <name> | --file <path>] \
         [--steps N] [--seed N] [--lanes N] [--eval-episodes N] [--shards N] [--threads N] \
         [--export <path>] [--ckpt <path>]"
    );
    std::process::exit(2);
}

/// The `--ckpt` path: load the checkpoint if present, else train through
/// the shared sweep/daemon code path and save it. Prints the row plus the
/// two bit-identity fingerprints.
fn run_with_checkpoint(scenario: &Scenario, ckpt: &str) -> Result<(), String> {
    let path = std::path::Path::new(ckpt);
    let mut trainer = if path.exists() {
        println!("loading  : {ckpt}");
        let env = scenario.build_env()?;
        Trainer::load_checkpoint(path, env)?
    } else {
        let mut trainer = train_trainer(scenario, |_, _| {})?;
        trainer.save_checkpoint(path)?;
        println!("wrote    : {ckpt}");
        trainer
    };
    let (row, stats) = row_and_stats(&mut trainer, scenario);
    println!("sequence : {}", row.sequence);
    println!("category : {}", row.category);
    println!(
        "accuracy : {:.3} over {} episodes (detection rate {:.3})",
        row.accuracy(),
        row.eval_episodes,
        row.detection_rate()
    );
    println!("steps    : {}", row.steps);
    let (_, net, _) = trainer.parts_mut();
    println!("params digest : {:016x}", params_digest(net));
    println!("eval digest   : {:016x}", stats.digest());
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    if args.list {
        println!("built-in scenarios:");
        for s in autocat_scenario::all() {
            println!("  {:<24} {}", s.name, s.summary);
        }
        return;
    }

    let mut scenario: Scenario = match (&args.scenario, &args.file) {
        (Some(name), None) => autocat_scenario::lookup(name).unwrap_or_else(|| {
            eprintln!("unknown scenario `{name}` (try --list)");
            std::process::exit(2);
        }),
        (None, Some(path)) => Scenario::load(path).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
        _ => usage(),
    };

    args.overrides.apply(&mut scenario);

    if let Some(path) = &args.export {
        if let Err(e) = scenario.save(path) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        println!("wrote {} to {path}", scenario.name);
        return;
    }

    println!(
        "scenario : {} ({})\nbudget   : {} steps, seed {}, {} lane(s)",
        scenario.name,
        scenario.summary,
        scenario.train.max_steps,
        scenario.train.seed,
        scenario.train.ppo.num_lanes
    );
    if let Some(ckpt) = &args.ckpt {
        if let Err(e) = run_with_checkpoint(&scenario, ckpt) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }
    let report = scenario.run().unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!("sequence : {}", report.sequence_notation);
    println!("category : {}", report.category);
    println!(
        "accuracy : {:.3} over {} episodes (detection rate {:.3})",
        report.accuracy, report.eval_episodes, report.detection_rate
    );
    println!("steps    : {}", report.training_steps);
    match report.epochs_to_converge {
        Some(epochs) => println!("converged: {epochs:.1} paper-epochs (3000 steps each)"),
        None => println!("converged: no (raise --steps for a full run)"),
    }
}
