//! Evaluation throughput + determinism benchmark over sweep artifacts.
//!
//! Loads every `<name>.scenario.json` / `<name>.ckpt.json` pair under a
//! sweep directory and evaluates each checkpointed policy three ways from
//! the identical trainer state:
//!
//! 1. **serial** — the historical one-env `eval::evaluate` loop (timed),
//! 2. **batched, 1 lane** — `eval::evaluate_batched` in scalar-compat
//!    mode, which must be **bit-identical** to the serial stats (the
//!    harness hard-fails on any divergence: this is the CI smoke gate),
//! 3. **batched, N lanes** — the lane-batched engine (timed; the
//!    throughput headline), whose stats digest is printed per scenario so
//!    subprocess tests can assert bit-identical results across
//!    `RAYON_NUM_THREADS` settings.
//!
//! ```text
//! eval-bench --dir runs/sweep                     # bench every artifact
//! eval-bench --dir runs/sweep --write             # also record BENCH_eval.json
//! eval-bench --dir runs/fr --eval-episodes 200 --lanes 16 --filter table4
//! ```

use autocat::gym::CacheGuessingGame;
use autocat::ppo::{eval, EvalStats, Trainer};
use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{artifact_names, checkpoint_path, scenario_path};
use autocat_scenario::Scenario;
use std::path::Path;
use std::time::Instant;

struct Args {
    dir: String,
    filter: Option<String>,
    episodes: usize,
    lanes: usize,
    write: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut overrides = TrainOverrides::default();
    let mut args = Args {
        dir: "runs/sweep".to_string(),
        filter: None,
        episodes: 100,
        lanes: 8,
        write: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        if overrides.try_parse(&flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--dir" => args.dir = value("--dir")?,
            "--filter" => args.filter = Some(value("--filter")?),
            "--write" => args.write = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // The shared override set carries training knobs this harness cannot
    // honor — the checkpoints are already trained.
    if overrides.steps.is_some() || overrides.seed.is_some() || overrides.shards.is_some() {
        return Err(
            "eval-bench evaluates existing checkpoints; --steps/--seed/--shards do not apply"
                .into(),
        );
    }
    if let Some(episodes) = overrides.eval_episodes {
        args.episodes = episodes.max(1);
    }
    if let Some(lanes) = overrides.lanes {
        args.lanes = lanes.max(1);
    }
    if let Some(threads) = overrides.threads {
        // Before the first rayon use, so the lazily-built pool sees it.
        std::env::set_var("RAYON_NUM_THREADS", threads.max(1).to_string());
    }
    // The evaluator clamps lanes to the episode budget; clamp here too so
    // the printed header and BENCH_eval.json record the effective lane
    // count, not a requested-but-unused one.
    args.lanes = args.lanes.min(args.episodes);
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: eval-bench [--dir DIR] [--filter SUBSTR] [--eval-episodes N] [--lanes N] \
         [--threads N] [--write]"
    );
    std::process::exit(2);
}

/// Loads a fresh checkpoint-state trainer for one artifact pair. Called
/// once per evaluation mode so every mode starts from the identical
/// trainer state (weights, env, RNG stream).
fn load_trainer(dir: &Path, name: &str) -> Result<Trainer<CacheGuessingGame>, String> {
    let err = |e: String| format!("{name}: {e}");
    let scenario = Scenario::load(scenario_path(dir, name)).map_err(err)?;
    let env = scenario.build_env().map_err(err)?;
    Trainer::load_checkpoint(checkpoint_path(dir, name), env).map_err(err)
}

struct Row {
    scenario: String,
    serial_secs: f64,
    batched_secs: f64,
    stats: EvalStats,
    digest: u64,
}

fn bench_one(dir: &Path, name: &str, episodes: usize, lanes: usize) -> Result<Row, String> {
    // Serial reference (timed).
    let mut trainer = load_trainer(dir, name)?;
    let (env, net, rng) = trainer.parts_mut();
    let start = Instant::now();
    let serial = eval::evaluate(env, net, episodes, false, rng);
    let serial_secs = start.elapsed().as_secs_f64();

    // The bit-identity gate: one batched lane from the same start state.
    let mut trainer = load_trainer(dir, name)?;
    let (env, net, rng) = trainer.parts_mut();
    let one_lane = eval::evaluate_batched(&*env, net, episodes, 1, false, rng).stats;
    // Digest comparison, not PartialEq: f32 == would let a -0.0/+0.0
    // association regression through, and single-bit is the contract.
    if one_lane.digest() != serial.digest() {
        return Err(format!(
            "{name}: batched eval at 1 lane diverged from serial \
             (serial digest {:016x}, batched {:016x})",
            serial.digest(),
            one_lane.digest()
        ));
    }

    // The batched engine (timed), again from the same start state.
    let mut trainer = load_trainer(dir, name)?;
    let (env, net, rng) = trainer.parts_mut();
    let start = Instant::now();
    let stats = eval::evaluate_batched(&*env, net, episodes, lanes, false, rng).stats;
    let batched_secs = start.elapsed().as_secs_f64();

    Ok(Row {
        scenario: name.to_string(),
        serial_secs,
        batched_secs,
        digest: stats.digest(),
        stats,
    })
}

fn write_json(args: &Args, rows: &[Row]) -> std::io::Result<()> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            let serial = args.episodes as f64 / r.serial_secs;
            let batched = args.episodes as f64 / r.batched_secs;
            format!(
                "    {{\"scenario\": \"{}\", \"serial_eps_per_sec\": {:.1}, \
                 \"batched_eps_per_sec\": {:.1}, \"speedup\": {:.2}, \"accuracy\": {:.4}, \
                 \"detection_rate\": {:.4}, \"avg_length\": {:.2}, \"digest\": \"{:016x}\"}}",
                r.scenario,
                serial,
                batched,
                batched / serial,
                r.stats.accuracy(),
                r.stats.detection_rate(),
                r.stats.avg_length,
                r.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"eval_throughput\",\n  \"episodes\": {},\n  \"lanes\": {},\n  \
         \"available_cpus\": {cpus},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.episodes,
        args.lanes,
        entries.join(",\n")
    );
    std::fs::write("BENCH_eval.json", json)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    let dir = Path::new(&args.dir);
    let names: Vec<String> = match artifact_names(dir) {
        Ok(names) => names
            .into_iter()
            .filter(|n| args.filter.as_ref().is_none_or(|f| n.contains(f.as_str())))
            .collect(),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    if names.is_empty() {
        eprintln!(
            "error: no scenario artifacts under {} (run a training sweep first)",
            dir.display()
        );
        std::process::exit(1);
    }

    println!(
        "evaluation throughput: {} scenario(s) under {}, {} episodes, {} lanes",
        names.len(),
        dir.display(),
        args.episodes,
        args.lanes
    );
    println!(
        "{:<24} {:>12} {:>13} {:>8} {:>9} {:>7}  digest",
        "scenario", "serial eps/s", "batched eps/s", "speedup", "accuracy", "detect"
    );
    let mut rows = Vec::new();
    for name in &names {
        match bench_one(dir, name, args.episodes, args.lanes) {
            Ok(row) => {
                let serial = args.episodes as f64 / row.serial_secs;
                let batched = args.episodes as f64 / row.batched_secs;
                println!(
                    "{:<24} {:>12.1} {:>13.1} {:>7.2}x {:>9.3} {:>7.3}  {:016x}",
                    row.scenario,
                    serial,
                    batched,
                    batched / serial,
                    row.stats.accuracy(),
                    row.stats.detection_rate(),
                    row.digest
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "serial vs batched(1 lane): bit-identical for all {} scenario(s)",
        rows.len()
    );

    // Greppable result lines for the cross-thread-count determinism test.
    for row in &rows {
        println!(
            "eval-bench-result scenario={} episodes={} digest={:016x}",
            row.scenario, args.episodes, row.digest
        );
    }

    if args.write {
        if let Err(e) = write_json(&args, &rows) {
            eprintln!("error: writing BENCH_eval.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_eval.json");
    }
}
