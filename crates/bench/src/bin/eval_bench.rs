//! Evaluation throughput + determinism benchmark over sweep artifacts.
//!
//! Loads every `<name>.scenario.json` / `<name>.ckpt.bin` pair (legacy
//! `.ckpt.json` artifacts are picked up as a fallback) under a sweep
//! directory and evaluates each checkpointed policy three ways from
//! the identical trainer state:
//!
//! 1. **serial** — the historical one-env `eval::evaluate` loop (timed),
//! 2. **batched, 1 lane** — `eval::evaluate_batched` in scalar-compat
//!    mode, which must be **bit-identical** to the serial stats (the
//!    harness hard-fails on any divergence: this is the CI smoke gate),
//! 3. **batched, N lanes** — the lane-batched engine (timed; the
//!    throughput headline), whose stats digest is printed per scenario so
//!    subprocess tests can assert bit-identical results across
//!    `RAYON_NUM_THREADS` settings.
//!
//! ```text
//! eval-bench --dir runs/sweep                     # bench every artifact
//! eval-bench --dir runs/sweep --write             # also record BENCH_eval.json
//! eval-bench --dir runs/fr --eval-episodes 200 --lanes 16 --filter table4
//! eval-bench --dir runs/sweep --threads-list 1,2,4,8
//! ```
//!
//! `--threads-list` adds the thread-scaling axis: the vendored rayon shim
//! sizes its pool once per process, so the harness re-executes itself once
//! per thread count (mirroring train-bench) and reports a scaling curve.
//! Per-scenario stat digests must be bit-identical across all thread
//! counts; the sweep hard-fails otherwise.
//!
//! Every run also times the checkpoint *codec* round trip — the same
//! `Value` tree serialized + written + read + parsed through the JSON
//! interchange codec and through the binary store codec — and records the
//! comparison under `"codec"` in `BENCH_eval.json` on `--write`.

use autocat::gym::CacheGuessingGame;
use autocat::ppo::{eval, EvalStats, Trainer};
use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{artifact_names, resolve_checkpoint_path, scenario_path};
use autocat_scenario::value;
use autocat_scenario::Scenario;
use std::path::Path;
use std::time::Instant;

struct Args {
    dir: String,
    filter: Option<String>,
    episodes: usize,
    lanes: usize,
    threads_list: Option<Vec<usize>>,
    write: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut overrides = TrainOverrides::default();
    let mut args = Args {
        dir: "runs/sweep".to_string(),
        filter: None,
        episodes: 100,
        lanes: 8,
        threads_list: None,
        write: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        if overrides.try_parse(&flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--dir" => args.dir = value("--dir")?,
            "--filter" => args.filter = Some(value("--filter")?),
            "--write" => args.write = true,
            "--threads-list" => {
                let list = value("--threads-list")?
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        // 0 means "unset" to the rayon shim (all cores); a
                        // row labeled 0 would be a lie.
                        Ok(0) | Err(_) => Err(format!("bad thread count `{t}`")),
                        Ok(n) => Ok(n),
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                if list.is_empty() {
                    return Err("--threads-list needs at least one entry".into());
                }
                args.threads_list = Some(list);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // The shared override set carries training knobs this harness cannot
    // honor — the checkpoints are already trained.
    if overrides.steps.is_some() || overrides.seed.is_some() || overrides.shards.is_some() {
        return Err(
            "eval-bench evaluates existing checkpoints; --steps/--seed/--shards do not apply"
                .into(),
        );
    }
    if let Some(episodes) = overrides.eval_episodes {
        args.episodes = episodes.max(1);
    }
    if let Some(lanes) = overrides.lanes {
        args.lanes = lanes.max(1);
    }
    if overrides.threads.is_some() && args.threads_list.is_some() {
        return Err("--threads fixes one pool size, --threads-list sweeps them; pick one".into());
    }
    if let Some(threads) = overrides.threads {
        // Before the first rayon use, so the lazily-built pool sees it.
        std::env::set_var("RAYON_NUM_THREADS", threads.max(1).to_string());
    }
    // The evaluator clamps lanes to the episode budget; clamp here too so
    // the printed header and BENCH_eval.json record the effective lane
    // count, not a requested-but-unused one.
    args.lanes = args.lanes.min(args.episodes);
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: eval-bench [--dir DIR] [--filter SUBSTR] [--eval-episodes N] [--lanes N] \
         [--threads N] [--threads-list 1,2,4,8] [--write]"
    );
    std::process::exit(2);
}

/// Loads a fresh checkpoint-state trainer for one artifact pair. Called
/// once per evaluation mode so every mode starts from the identical
/// trainer state (weights, env, RNG stream).
fn load_trainer(dir: &Path, name: &str) -> Result<Trainer<CacheGuessingGame>, String> {
    let err = |e: String| format!("{name}: {e}");
    let scenario = Scenario::load(scenario_path(dir, name)).map_err(err)?;
    let env = scenario.build_env().map_err(err)?;
    Trainer::load_checkpoint(resolve_checkpoint_path(dir, name), env).map_err(err)
}

/// Aggregate checkpoint-codec timings over every benched artifact: the
/// same [`Value`](autocat_scenario::value::Value) tree serialized, written,
/// read back and parsed through the JSON interchange codec and through the
/// binary store codec. Tree construction and trainer rebuild are common to
/// both paths and excluded — this times exactly what switching codecs
/// changes.
struct CodecBench {
    files: usize,
    reps: usize,
    json_save_secs: f64,
    json_load_secs: f64,
    bin_save_secs: f64,
    bin_load_secs: f64,
    json_bytes: u64,
    bin_bytes: u64,
}

impl CodecBench {
    fn roundtrip_speedup(&self) -> f64 {
        (self.json_save_secs + self.json_load_secs) / (self.bin_save_secs + self.bin_load_secs)
    }
}

fn bench_codec(dir: &Path, names: &[String]) -> Result<CodecBench, String> {
    const REPS: usize = 5;
    let tmp = std::env::temp_dir().join(format!("eval-bench-codec-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).map_err(|e| format!("creating {}: {e}", tmp.display()))?;
    let mut bench = CodecBench {
        files: names.len(),
        reps: REPS,
        json_save_secs: 0.0,
        json_load_secs: 0.0,
        bin_save_secs: 0.0,
        bin_load_secs: 0.0,
        json_bytes: 0,
        bin_bytes: 0,
    };
    for name in names {
        let mut trainer = load_trainer(dir, name)?;
        let tree = trainer.to_checkpoint_value();
        let json_path = tmp.join(format!("{name}.ckpt.json"));
        let bin_path = tmp.join(format!("{name}.ckpt.bin"));
        for rep in 0..REPS {
            let start = Instant::now();
            let text = value::to_json(&tree);
            std::fs::write(&json_path, &text).map_err(|e| format!("{name}: {e}"))?;
            bench.json_save_secs += start.elapsed().as_secs_f64();
            if rep == 0 {
                bench.json_bytes += text.len() as u64;
            }

            let start = Instant::now();
            let text = std::fs::read_to_string(&json_path).map_err(|e| format!("{name}: {e}"))?;
            let parsed = value::from_json(&text).map_err(|e| format!("{name}: {e}"))?;
            bench.json_load_secs += start.elapsed().as_secs_f64();

            let start = Instant::now();
            let bytes = autocat_store::codec::encode(&tree);
            std::fs::write(&bin_path, &bytes).map_err(|e| format!("{name}: {e}"))?;
            bench.bin_save_secs += start.elapsed().as_secs_f64();
            if rep == 0 {
                bench.bin_bytes += bytes.len() as u64;
            }

            let start = Instant::now();
            let bytes = std::fs::read(&bin_path).map_err(|e| format!("{name}: {e}"))?;
            let decoded =
                autocat_store::codec::decode(&bytes).map_err(|e| format!("{name}: {e}"))?;
            bench.bin_load_secs += start.elapsed().as_secs_f64();

            // Both loaded trees must equal the source tree — a timing win
            // from a codec that drops bits would be worthless.
            if parsed != tree || decoded != tree {
                return Err(format!("{name}: codec round trip is not bit-exact"));
            }
        }
    }
    let _ = std::fs::remove_dir_all(&tmp);
    Ok(bench)
}

struct Row {
    scenario: String,
    serial_secs: f64,
    batched_secs: f64,
    stats: EvalStats,
    digest: u64,
}

fn bench_one(dir: &Path, name: &str, episodes: usize, lanes: usize) -> Result<Row, String> {
    // Serial reference (timed).
    let mut trainer = load_trainer(dir, name)?;
    let (env, net, rng) = trainer.parts_mut();
    let start = Instant::now();
    let serial = eval::evaluate(env, net, episodes, false, rng);
    let serial_secs = start.elapsed().as_secs_f64();

    // The bit-identity gate: one batched lane from the same start state.
    let mut trainer = load_trainer(dir, name)?;
    let (env, net, rng) = trainer.parts_mut();
    let one_lane = eval::evaluate_batched(&*env, net, episodes, 1, false, rng).stats;
    // Digest comparison, not PartialEq: f32 == would let a -0.0/+0.0
    // association regression through, and single-bit is the contract.
    if one_lane.digest() != serial.digest() {
        return Err(format!(
            "{name}: batched eval at 1 lane diverged from serial \
             (serial digest {:016x}, batched {:016x})",
            serial.digest(),
            one_lane.digest()
        ));
    }

    // The batched engine (timed), again from the same start state.
    let mut trainer = load_trainer(dir, name)?;
    let (env, net, rng) = trainer.parts_mut();
    let start = Instant::now();
    let stats = eval::evaluate_batched(&*env, net, episodes, lanes, false, rng).stats;
    let batched_secs = start.elapsed().as_secs_f64();

    Ok(Row {
        scenario: name.to_string(),
        serial_secs,
        batched_secs,
        digest: stats.digest(),
        stats,
    })
}

/// One scenario's results in the shape `BENCH_eval.json` records; produced
/// directly by in-process runs and reparsed from child result lines by the
/// `--threads-list` sweep.
struct JsonRow {
    scenario: String,
    serial_secs: f64,
    batched_secs: f64,
    accuracy: f64,
    detection_rate: f64,
    avg_length: f64,
    digest: u64,
}

impl Row {
    fn to_json_row(&self) -> JsonRow {
        JsonRow {
            scenario: self.scenario.clone(),
            serial_secs: self.serial_secs,
            batched_secs: self.batched_secs,
            accuracy: self.stats.accuracy(),
            detection_rate: self.stats.detection_rate(),
            avg_length: f64::from(self.stats.avg_length),
            digest: self.digest,
        }
    }
}

/// `(threads, total batched secs across scenarios)` per sweep point.
type ScalingPoint = (usize, f64);

fn write_json(
    args: &Args,
    rows: &[JsonRow],
    scaling: &[ScalingPoint],
    codec: &CodecBench,
) -> std::io::Result<()> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            let serial = args.episodes as f64 / r.serial_secs;
            let batched = args.episodes as f64 / r.batched_secs;
            format!(
                "    {{\"scenario\": \"{}\", \"serial_eps_per_sec\": {:.1}, \
                 \"batched_eps_per_sec\": {:.1}, \"speedup\": {:.2}, \"accuracy\": {:.4}, \
                 \"detection_rate\": {:.4}, \"avg_length\": {:.2}, \"digest\": \"{:016x}\"}}",
                r.scenario,
                serial,
                batched,
                batched / serial,
                r.accuracy,
                r.detection_rate,
                r.avg_length,
                r.digest
            )
        })
        .collect();
    let total_episodes = (args.episodes * rows.len()) as f64;
    let scaling_entries: Vec<String> = scaling
        .iter()
        .map(|&(threads, secs)| {
            format!(
                "    {{\"threads\": {threads}, \"batched_eps_per_sec\": {:.1}, \
                 \"speedup\": {:.2}}}",
                total_episodes / secs,
                scaling[0].1 / secs
            )
        })
        .collect();
    let scaling_json = if scaling_entries.is_empty() {
        String::new()
    } else {
        format!(
            ",\n  \"thread_scaling\": [\n{}\n  ]",
            scaling_entries.join(",\n")
        )
    };
    let codec_json = format!(
        ",\n  \"codec\": {{\"files\": {}, \"reps\": {}, \
         \"json_save_ms\": {:.3}, \"json_load_ms\": {:.3}, \
         \"bin_save_ms\": {:.3}, \"bin_load_ms\": {:.3}, \
         \"json_bytes\": {}, \"bin_bytes\": {}, \"roundtrip_speedup\": {:.2}}}",
        codec.files,
        codec.reps,
        codec.json_save_secs * 1e3,
        codec.json_load_secs * 1e3,
        codec.bin_save_secs * 1e3,
        codec.bin_load_secs * 1e3,
        codec.json_bytes,
        codec.bin_bytes,
        codec.roundtrip_speedup()
    );
    let json = format!(
        "{{\n  \"benchmark\": \"eval_throughput\",\n  \"episodes\": {},\n  \"lanes\": {},\n  \
         \"available_cpus\": {cpus},\n  \"results\": [\n{}\n  ]{codec_json}{scaling_json}\n}}\n",
        args.episodes,
        args.lanes,
        entries.join(",\n")
    );
    std::fs::write("BENCH_eval.json", json)
}

/// Parses the `eval-bench-result` lines out of one child's stdout.
fn parse_child_rows(stdout: &str) -> Result<Vec<JsonRow>, String> {
    let mut rows = Vec::new();
    for line in stdout
        .lines()
        .filter(|l| l.starts_with("eval-bench-result"))
    {
        let field = |key: &str| {
            line.split_whitespace()
                .find_map(|f| f.strip_prefix(&format!("{key}=")))
                .ok_or_else(|| format!("missing `{key}` in `{line}`"))
        };
        let num = |key: &str| -> Result<f64, String> {
            field(key)?
                .parse::<f64>()
                .map_err(|e| format!("bad `{key}` in `{line}`: {e}"))
        };
        rows.push(JsonRow {
            scenario: field("scenario")?.to_string(),
            serial_secs: num("serial_secs")?,
            batched_secs: num("batched_secs")?,
            accuracy: num("accuracy")?,
            detection_rate: num("detection")?,
            avg_length: num("avg_length")?,
            digest: u64::from_str_radix(field("digest")?, 16)
                .map_err(|e| format!("bad `digest` in `{line}`: {e}"))?,
        });
    }
    if rows.is_empty() {
        return Err(format!("no eval-bench-result lines in:\n{stdout}"));
    }
    Ok(rows)
}

/// The `--threads-list` parent: one child process per thread count, a
/// digest gate across all of them, and a scaling table.
fn run_thread_sweep(args: &Args, threads_list: &[usize]) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut per_thread: Vec<(usize, Vec<JsonRow>)> = Vec::new();
    for &threads in threads_list {
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(["--dir", &args.dir])
            .args(["--eval-episodes", &args.episodes.to_string()])
            .args(["--lanes", &args.lanes.to_string()])
            .env("RAYON_NUM_THREADS", threads.to_string());
        if let Some(filter) = &args.filter {
            cmd.args(["--filter", filter]);
        }
        let out = cmd
            .output()
            .map_err(|e| format!("spawning child for {threads} thread(s): {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "child for {threads} thread(s) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        let rows = parse_child_rows(&String::from_utf8_lossy(&out.stdout))?;
        per_thread.push((threads, rows));
    }

    println!(
        "{:>8} {:>10} {:>14} {:>9}",
        "threads", "secs", "batched eps/s", "speedup"
    );
    let total_episodes = (args.episodes * per_thread[0].1.len()) as f64;
    let mut scaling = Vec::new();
    for (threads, rows) in &per_thread {
        let secs: f64 = rows.iter().map(|r| r.batched_secs).sum();
        scaling.push((*threads, secs));
        println!(
            "{:>8} {:>10.3} {:>14.1} {:>8.2}x",
            threads,
            secs,
            total_episodes / secs,
            scaling[0].1 / secs
        );
    }

    // The determinism gate: per scenario, every thread count must produce
    // the same stats digest.
    let (threads0, rows0) = &per_thread[0];
    for (threads, rows) in &per_thread[1..] {
        for (a, b) in rows0.iter().zip(rows.iter()) {
            if a.scenario != b.scenario || a.digest != b.digest {
                return Err(format!(
                    "eval stats diverged across thread counts: {} ({} thread(s)) \
                     -> {:016x}, {} ({} thread(s)) -> {:016x}",
                    a.scenario, threads0, a.digest, b.scenario, threads, b.digest
                ));
            }
        }
    }
    println!(
        "determinism: per-scenario digests bit-identical across {} thread count(s)",
        per_thread.len()
    );

    if args.write {
        // The codec comparison is single-threaded and thread-count
        // independent; run it once in the parent.
        let names = artifact_names_filtered(args)?;
        let codec = bench_codec(Path::new(&args.dir), &names)?;
        print_codec(&codec);
        write_json(args, rows0, &scaling, &codec)
            .map_err(|e| format!("writing BENCH_eval.json: {e}"))?;
        println!("wrote BENCH_eval.json");
    }
    Ok(())
}

/// The artifact names this invocation benches (filter applied, report
/// order).
fn artifact_names_filtered(args: &Args) -> Result<Vec<String>, String> {
    let names: Vec<String> = artifact_names(Path::new(&args.dir))?
        .into_iter()
        .filter(|n| args.filter.as_ref().is_none_or(|f| n.contains(f.as_str())))
        .collect();
    if names.is_empty() {
        return Err(format!(
            "no scenario artifacts under {} (run a training sweep first)",
            args.dir
        ));
    }
    Ok(names)
}

fn print_codec(codec: &CodecBench) {
    println!(
        "codec: JSON save+load {:.1}ms, binary save+load {:.1}ms over {} file(s) x {} rep(s) \
         -> {:.2}x ({} -> {} bytes)",
        (codec.json_save_secs + codec.json_load_secs) * 1e3,
        (codec.bin_save_secs + codec.bin_load_secs) * 1e3,
        codec.files,
        codec.reps,
        codec.roundtrip_speedup(),
        codec.json_bytes,
        codec.bin_bytes
    );
    println!(
        "eval-bench-codec files={} reps={} json_save_secs={:.6} json_load_secs={:.6} \
         bin_save_secs={:.6} bin_load_secs={:.6} roundtrip_speedup={:.4}",
        codec.files,
        codec.reps,
        codec.json_save_secs,
        codec.json_load_secs,
        codec.bin_save_secs,
        codec.bin_load_secs,
        codec.roundtrip_speedup()
    );
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    if let Some(threads_list) = args.threads_list.clone() {
        if let Err(e) = run_thread_sweep(&args, &threads_list) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
        return;
    }

    let dir = Path::new(&args.dir);
    let names: Vec<String> = match artifact_names_filtered(&args) {
        Ok(names) => names,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "evaluation throughput: {} scenario(s) under {}, {} episodes, {} lanes",
        names.len(),
        dir.display(),
        args.episodes,
        args.lanes
    );
    println!(
        "{:<24} {:>12} {:>13} {:>8} {:>9} {:>7}  digest",
        "scenario", "serial eps/s", "batched eps/s", "speedup", "accuracy", "detect"
    );
    let mut rows = Vec::new();
    for name in &names {
        match bench_one(dir, name, args.episodes, args.lanes) {
            Ok(row) => {
                let serial = args.episodes as f64 / row.serial_secs;
                let batched = args.episodes as f64 / row.batched_secs;
                println!(
                    "{:<24} {:>12.1} {:>13.1} {:>7.2}x {:>9.3} {:>7.3}  {:016x}",
                    row.scenario,
                    serial,
                    batched,
                    batched / serial,
                    row.stats.accuracy(),
                    row.stats.detection_rate(),
                    row.digest
                );
                rows.push(row);
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "serial vs batched(1 lane): bit-identical for all {} scenario(s)",
        rows.len()
    );

    // Greppable result lines for the cross-thread-count determinism test
    // and the `--threads-list` sweep parent (which rebuilds BENCH_eval.json
    // rows from these fields).
    for row in &rows {
        println!(
            "eval-bench-result scenario={} episodes={} serial_secs={:.6} \
             batched_secs={:.6} accuracy={:.6} detection={:.6} avg_length={:.4} \
             digest={:016x}",
            row.scenario,
            args.episodes,
            row.serial_secs,
            row.batched_secs,
            row.stats.accuracy(),
            row.stats.detection_rate(),
            row.stats.avg_length,
            row.digest
        );
    }

    // The codec save/load comparison (the binary-vs-JSON checkpoint
    // round trip) — always timed and printed; recorded on --write.
    let codec = match bench_codec(dir, &names) {
        Ok(codec) => codec,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    print_codec(&codec);

    if args.write {
        let json_rows: Vec<JsonRow> = rows.iter().map(Row::to_json_row).collect();
        if let Err(e) = write_json(&args, &json_rows, &[], &codec) {
            eprintln!("error: writing BENCH_eval.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_eval.json");
    }
}
