//! Table VII: PLRU with and without the PL cache.

use autocat::gym::EnvConfig;
use autocat_bench::{print_header, standard_explorer, Budget};

fn main() {
    let budget = Budget::from_env();
    print_header(
        "Table VII: PL cache vs baseline (paper: PL 37.67 epochs/8.1 len, baseline 7.67/7.0)",
        "Cache     | Epochs to converge | Final episode length | Sequence",
    );
    for (label, locked) in [("PL Cache", true), ("Baseline", false)] {
        let mut epochs_sum = 0.0;
        let mut len_sum = 0.0;
        let mut converged = 0u64;
        let mut seq = String::new();
        for run in 0..budget.runs() {
            let cfg = EnvConfig::pl_cache_study(locked);
            let report = standard_explorer(cfg, 30 + run, budget)
                .return_threshold(0.85)
                .run()
                .expect("valid PL config");
            if let Some(e) = report.epochs_to_converge {
                epochs_sum += e;
                converged += 1;
            }
            len_sum += report.episode_length as f64;
            seq = report.sequence_notation;
        }
        println!(
            "{:<9} | {:>18} | {:>20.1} | {}",
            label,
            if converged > 0 {
                format!("{:.2}", epochs_sum / converged as f64)
            } else {
                "n/a".into()
            },
            len_sum / budget.runs() as f64,
            seq,
        );
    }
    println!("\n(expected shape: PL cache takes several times more epochs than the baseline)");
}
