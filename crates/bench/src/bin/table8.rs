//! Table VIII: bit rate / accuracy / max autocorrelation for textbook,
//! RL-baseline and RL-autocor agents (CC-Hunter bypass).

use autocat::attacks::textbook::{run_scripted_multi, TextbookPrimeProbe};
use autocat::gym::{EnvConfig, Environment, MultiGuessConfig, MultiGuessEnv};
use autocat::ppo::{Backbone, PpoConfig, Trainer};
use autocat_bench::{print_header, Budget};
use rand::SeedableRng;

fn eval_rl(trainer: &mut Trainer<MultiGuessEnv>, episodes: usize) -> (f64, f64, f64) {
    let (env, net, rng) = trainer.parts_mut();
    let mut bit_rate = 0.0;
    let mut acc = 0.0;
    let mut max_ac = 0.0;
    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        loop {
            let (logits, _) = net.forward(&autocat::nn::Matrix::from_row(&obs));
            let a = autocat::nn::Categorical::from_logits(logits.row(0)).sample(rng);
            let r = env.step(a, rng);
            if r.done {
                break;
            }
            obs = r.obs;
        }
        let stats = env.stats();
        bit_rate += stats.bit_rate();
        acc += stats.accuracy();
        max_ac += stats.max_autocorr;
    }
    let n = episodes as f64;
    (bit_rate / n, acc / n, max_ac / n)
}

fn main() {
    let budget = Budget::from_env();
    let mut rng = rand::rngs::StdRng::seed_from_u64(8);
    print_header(
        "Table VIII: CC-Hunter bypass (paper: textbook 0.1625/1.0/0.973, RL baseline 0.229/0.989/0.933, RL autocor 0.216/0.997/0.519)",
        "Attack       | Bit rate (guess/step) | Accuracy | Avg max autocor",
    );

    // Textbook row (averaged over episodes).
    let mut br = 0.0;
    let mut acc = 0.0;
    let mut mac = 0.0;
    let eps = 50;
    for _ in 0..eps {
        let mut env =
            MultiGuessEnv::new(MultiGuessConfig::fig3_baseline().with_autocorr(-0.0, 30)).unwrap();
        let mut pp = TextbookPrimeProbe::new(&EnvConfig::prime_probe_dm4(), 4);
        let stats = run_scripted_multi(&mut env, &mut pp, &mut rng);
        br += stats.bit_rate();
        acc += stats.accuracy();
        mac += stats.max_autocorr;
    }
    println!(
        "{:<12} | {:>21.4} | {:>8.3} | {:>15.3}",
        "textbook",
        br / eps as f64,
        acc / eps as f64,
        mac / eps as f64
    );

    for (label, autocor_weight) in [("RL baseline", 0.0f32), ("RL autocor", -8.0)] {
        let mut cfg = MultiGuessConfig::fig3_baseline();
        if autocor_weight != 0.0 {
            cfg = cfg.with_autocorr(autocor_weight, 30);
        } else {
            cfg = cfg.with_autocorr(-0.0, 30); // track autocorr without penalty
        }
        let env = MultiGuessEnv::new(cfg).unwrap();
        let mut trainer = Trainer::new(
            env,
            Backbone::Mlp {
                hidden: vec![64, 64],
            },
            PpoConfig::small_env(),
            11,
        );
        trainer.train_until(8.0, budget.max_steps());
        let (bit_rate, accuracy, max_ac) = eval_rl(&mut trainer, 20);
        println!(
            "{:<12} | {:>21.4} | {:>8.3} | {:>15.3}",
            label, bit_rate, accuracy, max_ac
        );
    }
    println!("\n(expected shape: RL agents beat the textbook bit rate; RL autocor has much lower max autocorrelation)");
}
