//! Table X: covert channels on (modelled) real machines.

use autocat::attacks::{ChannelKind, CovertChannelModel, MachineModel};
use autocat_bench::print_header;

fn main() {
    print_header(
        "Table X: bit rate at <5% error (paper: 6.2/7.7 +24%, 3.6/4.5 +22%, 3.4/5.7 +67%, 2.1/3.7 +71%)",
        "CPU               | uarch      | L1D config | LRU (Mbps) | SS. (Mbps) | Impr.",
    );
    for m in MachineModel::table10_machines() {
        let lru = CovertChannelModel::new(m.clone(), ChannelKind::LruAddrBased)
            .best_rate_under(0.05, 200, 42);
        let ss = CovertChannelModel::new(m.clone(), ChannelKind::StealthyStreamline2)
            .best_rate_under(0.05, 200, 42);
        println!(
            "{:<17} | {:<10} | {:>3}-way    | {:>10.1} | {:>10.1} | {:>4.0}%",
            m.name,
            m.uarch,
            m.l1_ways,
            lru,
            ss,
            (ss / lru - 1.0) * 100.0
        );
    }
    println!("\n(expected shape: SS beats LRU everywhere; gain larger on 12-way than 8-way)");
}
