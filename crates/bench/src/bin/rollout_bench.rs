//! Rollout-throughput benchmark: steps/second collected by the VecEnv
//! engine at different lane counts and `RAYON_NUM_THREADS` settings,
//! against the paper's config 6 environment with the default 2x128 MLP.
//!
//! ```text
//! rollout_bench                        # sweep lanes x threads, print table
//! rollout_bench --write                # also record BENCH_rollout.json
//! rollout_bench --threads-list 1,4
//! ```
//!
//! Lane configurations are measured in interleaved repetitions and the
//! best repetition per configuration is reported, so scheduler noise on a
//! shared machine hits every configuration equally instead of biasing
//! whichever one ran during a slow phase.
//!
//! The vendored rayon shim sizes its pool once per process, so each
//! thread count runs in a **child process** (`--child` is the internal
//! single-measurement mode), mirroring train-bench. Every child also
//! digests the bytes of the batches it collected; for a fixed lane count
//! the collected data must be bit-identical across thread counts, and the
//! harness hard-fails if it is not.
//!
//! `--write` records the results to `BENCH_rollout.json` at the repository
//! root (the committed baseline tracks regressions across PRs).

use autocat::gym::{env::CacheGuessingGame, EnvConfig, VecEnv};
use autocat::nn::models::{MlpConfig, MlpPolicy};
use autocat::nn::state::fnv1a;
use autocat::ppo::rollout::collect;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::Command;
use std::time::Instant;

const LANE_CONFIGS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
const STEPS_PER_REP: usize = 32_768;
const HORIZON: usize = 2048;

struct Harness {
    venv: VecEnv<CacheGuessingGame>,
    net: MlpPolicy,
    rng: StdRng,
}

impl Harness {
    fn new(lanes: usize) -> Self {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let venv = VecEnv::new(lanes, env, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let net = MlpPolicy::new(
            &MlpConfig::new(venv.obs_dim(), venv.num_actions()).with_hidden(vec![128, 128]),
            &mut rng,
        );
        let mut h = Harness { venv, net, rng };
        // Warm-up pass (allocator, caches) before anything is timed.
        let _ = h.run_rep(1024);
        h
    }

    /// Collects ~`steps` transitions, returning (steps, seconds, digest of
    /// the collected batch bytes). The digest covers actions, rewards, and
    /// advantages of every round in order, so any cross-thread-count
    /// nondeterminism in collection or GAE shows up as a digest mismatch.
    fn run_rep(&mut self, steps: usize) -> (usize, f64, u64) {
        let rounds = steps.div_ceil(HORIZON);
        let mut collected = 0usize;
        let mut bytes: Vec<u8> = Vec::new();
        let start = Instant::now();
        for _ in 0..rounds {
            let batch = collect(
                &mut self.venv,
                &mut self.net,
                HORIZON,
                0.99,
                0.95,
                &mut self.rng,
            );
            collected += batch.actions.len();
            for &a in &batch.actions {
                bytes.extend((a as u64).to_le_bytes());
            }
            for &r in &batch.rewards {
                bytes.extend(r.to_le_bytes());
            }
            for &adv in &batch.advantages {
                bytes.extend(adv.to_le_bytes());
            }
        }
        let secs = start.elapsed().as_secs_f64();
        (collected, secs, fnv1a(bytes))
    }
}

struct Args {
    threads_list: Vec<usize>,
    child: bool,
    write: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        threads_list: vec![1, 2, 4, 8],
        child: false,
        write: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--child" => args.child = true,
            "--write" => args.write = true,
            "--threads-list" => {
                let value = it
                    .next()
                    .ok_or_else(|| "--threads-list requires a value".to_string())?;
                args.threads_list = value
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        // The rayon shim treats 0 as "unset" and falls back
                        // to all cores; a row labeled 0 would be a lie.
                        Ok(0) | Err(_) => Err(format!("bad thread count `{t}`")),
                        Ok(n) => Ok(n),
                    })
                    .collect::<Result<_, _>>()?;
                if args.threads_list.is_empty() {
                    return Err("--threads-list needs at least one entry".into());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// One full lane sweep in this process; returns (lanes, steps, secs,
/// digest) per lane configuration, best-of-REPS interleaved.
fn run_child() -> Vec<(usize, usize, f64, u64)> {
    let mut harnesses: Vec<Harness> = LANE_CONFIGS.iter().map(|&l| Harness::new(l)).collect();
    let mut best = vec![(0usize, f64::INFINITY); LANE_CONFIGS.len()];
    // The RNG stream advances across repetitions, so each rep collects
    // (deterministically) different data. The reported digest therefore
    // folds every rep's digest in order — it must not depend on which rep
    // happened to be fastest, or the cross-thread-count gate would compare
    // timing-selected samples instead of the full deterministic stream.
    let mut digests = vec![Vec::<u8>::new(); LANE_CONFIGS.len()];
    for _ in 0..REPS {
        for (i, h) in harnesses.iter_mut().enumerate() {
            let (steps, secs, digest) = h.run_rep(STEPS_PER_REP);
            digests[i].extend(digest.to_le_bytes());
            let (best_steps, best_secs) = best[i];
            if secs / (steps.max(1) as f64) < best_secs / (best_steps.max(1) as f64) {
                best[i] = (steps, secs);
            }
        }
    }
    LANE_CONFIGS
        .iter()
        .zip(best)
        .zip(digests)
        .map(|((&lanes, (steps, secs)), bytes)| (lanes, steps, secs, fnv1a(bytes)))
        .collect()
}

struct Row {
    threads: usize,
    lanes: usize,
    steps: usize,
    secs: f64,
    digest: u64,
}

/// Re-executes this binary once per thread count and parses the child's
/// per-lane result lines.
fn run_parent(threads_list: &[usize]) -> Result<Vec<Row>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut rows = Vec::new();
    for &threads in threads_list {
        let out = Command::new(&exe)
            .arg("--child")
            .env("RAYON_NUM_THREADS", threads.to_string())
            .output()
            .map_err(|e| format!("spawning child for {threads} thread(s): {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "child for {threads} thread(s) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        for line in stdout
            .lines()
            .filter(|l| l.starts_with("rollout-bench-result"))
        {
            let mut lanes = None;
            let mut steps = None;
            let mut secs = None;
            let mut digest = None;
            for field in line.split_whitespace().skip(1) {
                let (key, value) = field
                    .split_once('=')
                    .ok_or_else(|| format!("bad result field `{field}`"))?;
                match key {
                    "lanes" => lanes = value.parse::<usize>().ok(),
                    "steps" => steps = value.parse::<usize>().ok(),
                    "secs" => secs = value.parse::<f64>().ok(),
                    "digest" => digest = u64::from_str_radix(value, 16).ok(),
                    _ => {}
                }
            }
            match (lanes, steps, secs, digest) {
                (Some(lanes), Some(steps), Some(secs), Some(digest)) => rows.push(Row {
                    threads,
                    lanes,
                    steps,
                    secs,
                    digest,
                }),
                _ => return Err(format!("unparseable child result `{line}`")),
            }
        }
        let produced = rows.iter().filter(|r| r.threads == threads).count();
        if produced != LANE_CONFIGS.len() {
            return Err(format!(
                "child for {threads} thread(s) produced {produced} result line(s), \
                 expected {}",
                LANE_CONFIGS.len()
            ));
        }
    }
    Ok(rows)
}

fn write_json(rows: &[Row]) -> std::io::Result<()> {
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"lanes\": {}, \"steps\": {}, \"secs\": {:.4}, \
                 \"steps_per_sec\": {:.1}, \"digest\": \"{:016x}\"}}",
                r.threads,
                r.lanes,
                r.steps,
                r.secs,
                r.steps as f64 / r.secs,
                r.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"rollout_throughput\",\n  \"env\": \"flush_reload_fa4\",\n  \
         \"backbone\": \"mlp_128x128\",\n  \"horizon\": {HORIZON},\n  \"reps\": {REPS},\n  \
         \"available_cpus\": {cpus},\n  \"results\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write("BENCH_rollout.json", &json)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: rollout_bench [--threads-list 1,2,4,8] [--write]");
            std::process::exit(2);
        }
    };

    if args.child {
        for (lanes, steps, secs, digest) in run_child() {
            println!(
                "rollout-bench-result lanes={lanes} steps={steps} secs={secs:.6} \
                 digest={digest:016x}"
            );
        }
        return;
    }

    println!(
        "rollout throughput (config 6, MLP 2x128, horizon {HORIZON}, best of {REPS} \
         interleaved reps per thread count)"
    );
    let rows = match run_parent(&args.threads_list) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:>8} {:>6} {:>10} {:>10} {:>14} {:>9}  digest",
        "threads", "lanes", "steps", "secs", "steps/sec", "speedup"
    );
    let base = rows[0].steps as f64 / rows[0].secs;
    for r in &rows {
        let sps = r.steps as f64 / r.secs;
        println!(
            "{:>8} {:>6} {:>10} {:>10.3} {:>14.0} {:>8.2}x  {:016x}",
            r.threads,
            r.lanes,
            r.steps,
            r.secs,
            sps,
            sps / base,
            r.digest
        );
    }

    // The determinism gate: for each lane count, every thread count must
    // have collected bit-identical batches.
    for &lanes in &LANE_CONFIGS {
        let mut per_lane = rows.iter().filter(|r| r.lanes == lanes);
        let first = per_lane.next().expect("at least one thread count");
        if let Some(bad) = per_lane.find(|r| r.digest != first.digest) {
            eprintln!(
                "error: rollout diverged across thread counts at {lanes} lane(s): \
                 {} thread(s) -> {:016x}, {} thread(s) -> {:016x}",
                first.threads, first.digest, bad.threads, bad.digest
            );
            std::process::exit(1);
        }
    }
    println!(
        "determinism: batch digests bit-identical across {} thread count(s) at every lane count",
        args.threads_list.len()
    );

    if args.write {
        if let Err(e) = write_json(&rows) {
            eprintln!("error: writing BENCH_rollout.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_rollout.json");
    }
}
