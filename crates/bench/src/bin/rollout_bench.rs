//! Rollout-throughput benchmark: steps/second collected by the VecEnv
//! engine at different lane counts, against the paper's config 6
//! environment with the default 2x128 MLP.
//!
//! Run with: `cargo run --release -p autocat-bench --bin rollout_bench
//! [-- --write]`
//!
//! Lane configurations are measured in interleaved repetitions and the
//! best repetition per configuration is reported, so scheduler noise on a
//! shared machine hits every configuration equally instead of biasing
//! whichever one ran during a slow phase.
//!
//! `--write` records the results to `BENCH_rollout.json` at the repository
//! root (the committed baseline tracks regressions across PRs).

use autocat::gym::{env::CacheGuessingGame, EnvConfig, VecEnv};
use autocat::nn::models::{MlpConfig, MlpPolicy};
use autocat::ppo::rollout::collect;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const LANE_CONFIGS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 3;
const STEPS_PER_REP: usize = 32_768;
const HORIZON: usize = 2048;

struct Harness {
    venv: VecEnv<CacheGuessingGame>,
    net: MlpPolicy,
    rng: StdRng,
}

impl Harness {
    fn new(lanes: usize) -> Self {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let venv = VecEnv::new(lanes, env, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let net = MlpPolicy::new(
            &MlpConfig::new(venv.obs_dim(), venv.num_actions()).with_hidden(vec![128, 128]),
            &mut rng,
        );
        let mut h = Harness { venv, net, rng };
        // Warm-up pass (allocator, caches) before anything is timed.
        let _ = h.run_rep(1024);
        h
    }

    /// Collects ~`steps` transitions, returning (steps, seconds).
    fn run_rep(&mut self, steps: usize) -> (usize, f64) {
        let rounds = steps.div_ceil(HORIZON);
        let mut collected = 0usize;
        let start = Instant::now();
        for _ in 0..rounds {
            let batch = collect(
                &mut self.venv,
                &mut self.net,
                HORIZON,
                0.99,
                0.95,
                &mut self.rng,
            );
            collected += batch.actions.len();
        }
        (collected, start.elapsed().as_secs_f64())
    }
}

fn main() {
    let write = std::env::args().any(|a| a == "--write");
    println!(
        "rollout throughput (config 6, MLP 2x128, horizon {HORIZON}, best of {REPS} interleaved reps)"
    );
    let mut harnesses: Vec<Harness> = LANE_CONFIGS.iter().map(|&l| Harness::new(l)).collect();
    let mut best = vec![(0usize, f64::INFINITY); LANE_CONFIGS.len()];
    for _ in 0..REPS {
        for (i, h) in harnesses.iter_mut().enumerate() {
            let (steps, secs) = h.run_rep(STEPS_PER_REP);
            let per_step = secs / steps.max(1) as f64;
            let (best_steps, best_secs) = best[i];
            if per_step < best_secs / best_steps.max(1) as f64 {
                best[i] = (steps, secs);
            }
        }
    }
    println!(
        "{:>6} {:>10} {:>10} {:>14} {:>9}",
        "lanes", "steps", "secs", "steps/sec", "speedup"
    );
    let base = best[0].0 as f64 / best[0].1;
    let mut rows = Vec::new();
    for (&lanes, &(steps, secs)) in LANE_CONFIGS.iter().zip(best.iter()) {
        let sps = steps as f64 / secs;
        println!(
            "{:>6} {:>10} {:>10.3} {:>14.0} {:>8.2}x",
            lanes,
            steps,
            secs,
            sps,
            sps / base
        );
        rows.push((lanes, steps, secs, sps));
    }
    if write {
        let entries: Vec<String> = rows
            .iter()
            .map(|(lanes, steps, secs, sps)| {
                format!(
                    "    {{\"lanes\": {lanes}, \"steps\": {steps}, \"secs\": {secs:.4}, \"steps_per_sec\": {sps:.1}}}"
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"benchmark\": \"rollout_throughput\",\n  \"env\": \"flush_reload_fa4\",\n  \"backbone\": \"mlp_128x128\",\n  \"horizon\": {HORIZON},\n  \"reps\": {REPS},\n  \"results\": [\n{}\n  ]\n}}\n",
            entries.join(",\n")
        );
        std::fs::write("BENCH_rollout.json", &json).expect("write BENCH_rollout.json");
        println!("wrote BENCH_rollout.json");
    }
}
