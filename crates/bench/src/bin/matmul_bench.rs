//! Dense-kernel benchmark: GMAC/s per matmul kernel per shape, every
//! available SIMD tier versus the forced-scalar path, plus a bitwise
//! SIMD/scalar digest gate.
//!
//! ```text
//! matmul-bench             # print the GMAC/s table (all tiers vs scalar)
//! matmul-bench --write     # also record BENCH_matmul.json
//! matmul-bench --check     # digest gate only: SIMD and scalar kernels must
//!                          # agree bit-for-bit on every kernel and shape
//! ```
//!
//! Every tier at or below the dispatch tier is measured, not just the one
//! the dispatcher picked: the tiers are bit-identical by contract, so tier
//! choice is purely a throughput knob, and which tier wins is a property
//! of the *machine* (e.g. parts with one 512-bit FMA port and an AVX-512
//! license downclock run the two-rounding mul+add kernels faster on the
//! avx2 tier). Recording all tiers makes the committed baseline say so
//! instead of hiding it; `SIMD_TIER=avx2` is the production override.
//!
//! All kernel calls run under `with_inline_kernels`, for two reasons: the
//! forced SIMD tier is thread-local (it would not reach rayon pool
//! workers), and the point of this harness is the single-thread kernel
//! rate — thread scaling is the train/eval/rollout benches' axis. GMAC/s
//! counts one multiply-accumulate per `m*k*n` product term.
//!
//! The `--check` gate exists because the scalar path is not a test-only
//! artifact: it is what the `scalar-fallback` build and non-x86 targets
//! execute. Kernel results are *defined* by their canonical accumulation
//! orders, so any SIMD/scalar divergence is a bug, and CI runs this gate
//! on every push.

use autocat::nn::matrix::with_inline_kernels;
use autocat::nn::state::fnv1a;
use autocat::nn::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const REPS: usize = 3;
/// Product terms (m*k*n) to aim for per timed repetition, so every
/// shape's measurement runs long enough to dominate timer noise.
const MACS_PER_REP: usize = 1 << 27;

/// Benchmark shapes `(label, m, k, n)` for `A(m,k) * B(k,n)`; transposed
/// kernels reuse the same operand volumes. The first two mirror the real
/// workload (a fused rollout group forward and a training minibatch
/// against the default 128-wide MLP trunk); the rest probe square and
/// wide-reduction regimes.
const SHAPES: [(&str, usize, usize, usize); 4] = [
    ("group_fwd_4x132x128", 4, 132, 128),
    ("train_256x128x128", 256, 128, 128),
    ("square_128", 128, 128, 128),
    ("deep_k_64x512x64", 64, 512, 64),
];

/// Ragged shapes for the digest gate: off-block row counts, non-multiple
/// -of-8 widths, and sub-block sizes that force every tail path.
const CHECK_SHAPES: [(usize, usize, usize); 6] = [
    (4, 132, 128),
    (7, 33, 19),
    (1, 1, 1),
    (3, 8, 16),
    (13, 71, 5),
    (64, 100, 37),
];

fn dense(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    )
}

/// Mostly-zero matrix that lands in the sparse axpy path (density below
/// `1 / Matrix::MM_SPARSE_DENSITY_RECIP`).
fn sparse(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|_| {
                if rng.gen_range(0..10) == 0 {
                    rng.gen_range(-1.0f32..1.0)
                } else {
                    0.0
                }
            })
            .collect(),
    )
}

struct Kernel {
    name: &'static str,
    /// Builds `(a, b)` for shape `(m, k, n)` such that `run` performs
    /// `m*k*n` multiply-accumulates.
    make: fn(usize, usize, usize, &mut StdRng) -> (Matrix, Matrix),
    run: fn(&Matrix, &Matrix) -> Matrix,
}

const KERNELS: [Kernel; 4] = [
    Kernel {
        name: "matmul",
        make: |m, k, n, rng| (dense(m, k, rng), dense(k, n, rng)),
        run: |a, b| a.matmul(b),
    },
    Kernel {
        name: "matmul_sparse",
        make: |m, k, n, rng| (sparse(m, k, rng), dense(k, n, rng)),
        run: |a, b| a.matmul(b),
    },
    Kernel {
        name: "matmul_tn",
        make: |m, k, n, rng| (dense(k, m, rng), dense(k, n, rng)),
        run: |a, b| a.matmul_tn(b),
    },
    Kernel {
        name: "matmul_nt",
        make: |m, k, n, rng| (dense(m, k, rng), dense(n, k, rng)),
        run: |a, b| a.matmul_nt(b),
    },
];

fn digest(m: &Matrix) -> u64 {
    fnv1a(m.as_slice().iter().flat_map(|v| v.to_le_bytes()))
}

/// Times `kernel` on `(m, k, n)` under `tier`, returning GMAC/s (best of
/// `REPS` interleaved-within-shape repetitions).
fn bench_one(kernel: &Kernel, m: usize, k: usize, n: usize, tier: simd::Tier) -> f64 {
    let mut rng = StdRng::seed_from_u64(11);
    let (a, b) = (kernel.make)(m, k, n, &mut rng);
    let iters = (MACS_PER_REP / (m * k * n)).max(1);
    let mut best = f64::INFINITY;
    simd::with_forced_tier(tier, || {
        with_inline_kernels(|| {
            // Warm-up (allocator, page faults) before timing.
            std::hint::black_box((kernel.run)(&a, &b));
            for _ in 0..REPS {
                let start = Instant::now();
                for _ in 0..iters {
                    std::hint::black_box((kernel.run)(&a, &b));
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
        })
    });
    (iters * m * k * n) as f64 / best / 1e9
}

/// The SIMD/scalar digest gate: every kernel must produce bit-identical
/// output under the detected tier and the forced scalar path, on aligned
/// and ragged shapes. Returns the number of mismatches.
fn run_check(tier: simd::Tier) -> usize {
    let mut mismatches = 0;
    for &(m, k, n) in &CHECK_SHAPES {
        for kernel in &KERNELS {
            let mut rng = StdRng::seed_from_u64(23);
            let (a, b) = (kernel.make)(m, k, n, &mut rng);
            let fast =
                simd::with_forced_tier(tier, || with_inline_kernels(|| (kernel.run)(&a, &b)));
            let slow = simd::with_forced_tier(simd::Tier::Scalar, || {
                with_inline_kernels(|| (kernel.run)(&a, &b))
            });
            let (df, ds) = (digest(&fast), digest(&slow));
            if df != ds {
                eprintln!(
                    "error: {} {}x{}x{}: {} tier digest {:016x} != scalar digest {:016x}",
                    kernel.name,
                    m,
                    k,
                    n,
                    tier.name(),
                    df,
                    ds
                );
                mismatches += 1;
            }
        }
    }
    mismatches
}

fn main() {
    let write = std::env::args().any(|a| a == "--write");
    let check_only = std::env::args().any(|a| a == "--check");
    let dispatch = simd::tier();
    // Every SIMD tier this build/CPU can run (dispatch tier and below);
    // empty on non-x86 or a scalar-fallback build, where only the gate's
    // trivial scalar-vs-scalar leg remains meaningful.
    let tiers: Vec<simd::Tier> = [simd::Tier::Avx2, simd::Tier::Avx512]
        .into_iter()
        .filter(|&t| t <= dispatch)
        .collect();

    let gate_tiers = if tiers.is_empty() {
        // Still exercise the gate machinery (trivially scalar-vs-scalar)
        // so `--check` cannot silently become a no-op on such builds.
        vec![simd::Tier::Scalar]
    } else {
        tiers.clone()
    };
    for &tier in &gate_tiers {
        let mismatches = run_check(tier);
        if mismatches > 0 {
            eprintln!(
                "error: {mismatches} SIMD/scalar kernel divergence(s) on the {} tier",
                tier.name()
            );
            std::process::exit(1);
        }
        println!(
            "digest gate: {} tier and scalar agree bit-for-bit on {} kernel/shape pairs",
            tier.name(),
            CHECK_SHAPES.len() * KERNELS.len()
        );
    }
    if check_only {
        return;
    }

    println!(
        "matmul kernel throughput, all tiers vs forced scalar (dispatch tier {}, best of {REPS})",
        dispatch.name()
    );
    println!(
        "{:>14} {:>22} {:>8} {:>12} {:>12} {:>9}",
        "kernel", "shape", "tier", "simd GMAC/s", "scal GMAC/s", "speedup"
    );
    let mut rows = Vec::new();
    for kernel in &KERNELS {
        for &(label, m, k, n) in &SHAPES {
            let slow = bench_one(kernel, m, k, n, simd::Tier::Scalar);
            for &tier in &tiers {
                let fast = bench_one(kernel, m, k, n, tier);
                println!(
                    "{:>14} {:>22} {:>8} {:>12.2} {:>12.2} {:>8.2}x",
                    kernel.name,
                    label,
                    tier.name(),
                    fast,
                    slow,
                    fast / slow
                );
                rows.push((kernel.name, label, tier, fast, slow));
            }
        }
    }

    if write {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let entries: Vec<String> = rows
            .iter()
            .map(|(kernel, shape, tier, fast, slow)| {
                format!(
                    "    {{\"kernel\": \"{kernel}\", \"shape\": \"{shape}\", \
                     \"tier\": \"{}\", \"simd_gmacs\": {fast:.3}, \
                     \"scalar_gmacs\": {slow:.3}, \"speedup\": {:.2}}}",
                    tier.name(),
                    fast / slow
                )
            })
            .collect();
        let json = format!(
            "{{\n  \"benchmark\": \"matmul_kernels\",\n  \"dispatch_tier\": \"{}\",\n  \
             \"available_cpus\": {cpus},\n  \"reps\": {REPS},\n  \"results\": [\n{}\n  ]\n}}\n",
            dispatch.name(),
            entries.join(",\n")
        );
        std::fs::write("BENCH_matmul.json", &json).expect("write BENCH_matmul.json");
        println!("wrote BENCH_matmul.json");
    }
}
