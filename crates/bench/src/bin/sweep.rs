//! Train every registry scenario (or a `--filter` subset, or `--generate
//! N` seeded scenarios) across rayon-parallel lanes, checkpoint each
//! policy, and emit a Markdown + JSON Table IV reproduction report;
//! `--report-only` regenerates the identical report from the checkpoints
//! alone, and `--census` adds the bucketed scenario-space census.
//!
//! ```text
//! sweep --list                                  # scenarios a sweep would cover
//! sweep --filter table4 --steps 20000           # train all 17 Table IV rows
//! sweep --filter table4-6 --out runs/fr         # one scenario, custom dir
//! sweep --filter table4 --resume                # continue an interrupted sweep
//! sweep --report-only --out runs/fr             # report from artifacts alone
//! sweep --generate 64 --gen-seed 1 --census     # 64 seeded scenarios + census
//! ```
//!
//! `--generate N --gen-seed S` swaps the registry for N scenarios drawn
//! from `autocat_scenario::generate` — deterministic in S, so a re-run
//! (or `--resume`) regenerates byte-identical scenario files whose spec
//! digests match the manifest. The artifacts feed the same resumable
//! pipeline; `--census` buckets the report rows by scenario-space region
//! (`census.md`/`census.json`, see `autocat_bench::census`).
//!
//! `--resume` consults the per-run manifest (`manifest.json`): scenarios
//! whose recorded train-spec digest matches the current spec (after
//! overrides) and whose artifacts are on disk are skipped, and their
//! report rows are regenerated from the checkpoints instead — an
//! interrupted multi-scenario sweep continues in slices instead of
//! retraining from zero.
//!
//! The written report always covers **every** artifact under `--out`: a
//! filtered training run re-reads rows for previously-trained scenarios
//! from their checkpoints, so successive filtered sweeps into one
//! directory accumulate instead of truncating the report.
//!
//! Scenario-level parallelism uses the rayon worker pool; cap it with
//! `RAYON_NUM_THREADS=<n>`. Within a scenario, `--lanes` (or the
//! scenario's own `num_lanes`) controls VecEnv rollout width as usual.

use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{
    artifact_names, fill_missing_rows, resume_complete, row_from_artifacts, sort_rows, train_one,
    write_report, SweepRow,
};
use std::path::Path;

struct Args {
    filter: Option<String>,
    overrides: TrainOverrides,
    out: String,
    report_only: bool,
    resume: bool,
    list: bool,
    generate: Option<usize>,
    gen_seed: Option<u64>,
    census: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        filter: None,
        overrides: TrainOverrides::default(),
        out: "runs/sweep".to_string(),
        report_only: false,
        resume: false,
        list: false,
        generate: None,
        gen_seed: None,
        census: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        if args.overrides.try_parse(&flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--list" => args.list = true,
            "--report-only" => args.report_only = true,
            "--resume" => args.resume = true,
            "--census" => args.census = true,
            "--filter" => args.filter = Some(value("--filter")?),
            "--out" => args.out = value("--out")?,
            "--generate" => {
                let n = value("--generate")?;
                args.generate = Some(
                    n.parse()
                        .map_err(|_| format!("--generate: bad count `{n}`"))?,
                );
            }
            "--gen-seed" => {
                let s = value("--gen-seed")?;
                args.gen_seed = Some(
                    s.parse()
                        .map_err(|_| format!("--gen-seed: bad seed `{s}`"))?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // --list returns before any report is generated, so only the actual
    // report-only path needs its flags policed.
    if args.report_only
        && !args.list
        && (args.overrides.any() || args.filter.is_some() || args.generate.is_some())
    {
        return Err(
            "--report-only reads artifacts as-is; it cannot honor --filter/\
             --generate/--steps/--seed/--lanes/--eval-episodes/--shards/--threads"
                .into(),
        );
    }
    if args.report_only && args.resume {
        return Err("--resume is a training flag; --report-only never trains".into());
    }
    if args.gen_seed.is_some() && args.generate.is_none() {
        return Err("--gen-seed only applies with --generate N".into());
    }
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--list] [--filter SUBSTR] [--generate N] [--gen-seed S] [--steps N] \
         [--seed N] [--lanes N] [--eval-episodes N] [--shards N] [--threads N] [--out DIR] \
         [--resume] [--report-only] [--census]"
    );
    std::process::exit(2);
}

fn matches(name: &str, filter: &Option<String>) -> bool {
    filter.as_ref().is_none_or(|f| name.contains(f.as_str()))
}

/// The scenarios a run covers: the registry, or `--generate N` seeded
/// ones (deterministic in `--gen-seed`, default 0).
fn scenario_source(args: &Args) -> Vec<autocat_scenario::Scenario> {
    match args.generate {
        Some(n) => autocat_scenario::generate(args.gen_seed.unwrap_or(0), n),
        None => autocat_scenario::all(),
    }
}

fn train_all(args: &Args, out: &Path) -> Result<Vec<SweepRow>, String> {
    let mut scenarios: Vec<_> = scenario_source(args)
        .into_iter()
        .filter(|s| matches(&s.name, &args.filter))
        .collect();
    if scenarios.is_empty() {
        return Err("no scenario matches the filter (try --list)".into());
    }
    for scenario in &mut scenarios {
        args.overrides.apply(scenario);
    }
    std::fs::create_dir_all(out).map_err(|e| format!("creating {}: {e}", out.display()))?;

    if args.resume {
        // Skip scenarios whose artifacts are already complete for this
        // exact spec (manifest digest match + files on disk). Their rows
        // come back through `fill_missing_rows`, so the report still
        // covers them.
        let before = scenarios.len();
        scenarios.retain(|scenario| {
            let done = resume_complete(out, scenario);
            if done {
                eprintln!(
                    "sweep: {:<24} already complete, skipping (--resume)",
                    scenario.name
                );
            }
            !done
        });
        if scenarios.is_empty() {
            eprintln!("sweep: all {before} scenario(s) already complete; regenerating report");
            let mut rows = Vec::new();
            fill_missing_rows(out, &mut rows)?;
            return Ok(rows);
        }
    }

    eprintln!(
        "sweep: training {} scenario(s) across up to {} rayon worker(s) -> {}",
        scenarios.len(),
        rayon::current_num_threads(),
        out.display()
    );
    let mut slots: Vec<Option<Result<SweepRow, String>>> = Vec::new();
    slots.resize_with(scenarios.len(), || None);
    rayon::scope(|scope| {
        for (scenario, slot) in scenarios.iter().zip(slots.iter_mut()) {
            scope.spawn(move |_| {
                let result = train_one(scenario, out);
                if let Ok(row) = &result {
                    eprintln!(
                        "sweep: {:<24} {} steps, reward {:.3}, {} (accuracy {:.3} over {} episodes)",
                        row.scenario,
                        row.steps,
                        row.final_return,
                        row.category,
                        row.accuracy(),
                        row.eval_episodes
                    );
                }
                *slot = Some(result);
            });
        }
    });

    let mut rows = Vec::with_capacity(slots.len());
    let mut failures = Vec::new();
    for slot in slots {
        match slot.expect("every scenario task must have run") {
            Ok(row) => rows.push(row),
            Err(e) => failures.push(e),
        }
    }
    if !failures.is_empty() {
        return Err(failures.join("\n"));
    }
    // A filtered run must not truncate the report: pull rows for any
    // other artifacts already in the directory.
    fill_missing_rows(out, &mut rows)?;
    Ok(rows)
}

fn report_only(out: &Path) -> Result<Vec<SweepRow>, String> {
    let names = artifact_names(out)?;
    if names.is_empty() {
        return Err(format!(
            "no scenario artifacts under {} (run a training sweep first)",
            out.display()
        ));
    }
    names
        .iter()
        .map(|name| row_from_artifacts(out, name))
        .collect()
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    if args.list {
        println!("scenarios a sweep would cover:");
        for s in scenario_source(&args) {
            if matches(&s.name, &args.filter) {
                println!("  {:<24} {}", s.name, s.summary);
            }
        }
        return;
    }

    let out = Path::new(&args.out);
    let result = if args.report_only {
        report_only(out)
    } else {
        train_all(&args, out)
    };
    let mut rows = match result {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };
    sort_rows(&mut rows);
    if let Err(e) = write_report(out, &rows) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if args.census {
        if let Err(e) = autocat_bench::census::write_census(out, &rows) {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "{}",
        autocat_bench::sweep::render_markdown(&rows).trim_end()
    );
    println!(
        "\nwrote {} row(s): {} and {}",
        rows.len(),
        out.join("report.md").display(),
        out.join("report.json").display()
    );
    if args.census {
        println!(
            "wrote census: {} and {}",
            out.join("census.md").display(),
            out.join("census.json").display()
        );
    }
}
