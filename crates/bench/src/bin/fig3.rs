//! Fig. 3: conflict-miss event trains and autocorrelograms for the
//! textbook, RL-baseline and RL-autocor agents.
//!
//! `--cache DIR` keeps the two RL agents' checkpoints under `DIR`
//! (`fig3-<label>.ckpt.bin`): present checkpoints are loaded through the
//! binary fast path (JSON files from older runs decode too — the loader
//! sniffs the codec) instead of retraining, so iterating on the figure's
//! rendering no longer pays two training runs per invocation.

use autocat::attacks::textbook::{run_scripted_multi, TextbookPrimeProbe};
use autocat::detect::EventTrain;
use autocat::gym::{EnvConfig, Environment, MultiGuessConfig, MultiGuessEnv};
use autocat::ppo::{eval, Backbone, PpoConfig, Trainer};
use autocat_bench::{print_header, Budget};
use rand::SeedableRng;

/// Returns the RL agent for one figure lane: loaded from the cache
/// directory when a checkpoint is present, freshly trained (and cached)
/// otherwise.
fn trained_agent(
    label: &str,
    env: MultiGuessEnv,
    budget: Budget,
    cache: Option<&str>,
) -> Result<Trainer<MultiGuessEnv>, String> {
    let path = cache.map(|dir| std::path::Path::new(dir).join(format!("fig3-{label}.ckpt.bin")));
    if let Some(path) = path.as_ref().filter(|p| p.exists()) {
        eprintln!("fig3: loading {label} from {}", path.display());
        return Trainer::load_checkpoint(path, env);
    }
    let mut trainer = Trainer::new(
        env,
        Backbone::Mlp {
            hidden: vec![64, 64],
        },
        PpoConfig::small_env(),
        7,
    );
    trainer.train_until(8.0, budget.max_steps());
    if let Some(path) = path {
        trainer.save_checkpoint(&path)?;
        eprintln!("fig3: cached {label} at {}", path.display());
    }
    Ok(trainer)
}

fn render_train(label: &str, train: &EventTrain) {
    let bits: String = train
        .as_slice()
        .iter()
        .take(60)
        .map(|&b| if b == 1 { '#' } else { '.' })
        .collect();
    println!("{label:<12} A->V(#) V->A(.): {bits}");
}

fn render_autocorrelogram(label: &str, train: &EventTrain) {
    let gram = train.autocorrelogram(30);
    let line: String = gram
        .iter()
        .map(|&c| {
            if c > 0.75 {
                '!'
            } else if c > 0.3 {
                '+'
            } else if c > -0.3 {
                '.'
            } else {
                '-'
            }
        })
        .collect();
    println!(
        "{label:<12} C_p lags 0..30: {line}  (max C_p>=1: {:.3})",
        train.max_autocorrelation(30)
    );
}

fn main() {
    let budget = Budget::from_env();
    let mut cache = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--cache" => match it.next() {
                Some(dir) => cache = Some(dir),
                None => {
                    eprintln!("error: --cache requires a value");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("error: unknown flag `{other}`\nusage: fig3 [--cache DIR]");
                std::process::exit(2);
            }
        }
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    print_header("Fig. 3: event trains and autocorrelograms", "");

    // Textbook prime+probe.
    let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
    let mut pp = TextbookPrimeProbe::new(&EnvConfig::prime_probe_dm4(), 4);
    let _ = run_scripted_multi(&mut env, &mut pp, &mut rng);
    let train = EventTrain::from_events(env.episode_events().iter());
    render_train("textbook", &train);
    render_autocorrelogram("textbook", &train);

    // RL baseline and RL autocor.
    for (label, autocor) in [("RL_baseline", false), ("RL_autocor", true)] {
        let mut cfg = MultiGuessConfig::fig3_baseline();
        if autocor {
            cfg = cfg.with_autocorr(-8.0, 30);
        }
        let env = MultiGuessEnv::new(cfg).unwrap();
        let mut trainer = match trained_agent(label, env, budget, cache.as_deref()) {
            Ok(trainer) => trainer,
            Err(e) => {
                eprintln!("error: {label}: {e}");
                std::process::exit(1);
            }
        };
        let (env, net, rng2) = trainer.parts_mut();
        // Evaluate the trained agent and *report* the stats (this call
        // used to be discarded, silently serving only to advance the RNG
        // stream); the agent's quality contextualizes its event train.
        let stats = eval::evaluate(env, net, 20, false, rng2);
        println!(
            "{label:<12} eval over {} episodes: avg return {:.2}, avg length {:.1}, \
             detection rate {:.2}",
            stats.episodes,
            stats.avg_return,
            stats.avg_length,
            stats.detection_rate()
        );
        // One more full episode to read its event log.
        let mut obs = env.reset(rng2);
        loop {
            let (logits, _) = net.forward(&autocat::nn::Matrix::from_row(&obs));
            let a = autocat::nn::Categorical::from_logits(logits.row(0)).sample(rng2);
            let r = env.step(a, rng2);
            if r.done {
                break;
            }
            obs = r.obs;
        }
        let train = EventTrain::from_events(env.episode_events().iter());
        render_train(label, &train);
        render_autocorrelogram(label, &train);
    }
    println!("\n(expected shape: textbook & RL_baseline periodic (max C > 0.75); RL_autocor below threshold)");
}
