//! Fig. 4: the StealthyStreamline attack — the RL-found sequence under
//! miss-based detection, its construction, and the cache-state trace.

use autocat::attacks::stealthy::StealthyStreamline;
use autocat::cache::{Cache, CacheConfig, Domain, PolicyKind};
use autocat::gym::{EnvConfig, MonitorSpec};
use autocat_bench::{print_header, standard_explorer, Budget};

fn main() {
    let budget = Budget::from_env();
    print_header(
        "Fig. 4(b): sequence found by RL under miss-based detection",
        "",
    );
    let cfg =
        EnvConfig::replacement_study(PolicyKind::Lru).with_detection(MonitorSpec::strict_miss());
    let report = standard_explorer(cfg, 4, budget)
        .return_threshold(0.85)
        .run()
        .expect("valid fig4 config");
    println!(
        "RL sequence: {}   accuracy {:.3}  category {}{}",
        report.sequence_notation,
        report.accuracy,
        report.category,
        if report.converged {
            ""
        } else {
            "  [not converged]"
        },
    );

    print_header(
        "Fig. 4(c): StealthyStreamline construction (4-way, 2-bit)",
        "",
    );
    let ss = StealthyStreamline::new(4, PolicyKind::Lru, 2);
    let it = ss.iteration();
    println!(
        "iteration: fill {:?} -> victim slot -> {:?}; measured next round: {:?}",
        it.pre_victim, it.post_victim, it.measured
    );
    println!(
        "accesses/iteration: {} ({} timed); distinguishable symbols: {}",
        ss.accesses_per_iteration(),
        ss.measured_per_iteration(),
        ss.distinguishable_symbols()
    );

    print_header("Fig. 4(d): cache state (LRU ages) per victim secret", "");
    for secret in 0..4u64 {
        let mut cache = Cache::new(CacheConfig::fully_associative(4).with_policy(PolicyKind::Lru));
        for &a in &it.pre_victim {
            cache.access(a, Domain::Attacker);
        }
        cache.access(secret, Domain::Victim);
        for &a in &it.post_victim {
            cache.access(a, Domain::Attacker);
        }
        let contents: Vec<String> = cache
            .set_contents(0)
            .iter()
            .map(|c| match c {
                Some((a, _)) => a.to_string(),
                None => "-".into(),
            })
            .collect();
        let ages = cache.lru_ages(0).unwrap();
        let sig: Vec<bool> = it.measured.iter().map(|&m| cache.probe(m)).collect();
        println!(
            "victim accessed {secret}: lines {:?} ages {:?} measured-present {:?}",
            contents, ages, sig
        );
    }
    println!("\n(each secret leaves a distinct measured pattern -> 2 bits per iteration)");
}
