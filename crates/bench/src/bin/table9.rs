//! Table IX: SVM (Cyclone) detection — textbook vs RL baseline vs RL-SVM.

use autocat::attacks::textbook::{run_scripted_multi, TextbookPrimeProbe};
use autocat::cache::CacheConfig;
use autocat::detect::benign::{benign_pattern_suite, generate_trace, BenignWorkload};
use autocat::detect::svm::{cross_validate, SvmTrainConfig};
use autocat::detect::{CycloneFeatures, LinearSvm};
use autocat::gym::{EnvConfig, Environment, MultiGuessConfig, MultiGuessEnv};
use autocat::ppo::{Backbone, PpoConfig, Trainer};
use autocat_bench::{print_header, Budget};
use rand::SeedableRng;

fn main() {
    let budget = Budget::from_env();
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let features = CycloneFeatures::new(16);
    let cache_cfg = CacheConfig::direct_mapped(4);

    // Build the training set: benign traces (synthetic SPEC substitute) and
    // textbook prime+probe traces.
    let mut data: Vec<(Vec<f32>, i8)> = Vec::new();
    for (a, b) in benign_pattern_suite() {
        for rep in 0..4 {
            let wl = BenignWorkload {
                pattern_a: a,
                pattern_b: b,
                length: 320,
                ..BenignWorkload::default()
            };
            let mut r = rand::rngs::StdRng::seed_from_u64(rep * 97 + 13);
            let trace = generate_trace(&cache_cfg, &wl, &mut r);
            data.push((features.extract(&trace), -1));
        }
    }
    for rep in 0..64 {
        let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
        let mut pp = TextbookPrimeProbe::new(&EnvConfig::prime_probe_dm4(), 4);
        let mut r = rand::rngs::StdRng::seed_from_u64(rep);
        let _ = run_scripted_multi(&mut env, &mut pp, &mut r);
        data.push((features.extract(env.episode_events()), 1));
    }
    let cv = cross_validate(&data, 5, &SvmTrainConfig::default(), &mut rng);
    println!("SVM 5-fold cross-validation accuracy: {cv:.3} (paper: 0.988)");
    let svm = LinearSvm::train(&data, &SvmTrainConfig::default(), &mut rng);

    print_header(
        "Table IX: SVM detection (paper: textbook 0.1625/1.0/0.997, RL baseline 0.228/0.998/0.715, RL SVM 0.168/0.998/0.00333)",
        "Attacker     | Bit rate | Accuracy | Detection rate",
    );

    // Textbook row.
    let eval_eps = 40;
    let mut br = 0.0;
    let mut acc = 0.0;
    let mut det = 0.0;
    for rep in 0..eval_eps {
        let mut env = MultiGuessEnv::new(MultiGuessConfig::fig3_baseline()).unwrap();
        let mut pp = TextbookPrimeProbe::new(&EnvConfig::prime_probe_dm4(), 4);
        let mut r = rand::rngs::StdRng::seed_from_u64(1000 + rep);
        let stats = run_scripted_multi(&mut env, &mut pp, &mut r);
        br += stats.bit_rate();
        acc += stats.accuracy();
        det += f64::from(svm.predict(&features.extract(env.episode_events())) == 1);
    }
    let n = eval_eps as f64;
    println!(
        "{:<12} | {:>8.4} | {:>8.3} | {:>14.4}",
        "textbook",
        br / n,
        acc / n,
        det / n
    );

    // RL baseline (no penalty) and RL SVM (penalized).
    for (label, penalized) in [("RL baseline", false), ("RL SVM", true)] {
        let mut cfg = MultiGuessConfig::fig3_baseline();
        if penalized {
            cfg = cfg.with_svm(svm.clone(), features.clone(), -6.0);
        }
        let env = MultiGuessEnv::new(cfg).unwrap();
        let mut trainer = Trainer::new(
            env,
            Backbone::Mlp {
                hidden: vec![64, 64],
            },
            PpoConfig::small_env(),
            17,
        );
        trainer.train_until(8.0, budget.max_steps());
        let (env, net, r2) = trainer.parts_mut();
        let mut br = 0.0;
        let mut acc = 0.0;
        let mut det = 0.0;
        let eps = 20;
        for _ in 0..eps {
            let mut obs = env.reset(r2);
            loop {
                let (logits, _) = net.forward(&autocat::nn::Matrix::from_row(&obs));
                let a = autocat::nn::Categorical::from_logits(logits.row(0)).sample(r2);
                let res = env.step(a, r2);
                if res.done {
                    break;
                }
                obs = res.obs;
            }
            let stats = env.stats();
            br += stats.bit_rate();
            acc += stats.accuracy();
            det += f64::from(svm.predict(&features.extract(env.episode_events())) == 1);
        }
        let n = eps as f64;
        println!(
            "{:<12} | {:>8.4} | {:>8.3} | {:>14.4}",
            label,
            br / n,
            acc / n,
            det / n
        );
    }
    println!("\n(expected shape: textbook/RL-baseline detected often; RL-SVM detection near zero at some bit-rate cost)");
}
