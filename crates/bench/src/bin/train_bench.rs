//! End-to-end training throughput benchmark: PPO steps/second (rollout
//! collection **and** optimization) at several `RAYON_NUM_THREADS`
//! settings, on a registry scenario (default `table4-6`, the paper's
//! flush+reload row).
//!
//! ```text
//! train-bench                          # sweep 1/2/4/8 threads, print table
//! train-bench --write                  # also record BENCH_train.json
//! train-bench --steps 32768 --lanes 8 --shards 8 --threads-list 1,4
//! ```
//!
//! The vendored rayon shim sizes its pool once per process from
//! `RAYON_NUM_THREADS`, so each thread count is measured in a **child
//! process** (`--child` is the internal single-measurement mode; the
//! cross-thread-count determinism test drives it directly). The workload —
//! scenario, steps, lanes, gradient shards, seed — is identical across
//! children; only the pool size varies. That makes the sweep double as a
//! determinism gate: the final-weight digests of all children must be
//! bit-identical, and the harness hard-fails if they are not.

use autocat::nn::state::params_digest;
use autocat::ppo::Trainer;
use autocat_bench::cli::TrainOverrides;
use std::process::Command;
use std::time::Instant;

struct Args {
    overrides: TrainOverrides,
    scenario: String,
    threads_list: Vec<usize>,
    child: bool,
    write: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        overrides: TrainOverrides::default(),
        scenario: "table4-6".to_string(),
        threads_list: vec![1, 2, 4, 8],
        child: false,
        write: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        if args.overrides.try_parse(&flag, &mut value)? {
            continue;
        }
        match flag.as_str() {
            "--child" => args.child = true,
            "--write" => args.write = true,
            "--scenario" => args.scenario = value("--scenario")?,
            "--threads-list" => {
                args.threads_list = value("--threads-list")?
                    .split(',')
                    .map(|t| match t.trim().parse::<usize>() {
                        // The rayon shim treats 0 as "unset" and falls back
                        // to all cores; a row labeled 0 would be a lie.
                        Ok(0) | Err(_) => Err(format!("bad thread count `{t}`")),
                        Ok(n) => Ok(n),
                    })
                    .collect::<Result<_, _>>()?;
                if args.threads_list.is_empty() {
                    return Err("--threads-list needs at least one entry".into());
                }
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    // The thread count is this harness's sweep axis, one child process per
    // value; a single `--threads` override would be silently meaningless.
    if args.overrides.threads.is_some() {
        return Err("train-bench sweeps thread counts; use --threads-list, not --threads".into());
    }
    Ok(args)
}

fn usage() -> ! {
    eprintln!(
        "usage: train-bench [--scenario NAME] [--steps N] [--seed N] [--lanes N] \
         [--shards N] [--threads-list 1,2,4,8] [--write]"
    );
    std::process::exit(2);
}

/// Benchmark defaults when the shared override flags are absent: a
/// workload wide enough to occupy 8 workers in both phases.
fn apply_defaults(overrides: &mut TrainOverrides) {
    overrides.steps = overrides.steps.or(Some(16_384));
    overrides.lanes = overrides.lanes.or(Some(8));
    overrides.shards = overrides.shards.or(Some(8));
    overrides.seed = overrides.seed.or(Some(7));
}

/// One measurement in this process: train the scenario to its step budget,
/// report `(steps, secs, final-weight digest)`.
fn run_child(args: &Args) -> Result<(u64, f64, u64), String> {
    let mut scenario = autocat_scenario::lookup(&args.scenario).ok_or_else(|| {
        format!(
            "unknown scenario `{}` (try scenario-run --list)",
            args.scenario
        )
    })?;
    args.overrides.apply(&mut scenario);
    let env = scenario.build_env()?;
    let mut trainer = Trainer::new(
        env,
        scenario.train.backbone.clone(),
        scenario.train.ppo,
        scenario.train.seed,
    );
    let start = Instant::now();
    // Drive plain updates (no convergence early-exit): every child must
    // perform the identical amount of work.
    while trainer.total_steps() < scenario.train.max_steps {
        trainer.train_update();
    }
    let secs = start.elapsed().as_secs_f64();
    let digest = params_digest(trainer.net_mut());
    Ok((trainer.total_steps(), secs, digest))
}

struct Row {
    threads: usize,
    steps: u64,
    secs: f64,
    digest: u64,
}

/// Re-executes this binary once per thread count and parses the child's
/// result line.
fn run_parent(args: &Args) -> Result<Vec<Row>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut rows = Vec::new();
    for &threads in &args.threads_list {
        let mut cmd = Command::new(&exe);
        cmd.arg("--child")
            .args(["--scenario", &args.scenario])
            .env("RAYON_NUM_THREADS", threads.to_string());
        for (flag, value) in [
            ("--steps", args.overrides.steps.map(|v| v as usize)),
            ("--seed", args.overrides.seed.map(|v| v as usize)),
            ("--lanes", args.overrides.lanes),
            ("--shards", args.overrides.shards),
        ] {
            if let Some(v) = value {
                cmd.args([flag, &v.to_string()]);
            }
        }
        let out = cmd
            .output()
            .map_err(|e| format!("spawning child for {threads} thread(s): {e}"))?;
        if !out.status.success() {
            return Err(format!(
                "child for {threads} thread(s) failed:\n{}",
                String::from_utf8_lossy(&out.stderr)
            ));
        }
        let stdout = String::from_utf8_lossy(&out.stdout);
        let line = stdout
            .lines()
            .find(|l| l.starts_with("train-bench-result"))
            .ok_or_else(|| format!("child for {threads} thread(s) printed no result line"))?;
        let mut steps = None;
        let mut secs = None;
        let mut digest = None;
        for field in line.split_whitespace().skip(1) {
            let (key, value) = field
                .split_once('=')
                .ok_or_else(|| format!("bad result field `{field}`"))?;
            match key {
                "steps" => steps = value.parse::<u64>().ok(),
                "secs" => secs = value.parse::<f64>().ok(),
                "digest" => digest = u64::from_str_radix(value, 16).ok(),
                _ => {}
            }
        }
        match (steps, secs, digest) {
            (Some(steps), Some(secs), Some(digest)) => rows.push(Row {
                threads,
                steps,
                secs,
                digest,
            }),
            _ => return Err(format!("unparseable child result `{line}`")),
        }
    }
    Ok(rows)
}

fn write_json(args: &Args, rows: &[Row]) -> std::io::Result<()> {
    let overrides = &args.overrides;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let entries: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"threads\": {}, \"steps\": {}, \"secs\": {:.4}, \"steps_per_sec\": {:.1}, \"digest\": \"{:016x}\"}}",
                r.threads,
                r.steps,
                r.secs,
                r.steps as f64 / r.secs,
                r.digest
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"benchmark\": \"train_throughput\",\n  \"scenario\": \"{}\",\n  \"steps\": {},\n  \"lanes\": {},\n  \"grad_shards\": {},\n  \"available_cpus\": {cpus},\n  \"results\": [\n{}\n  ]\n}}\n",
        args.scenario,
        overrides.steps.unwrap_or(0),
        overrides.lanes.unwrap_or(1),
        overrides.shards.unwrap_or(1),
        entries.join(",\n")
    );
    std::fs::write("BENCH_train.json", json)
}

fn main() {
    let mut args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };

    if args.child {
        // Workload parameters come fully resolved from the parent (or the
        // test harness); only fill gaps when invoked by hand.
        apply_defaults(&mut args.overrides);
        match run_child(&args) {
            Ok((steps, secs, digest)) => {
                println!("train-bench-result steps={steps} secs={secs:.6} digest={digest:016x}");
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    apply_defaults(&mut args.overrides);
    println!(
        "end-to-end training throughput: {} (steps {}, lanes {}, shards {}, seed {})",
        args.scenario,
        args.overrides.steps.unwrap_or(0),
        args.overrides.lanes.unwrap_or(1),
        args.overrides.shards.unwrap_or(1),
        args.overrides.seed.unwrap_or(0),
    );
    let rows = match run_parent(&args) {
        Ok(rows) => rows,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "{:>8} {:>10} {:>10} {:>14} {:>9}  digest",
        "threads", "steps", "secs", "steps/sec", "speedup"
    );
    let base = rows[0].steps as f64 / rows[0].secs;
    for r in &rows {
        let sps = r.steps as f64 / r.secs;
        println!(
            "{:>8} {:>10} {:>10.3} {:>14.0} {:>8.2}x  {:016x}",
            r.threads,
            r.steps,
            r.secs,
            sps,
            sps / base,
            r.digest
        );
    }

    // The determinism gate: same workload, different pool sizes, same
    // final weights — bit for bit.
    let digest0 = rows[0].digest;
    if let Some(bad) = rows.iter().find(|r| r.digest != digest0) {
        eprintln!(
            "error: training diverged across thread counts: {} thread(s) -> {:016x}, \
             {} thread(s) -> {:016x}",
            rows[0].threads, digest0, bad.threads, bad.digest
        );
        std::process::exit(1);
    }
    println!("determinism: all {} digests bit-identical", rows.len());

    if args.write {
        if let Err(e) = write_json(&args, &rows) {
            eprintln!("error: writing BENCH_train.json: {e}");
            std::process::exit(1);
        }
        println!("wrote BENCH_train.json");
    }
}
