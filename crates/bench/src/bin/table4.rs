//! Table IV: attacks found across 17 cache / attacker-victim configs.
//!
//! The row configurations live in the `autocat-scenario` registry
//! (`autocat_scenario::table4`); this harness only adds budgets and the
//! table formatting.

use autocat_bench::{print_header, standard_explorer, Budget};

fn main() {
    let budget = Budget::from_env();
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let rows: Vec<usize> = if !args.is_empty() {
        args
    } else if budget == Budget::Full {
        (1..=17).collect()
    } else {
        vec![1, 3, 5, 6, 7, 11]
    };
    print_header(
        "Table IV: attacks found per configuration (pass row numbers as args; default quick subset)",
        "No | Expected       | Found    | Acc.  | Sequence",
    );
    for no in rows {
        let Some(scenario) = autocat_scenario::table4(no) else {
            eprintln!("unknown config {no}");
            continue;
        };
        // The registry's TrainSpec is the source of truth for seed and
        // convergence threshold; the budget only caps steps and lanes.
        let report = standard_explorer(scenario.env.clone(), scenario.train.seed, budget)
            .return_threshold(scenario.train.return_threshold)
            .run()
            .expect("valid table-4 config");
        println!(
            "{:>2} | {:<14} | {:<8} | {:.3} | {}{}",
            no,
            scenario.summary,
            report.category.to_string(),
            report.accuracy,
            report.sequence_notation,
            if report.converged {
                ""
            } else {
                "  [not converged]"
            },
        );
    }
}
