//! Table IV: attacks found across 17 cache / attacker-victim configs.

use autocat::cache::{CacheConfig, PrefetcherKind};
use autocat::gym::{CacheSpec, EnvConfig};
use autocat_bench::{print_header, standard_explorer, Budget};

/// Builds the environment for a paper Table IV row (1-17).
fn config_for(no: usize) -> Option<(EnvConfig, &'static str)> {
    use autocat::cache::TwoLevelConfig;
    let c = |cache: CacheConfig, att: (u64, u64), vic: (u64, u64)| EnvConfig::new(cache, att, vic);
    Some(match no {
        1 => (c(CacheConfig::direct_mapped(4), (4, 7), (0, 3)), "PP"),
        2 => {
            let mut e = c(
                CacheConfig::direct_mapped(4).with_prefetcher(PrefetcherKind::NextLine),
                (4, 7),
                (0, 3),
            );
            e.window_size = 20;
            (e, "PP")
        }
        3 => {
            let mut e = c(CacheConfig::direct_mapped(4), (0, 3), (0, 3));
            e.flush_enable = true;
            (e, "FR")
        }
        4 => (
            c(CacheConfig::direct_mapped(4), (0, 7), (0, 3)),
            "ER and PP",
        ),
        5 => {
            let mut e = c(CacheConfig::fully_associative(4), (4, 7), (0, 0));
            e.victim_no_access_enable = true;
            (e, "PP, LRU")
        }
        6 => (EnvConfig::flush_reload_fa4(), "FR, LRU"),
        7 => {
            let mut e = c(CacheConfig::fully_associative(4), (0, 7), (0, 0));
            e.victim_no_access_enable = true;
            (e, "ER, PP, LRU")
        }
        8 => {
            let mut e = c(CacheConfig::fully_associative(4), (0, 3), (0, 3));
            e.flush_enable = true;
            (e, "FR, LRU")
        }
        9 => {
            let mut e = c(CacheConfig::fully_associative(4), (0, 7), (0, 3));
            e.flush_enable = true;
            (e, "FR, LRU")
        }
        10 => {
            let mut e = c(CacheConfig::direct_mapped(8), (0, 7), (0, 7));
            e.flush_enable = true;
            e.window_size = 40;
            (e, "FR")
        }
        11 => {
            let mut e = c(CacheConfig::fully_associative(8), (0, 7), (0, 0));
            e.flush_enable = true;
            e.victim_no_access_enable = true;
            (e, "FR, LRU")
        }
        12 => {
            let mut e = c(CacheConfig::fully_associative(8), (0, 15), (0, 0));
            e.victim_no_access_enable = true;
            e.window_size = 48;
            (e, "ER, PP, LRU")
        }
        13 => {
            let mut e = c(
                CacheConfig::fully_associative(8).with_prefetcher(PrefetcherKind::NextLine),
                (0, 15),
                (0, 0),
            );
            e.victim_no_access_enable = true;
            e.window_size = 48;
            (e, "ER, PP, LRU")
        }
        14 => {
            let mut e = c(
                CacheConfig::fully_associative(8).with_prefetcher(PrefetcherKind::Stream),
                (0, 15),
                (0, 0),
            );
            e.victim_no_access_enable = true;
            e.window_size = 48;
            (e, "ER, PP, LRU")
        }
        15 => (c(CacheConfig::new(4, 2), (4, 11), (0, 3)), "PP"),
        16 => {
            let mut e = c(CacheConfig::new(4, 2), (4, 11), (0, 3));
            e.cache = CacheSpec::TwoLevel(TwoLevelConfig::paper_config16());
            e.window_size = 36;
            (e, "PP")
        }
        17 => {
            let mut e = c(CacheConfig::new(8, 2), (8, 23), (0, 7));
            e.cache = CacheSpec::TwoLevel(TwoLevelConfig::paper_config17());
            e.window_size = 64;
            (e, "PP")
        }
        _ => return None,
    })
}

fn main() {
    let budget = Budget::from_env();
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let rows: Vec<usize> = if !args.is_empty() {
        args
    } else if budget == Budget::Full {
        (1..=17).collect()
    } else {
        vec![1, 3, 5, 6, 7, 11]
    };
    print_header(
        "Table IV: attacks found per configuration (pass row numbers as args; default quick subset)",
        "No | Expected       | Found    | Acc.  | Sequence",
    );
    for no in rows {
        let Some((cfg, expected)) = config_for(no) else {
            eprintln!("unknown config {no}");
            continue;
        };
        let report = standard_explorer(cfg, no as u64, budget)
            .return_threshold(0.8)
            .run()
            .expect("valid table-4 config");
        println!(
            "{:>2} | {:<14} | {:<8} | {:.3} | {}{}",
            no,
            expected,
            report.category.to_string(),
            report.accuracy,
            report.sequence_notation,
            if report.converged {
                ""
            } else {
                "  [not converged]"
            },
        );
    }
}
