//! Table III: attack sequences found on (simulated) real hardware.
//!
//! Substitution: blackbox `SimulatedProcessor` profiles stand in for the
//! CacheQuery-driven Intel machines (DESIGN.md, substitution 1).

use autocat::cache::CacheConfig;
use autocat::gym::{CacheSpec, EnvConfig, HardwareProfile};
use autocat_bench::{print_header, standard_explorer, Budget};

fn main() {
    let budget = Budget::from_env();
    let rows: Vec<HardwareProfile> = match budget {
        Budget::Full => HardwareProfile::table3_rows().to_vec(),
        Budget::Quick => {
            let args: Vec<String> = std::env::args().skip(1).collect();
            if args.iter().any(|a| a == "--all") {
                HardwareProfile::table3_rows().to_vec()
            } else {
                vec![HardwareProfile::SkylakeL2, HardwareProfile::KabylakeL3W4]
            }
        }
    };
    print_header(
        "Table III: attacks found on real hardware (simulated blackbox processors)",
        "CPU                      | Lvl | Ways | Pol.   | Attack addr | Accuracy | Category | Sequence",
    );
    for (i, profile) in rows.iter().enumerate() {
        let (s, e) = profile.attacker_range();
        let mut cfg = EnvConfig::new(
            CacheConfig::fully_associative(profile.ways()),
            (s, e),
            (0, 0),
        );
        cfg.cache = CacheSpec::Hardware(*profile);
        cfg.victim_no_access_enable = true;
        cfg.window_size = (3 * profile.ways() + 6).min(40);
        // The paper uses step_reward = -0.005 for hardware runs.
        cfg.rewards.step = -0.005;
        let report = standard_explorer(cfg, 100 + i as u64, budget)
            .return_threshold(0.8)
            .run()
            .expect("valid hardware config");
        println!(
            "{:<24} | {:<3} | {:>4} | {:<6} | 0-{:<9} | {:>7.3} | {:<8} | {}",
            profile.cpu(),
            profile.level(),
            profile.ways(),
            profile.policy_label(),
            e,
            report.accuracy,
            report.category.to_string(),
            report.sequence_notation,
        );
    }
    println!("\n(paper: accuracies 0.993-1.0, all rows classified LRU/LRU*-category attacks)");
}
