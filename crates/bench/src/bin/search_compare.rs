//! Sec. VI-A: RL vs brute-force search cost.

use autocat::attacks::search::{brute_force_m, brute_force_steps, random_search};
use autocat::gym::EnvConfig;
use autocat_bench::print_header;
use rand::SeedableRng;

fn main() {
    print_header(
        "Sec. VI-A: brute-force search cost M = 2(N+1)^(2N+1)/(N!)^2 (paper: M(8) ~ 2.05e7, ~369M steps; RL converges in ~1M)",
        "N (ways) | M (sequences) | steps (M*(2N+2))",
    );
    for n in 1..=8u32 {
        println!(
            "{:>8} | {:>13.3e} | {:>16.3e}",
            n,
            brute_force_m(n),
            brute_force_steps(n)
        );
    }

    println!("\nEmpirical random search on the 4-set direct-mapped game (config 1):");
    let mut cfg = EnvConfig::prime_probe_dm4();
    cfg.window_size = 10;
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let result = random_search(&cfg, 1, 6, 10_000_000, &mut rng);
    println!(
        "  found: {}  steps: {}  (RL on the same game converges in ~100-200k steps; see table4)",
        result.found, result.steps
    );
}
