//! Table VI: random replacement policy — step-reward sweep.

use autocat::cache::PolicyKind;
use autocat::gym::EnvConfig;
use autocat_bench::{print_header, standard_explorer, Budget};

fn main() {
    let budget = Budget::from_env();
    print_header(
        "Table VI: random replacement (paper: -0.02 -> 0.98/16.25, -0.01 -> 0.98/18.85, -0.005 -> 0.94/19.02)",
        "Step reward | End accuracy | Episode length",
    );
    for (i, step_reward) in [-0.02f32, -0.01, -0.005].iter().enumerate() {
        let mut cfg = EnvConfig::replacement_study(PolicyKind::Random);
        cfg.rewards.step = *step_reward;
        cfg.window_size = 28;
        let report = standard_explorer(cfg, 20 + i as u64, budget)
            // The random policy caps achievable return below the
            // deterministic case; accept convergence earlier.
            .return_threshold(0.6)
            .eval_episodes(100)
            .run()
            .expect("valid random-policy config");
        println!(
            "{:>11} | {:>12.2} | {:>14.2}",
            step_reward, report.accuracy, report.episode_length
        );
    }
    println!("\n(expected shape: smaller |step reward| -> longer episodes, accuracy trade-off)");
}
