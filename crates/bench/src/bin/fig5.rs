//! Fig. 5: bit rate vs error rate curves per machine.

use autocat::attacks::{ChannelKind, CovertChannelModel, MachineModel};
use autocat_bench::print_header;

fn main() {
    let pacings = [0.8, 0.85, 0.9, 0.95, 1.0, 1.1, 1.25, 1.5];
    for m in MachineModel::table10_machines() {
        print_header(
            &format!("Fig. 5: {} ({}-way L1D @ {} GHz)", m.name, m.l1_ways, m.ghz),
            "channel              | pacing | bit rate (Mbps) | error rate (%)",
        );
        for (label, kind) in [
            ("LRU addr_based", ChannelKind::LruAddrBased),
            ("StealthyStreamline", ChannelKind::StealthyStreamline2),
        ] {
            let model = CovertChannelModel::new(m.clone(), kind);
            for p in model.sweep(&pacings, 300, 77) {
                println!(
                    "{:<20} | {:>6.2} | {:>15.2} | {:>13.2}",
                    label,
                    p.pacing,
                    p.bit_rate_mbps,
                    p.error_rate * 100.0
                );
            }
        }
    }
    println!("\n(expected shape: SS curve above LRU at <5% error on every machine)");
}
