//! Table V: RL training statistics per deterministic replacement policy.

use autocat::cache::PolicyKind;
use autocat::gym::EnvConfig;
use autocat_bench::{print_header, standard_explorer, Budget};

fn main() {
    let budget = Budget::from_env();
    print_header(
        "Table V: epochs to converge & episode length per policy (paper: LRU 26.0/7.0, PLRU 15.67/7.0, RRIP 70.67/12.7)",
        "Policy | Epochs to converge | Episode length | Example sequence",
    );
    for policy in [PolicyKind::Lru, PolicyKind::Plru, PolicyKind::Rrip] {
        let mut epochs_sum = 0.0;
        let mut len_sum = 0.0;
        let mut runs_converged = 0u64;
        let mut last_seq = String::new();
        for run in 0..budget.runs() {
            let cfg = EnvConfig::replacement_study(policy);
            let report = standard_explorer(cfg, 10 * run + 1, budget)
                .return_threshold(0.85)
                .run()
                .expect("valid replacement config");
            if let Some(e) = report.epochs_to_converge {
                epochs_sum += e;
                runs_converged += 1;
            }
            len_sum += report.episode_length as f64;
            last_seq = report.sequence_notation;
        }
        let runs = budget.runs() as f64;
        println!(
            "{:<6} | {:>18} | {:>14.1} | {}",
            policy.name(),
            if runs_converged > 0 {
                format!("{:.2}", epochs_sum / runs_converged as f64)
            } else {
                "n/a".to_string()
            },
            len_sum / runs,
            last_seq,
        );
    }
    println!("\n(expected shape: RRIP needs more epochs and longer sequences than LRU/PLRU)");
}
