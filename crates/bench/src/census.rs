//! The census report: sweep rows bucketed by the region of scenario
//! space they came from.
//!
//! Where `report.md` is one row per scenario, `census.md` answers the
//! generated-space questions: which configuration regions does PPO crack
//! (direct-mapped vs set-associative, flush vs no flush), and which
//! defenses generalize (detection rate per monitor kind)? Every bucket
//! pools the honest N-episode evaluation counts of its scenarios —
//! accuracy is `Σ correct / Σ episodes`, never a mean of means — so
//! buckets with different `eval_episodes` budgets stay comparable.
//!
//! The inputs are exactly the sweep artifacts: each row's
//! `<name>.scenario.json` sidecar supplies the bucketing dimensions, the
//! row itself supplies the outcome counts. Both are deterministic, so a
//! census regenerated from the artifacts alone (`sweep --report-only
//! --census`) is byte-identical to the one written after training — the
//! contract ci.sh pins with `cmp`.

use crate::sweep::{scenario_path, SweepRow};
use autocat::gym::CacheSpec;
use autocat_scenario::generate::monitor_slug;
use autocat_scenario::value::{u64_value, Value};
use autocat_scenario::Scenario;
use std::collections::BTreeMap;
use std::path::Path;

/// Pooled accuracy at or above which a bucket's scenario counts as
/// "cracked" (the agent reliably extracts the secret).
pub const CRACKED_ACCURACY: f64 = 0.9;

/// The bucketing dimensions, in report order.
const DIMENSIONS: [&str; 8] = [
    "hierarchy",
    "associativity",
    "policy",
    "prefetcher",
    "mapping",
    "flush",
    "victim-secret",
    "monitor",
];

/// The bucket label of `scenario` along each dimension, in
/// `DIMENSIONS` order. Hardware-backed scenarios have no inspectable
/// geometry, so their cache-level dimensions all bucket as `hardware`.
pub fn bucket_labels(scenario: &Scenario) -> Vec<(&'static str, String)> {
    // The game-relevant level: the single cache, or the shared L2 the
    // cross-core channel lives in.
    let level = match &scenario.env.cache {
        CacheSpec::Single(c) => Some(c),
        CacheSpec::TwoLevel(t) => Some(&t.l2),
        CacheSpec::Hardware(_) => None,
    };
    let hierarchy = match &scenario.env.cache {
        CacheSpec::Single(_) => "single",
        CacheSpec::TwoLevel(_) => "two-level",
        CacheSpec::Hardware(_) => "hardware",
    };
    let associativity = level.map_or("hardware", |c| {
        if c.num_ways == 1 {
            "direct-mapped"
        } else if c.num_sets == 1 {
            "fully-associative"
        } else {
            "set-associative"
        }
    });
    let policy = level.map_or("hardware".into(), |c| c.policy.name().to_string());
    let prefetcher = level.map_or("hardware", |c| match c.prefetcher {
        autocat::cache::PrefetcherKind::None => "none",
        autocat::cache::PrefetcherKind::NextLine => "next-line",
        autocat::cache::PrefetcherKind::Stream => "stream",
    });
    let mapping = level.map_or("hardware", |c| match c.mapping {
        autocat::cache::mapping::AddressMapping::Direct => "direct",
        autocat::cache::mapping::AddressMapping::RandomPermutation { .. } => "random-permutation",
    });
    let flush = if scenario.env.flush_enable {
        "enabled"
    } else {
        "disabled"
    };
    let secret = if scenario.env.victim_addr_s == scenario.env.victim_addr_e {
        "one-address"
    } else {
        "multi-address"
    };
    vec![
        ("hierarchy", hierarchy.into()),
        ("associativity", associativity.into()),
        ("policy", policy),
        ("prefetcher", prefetcher.into()),
        ("mapping", mapping.into()),
        ("flush", flush.into()),
        ("victim-secret", secret.into()),
        ("monitor", monitor_slug(&scenario.env.detection).into()),
    ]
}

/// Pooled outcome counts of one bucket.
#[derive(Clone, Debug, Default, PartialEq)]
struct Bucket {
    scenarios: u64,
    cracked: u64,
    episodes: u64,
    correct: u64,
    detected: u64,
    /// `avg_length × episodes` summed, so the bucket mean stays
    /// episode-weighted.
    length_weighted: f64,
}

impl Bucket {
    fn add(&mut self, row: &SweepRow) {
        self.scenarios += 1;
        self.cracked += u64::from(row.accuracy() >= CRACKED_ACCURACY);
        self.episodes += row.eval_episodes;
        self.correct += row.correct;
        self.detected += row.detected;
        self.length_weighted += f64::from(row.avg_length) * row.eval_episodes as f64;
    }

    fn accuracy(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.correct as f64 / self.episodes as f64
        }
    }

    fn detection_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.detected as f64 / self.episodes as f64
        }
    }

    fn avg_length(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.length_weighted / self.episodes as f64
        }
    }
}

/// `(scenario, row)` pairs for every report row, with the scenario
/// re-read from its `<name>.scenario.json` sidecar under `out`.
///
/// # Errors
///
/// Returns an error if any sidecar is missing or unparsable — a census
/// over partial artifacts would silently mis-bucket, so it refuses.
pub fn census_pairs(out: &Path, rows: &[SweepRow]) -> Result<Vec<(Scenario, SweepRow)>, String> {
    rows.iter()
        .map(|row| {
            let scenario = Scenario::load(scenario_path(out, &row.scenario))
                .map_err(|e| format!("census needs every scenario sidecar: {e}"))?;
            Ok((scenario, row.clone()))
        })
        .collect()
}

/// Aggregates pairs into per-dimension bucket tables, in [`DIMENSIONS`]
/// order (bucket labels sorted within a dimension).
fn aggregate(pairs: &[(Scenario, SweepRow)]) -> Vec<(&'static str, BTreeMap<String, Bucket>)> {
    let mut dims: Vec<(&'static str, BTreeMap<String, Bucket>)> =
        DIMENSIONS.iter().map(|d| (*d, BTreeMap::new())).collect();
    for (scenario, row) in pairs {
        for (dimension, label) in bucket_labels(scenario) {
            let table = &mut dims
                .iter_mut()
                .find(|(d, _)| *d == dimension)
                .expect("bucket_labels emits known dimensions only")
                .1;
            table.entry(label).or_default().add(row);
        }
    }
    dims
}

/// Renders the human-readable census.
pub fn render_markdown(pairs: &[(Scenario, SweepRow)]) -> String {
    let mut out = format!(
        "# Scenario-space census\n\n\
         {} scenario(s); a scenario is \"cracked\" when its evaluation accuracy is\n\
         ≥ {CRACKED_ACCURACY:.3}. Bucket statistics pool every evaluation episode (accuracy is\n\
         Σ correct / Σ episodes, never a mean of per-scenario means). Regenerate this\n\
         exact file from the artifacts alone with `sweep --report-only --census`.\n",
        pairs.len()
    );
    for (dimension, buckets) in aggregate(pairs) {
        out.push_str(&format!(
            "\n## by {dimension}\n\n\
             | bucket | scenarios | cracked | accuracy | detect | avg len |\n\
             |--------|----------:|--------:|---------:|-------:|--------:|\n"
        ));
        for (label, b) in &buckets {
            out.push_str(&format!(
                "| {label} | {} | {} | {:.3} | {:.3} | {:.1} |\n",
                b.scenarios,
                b.cracked,
                b.accuracy(),
                b.detection_rate(),
                b.avg_length(),
            ));
        }
    }
    out
}

/// Renders the machine-readable census.
pub fn render_json(pairs: &[(Scenario, SweepRow)]) -> String {
    let mut root = Value::table();
    root.set("version", Value::Int(1));
    root.set("cracked_threshold", Value::Float(CRACKED_ACCURACY));
    root.set("scenarios", u64_value(pairs.len() as u64));
    root.set(
        "dimensions",
        Value::Array(
            aggregate(pairs)
                .into_iter()
                .map(|(dimension, buckets)| {
                    let mut table = Value::table();
                    table.set("dimension", Value::Str(dimension.into()));
                    table.set(
                        "buckets",
                        Value::Array(
                            buckets
                                .into_iter()
                                .map(|(label, b)| {
                                    let mut bucket = Value::table();
                                    bucket.set("bucket", Value::Str(label));
                                    bucket.set("scenarios", u64_value(b.scenarios));
                                    bucket.set("cracked", u64_value(b.cracked));
                                    bucket.set("episodes", u64_value(b.episodes));
                                    bucket.set("correct", u64_value(b.correct));
                                    bucket.set("detected", u64_value(b.detected));
                                    bucket.set("accuracy", Value::Float(b.accuracy()));
                                    bucket.set("detection_rate", Value::Float(b.detection_rate()));
                                    bucket.set("avg_length", Value::Float(b.avg_length()));
                                    bucket
                                })
                                .collect(),
                        ),
                    );
                    table
                })
                .collect(),
        ),
    );
    autocat_scenario::value::to_json(&root)
}

/// Writes `census.md` and `census.json` for `rows` under `out`, reading
/// each row's scenario sidecar for the bucketing dimensions.
///
/// # Errors
///
/// Returns an error if a sidecar is missing or a file cannot be written.
pub fn write_census(out: &Path, rows: &[SweepRow]) -> Result<(), String> {
    let pairs = census_pairs(out, rows)?;
    let write = |file: &str, text: String| {
        let path = out.join(file);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("census.md", render_markdown(&pairs))?;
    write("census.json", render_json(&pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_scenario::generate::generate;

    fn fake_row(name: &str, correct: u64, episodes: u64) -> SweepRow {
        SweepRow {
            scenario: name.into(),
            summary: String::new(),
            steps: 1,
            final_return: 0.0,
            converged: false,
            eval_episodes: episodes,
            correct,
            guessed: episodes,
            detected: 1,
            avg_length: 8.0,
            category: "other".into(),
            census: String::new(),
            sequence: String::new(),
        }
    }

    fn pairs_for(count: usize) -> Vec<(Scenario, SweepRow)> {
        generate(2, count)
            .into_iter()
            .enumerate()
            .map(|(i, s)| {
                let row = fake_row(&s.name, if i % 2 == 0 { 19 } else { 4 }, 20);
                (s, row)
            })
            .collect()
    }

    #[test]
    fn bucket_labels_cover_every_dimension_once() {
        for scenario in generate(4, 32).iter().chain(autocat_scenario::all().iter()) {
            let labels = bucket_labels(scenario);
            let dims: Vec<&str> = labels.iter().map(|(d, _)| *d).collect();
            assert_eq!(dims, DIMENSIONS.to_vec(), "{}", scenario.name);
            for (_, label) in &labels {
                assert!(!label.is_empty(), "{}", scenario.name);
            }
        }
    }

    #[test]
    fn hardware_scenarios_bucket_as_hardware() {
        let scenario = autocat_scenario::hardware(autocat::gym::HardwareProfile::SkylakeL1);
        let labels = bucket_labels(&scenario);
        for dim in [
            "hierarchy",
            "associativity",
            "policy",
            "prefetcher",
            "mapping",
        ] {
            let (_, label) = labels.iter().find(|(d, _)| *d == dim).unwrap();
            assert_eq!(label, "hardware", "{dim}");
        }
    }

    #[test]
    fn pooled_statistics_weight_episodes_not_scenarios() {
        let pairs = pairs_for(2);
        let dims = aggregate(&pairs);
        let (_, hierarchy) = &dims[0];
        let total: u64 = hierarchy.values().map(|b| b.scenarios).sum();
        assert_eq!(total, 2);
        let episodes: u64 = hierarchy.values().map(|b| b.episodes).sum();
        assert_eq!(episodes, 40);
        let correct: u64 = hierarchy.values().map(|b| b.correct).sum();
        assert_eq!(correct, 23);
    }

    #[test]
    fn cracked_threshold_is_inclusive() {
        let mut b = Bucket::default();
        b.add(&fake_row("x", 18, 20)); // exactly 0.9
        assert_eq!(b.cracked, 1);
        b.add(&fake_row("y", 17, 20)); // 0.85 < 0.9
        assert_eq!(b.cracked, 1);
    }

    #[test]
    fn renders_are_deterministic() {
        let pairs = pairs_for(6);
        assert_eq!(render_markdown(&pairs), render_markdown(&pairs));
        assert_eq!(render_json(&pairs), render_json(&pairs));
        assert!(render_markdown(&pairs).contains("## by monitor"));
        let parsed = autocat_scenario::value::from_json(&render_json(&pairs));
        assert!(parsed.is_ok(), "{:?}", parsed.err());
    }
}
