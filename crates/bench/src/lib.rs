//! Shared helpers for the table/figure harness binaries, plus the
//! [`sweep`] pipeline (train every scenario → checkpoint → Table IV
//! reproduction report).
//!
//! Every binary regenerates one table or figure of the paper. Budgets:
//! set `AUTOCAT_BUDGET=full` for the paper-scale runs; the default
//! `quick` mode uses reduced training budgets and fewer repeat runs so a
//! full sweep finishes on a laptop.

pub mod census;
pub mod cli;
pub mod sweep;

use autocat::gym::EnvConfig;
use autocat::ppo::{Backbone, PpoConfig};

/// Run budget selected via the `AUTOCAT_BUDGET` environment variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Budget {
    /// Reduced budgets (default): 1 training run per row, capped steps.
    Quick,
    /// Paper-scale budgets: 3 runs per row, generous step caps.
    Full,
}

impl Budget {
    /// Reads the budget from the environment.
    pub fn from_env() -> Self {
        match std::env::var("AUTOCAT_BUDGET").as_deref() {
            Ok("full") => Budget::Full,
            _ => Budget::Quick,
        }
    }

    /// Training runs per table row (the paper averages over 3).
    pub fn runs(self) -> u64 {
        match self {
            Budget::Quick => 1,
            Budget::Full => 3,
        }
    }

    /// Environment-step cap per training run.
    pub fn max_steps(self) -> u64 {
        match self {
            Budget::Quick => 400_000,
            Budget::Full => 1_500_000,
        }
    }

    /// Parallel rollout lanes for the training harnesses. Overridable with
    /// `AUTOCAT_LANES`; defaults to 1 lane in quick mode (bit-for-bit the
    /// historical scalar path) and 4 lanes for paper-scale runs.
    pub fn lanes(self) -> usize {
        if let Ok(v) = std::env::var("AUTOCAT_LANES") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        match self {
            Budget::Quick => 1,
            Budget::Full => 4,
        }
    }
}

/// The standard explorer setup used by the training-based tables.
pub fn standard_explorer(config: EnvConfig, seed: u64, budget: Budget) -> autocat::Explorer {
    autocat::Explorer::new(config)
        .seed(seed)
        .max_steps(budget.max_steps())
        .backbone(Backbone::Mlp {
            hidden: vec![64, 64],
        })
        .ppo(PpoConfig::small_env())
        .lanes(budget.lanes())
}

/// Prints a table header with a separator line.
pub fn print_header(title: &str, columns: &str) {
    println!("\n=== {title} ===");
    println!("{columns}");
    println!("{}", "-".repeat(columns.len().min(100)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_budget_is_default() {
        std::env::remove_var("AUTOCAT_BUDGET");
        assert_eq!(Budget::from_env(), Budget::Quick);
        assert_eq!(Budget::Quick.runs(), 1);
        assert!(Budget::Full.max_steps() > Budget::Quick.max_steps());
    }

    #[test]
    fn lane_defaults_keep_quick_mode_scalar() {
        std::env::remove_var("AUTOCAT_LANES");
        assert_eq!(
            Budget::Quick.lanes(),
            1,
            "quick runs stay bit-for-bit scalar"
        );
        assert!(
            Budget::Full.lanes() > 1,
            "full runs use the vectorized engine"
        );
    }
}
