//! The scenario-sweep pipeline behind the `sweep` binary: train every
//! registry scenario, checkpoint each policy, decode greedy attack traces,
//! and render a Table IV reproduction report.
//!
//! The pipeline is deliberately split from the CLI so the
//! train-→-artifacts-→-report round trip is testable: a report generated
//! right after training and a report regenerated later from the artifacts
//! alone ([`row_from_artifacts`]) are **identical**, because a row is
//! always produced from a checkpoint-equivalent trainer state (training
//! saves first, then decodes; report-only loads, then decodes — the
//! checkpoint resume guarantee in `autocat_ppo::checkpoint` makes both
//! decodes bit-identical).
//!
//! # Artifact layout
//!
//! Everything lives under one output directory (`--out`, default
//! `runs/sweep`):
//!
//! ```text
//! runs/sweep/
//!   table4-1.scenario.json    # the exact scenario trained (with overrides)
//!   table4-1.ckpt.json        # its policy/optimizer/RNG checkpoint
//!   ...
//!   report.md                 # the Table IV reproduction report
//!   report.json               # the same rows, machine-readable
//! ```

use autocat::attacks::classify::classify_sequence;
use autocat::gym::{Action, CacheGuessingGame};
use autocat::ppo::{eval, Trainer};
use autocat_scenario::value::{self, req, u64_from, u64_value, Value};
use autocat_scenario::Scenario;
use std::path::{Path, PathBuf};

/// One row of the sweep report (one trained scenario).
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Scenario name (registry or file-derived).
    pub scenario: String,
    /// The scenario's human-readable summary (for Table IV rows, the
    /// attack the paper's agent found).
    pub summary: String,
    /// Environment steps trained.
    pub steps: u64,
    /// Trailing average episode return when training stopped.
    pub final_return: f32,
    /// Whether the trailing return reached the scenario's threshold.
    pub converged: bool,
    /// Heuristic category of the decoded attack (the paper's analysis).
    pub category: String,
    /// Whether the greedy rollout guessed the secret correctly.
    pub correct: bool,
    /// The decoded attack in the paper's notation.
    pub sequence: String,
}

/// Checkpoint file for a scenario name under `out`.
pub fn checkpoint_path(out: &Path, name: &str) -> PathBuf {
    out.join(format!("{name}.ckpt.json"))
}

/// Scenario sidecar file for a scenario name under `out`.
pub fn scenario_path(out: &Path, name: &str) -> PathBuf {
    out.join(format!("{name}.scenario.json"))
}

/// Decodes a report row from a trainer whose state equals the checkpoint
/// on disk — either because the checkpoint was just saved from it, or
/// because it was just loaded from one.
fn report_row(trainer: &mut Trainer<CacheGuessingGame>, scenario: &Scenario) -> SweepRow {
    let steps = trainer.total_steps();
    let final_return = trainer.avg_return();
    let converged = final_return >= scenario.train.return_threshold;
    let (env, net, rng) = trainer.parts_mut();
    let seq = eval::extract_sequence(env, net, rng);
    let actions: Vec<Action> = seq
        .actions
        .iter()
        .map(|&i| env.action_space().decode(i))
        .collect();
    let sequence = actions
        .iter()
        .map(|a| a.to_string())
        .collect::<Vec<_>>()
        .join(" -> ");
    let category = classify_sequence(&actions, env.config()).to_string();
    SweepRow {
        scenario: scenario.name.clone(),
        summary: scenario.summary.clone(),
        steps,
        final_return,
        converged,
        category,
        correct: seq.correct,
        sequence,
    }
}

/// Trains one scenario to its budget, writes its artifacts (scenario
/// sidecar + checkpoint) under `out`, and returns its report row.
///
/// # Errors
///
/// Returns an error if the scenario is invalid or an artifact cannot be
/// written.
pub fn train_one(scenario: &Scenario, out: &Path) -> Result<SweepRow, String> {
    let err = |e: String| format!("{}: {e}", scenario.name);
    let env = scenario.build_env().map_err(err)?;
    let mut trainer = Trainer::new(
        env,
        scenario.train.backbone.clone(),
        scenario.train.ppo,
        scenario.train.seed,
    );
    trainer.train_until(scenario.train.return_threshold, scenario.train.max_steps);
    // Checkpoint first, sidecar last: the sidecar is the discovery key
    // (`artifact_names`), so a run killed between the two writes leaves
    // an invisible checkpoint rather than an orphan sidecar that poisons
    // every later report in this directory.
    trainer
        .save_checkpoint(checkpoint_path(out, &scenario.name))
        .map_err(err)?;
    scenario
        .save(scenario_path(out, &scenario.name))
        .map_err(err)?;
    // Decode *after* saving: the in-memory state now equals the artifact,
    // so `row_from_artifacts` reproduces this row exactly.
    Ok(report_row(&mut trainer, scenario))
}

/// Regenerates one report row from artifacts alone: loads the scenario
/// sidecar, rebuilds its environment, loads the checkpoint and decodes.
///
/// # Errors
///
/// Returns an error if either artifact is missing, unparsable or
/// inconsistent with the other.
pub fn row_from_artifacts(out: &Path, name: &str) -> Result<SweepRow, String> {
    let err = |e: String| format!("{name}: {e}");
    let scenario = Scenario::load(scenario_path(out, name)).map_err(err)?;
    let env = scenario.build_env().map_err(err)?;
    let mut trainer = Trainer::load_checkpoint(checkpoint_path(out, name), env).map_err(err)?;
    Ok(report_row(&mut trainer, &scenario))
}

/// Lists the scenario names with artifacts under `out` (every
/// `<name>.scenario.json`), sorted in report order.
///
/// # Errors
///
/// Returns an error if the directory cannot be read.
pub fn artifact_names(out: &Path) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(out).map_err(|e| format!("reading {}: {e}", out.display()))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", out.display()))?;
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if let Some(name) = file.strip_suffix(".scenario.json") {
            names.push(name.to_string());
        }
    }
    names.sort_by_key(|n| name_sort_key(n));
    Ok(names)
}

/// Natural sort key so `table4-2` precedes `table4-10` the way Table IV
/// orders its rows.
fn name_sort_key(name: &str) -> (String, u64, String) {
    let digits = name.len() - name.trim_end_matches(|c: char| c.is_ascii_digit()).len();
    let (prefix, number) = name.split_at(name.len() - digits);
    (
        prefix.to_string(),
        number.parse().unwrap_or(0),
        name.to_string(),
    )
}

/// Sorts rows into report order (natural order on scenario names).
pub fn sort_rows(rows: &mut [SweepRow]) {
    rows.sort_by_key(|r| name_sort_key(&r.scenario));
}

/// Extends `rows` with a regenerated row for every artifact under `out`
/// not already covered, so a written report always reflects the *whole*
/// artifact directory — a filtered training run must not silently drop
/// previously-trained scenarios from `report.md`.
///
/// # Errors
///
/// Returns an error if the directory cannot be read or an uncovered
/// artifact fails to load.
pub fn fill_missing_rows(out: &Path, rows: &mut Vec<SweepRow>) -> Result<(), String> {
    let covered: std::collections::BTreeSet<String> =
        rows.iter().map(|r| r.scenario.clone()).collect();
    for name in artifact_names(out)? {
        if !covered.contains(&name) {
            rows.push(row_from_artifacts(out, &name)?);
        }
    }
    Ok(())
}

/// Renders the Markdown reproduction report.
pub fn render_markdown(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "# Table IV reproduction report\n\n\
         Generated by the `sweep` harness from per-scenario checkpoints; regenerate this\n\
         exact report from the artifacts alone with `sweep --report-only --out <dir>`.\n\n\
         | scenario | steps | final reward | converged | attack category | correct | sequence |\n\
         |----------|------:|-------------:|-----------|-----------------|---------|----------|\n",
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {} | {} | {} | `{}` |\n",
            row.scenario,
            row.steps,
            row.final_return,
            if row.converged { "yes" } else { "no" },
            row.category,
            if row.correct { "yes" } else { "no" },
            row.sequence,
        ));
    }
    out
}

/// Renders the machine-readable JSON report.
pub fn render_json(rows: &[SweepRow]) -> String {
    let mut root = Value::table();
    root.set("version", Value::Int(1));
    root.set(
        "rows",
        Value::Array(
            rows.iter()
                .map(|row| {
                    let mut table = Value::table();
                    table.set("scenario", Value::Str(row.scenario.clone()));
                    table.set("summary", Value::Str(row.summary.clone()));
                    table.set("steps", u64_value(row.steps));
                    table.set("final_return", Value::Float(f64::from(row.final_return)));
                    table.set("converged", Value::Bool(row.converged));
                    table.set("category", Value::Str(row.category.clone()));
                    table.set("correct", Value::Bool(row.correct));
                    table.set("sequence", Value::Str(row.sequence.clone()));
                    table
                })
                .collect(),
        ),
    );
    value::to_json(&root)
}

/// Parses rows back out of a [`render_json`] report.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn rows_from_json(text: &str) -> Result<Vec<SweepRow>, String> {
    let root = value::from_json(text)?;
    let table = root.as_table()?;
    req(table, "rows")?
        .as_array()?
        .iter()
        .map(|item| {
            let row = item.as_table()?;
            Ok(SweepRow {
                scenario: req(row, "scenario")?.as_str()?.to_string(),
                summary: req(row, "summary")?.as_str()?.to_string(),
                steps: u64_from(req(row, "steps")?)?,
                final_return: req(row, "final_return")?.as_f32()?,
                converged: req(row, "converged")?.as_bool()?,
                category: req(row, "category")?.as_str()?.to_string(),
                correct: req(row, "correct")?.as_bool()?,
                sequence: req(row, "sequence")?.as_str()?.to_string(),
            })
        })
        .collect()
}

/// Writes `report.md` and `report.json` for sorted `rows` under `out`.
///
/// # Errors
///
/// Returns an error if a file cannot be written.
pub fn write_report(out: &Path, rows: &[SweepRow]) -> Result<(), String> {
    let write = |file: &str, text: String| {
        let path = out.join(file);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("report.md", render_markdown(rows))?;
    write("report.json", render_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_scenario::table4;

    /// A scenario cut down to test size (a handful of updates).
    fn tiny_scenario() -> Scenario {
        let mut scenario = table4(3).unwrap(); // flush+reload: learns fast
        scenario.train.max_steps = 512;
        scenario.train.ppo.horizon = 256;
        scenario.train.ppo.minibatch = 64;
        scenario.train.ppo.epochs_per_update = 2;
        scenario.train.eval_episodes = 10;
        scenario
    }

    fn temp_out(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("autocat-sweep-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn report_only_regenerates_the_identical_report() {
        // The acceptance criterion: train → report, then regenerate the
        // report from the artifacts alone, and demand equality down to the
        // rendered bytes.
        let out = temp_out("identical-report");
        let scenario = tiny_scenario();
        let trained_row = train_one(&scenario, &out).unwrap();
        write_report(&out, std::slice::from_ref(&trained_row)).unwrap();

        let names = artifact_names(&out).unwrap();
        assert_eq!(names, vec![scenario.name.clone()]);
        let regenerated = row_from_artifacts(&out, &scenario.name).unwrap();
        assert_eq!(regenerated, trained_row, "rows must match field-for-field");
        let rows = std::slice::from_ref(&regenerated);
        assert_eq!(
            render_markdown(rows),
            std::fs::read_to_string(out.join("report.md")).unwrap()
        );
        assert_eq!(
            render_json(rows),
            std::fs::read_to_string(out.join("report.json")).unwrap()
        );
    }

    #[test]
    fn filtered_runs_keep_earlier_scenarios_in_the_report() {
        // Two sweeps into one directory with disjoint filters: the report
        // written by the second must still cover the first's scenario.
        let out = temp_out("incremental");
        let first = tiny_scenario();
        let first_row = train_one(&first, &out).unwrap();

        let mut second = tiny_scenario();
        second.name = "tiny-second".into();
        let mut rows = vec![train_one(&second, &out).unwrap()];

        fill_missing_rows(&out, &mut rows).unwrap();
        sort_rows(&mut rows);
        let names: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, [first.name.as_str(), "tiny-second"]);
        assert!(rows.contains(&first_row), "regenerated row must be exact");
    }

    #[test]
    fn json_report_round_trips() {
        let rows = vec![SweepRow {
            scenario: "table4-3".into(),
            summary: "FR".into(),
            steps: 512,
            final_return: 0.123_456_7,
            converged: false,
            category: "flush+reload".into(),
            correct: true,
            sequence: "f0 -> v -> 0 -> g".into(),
        }];
        let back = rows_from_json(&render_json(&rows)).unwrap();
        assert_eq!(back, rows);
    }

    #[test]
    fn rows_sort_in_table_order() {
        let row = |name: &str| SweepRow {
            scenario: name.into(),
            summary: String::new(),
            steps: 0,
            final_return: 0.0,
            converged: false,
            category: String::new(),
            correct: false,
            sequence: String::new(),
        };
        let mut rows = vec![row("table4-10"), row("defense-misscount"), row("table4-2")];
        sort_rows(&mut rows);
        let names: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, ["defense-misscount", "table4-2", "table4-10"]);
    }

    #[test]
    fn missing_artifacts_are_reported_with_the_scenario_name() {
        let out = temp_out("missing");
        let err = row_from_artifacts(&out, "table4-1").err().unwrap();
        assert!(err.contains("table4-1"), "{err}");
    }
}
