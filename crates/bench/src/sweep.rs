//! The scenario-sweep pipeline behind the `sweep` binary: train every
//! registry scenario, checkpoint each policy, evaluate each over its
//! scenario's episode budget, and render a Table IV reproduction report.
//!
//! A report row is a **per-policy statistic**, not a single replay: each
//! scenario is evaluated over `train.eval_episodes` sampled episodes with
//! the lane-batched engine ([`autocat::ppo::eval::evaluate_batched`],
//! [`EVAL_LANES`] lanes), and the row carries N-episode accuracy,
//! detection rate, average length and an attack-category census. The
//! printed sequence is a *representative replay*: the first (preferring
//! correct) episode of the census's majority category, so rows on
//! stochastic backends (random-replacement caches, `SimulatedProcessor`)
//! stop flapping between runs.
//!
//! The pipeline is deliberately split from the CLI so the
//! train-→-artifacts-→-report round trip is testable: a report generated
//! right after training and a report regenerated later from the artifacts
//! alone ([`row_from_artifacts`]) are **identical**, because a row is
//! always produced from a checkpoint-equivalent trainer state (training
//! saves first, then evaluates; report-only loads, then evaluates — the
//! checkpoint resume guarantee in `autocat_ppo::checkpoint` plus the
//! batched evaluator's determinism contract make both evaluations
//! bit-identical).
//!
//! # Artifact layout
//!
//! Everything lives under one output directory (`--out`, default
//! `runs/sweep`):
//!
//! ```text
//! runs/sweep/
//!   table4-1.scenario.json    # the exact scenario trained (with overrides)
//!   table4-1.ckpt.bin         # its policy/optimizer/RNG checkpoint (binary)
//!   ...
//!   manifest.json             # scenario name -> train-spec digest (resume key)
//!   report.md                 # the Table IV reproduction report
//!   report.json               # the same rows, machine-readable
//! ```
//!
//! Checkpoints are written in the compact binary codec (`.ckpt.bin`, the
//! hot path); directories from older runs holding `.ckpt.json` artifacts
//! keep working — [`resolve_checkpoint_path`] falls back to the JSON
//! file, and the trainer's loader sniffs the codec from the bytes either
//! way. The manifest records the exact train spec each checkpoint came
//! from, so `sweep --resume` can skip scenarios that are already done
//! (same name, same spec) and an interrupted multi-scenario sweep
//! continues in slices instead of retraining from zero.

use autocat::attacks::classify::classify_sequence;
use autocat::gym::{Action, CacheGuessingGame};
use autocat::ppo::{eval, Trainer};
use autocat_scenario::value::{self, req, u64_from, u64_value, Value};
use autocat_scenario::Scenario;
use std::path::{Path, PathBuf};

/// Evaluation lanes used when decoding a report row — the canonical width
/// shared with `Explorer` (`autocat::ppo::eval::EVAL_LANES`), so a
/// scenario evaluated by `scenario-run` and by the sweep report sees the
/// identical sampling plan. Fixed (not a CLI knob) because the lane split
/// is part of that plan: the same artifacts must yield the same rows on
/// every machine.
pub use autocat::ppo::eval::EVAL_LANES;

/// One row of the sweep report (one trained scenario), carrying N-episode
/// evaluation statistics rather than a single-replay coin flip.
#[derive(Clone, Debug, PartialEq)]
pub struct SweepRow {
    /// Scenario name (registry or file-derived).
    pub scenario: String,
    /// The scenario's human-readable summary (for Table IV rows, the
    /// attack the paper's agent found).
    pub summary: String,
    /// Environment steps trained.
    pub steps: u64,
    /// Trailing average episode return when training stopped.
    pub final_return: f32,
    /// Whether the trailing return reached the scenario's threshold.
    pub converged: bool,
    /// Episodes evaluated for this row (the scenario's
    /// `train.eval_episodes`).
    pub eval_episodes: u64,
    /// Evaluation episodes ending in a correct guess.
    pub correct: u64,
    /// Evaluation episodes ending in any guess.
    pub guessed: u64,
    /// Evaluation episodes terminated by a detector.
    pub detected: u64,
    /// Mean evaluation episode length.
    pub avg_length: f32,
    /// Majority attack category across the census (the paper's analysis).
    pub category: String,
    /// Attack-category census over every evaluated episode, rendered as
    /// `category:count` pairs sorted by descending count.
    pub census: String,
    /// A representative replay in the paper's notation: the first
    /// (preferring correct) evaluated episode of the majority category.
    pub sequence: String,
}

impl SweepRow {
    /// Correct guesses over **all** evaluation episodes (the paper's
    /// accuracy column).
    pub fn accuracy(&self) -> f64 {
        if self.eval_episodes == 0 {
            0.0
        } else {
            self.correct as f64 / self.eval_episodes as f64
        }
    }

    /// Detector-terminated episodes over all evaluation episodes (the
    /// Sec. V-D defense metric).
    pub fn detection_rate(&self) -> f64 {
        if self.eval_episodes == 0 {
            0.0
        } else {
            self.detected as f64 / self.eval_episodes as f64
        }
    }
}

/// Checkpoint file a sweep **writes** for a scenario name under `out`:
/// the binary fast path.
pub fn checkpoint_path(out: &Path, name: &str) -> PathBuf {
    out.join(format!("{name}.ckpt.bin"))
}

/// Checkpoint file to **load** for a scenario name under `out`: the
/// binary artifact when present, otherwise the legacy `.ckpt.json` from
/// pre-binary-codec runs (the loader sniffs the codec from the bytes, so
/// either decodes). Falls back to the binary path when neither exists so
/// error messages name the file a fresh run would have written.
pub fn resolve_checkpoint_path(out: &Path, name: &str) -> PathBuf {
    let binary = checkpoint_path(out, name);
    if binary.exists() {
        return binary;
    }
    let json = out.join(format!("{name}.ckpt.json"));
    if json.exists() {
        json
    } else {
        binary
    }
}

/// Scenario sidecar file for a scenario name under `out`.
pub fn scenario_path(out: &Path, name: &str) -> PathBuf {
    out.join(format!("{name}.scenario.json"))
}

/// The train-spec digest of a scenario: FNV-1a over its canonical JSON
/// (after any CLI overrides). This is the second half of the store/
/// manifest index key — two submissions of one scenario name with
/// different seeds, budgets or lane counts index separately.
pub fn spec_digest(scenario: &Scenario) -> u64 {
    autocat::nn::state::fnv1a(scenario.to_json().into_bytes())
}

/// Decodes a report row from a trainer whose state equals the checkpoint
/// on disk — either because the checkpoint was just saved from it, or
/// because it was just loaded from one.
///
/// Evaluates the policy over `scenario.train.eval_episodes` sampled
/// episodes on [`EVAL_LANES`] batched lanes (sampling, not argmax: the
/// honest statistic on stochastic backends), then takes a census of the
/// classified attack categories across every episode. The row's printed
/// sequence is the first (preferring correct) episode of the majority
/// category.
fn report_row(trainer: &mut Trainer<CacheGuessingGame>, scenario: &Scenario) -> SweepRow {
    row_and_stats(trainer, scenario).0
}

/// The evaluated [`SweepRow`] plus the raw [`eval::EvalStats`] it was decoded
/// from. Public so every consumer of a checkpoint-equivalent trainer —
/// the sweep, `scenario-run --ckpt`, the serving daemon — evaluates
/// through the *same* code path and therefore produces the same stats
/// digest for the same checkpoint (the daemon/one-shot bit-identity
/// gate in ci.sh compares exactly this).
pub fn row_and_stats(
    trainer: &mut Trainer<CacheGuessingGame>,
    scenario: &Scenario,
) -> (SweepRow, eval::EvalStats) {
    let steps = trainer.total_steps();
    let final_return = trainer.avg_return();
    let converged = final_return >= scenario.train.return_threshold;
    let episodes = scenario.train.eval_episodes.max(1);
    let (env, net, rng) = trainer.parts_mut();
    let report = eval::evaluate_batched(&*env, net, episodes, EVAL_LANES, false, rng);

    let decode = |ep: &eval::EpisodeRecord| -> Vec<Action> {
        ep.actions
            .iter()
            .map(|&i| env.action_space().decode(i))
            .collect()
    };
    let categories: Vec<String> = report
        .episodes
        .iter()
        .map(|ep| classify_sequence(&decode(ep), env.config()).to_string())
        .collect();
    let mut counts: std::collections::BTreeMap<&str, u64> = std::collections::BTreeMap::new();
    for category in &categories {
        *counts.entry(category).or_default() += 1;
    }
    // Majority category; ties break to the lexicographically first name
    // (BTreeMap order) so the winner never depends on episode order.
    let category = counts
        .iter()
        .max_by_key(|(name, count)| (*count, std::cmp::Reverse(*name)))
        .map(|(name, _)| (*name).to_string())
        .unwrap_or_default();
    let mut census_pairs: Vec<(&str, u64)> = counts.iter().map(|(n, c)| (*n, *c)).collect();
    census_pairs.sort_by_key(|&(name, count)| (std::cmp::Reverse(count), name));
    let census = census_pairs
        .iter()
        .map(|(name, count)| format!("{name}:{count}"))
        .collect::<Vec<_>>()
        .join(", ");
    // Representative replay: first correct episode of the majority
    // category, else the first episode of that category.
    let mut first_match = None;
    let mut first_correct = None;
    for (ep, cat) in report.episodes.iter().zip(&categories) {
        if *cat != category {
            continue;
        }
        if first_match.is_none() {
            first_match = Some(ep);
        }
        if ep.correct {
            first_correct = Some(ep);
            break;
        }
    }
    let representative = first_correct.or(first_match);
    let sequence = representative
        .map(|ep| {
            decode(ep)
                .iter()
                .map(|a| a.to_string())
                .collect::<Vec<_>>()
                .join(" -> ")
        })
        .unwrap_or_default();

    let row = SweepRow {
        scenario: scenario.name.clone(),
        summary: scenario.summary.clone(),
        steps,
        final_return,
        converged,
        eval_episodes: report.stats.episodes as u64,
        correct: report.stats.correct as u64,
        guessed: report.stats.guessed as u64,
        detected: report.stats.detected as u64,
        avg_length: report.stats.avg_length,
        category,
        census,
        sequence,
    };
    (row, report.stats)
}

/// Builds and trains a scenario's trainer to its budget — the one
/// training path shared by [`train_one`], `scenario-run --ckpt` and the
/// serving daemon, which is what makes a daemon job bit-identical to its
/// one-shot equivalent. `on_update` observes `(total steps, trailing
/// average return)` after every PPO update (pass a no-op for silence;
/// observation cannot perturb training).
///
/// # Errors
///
/// Returns an error if the scenario's environment cannot be built.
pub fn train_trainer(
    scenario: &Scenario,
    on_update: impl FnMut(u64, f32),
) -> Result<Trainer<CacheGuessingGame>, String> {
    let env = scenario.build_env()?;
    let mut trainer = Trainer::new(
        env,
        scenario.train.backbone.clone(),
        scenario.train.ppo,
        scenario.train.seed,
    );
    trainer.train_until_with(
        scenario.train.return_threshold,
        scenario.train.max_steps,
        on_update,
    );
    Ok(trainer)
}

/// Trains one scenario to its budget, writes its artifacts (scenario
/// sidecar + checkpoint) under `out`, and returns its report row.
///
/// # Errors
///
/// Returns an error if the scenario is invalid or an artifact cannot be
/// written.
pub fn train_one(scenario: &Scenario, out: &Path) -> Result<SweepRow, String> {
    let err = |e: String| format!("{}: {e}", scenario.name);
    let mut trainer = train_trainer(scenario, |_, _| {}).map_err(err)?;
    // Checkpoint first, sidecar last: the sidecar is the discovery key
    // (`artifact_names`), so a run killed between the two writes leaves
    // an invisible checkpoint rather than an orphan sidecar that poisons
    // every later report in this directory.
    trainer
        .save_checkpoint(checkpoint_path(out, &scenario.name))
        .map_err(err)?;
    scenario
        .save(scenario_path(out, &scenario.name))
        .map_err(err)?;
    // The manifest entry last of all: it asserts "this scenario's
    // artifacts are complete for this exact spec", which is only true
    // once both files above exist.
    manifest::record(out, &scenario.name, spec_digest(scenario)).map_err(err)?;
    // Decode *after* saving: the in-memory state now equals the artifact,
    // so `row_from_artifacts` reproduces this row exactly.
    Ok(report_row(&mut trainer, scenario))
}

/// Whether `--resume` may skip a scenario under `out`: its manifest entry
/// matches the scenario's current [`spec_digest`] *and* its artifacts are
/// on disk. A spec change (different seed/budget/lanes via overrides)
/// misses the manifest and retrains; a deleted checkpoint retrains.
pub fn resume_complete(out: &Path, scenario: &Scenario) -> bool {
    manifest::load(out).ok().is_some_and(|manifest| {
        manifest.get(&scenario.name) == Some(&spec_digest(scenario))
            && resolve_checkpoint_path(out, &scenario.name).exists()
            && scenario_path(out, &scenario.name).exists()
    })
}

/// The per-run resume manifest: `manifest.json` under the sweep output
/// directory, mapping scenario name → train-spec digest at the moment the
/// scenario's artifacts were completely written. [`train_one`] appends to
/// it (thread-safely — sweeps train scenarios on parallel rayon tasks)
/// and `sweep --resume` consults it via [`resume_complete`].
pub mod manifest {
    use super::{spec_digest, Path, PathBuf, Scenario};
    use autocat_scenario::value::{self, Value};
    use std::collections::BTreeMap;
    use std::sync::Mutex;

    /// Manifest file under a sweep output directory.
    pub fn path(out: &Path) -> PathBuf {
        out.join("manifest.json")
    }

    /// Loads the manifest; a missing file is an empty manifest.
    ///
    /// # Errors
    ///
    /// Returns an error on unreadable or malformed contents.
    pub fn load(out: &Path) -> Result<BTreeMap<String, u64>, String> {
        let file = path(out);
        if !file.exists() {
            return Ok(BTreeMap::new());
        }
        let text = std::fs::read_to_string(&file)
            .map_err(|e| format!("reading {}: {e}", file.display()))?;
        let root = value::from_json(&text).map_err(|e| format!("{}: {e}", file.display()))?;
        root.as_table()?
            .iter()
            .map(|(name, digest)| {
                let digest = u64::from_str_radix(digest.as_str()?, 16)
                    .map_err(|_| format!("{}: bad digest for `{name}`", file.display()))?;
                Ok((name.clone(), digest))
            })
            .collect()
    }

    /// Records (or refreshes) one scenario's spec digest. Serialized by a
    /// process-wide lock and written via rename, so concurrent rayon
    /// training tasks cannot tear the file.
    ///
    /// # Errors
    ///
    /// Returns an error if the manifest cannot be read back or written.
    pub fn record(out: &Path, name: &str, digest: u64) -> Result<(), String> {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK
            .lock()
            .map_err(|_| "manifest lock poisoned".to_string())?;
        let mut entries = load(out)?;
        entries.insert(name.to_string(), digest);
        let mut root = Value::table();
        for (name, digest) in &entries {
            root.set(name, Value::Str(format!("{digest:016x}")));
        }
        let file = path(out);
        let tmp = out.join("manifest.json.tmp");
        std::fs::write(&tmp, value::to_json(&root))
            .map_err(|e| format!("writing {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &file)
            .map_err(|e| format!("renaming {} -> {}: {e}", tmp.display(), file.display()))
    }

    /// Convenience for callers holding a scenario: record its current
    /// spec digest.
    ///
    /// # Errors
    ///
    /// Propagates [`record`]'s errors.
    pub fn record_scenario(out: &Path, scenario: &Scenario) -> Result<(), String> {
        record(out, &scenario.name, spec_digest(scenario))
    }
}

/// Regenerates one report row from artifacts alone: loads the scenario
/// sidecar, rebuilds its environment, loads the checkpoint and decodes.
///
/// # Errors
///
/// Returns an error if either artifact is missing, unparsable or
/// inconsistent with the other.
pub fn row_from_artifacts(out: &Path, name: &str) -> Result<SweepRow, String> {
    let err = |e: String| format!("{name}: {e}");
    let scenario = Scenario::load(scenario_path(out, name)).map_err(err)?;
    let env = scenario.build_env().map_err(err)?;
    let mut trainer =
        Trainer::load_checkpoint(resolve_checkpoint_path(out, name), env).map_err(err)?;
    Ok(report_row(&mut trainer, &scenario))
}

/// Lists the scenario names with artifacts under `out` (every
/// `<name>.scenario.json`), sorted in report order.
///
/// # Errors
///
/// Returns an error if the directory cannot be read.
pub fn artifact_names(out: &Path) -> Result<Vec<String>, String> {
    let entries = std::fs::read_dir(out).map_err(|e| format!("reading {}: {e}", out.display()))?;
    let mut names = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("reading {}: {e}", out.display()))?;
        let file = entry.file_name();
        let file = file.to_string_lossy();
        if let Some(name) = file.strip_suffix(".scenario.json") {
            names.push(name.to_string());
        }
    }
    names.sort_by_key(|n| name_sort_key(n));
    Ok(names)
}

/// Natural sort key so `table4-2` precedes `table4-10` the way Table IV
/// orders its rows.
fn name_sort_key(name: &str) -> (String, u64, String) {
    let digits = name.len() - name.trim_end_matches(|c: char| c.is_ascii_digit()).len();
    let (prefix, number) = name.split_at(name.len() - digits);
    (
        prefix.to_string(),
        number.parse().unwrap_or(0),
        name.to_string(),
    )
}

/// Sorts rows into report order (natural order on scenario names).
pub fn sort_rows(rows: &mut [SweepRow]) {
    rows.sort_by_key(|r| name_sort_key(&r.scenario));
}

/// Extends `rows` with a regenerated row for every artifact under `out`
/// not already covered, so a written report always reflects the *whole*
/// artifact directory — a filtered training run must not silently drop
/// previously-trained scenarios from `report.md`.
///
/// # Errors
///
/// Returns an error if the directory cannot be read or an uncovered
/// artifact fails to load.
pub fn fill_missing_rows(out: &Path, rows: &mut Vec<SweepRow>) -> Result<(), String> {
    let covered: std::collections::BTreeSet<String> =
        rows.iter().map(|r| r.scenario.clone()).collect();
    for name in artifact_names(out)? {
        if !covered.contains(&name) {
            rows.push(row_from_artifacts(out, &name)?);
        }
    }
    Ok(())
}

/// Renders the Markdown reproduction report.
pub fn render_markdown(rows: &[SweepRow]) -> String {
    let mut out = String::from(
        "# Table IV reproduction report\n\n\
         Generated by the `sweep` harness from per-scenario checkpoints; regenerate this\n\
         exact report from the artifacts alone with `sweep --report-only --out <dir>`.\n\n\
         Accuracy, detection rate and average length are per-policy statistics over\n\
         `eval N` sampled evaluation episodes (the scenario's `eval_episodes`), not a\n\
         single replay; `category` is the majority of the per-episode census and the\n\
         sequence column shows a representative episode of that category.\n\n\
         | scenario | steps | final reward | converged | category | accuracy | detect | avg len | eval N | census | representative sequence |\n\
         |----------|------:|-------------:|-----------|----------|---------:|-------:|--------:|-------:|--------|-------------------------|\n",
    );
    for row in rows {
        out.push_str(&format!(
            "| {} | {} | {:.3} | {} | {} | {:.3} | {:.3} | {:.1} | {} | {} | `{}` |\n",
            row.scenario,
            row.steps,
            row.final_return,
            if row.converged { "yes" } else { "no" },
            row.category,
            row.accuracy(),
            row.detection_rate(),
            row.avg_length,
            row.eval_episodes,
            row.census,
            row.sequence,
        ));
    }
    out
}

/// Renders the machine-readable JSON report.
pub fn render_json(rows: &[SweepRow]) -> String {
    let mut root = Value::table();
    root.set("version", Value::Int(1));
    root.set(
        "rows",
        Value::Array(
            rows.iter()
                .map(|row| {
                    let mut table = Value::table();
                    table.set("scenario", Value::Str(row.scenario.clone()));
                    table.set("summary", Value::Str(row.summary.clone()));
                    table.set("steps", u64_value(row.steps));
                    table.set("final_return", Value::Float(f64::from(row.final_return)));
                    table.set("converged", Value::Bool(row.converged));
                    table.set("eval_episodes", u64_value(row.eval_episodes));
                    table.set("correct", u64_value(row.correct));
                    table.set("guessed", u64_value(row.guessed));
                    table.set("detected", u64_value(row.detected));
                    // Derived ratios, for machine readers; the counts above
                    // are authoritative and exact.
                    table.set("accuracy", Value::Float(row.accuracy()));
                    table.set("detection_rate", Value::Float(row.detection_rate()));
                    table.set("avg_length", Value::Float(f64::from(row.avg_length)));
                    table.set("category", Value::Str(row.category.clone()));
                    table.set("census", Value::Str(row.census.clone()));
                    table.set("sequence", Value::Str(row.sequence.clone()));
                    table
                })
                .collect(),
        ),
    );
    value::to_json(&root)
}

/// Parses rows back out of a [`render_json`] report.
///
/// # Errors
///
/// Returns an error on malformed input.
pub fn rows_from_json(text: &str) -> Result<Vec<SweepRow>, String> {
    let root = value::from_json(text)?;
    let table = root.as_table()?;
    req(table, "rows")?
        .as_array()?
        .iter()
        .map(|item| {
            let row = item.as_table()?;
            Ok(SweepRow {
                scenario: req(row, "scenario")?.as_str()?.to_string(),
                summary: req(row, "summary")?.as_str()?.to_string(),
                steps: u64_from(req(row, "steps")?)?,
                final_return: req(row, "final_return")?.as_f32()?,
                converged: req(row, "converged")?.as_bool()?,
                eval_episodes: u64_from(req(row, "eval_episodes")?)?,
                correct: u64_from(req(row, "correct")?)?,
                guessed: u64_from(req(row, "guessed")?)?,
                detected: u64_from(req(row, "detected")?)?,
                avg_length: req(row, "avg_length")?.as_f32()?,
                category: req(row, "category")?.as_str()?.to_string(),
                census: req(row, "census")?.as_str()?.to_string(),
                sequence: req(row, "sequence")?.as_str()?.to_string(),
            })
        })
        .collect()
}

/// Writes `report.md` and `report.json` for sorted `rows` under `out`.
///
/// # Errors
///
/// Returns an error if a file cannot be written.
pub fn write_report(out: &Path, rows: &[SweepRow]) -> Result<(), String> {
    let write = |file: &str, text: String| {
        let path = out.join(file);
        std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("report.md", render_markdown(rows))?;
    write("report.json", render_json(rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_scenario::table4;

    /// A scenario cut down to test size (a handful of updates).
    fn tiny_scenario() -> Scenario {
        let mut scenario = table4(3).unwrap(); // flush+reload: learns fast
        scenario.train.max_steps = 512;
        scenario.train.ppo.horizon = 256;
        scenario.train.ppo.minibatch = 64;
        scenario.train.ppo.epochs_per_update = 2;
        scenario.train.eval_episodes = 10;
        scenario
    }

    fn temp_out(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("autocat-sweep-tests").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn report_only_regenerates_the_identical_report() {
        // The acceptance criterion: train → report, then regenerate the
        // report from the artifacts alone, and demand equality down to the
        // rendered bytes.
        let out = temp_out("identical-report");
        let scenario = tiny_scenario();
        let trained_row = train_one(&scenario, &out).unwrap();
        write_report(&out, std::slice::from_ref(&trained_row)).unwrap();

        let names = artifact_names(&out).unwrap();
        assert_eq!(names, vec![scenario.name.clone()]);
        let regenerated = row_from_artifacts(&out, &scenario.name).unwrap();
        assert_eq!(regenerated, trained_row, "rows must match field-for-field");
        let rows = std::slice::from_ref(&regenerated);
        assert_eq!(
            render_markdown(rows),
            std::fs::read_to_string(out.join("report.md")).unwrap()
        );
        assert_eq!(
            render_json(rows),
            std::fs::read_to_string(out.join("report.json")).unwrap()
        );
    }

    #[test]
    fn filtered_runs_keep_earlier_scenarios_in_the_report() {
        // Two sweeps into one directory with disjoint filters: the report
        // written by the second must still cover the first's scenario.
        let out = temp_out("incremental");
        let first = tiny_scenario();
        let first_row = train_one(&first, &out).unwrap();

        let mut second = tiny_scenario();
        second.name = "tiny-second".into();
        let mut rows = vec![train_one(&second, &out).unwrap()];

        fill_missing_rows(&out, &mut rows).unwrap();
        sort_rows(&mut rows);
        let names: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, [first.name.as_str(), "tiny-second"]);
        assert!(rows.contains(&first_row), "regenerated row must be exact");
    }

    #[test]
    fn json_report_round_trips() {
        let rows = vec![SweepRow {
            scenario: "table4-3".into(),
            summary: "FR".into(),
            steps: 512,
            final_return: 0.123_456_7,
            converged: false,
            eval_episodes: 100,
            correct: 97,
            guessed: 99,
            detected: 2,
            avg_length: 4.25,
            category: "flush+reload".into(),
            census: "flush+reload:93, other:7".into(),
            sequence: "f0 -> v -> 0 -> g".into(),
        }];
        let back = rows_from_json(&render_json(&rows)).unwrap();
        assert_eq!(back, rows);
        assert!((back[0].accuracy() - 0.97).abs() < 1e-12);
        assert!((back[0].detection_rate() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn trained_row_carries_episode_statistics() {
        // A sweep row is an N-episode statistic: counts bounded by the
        // episode budget, a census that names the majority category, and a
        // representative sequence drawn from the evaluated episodes.
        let out = temp_out("row-stats");
        let scenario = tiny_scenario();
        let row = train_one(&scenario, &out).unwrap();
        assert_eq!(row.eval_episodes, scenario.train.eval_episodes as u64);
        assert!(row.correct <= row.guessed);
        assert!(row.guessed <= row.eval_episodes);
        assert!(row.accuracy() <= 1.0);
        assert!(row.avg_length >= 1.0);
        assert!(!row.category.is_empty());
        assert!(
            row.census.contains(&format!("{}:", row.category)),
            "census `{}` must cover the majority category `{}`",
            row.census,
            row.category
        );
        assert!(!row.sequence.is_empty(), "representative replay required");
        let total: u64 = row
            .census
            .split(", ")
            .map(|pair| pair.rsplit(':').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(total, row.eval_episodes, "census must cover every episode");
    }

    #[test]
    fn rows_sort_in_table_order() {
        let row = |name: &str| SweepRow {
            scenario: name.into(),
            summary: String::new(),
            steps: 0,
            final_return: 0.0,
            converged: false,
            eval_episodes: 0,
            correct: 0,
            guessed: 0,
            detected: 0,
            avg_length: 0.0,
            category: String::new(),
            census: String::new(),
            sequence: String::new(),
        };
        let mut rows = vec![row("table4-10"), row("defense-misscount"), row("table4-2")];
        sort_rows(&mut rows);
        let names: Vec<&str> = rows.iter().map(|r| r.scenario.as_str()).collect();
        assert_eq!(names, ["defense-misscount", "table4-2", "table4-10"]);
    }

    #[test]
    fn missing_artifacts_are_reported_with_the_scenario_name() {
        let out = temp_out("missing");
        let err = row_from_artifacts(&out, "table4-1").err().unwrap();
        assert!(err.contains("table4-1"), "{err}");
    }

    #[test]
    fn checkpoints_are_binary_with_a_json_fallback() {
        let out = temp_out("binary-artifacts");
        let scenario = tiny_scenario();
        let row = train_one(&scenario, &out).unwrap();

        // The written artifact is the binary fast path...
        let binary = checkpoint_path(&out, &scenario.name);
        assert!(binary.to_string_lossy().ends_with(".ckpt.bin"));
        assert!(binary.exists());
        assert_eq!(resolve_checkpoint_path(&out, &scenario.name), binary);

        // ...and a directory from a pre-binary run (JSON checkpoint only)
        // still reports identically: same tree, either codec.
        let json = out.join(format!("{}.ckpt.json", scenario.name));
        let bytes = std::fs::read(&binary).unwrap();
        let tree = autocat_store::codec::decode(&bytes).unwrap();
        std::fs::write(&json, autocat_scenario::value::to_json(&tree)).unwrap();
        std::fs::remove_file(&binary).unwrap();
        assert_eq!(resolve_checkpoint_path(&out, &scenario.name), json);
        let regenerated = row_from_artifacts(&out, &scenario.name).unwrap();
        assert_eq!(regenerated, row, "JSON fallback must reproduce the row");
    }

    #[test]
    fn resume_skips_only_matching_complete_artifacts() {
        let out = temp_out("resume");
        let scenario = tiny_scenario();
        assert!(!resume_complete(&out, &scenario), "nothing trained yet");

        train_one(&scenario, &out).unwrap();
        assert!(resume_complete(&out, &scenario), "trained + manifest match");
        assert_eq!(
            manifest::load(&out).unwrap().get(&scenario.name),
            Some(&spec_digest(&scenario))
        );

        // A different train spec (seed bump) must retrain.
        let mut reseeded = scenario.clone();
        reseeded.train.seed += 1;
        assert!(!resume_complete(&out, &reseeded), "spec changed");

        // A deleted checkpoint must retrain even with a manifest entry.
        std::fs::remove_file(checkpoint_path(&out, &scenario.name)).unwrap();
        assert!(!resume_complete(&out, &scenario), "checkpoint gone");
    }

    #[test]
    fn spec_digest_tracks_the_exact_train_spec() {
        let a = tiny_scenario();
        let mut b = tiny_scenario();
        assert_eq!(spec_digest(&a), spec_digest(&b), "identical scenarios");
        b.train.max_steps += 1;
        assert_ne!(spec_digest(&a), spec_digest(&b), "budget change re-keys");
    }
}
