//! End-to-end daemon test: boot `autocat-serve daemon` as a subprocess,
//! drive it with the client subcommands (also subprocesses — the exact
//! surface ci.sh uses), and assert the daemon-trained checkpoint is
//! bit-identical to an in-process one-shot run through the shared
//! `sweep::train_trainer`/`row_and_stats` path.

use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{row_and_stats, train_trainer};
use autocat_nn::state::params_digest;
use autocat_store::{codec, digest_hex};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};

const SCENARIO: &str = "table4-6";
const STEPS: u64 = 1;

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots the daemon on a free loopback port and parses the port from
    /// its startup line.
    fn spawn(store: &std::path::Path) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_autocat-serve"))
            .args([
                "daemon",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--store",
            ])
            .arg(store)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawning daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon printed nothing")
            .expect("reading daemon banner");
        let addr = banner
            .strip_prefix("autocat-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        // Drain the rest of stdout so the pipe never blocks the daemon.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    /// Runs one client subcommand against this daemon, asserting success,
    /// and returns its stdout.
    fn client(&self, args: &[&str]) -> String {
        let output = self.client_raw(args);
        assert!(
            output.status.success(),
            "client {args:?} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("client stdout is UTF-8")
    }

    fn client_raw(&self, args: &[&str]) -> std::process::Output {
        Command::new(env!("CARGO_BIN_EXE_autocat-serve"))
            .args(args)
            .args(["--addr", &self.addr])
            .output()
            .expect("running client")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt and braces: the test shuts down cleanly, but a panic
        // mid-test must not leak a live daemon.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pulls `label : value` out of the client's printed key-value lines.
fn field<'a>(output: &'a str, label: &str) -> &'a str {
    output
        .lines()
        .find_map(|line| line.strip_prefix(label))
        .unwrap_or_else(|| panic!("no `{label}` line in:\n{output}"))
        .trim()
}

#[test]
fn daemon_round_trip_is_bit_identical_to_one_shot() {
    let dir = std::env::temp_dir().join(format!("autocat-serve-e2e-{}", std::process::id()));
    let store = dir.join("store");
    std::fs::create_dir_all(&store).expect("creating store dir");
    let mut daemon = Daemon::spawn(&store);

    // The one-shot equivalent, computed in-process through the exact code
    // path `scenario-run --ckpt` uses: train, capture canonical bytes,
    // evaluate.
    let mut scenario = autocat_scenario::lookup(SCENARIO).expect("registry scenario");
    TrainOverrides {
        steps: Some(STEPS),
        ..TrainOverrides::default()
    }
    .apply(&mut scenario);
    let mut trainer = train_trainer(&scenario, |_, _| {}).expect("one-shot training");
    let bytes = codec::encode(&trainer.to_checkpoint_value());
    let (_, stats) = row_and_stats(&mut trainer, &scenario);
    let (_, net, _) = trainer.parts_mut();
    let expect_params = digest_hex(params_digest(net));
    let expect_eval = digest_hex(stats.digest());
    let expect_content = digest_hex(codec::content_digest(&bytes));

    // Daemon side: ping, submit --wait, and compare every fingerprint.
    daemon.client(&["ping"]);
    let steps = STEPS.to_string();
    let submit = daemon.client(&[
        "submit",
        "--scenario",
        SCENARIO,
        "--steps",
        &steps,
        "--wait",
    ]);
    assert_eq!(field(&submit, "params digest :"), expect_params, "{submit}");
    assert_eq!(field(&submit, "eval digest   :"), expect_eval, "{submit}");
    assert_eq!(field(&submit, "digest   :"), expect_content, "{submit}");

    let status = daemon.client(&["status", "--job", "1"]);
    assert!(status.contains("[done]"), "{status}");
    assert!(status.contains(&expect_content), "{status}");

    // fetch: the object's bytes must equal the one-shot encoding exactly.
    let out = dir.join("fetched.ckpt.bin");
    let fetched = daemon.client(&[
        "fetch",
        "--scenario",
        SCENARIO,
        "--out",
        out.to_str().expect("utf-8 path"),
    ]);
    assert!(fetched.contains(&expect_content), "{fetched}");
    assert_eq!(std::fs::read(&out).expect("fetched file"), bytes);

    // A second run with another seed makes a second entry; gc --max-count 1
    // must then drop exactly one entry and its (unshared) object.
    daemon.client(&[
        "submit",
        "--scenario",
        SCENARIO,
        "--steps",
        &steps,
        "--seed",
        "99",
        "--wait",
    ]);
    let gc = daemon.client(&["gc", "--max-count", "1"]);
    assert!(
        gc.contains("removed 1 entries, 1 objects; kept 1 entries"),
        "{gc}"
    );

    // Error paths surface as clean failures, not hangs or panics.
    let unknown = daemon.client_raw(&["submit", "--scenario", "no-such-scenario"]);
    assert!(!unknown.status.success());
    assert!(
        String::from_utf8_lossy(&unknown.stderr).contains("unknown scenario"),
        "{}",
        String::from_utf8_lossy(&unknown.stderr)
    );
    let missing =
        daemon.client_raw(&["fetch", "--scenario", "never-trained", "--out", "/dev/null"]);
    assert!(!missing.status.success());

    daemon.client(&["shutdown"]);
    let status = daemon.child.wait().expect("daemon exit status");
    assert!(status.success(), "daemon exited {status}");
    std::fs::remove_dir_all(&dir).ok();
}
