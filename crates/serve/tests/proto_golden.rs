//! Golden-file test for protocol v2: every request, response and event
//! variant pinned on disk as JSON lines. The committed fixture must be
//! exactly what `to_value` + `to_json` emit today (byte stability — any
//! wire drift breaks loudly), and decoding each committed line must
//! reproduce the typed message (decode identity). Together they pin the
//! wire contract in both directions.
//!
//! Regenerate after an *intentional* protocol bump with:
//! `SERVE_BLESS=1 cargo test -p autocat-serve --test proto_golden`
//! (and bump `PROTOCOL_VERSION` — old clients must fail the handshake,
//! not misparse).

use autocat_bench::cli::TrainOverrides;
use autocat_scenario::value::to_json;
use autocat_serve::proto::{
    ErrorKind, Event, FetchKey, JobSource, JobState, JobStatus, Request, Response, Which,
    PROTOCOL_VERSION,
};
use autocat_store::StoreEntry;

fn fixture_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/proto_v2.jsonl")
}

fn status(state: JobState) -> JobStatus {
    JobStatus {
        job: 3,
        scenario: "table4-6".into(),
        spec_digest: 0x0123_4567_89ab_cdef,
        priority: 2,
        state,
        steps: 4096,
        avg_return: 0.625,
        digest: (state == JobState::Done).then_some(0xaaaa),
        params_digest: (state == JobState::Done).then_some(0xbbbb),
        eval_digest: (state == JobState::Done).then_some(0xcccc),
        accuracy: (state == JobState::Done).then_some(0.97),
        error: (state == JobState::Failed).then(|| "boom".to_string()),
    }
}

/// The message under each pinned line, in fixture order. The `kind` tag
/// names which decoder owns the line.
enum Message {
    Req(Request),
    Resp(Response),
    Event(Event),
}

fn messages() -> Vec<Message> {
    use Message::{Event as Ev, Req, Resp};
    let overrides = TrainOverrides {
        steps: Some(512),
        seed: Some(9),
        lanes: Some(2),
        eval_episodes: Some(20),
        shards: Some(4),
        threads: None, // never travels
    };
    vec![
        // --- every Request variant ---
        Req(Request::Hello {
            version: PROTOCOL_VERSION,
        }),
        Req(Request::Ping),
        Req(Request::Submit {
            source: JobSource::Registry("table4-6".into()),
            overrides,
            priority: 5,
        }),
        Req(Request::Submit {
            source: JobSource::Inline(Box::new(
                autocat_scenario::lookup("table4-3").expect("registry scenario"),
            )),
            overrides: TrainOverrides::default(),
            priority: 0,
        }),
        Req(Request::Status { job: None }),
        Req(Request::Status { job: Some(7) }),
        Req(Request::Watch { job: 7 }),
        Req(Request::Fetch {
            key: FetchKey::Scenario {
                name: "table4-6".into(),
                which: Which::Best,
            },
        }),
        Req(Request::Fetch {
            key: FetchKey::Scenario {
                name: "table4-6".into(),
                which: Which::Latest,
            },
        }),
        Req(Request::Fetch {
            key: FetchKey::Digest(0xdead_beef),
        }),
        Req(Request::Gc {
            max_count: Some(2),
            max_age_secs: Some(86_400),
            keep: vec!["defense-*".into(), "table4-6".into()],
        }),
        Req(Request::Gc {
            max_count: None,
            max_age_secs: None,
            keep: Vec::new(),
        }),
        Req(Request::Shutdown),
        // --- every Response variant ---
        Resp(Response::Hello {
            version: PROTOCOL_VERSION,
        }),
        Resp(Response::Pong),
        Resp(Response::Submitted {
            job: 1,
            spec_digest: 0xfeed,
            attached: false,
        }),
        Resp(Response::Submitted {
            job: 1,
            spec_digest: 0xfeed,
            attached: true,
        }),
        Resp(Response::Status {
            jobs: vec![
                status(JobState::Queued),
                status(JobState::Running),
                status(JobState::Done),
                status(JobState::Failed),
            ],
        }),
        Resp(Response::Fetch {
            entry: StoreEntry {
                scenario: "table4-6".into(),
                spec_digest: 0x1111,
                digest: 0x2222,
                params_digest: 0x3333,
                steps: 512,
                accuracy: 0.5,
                created_unix: 1_700_000_000,
            },
            len: 12_345,
        }),
        Resp(Response::Gc {
            removed_entries: 1,
            removed_objects: 1,
            kept_entries: 3,
        }),
        Resp(Response::ShuttingDown),
        // One Error line per ErrorKind: the slugs are wire contract too.
        Resp(Response::Error {
            kind: ErrorKind::BadRequest,
            message: "expected the `hello` handshake before any other request".into(),
        }),
        Resp(Response::Error {
            kind: ErrorKind::VersionMismatch,
            message: "client speaks v1, this daemon speaks v2".into(),
        }),
        Resp(Response::Error {
            kind: ErrorKind::UnknownScenario,
            message: "unknown scenario `nope`".into(),
        }),
        Resp(Response::Error {
            kind: ErrorKind::UnknownJob,
            message: "no job 7".into(),
        }),
        Resp(Response::Error {
            kind: ErrorKind::NotFound,
            message: "no stored checkpoint for `table4-6`".into(),
        }),
        Resp(Response::Error {
            kind: ErrorKind::Internal,
            message: "store I/O failed".into(),
        }),
        Resp(Response::Error {
            kind: ErrorKind::Shutdown,
            message: "daemon shutting down".into(),
        }),
        // --- every Event variant ---
        Ev(Event::Progress {
            job: 1,
            steps: 2048,
            avg_return: 0.125,
        }),
        Ev(Event::Done {
            status: status(JobState::Done),
        }),
        Ev(Event::Failed {
            job: 1,
            error: "env exploded".into(),
        }),
    ]
}

impl Message {
    fn encode(&self) -> String {
        match self {
            Message::Req(m) => to_json(&m.to_value()),
            Message::Resp(m) => to_json(&m.to_value()),
            Message::Event(m) => to_json(&m.to_value()),
        }
    }

    /// Decodes `line` with this message's own decoder and asserts
    /// equality with the typed value.
    fn assert_decodes(&self, line: &str) {
        let value = autocat_scenario::value::from_json(line).expect("fixture line parses");
        match self {
            Message::Req(m) => assert_eq!(&Request::from_value(&value).unwrap(), m, "{line}"),
            Message::Resp(m) => assert_eq!(&Response::from_value(&value).unwrap(), m, "{line}"),
            Message::Event(m) => {
                assert!(autocat_serve::proto::is_event(&value), "{line}");
                assert_eq!(&Event::from_value(&value).unwrap(), m, "{line}");
            }
        }
    }
}

#[test]
fn protocol_v2_wire_format_is_pinned() {
    let messages = messages();
    let encoded: Vec<String> = messages.iter().map(Message::encode).collect();
    if std::env::var_os("SERVE_BLESS").is_some() {
        std::fs::create_dir_all(concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data")).unwrap();
        let mut text = encoded.join("\n");
        text.push('\n');
        std::fs::write(fixture_path(), text).unwrap();
    }
    let committed = std::fs::read_to_string(fixture_path()).expect("committed proto_v2.jsonl");
    let lines: Vec<&str> = committed.lines().collect();
    assert_eq!(
        lines.len(),
        messages.len(),
        "fixture line count drifted; if intentional, bump PROTOCOL_VERSION and re-bless"
    );
    for ((message, line), expect) in messages.iter().zip(&lines).zip(&encoded) {
        // Encode identity: today's encoder reproduces the pinned bytes.
        assert_eq!(
            expect, *line,
            "wire encoding drifted from the committed fixture; \
             if intentional, bump PROTOCOL_VERSION and re-bless"
        );
        // Decode identity: the pinned bytes reproduce the typed message.
        message.assert_decodes(line);
    }
}
