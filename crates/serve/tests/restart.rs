//! Restart-safety and dedup tests for the daemon.
//!
//! The first test submits jobs to a queue-only daemon (`--workers 0`),
//! SIGKILLs it, restarts over the same store, and asserts the journal
//! re-enqueued everything: priority order holds across the restart, the
//! trained artifacts are bit-identical to an in-process one-shot run,
//! and a duplicate submission attaches to the finished job. The second
//! drives the typed `Client`/`JobHandle` library concurrently and
//! asserts two identical submissions share one training run and see the
//! identical event stream.

use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{row_and_stats, train_trainer};
use autocat_nn::state::params_digest;
use autocat_scenario::value::{to_json, u64_from};
use autocat_serve::client::Client;
use autocat_serve::proto::JobSource;
use autocat_store::{codec, digest_hex};
use std::io::BufRead;
use std::process::{Child, Command, Stdio};

const SCENARIO: &str = "table4-6";

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Boots a daemon on a free loopback port with the given worker
    /// count and parses the port from its startup line.
    fn spawn(store: &std::path::Path, workers: &str) -> Daemon {
        let mut child = Command::new(env!("CARGO_BIN_EXE_autocat-serve"))
            .args([
                "daemon",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                workers,
                "--store",
            ])
            .arg(store)
            .stdout(Stdio::piped())
            .spawn()
            .expect("spawning daemon");
        let stdout = child.stdout.take().expect("daemon stdout");
        let mut lines = std::io::BufReader::new(stdout).lines();
        let banner = lines
            .next()
            .expect("daemon printed nothing")
            .expect("reading daemon banner");
        let addr = banner
            .strip_prefix("autocat-serve: listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        // Drain the rest of stdout so the pipe never blocks the daemon.
        std::thread::spawn(move || for _ in lines {});
        Daemon { child, addr }
    }

    /// Runs one client subcommand against this daemon, asserting success,
    /// and returns its stdout.
    fn client(&self, args: &[&str]) -> String {
        let output = Command::new(env!("CARGO_BIN_EXE_autocat-serve"))
            .args(args)
            .args(["--addr", &self.addr])
            .output()
            .expect("running client");
        assert!(
            output.status.success(),
            "client {args:?} failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        String::from_utf8(output.stdout).expect("client stdout is UTF-8")
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Pulls `label : value` out of the client's printed key-value lines.
fn field<'a>(output: &'a str, label: &str) -> &'a str {
    output
        .lines()
        .find_map(|line| line.strip_prefix(label))
        .unwrap_or_else(|| panic!("no `{label}` line in:\n{output}"))
        .trim()
}

#[test]
fn sigkilled_daemon_reenqueues_jobs_by_priority_and_stays_bit_identical() {
    let dir = std::env::temp_dir().join(format!("autocat-serve-restart-{}", std::process::id()));
    let store = dir.join("store");
    std::fs::create_dir_all(&store).expect("creating store dir");

    // Phase 1: a queue-only daemon accepts and journals but never trains,
    // so the kill deterministically lands with both jobs still queued.
    {
        let mut daemon = Daemon::spawn(&store, "0");
        let one = daemon.client(&["submit", "--scenario", SCENARIO, "--steps", "1"]);
        assert!(one.contains("submitted job 1"), "{one}");
        let two = daemon.client(&[
            "submit",
            "--scenario",
            SCENARIO,
            "--steps",
            "1",
            "--seed",
            "99",
            "--priority",
            "5",
        ]);
        assert!(two.contains("submitted job 2"), "{two}");
        // Dedup against a queued job: no third run is created.
        let dup = daemon.client(&["submit", "--scenario", SCENARIO, "--steps", "1"]);
        assert!(dup.contains("attached to job 1"), "{dup}");
        let status = daemon.client(&["status"]);
        assert!(status.contains("job 1: table4-6 [queued]"), "{status}");
        assert!(
            status.contains("job 2: table4-6 [queued] prio 5"),
            "{status}"
        );
        assert!(!status.contains("job 3"), "{status}");
        // SIGKILL: no graceful shutdown, no flush beyond the journal's
        // per-append write.
        daemon.child.kill().expect("killing daemon");
        daemon.child.wait().expect("waiting killed daemon");
    }

    // The one-shot equivalent of job 1, through the exact code path
    // `scenario-run --ckpt` uses.
    let mut scenario = autocat_scenario::lookup(SCENARIO).expect("registry scenario");
    TrainOverrides {
        steps: Some(1),
        ..TrainOverrides::default()
    }
    .apply(&mut scenario);
    let mut trainer = train_trainer(&scenario, |_, _| {}).expect("one-shot training");
    let bytes = codec::encode(&trainer.to_checkpoint_value());
    let (_, stats) = row_and_stats(&mut trainer, &scenario);
    let (_, net, _) = trainer.parts_mut();
    let expect_params = digest_hex(params_digest(net));
    let expect_eval = digest_hex(stats.digest());
    let expect_content = digest_hex(codec::content_digest(&bytes));

    // Phase 2: restart over the same store with a worker; the journal
    // re-enqueues both jobs and they train to completion.
    let daemon = Daemon::spawn(&store, "1");
    let watch2 = daemon.client(&["watch", "--job", "2"]);
    assert!(watch2.contains("job 2 done"), "{watch2}");
    let watch1 = daemon.client(&["watch", "--job", "1"]);
    assert_eq!(field(&watch1, "params digest :"), expect_params, "{watch1}");
    assert_eq!(field(&watch1, "eval digest   :"), expect_eval, "{watch1}");
    assert_eq!(field(&watch1, "digest   :"), expect_content, "{watch1}");

    // Priority across the restart: with one worker, the journal's first
    // `running` record must belong to the priority-5 job.
    let journal = std::fs::read_to_string(store.join("jobs.jsonl")).expect("job journal");
    let first_running = journal
        .lines()
        .skip(1) // header
        .map(|line| autocat_scenario::value::from_json(line).expect("journal record"))
        .find(|record| record.as_table().unwrap()["op"].as_str().unwrap() == "running")
        .expect("a running record");
    assert_eq!(
        u64_from(&first_running.as_table().unwrap()["job"]).unwrap(),
        2,
        "higher-priority job must be claimed first"
    );

    // Dedup against the finished job resolves instantly — and its watch
    // stream replays history even though the daemon restarted twice ago.
    let dup = daemon.client(&["submit", "--scenario", SCENARIO, "--steps", "1", "--wait"]);
    assert!(dup.contains("attached to job 1"), "{dup}");
    assert_eq!(field(&dup, "digest   :"), expect_content, "{dup}");

    // Host-independent fetch by content digest: the streamed bytes equal
    // the one-shot encoding exactly.
    let out = dir.join("by-digest.ckpt.bin");
    let fetched = daemon.client(&[
        "fetch",
        "--digest",
        &expect_content,
        "--out",
        out.to_str().expect("utf-8 path"),
    ]);
    assert!(fetched.contains(&expect_content), "{fetched}");
    assert_eq!(std::fs::read(&out).expect("fetched file"), bytes);

    daemon.client(&["shutdown"]);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn concurrent_identical_submits_share_one_run_and_one_event_stream() {
    let dir = std::env::temp_dir().join(format!("autocat-serve-dedup-{}", std::process::id()));
    let store = dir.join("store");
    std::fs::create_dir_all(&store).expect("creating store dir");
    let daemon = Daemon::spawn(&store, "1");

    let overrides = TrainOverrides {
        steps: Some(1),
        seed: Some(7),
        ..TrainOverrides::default()
    };
    let submit = |addr: String| {
        std::thread::spawn(move || {
            let mut handle = Client::connect(&addr)
                .expect("connect")
                .submit(JobSource::Registry(SCENARIO.into()), overrides, 0)
                .expect("submit");
            let mut events: Vec<String> = Vec::new();
            let status = handle
                .events(&mut |event| events.push(to_json(&event.to_value())))
                .expect("watch to completion");
            let (entry, bytes) = handle.artifact().expect("artifact fetch");
            (handle.job, handle.attached, status, events, entry, bytes)
        })
    };
    let a = submit(daemon.addr.clone());
    let b = submit(daemon.addr.clone());
    let (job_a, attached_a, status_a, events_a, entry_a, bytes_a) = a.join().expect("thread a");
    let (job_b, attached_b, status_b, events_b, entry_b, bytes_b) = b.join().expect("thread b");

    // One run: same job id, exactly one submission created it.
    assert_eq!(job_a, job_b);
    assert!(
        attached_a != attached_b,
        "exactly one submission may create the job (a: {attached_a}, b: {attached_b})"
    );
    // Identical event streams: both watchers replay the full progress
    // log from the start, then the same terminal event.
    assert_eq!(events_a, events_b);
    assert_eq!(status_a, status_b);
    // Identical artifacts, digest-verified through the connection.
    assert_eq!(entry_a, entry_b);
    assert_eq!(bytes_a, bytes_b);
    assert_eq!(status_a.digest, Some(entry_a.digest));

    // A third identical submission after completion resolves instantly
    // from the finished job.
    let mut third = Client::connect(&daemon.addr)
        .expect("connect")
        .submit(JobSource::Registry(SCENARIO.into()), overrides, 0)
        .expect("submit");
    assert!(third.attached);
    assert_eq!(third.wait().expect("already done").digest, status_a.digest);

    Client::connect(&daemon.addr)
        .expect("connect")
        .shutdown()
        .expect("shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
