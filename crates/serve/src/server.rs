//! The daemon: a TCP accept loop, a thread-per-connection protocol
//! handler, a journal-backed job table, and a `std::thread` worker pool
//! draining it by priority.
//!
//! # Job lifecycle
//!
//! `submit` validates the scenario (registry name or inline JSON),
//! applies the per-job overrides, and either **attaches** the submission
//! to an equivalent job (see the dedup contract below) or appends a
//! **queued** job — durably: the submit record hits the journal before
//! the client hears an id, so an acknowledged job survives `kill -9`. A
//! worker claims the highest-priority queued job (FIFO within a
//! priority), marks it **running**, and trains it through the *same*
//! shared code path as one-shot `scenario-run`/`sweep`
//! (`autocat_bench::sweep::train_trainer` + `row_and_stats`), appending
//! `(steps, avg return)` to the job's progress log after every PPO
//! update. On success the canonical binary checkpoint bytes go into the
//! content-addressed store and the job becomes **done**, carrying the
//! object digest plus the two bit-identity fingerprints (params digest,
//! eval stats digest); on error it becomes **failed** with the message.
//!
//! # Durable job table
//!
//! Every lifecycle transition is journaled (`jobs.jsonl` next to the
//! store index, an [`autocat_store::Journal`]): `submit` with the full
//! post-override scenario, `running`, and the terminal `done`/`failed`
//! status. On startup the journal replays into the job table — finished
//! jobs keep serving `status`/`watch` history, queued jobs wait for
//! workers again, and **running** jobs (interrupted by whatever killed
//! the last daemon) are re-enqueued: the deterministic trainer guarantees
//! the rerun produces bit-identical artifacts.
//!
//! # Dedup by spec digest
//!
//! The queue is keyed by train-spec digest (FNV-1a over the post-override
//! scenario JSON). A submission whose digest matches a queued or running
//! job attaches to it — both watchers replay the *same* progress log and
//! terminal event, so concurrent identical submissions share one training
//! run. A digest matching a **done** job resolves instantly (attached,
//! terminal event on watch) as long as its object is still in the store;
//! a gc'd object or a failed job means a fresh training run.
//!
//! # Determinism contract
//!
//! A daemon job is bit-identical to its one-shot equivalent: same
//! training loop (the progress callback is observation-only), same
//! save-then-evaluate order as `sweep::train_one`, same evaluation plan
//! (`row_and_stats` → `EVAL_LANES` lanes, the scenario's episode budget).
//! ci.sh holds this gate by comparing the streamed object's bytes and
//! both digests against a `scenario-run --ckpt` of the same scenario +
//! seed — including across a `kill -9` + restart. Worker-pool width and
//! priorities schedule *which* jobs run concurrently; they cannot change
//! any job's result.

use crate::proto::{
    self, fault, ErrorKind, Event, Fault, FetchKey, JobSource, JobState, JobStatus, Request,
    Response, Which, PROTOCOL_VERSION,
};
use autocat_bench::cli::TrainOverrides;
use autocat_bench::sweep::{row_and_stats, spec_digest, train_trainer};
use autocat_nn::state::params_digest;
use autocat_scenario::value::{self, req, u64_from, u64_value, Value};
use autocat_scenario::Scenario;
use autocat_store::{codec, EntryMeta, Journal, RetentionPolicy, Store, StoreEntry};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

/// Journal kind tag for the job table.
pub const JOURNAL_KIND: &str = "autocat-jobs";
/// Job-journal format version.
pub const JOURNAL_VERSION: i64 = 1;

/// Daemon settings parsed from the `daemon` subcommand's flags.
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Store root directory (the job journal lives next to its index).
    pub store_dir: String,
    /// Worker threads training jobs concurrently. `0` is a queue-only
    /// front end: jobs are accepted and journaled but never trained —
    /// until a daemon with workers opens the same store.
    pub workers: usize,
}

/// The job journal's path under a store root.
pub fn journal_path(store_dir: impl AsRef<Path>) -> std::path::PathBuf {
    store_dir.as_ref().join("jobs.jsonl")
}

#[derive(Debug)]
struct Job {
    status: JobStatus,
    scenario: Scenario,
    /// Full `(steps, avg return)` history, one entry per PPO update —
    /// watch streams replay it from the start so every watcher of a job
    /// sees the identical event sequence.
    progress: Vec<(u64, f32)>,
}

struct Shared {
    jobs: Mutex<Vec<Job>>,
    /// Signals workers (new queued job / shutdown) and watchers (any job
    /// update).
    signal: Condvar,
    store: Mutex<Store>,
    journal: Mutex<Journal>,
    shutdown: AtomicBool,
}

// Lock order: `jobs` may be held while taking `store` or `journal`;
// never the reverse.

/// Locks a mutex, recovering from poisoning. Every transition the guarded
/// state can make is journaled first, so the inner value is consistent
/// even if a panicking thread poisoned the lock — continuing beats
/// cascading the panic through every request handler (lint rule R1: no
/// panics in the daemon request path).
fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// [`Condvar::wait`] with the same poison recovery as [`lock`].
fn wait<'a, T>(signal: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    signal.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

fn now_unix() -> u64 {
    // lint: allow(D2) -- store-entry `created_unix` is gc metadata, never digested
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Journal records
// ---------------------------------------------------------------------------

fn submit_record(status: &JobStatus, scenario: &Scenario) -> Value {
    let mut record = Value::table();
    record.set("op", Value::Str("submit".into()));
    record.set("status", status.to_value());
    record.set("scenario", scenario.to_value());
    record
}

fn running_record(job: u64) -> Value {
    let mut record = Value::table();
    record.set("op", Value::Str("running".into()));
    record.set("job", u64_value(job));
    record
}

/// Builds the terminal journal record. `op` is `"done"` or `"failed"`,
/// passed explicitly by the caller that just set the matching state —
/// deriving it from `status.state` would need a panicking arm for live
/// states (lint rule R1).
fn terminal_record(op: &'static str, status: &JobStatus) -> Value {
    let mut record = Value::table();
    record.set("op", Value::Str(op.into()));
    record.set("status", status.to_value());
    record
}

/// Folds journal records into a job table. Returns the jobs and how many
/// interrupted (journaled `running`, no terminal) jobs were re-enqueued.
fn replay(records: &[Value]) -> Result<(Vec<Job>, usize), String> {
    let mut jobs: Vec<Job> = Vec::new();
    for (i, record) in records.iter().enumerate() {
        let err = |e: String| format!("journal record {}: {e}", i + 1);
        let table = record.as_table().map_err(err)?;
        let find = |jobs: &mut Vec<Job>, id: u64| -> Result<usize, String> {
            jobs.iter()
                .position(|j| j.status.job == id)
                .ok_or_else(|| format!("journal record {}: unknown job {id}", i + 1))
        };
        match req(table, "op").and_then(Value::as_str).map_err(err)? {
            "submit" => {
                let status =
                    JobStatus::from_value(req(table, "status").map_err(err)?).map_err(err)?;
                let scenario =
                    Scenario::from_json(&value::to_json(req(table, "scenario").map_err(err)?))
                        .map_err(err)?;
                jobs.push(Job {
                    status,
                    scenario,
                    progress: Vec::new(),
                });
            }
            "running" => {
                let id = u64_from(req(table, "job").map_err(err)?).map_err(err)?;
                let at = find(&mut jobs, id)?;
                jobs[at].status.state = JobState::Running;
            }
            "done" | "failed" => {
                let status =
                    JobStatus::from_value(req(table, "status").map_err(err)?).map_err(err)?;
                let at = find(&mut jobs, status.job)?;
                jobs[at].status = status;
            }
            other => return Err(format!("journal record {}: unknown op `{other}`", i + 1)),
        }
    }
    // A job journaled `running` with no terminal record was interrupted
    // mid-training; re-enqueue it — the deterministic trainer makes the
    // rerun's artifact bit-identical to what the lost run would have made.
    let mut interrupted = 0;
    for job in &mut jobs {
        if job.status.state == JobState::Running {
            job.status.state = JobState::Queued;
            interrupted += 1;
        }
    }
    Ok((jobs, interrupted))
}

// ---------------------------------------------------------------------------
// Daemon
// ---------------------------------------------------------------------------

/// Runs the daemon until a `shutdown` request arrives.
///
/// # Errors
///
/// Returns an error if the store or journal cannot open or the listener
/// cannot bind.
pub fn run(config: &DaemonConfig) -> Result<(), String> {
    let store = Store::open(&config.store_dir)?;
    let (journal, records) = Journal::open(
        journal_path(&config.store_dir),
        JOURNAL_KIND,
        JOURNAL_VERSION,
    )?;
    let (jobs, interrupted) = replay(&records)?;
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // The startup contract ci.sh greps for: one line, actual port filled in.
    println!("autocat-serve: listening on {local}");
    println!(
        "autocat-serve: store at {}, {} worker(s), protocol v{PROTOCOL_VERSION}",
        config.store_dir, config.workers
    );
    if !jobs.is_empty() {
        let queued = jobs
            .iter()
            .filter(|j| j.status.state == JobState::Queued)
            .count();
        println!(
            "autocat-serve: journal replayed {} job(s): {} queued ({} interrupted mid-run)",
            jobs.len(),
            queued,
            interrupted
        );
    }

    let shared = Arc::new(Shared {
        jobs: Mutex::new(jobs),
        signal: Condvar::new(),
        store: Mutex::new(store),
        journal: Mutex::new(journal),
        shutdown: AtomicBool::new(false),
    });

    let workers: Vec<_> = (0..config.workers)
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        let local = local.to_string();
        std::thread::spawn(move || {
            // A vanished client is that client's problem, not the daemon's.
            let _ = serve_connection(&shared, stream, &local);
        });
    }

    for worker in workers {
        let _ = worker.join();
    }
    println!("autocat-serve: shut down");
    Ok(())
}

fn worker_loop(shared: &Shared) {
    loop {
        // Claim the highest-priority queued job (FIFO within a priority),
        // or sleep until signaled.
        let claimed = {
            let mut jobs = lock(&shared.jobs);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let next = jobs
                    .iter_mut()
                    .filter(|j| j.status.state == JobState::Queued)
                    .max_by_key(|j| (j.status.priority, std::cmp::Reverse(j.status.job)));
                if let Some(job) = next {
                    job.status.state = JobState::Running;
                    let claim = (job.status.job, job.scenario.clone());
                    // jobs → journal is the sanctioned lock order.
                    if let Err(e) = lock(&shared.journal).append(&running_record(claim.0)) {
                        eprintln!("autocat-serve: journal: {e}");
                    }
                    break claim;
                }
                jobs = wait(&shared.signal, jobs);
            }
        };
        let (id, scenario) = claimed;
        let result = run_job(shared, id, &scenario);
        {
            let mut jobs = lock(&shared.jobs);
            match jobs.iter_mut().find(|j| j.status.job == id) {
                // Jobs are never removed from the table, so a vanished
                // claim means corruption elsewhere; log and keep serving
                // the remaining jobs rather than killing the worker.
                None => eprintln!("autocat-serve: claimed job {id} vanished from the table"),
                Some(job) => {
                    if let Err(e) = result {
                        job.status.state = JobState::Failed;
                        job.status.error = Some(e);
                        if let Err(e) =
                            lock(&shared.journal).append(&terminal_record("failed", &job.status))
                        {
                            eprintln!("autocat-serve: journal: {e}");
                        }
                    }
                }
            }
        }
        shared.signal.notify_all();
    }
}

/// Trains one job through the shared one-shot code path and stores the
/// checkpoint. See the module docs for the determinism contract.
fn run_job(shared: &Shared, id: u64, scenario: &Scenario) -> Result<(), String> {
    let spec = spec_digest(scenario);
    let mut trainer = train_trainer(scenario, |steps, avg_return| {
        if let Ok(mut jobs) = shared.jobs.lock() {
            if let Some(job) = jobs.iter_mut().find(|j| j.status.job == id) {
                job.status.steps = steps;
                job.status.avg_return = avg_return;
                job.progress.push((steps, avg_return));
            }
        }
        shared.signal.notify_all();
    })?;
    // Capture the canonical bytes *before* evaluation — the exact order
    // `sweep::train_one` and `scenario-run --ckpt` save in, which is what
    // makes the stored object byte-identical to theirs.
    let bytes = codec::encode(&trainer.to_checkpoint_value());
    let (row, stats) = row_and_stats(&mut trainer, scenario);
    let (_, net, _) = trainer.parts_mut();
    let params = params_digest(net);

    let digest = lock(&shared.store).put_bytes(
        EntryMeta {
            scenario: scenario.name.clone(),
            spec_digest: spec,
            params_digest: params,
            steps: row.steps,
            accuracy: row.accuracy(),
            created_unix: now_unix(),
        },
        &bytes,
    )?;

    let mut jobs = lock(&shared.jobs);
    let job = jobs
        .iter_mut()
        .find(|j| j.status.job == id)
        .ok_or_else(|| format!("job {id} vanished"))?;
    job.status.state = JobState::Done;
    job.status.steps = row.steps;
    job.status.avg_return = row.final_return;
    job.status.digest = Some(digest);
    job.status.params_digest = Some(params);
    job.status.eval_digest = Some(stats.digest());
    job.status.accuracy = Some(row.accuracy());
    if let Err(e) = lock(&shared.journal).append(&terminal_record("done", &job.status)) {
        eprintln!("autocat-serve: journal: {e}");
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Connections
// ---------------------------------------------------------------------------

fn serve_connection(shared: &Shared, stream: TcpStream, local: &str) -> Result<(), String> {
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut greeted = false;
    while let Some(line) = proto::read_line(&mut reader)? {
        let request = match Request::from_value(&line) {
            Ok(request) => request,
            Err(e) => {
                write_error(&mut writer, ErrorKind::BadRequest, &e)?;
                continue;
            }
        };
        if let Request::Hello { version } = request {
            if version != PROTOCOL_VERSION {
                write_error(
                    &mut writer,
                    ErrorKind::VersionMismatch,
                    &format!("client speaks v{version}, this daemon speaks v{PROTOCOL_VERSION}"),
                )?;
                return Ok(());
            }
            greeted = true;
            proto::write_line(
                &mut writer,
                &Response::Hello {
                    version: PROTOCOL_VERSION,
                }
                .to_value(),
            )
            .map_err(|e| e.to_string())?;
            continue;
        }
        if !greeted {
            write_error(
                &mut writer,
                ErrorKind::BadRequest,
                "expected the `hello` handshake before any other request",
            )?;
            return Ok(());
        }
        match handle(shared, &request, &mut writer) {
            Ok(Some(response)) => {
                proto::write_line(&mut writer, &response.to_value()).map_err(|e| e.to_string())?;
            }
            Ok(None) => {} // watch/fetch wrote their own lines
            Err((kind, message)) => write_error(&mut writer, kind, &message)?,
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Wake the accept loop so `run` can join the workers and exit.
            let _ = TcpStream::connect(local);
            break;
        }
    }
    Ok(())
}

fn write_error(writer: &mut TcpStream, kind: ErrorKind, message: &str) -> Result<(), String> {
    proto::write_line(
        writer,
        &Response::Error {
            kind,
            message: message.to_string(),
        }
        .to_value(),
    )
    .map_err(|e| e.to_string())
}

/// Dispatches one request — an exhaustive match over the typed protocol.
/// `Ok(None)` means the handler wrote its own lines (the `watch` event
/// stream, the `fetch` chunk body); a [`Fault`] becomes an error response.
fn handle(
    shared: &Shared,
    request: &Request,
    writer: &mut TcpStream,
) -> Result<Option<Response>, Fault> {
    match request {
        // Handled by the connection loop before dispatch; answering again
        // keeps re-handshakes harmless.
        Request::Hello { .. } => Ok(Some(Response::Hello {
            version: PROTOCOL_VERSION,
        })),
        Request::Ping => Ok(Some(Response::Pong)),
        Request::Submit {
            source,
            overrides,
            priority,
        } => submit(shared, source, overrides, *priority).map(Some),
        Request::Status { job } => status(shared, *job).map(Some),
        Request::Watch { job } => watch(shared, *job, writer).map(|()| None),
        Request::Fetch { key } => fetch(shared, key, writer).map(|()| None),
        Request::Gc {
            max_count,
            max_age_secs,
            keep,
        } => gc(shared, *max_count, *max_age_secs, keep).map(Some),
        Request::Shutdown => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.signal.notify_all();
            Ok(Some(Response::ShuttingDown))
        }
    }
}

// ---------------------------------------------------------------------------
// Handlers
// ---------------------------------------------------------------------------

fn submit(
    shared: &Shared,
    source: &JobSource,
    overrides: &TrainOverrides,
    priority: i64,
) -> Result<Response, Fault> {
    let mut scenario = match source {
        JobSource::Registry(name) => autocat_scenario::lookup(name).ok_or_else(|| {
            fault(
                ErrorKind::UnknownScenario,
                format!("unknown scenario `{name}` (not in the registry)"),
            )
        })?,
        JobSource::Inline(scenario) => (**scenario).clone(),
    };
    overrides.apply(&mut scenario);
    scenario
        .validate()
        .map_err(|e| fault(ErrorKind::BadRequest, e))?;
    let spec = spec_digest(&scenario);

    let mut jobs = lock(&shared.jobs);
    // Dedup: attach to a live (queued/running) job with the same spec...
    if let Some(job) = jobs.iter().rev().find(|j| {
        j.status.spec_digest == spec
            && matches!(j.status.state, JobState::Queued | JobState::Running)
    }) {
        return Ok(Response::Submitted {
            job: job.status.job,
            spec_digest: spec,
            attached: true,
        });
    }
    // ...or to a done job whose object the store still holds (a gc'd
    // object or a failed job means a fresh run).
    if let Some(job) = jobs
        .iter()
        .rev()
        .find(|j| j.status.spec_digest == spec && j.status.state == JobState::Done)
    {
        let alive = job
            .status
            .digest
            .is_some_and(|digest| lock(&shared.store).find(digest).is_some());
        if alive {
            return Ok(Response::Submitted {
                job: job.status.job,
                spec_digest: spec,
                attached: true,
            });
        }
    }

    let id = jobs.iter().map(|j| j.status.job).max().unwrap_or(0) + 1;
    let status = JobStatus {
        job: id,
        scenario: scenario.name.clone(),
        spec_digest: spec,
        priority,
        state: JobState::Queued,
        steps: 0,
        avg_return: 0.0,
        digest: None,
        params_digest: None,
        eval_digest: None,
        accuracy: None,
        error: None,
    };
    // Journal before acknowledging: once the client hears an id, the job
    // must survive any crash.
    lock(&shared.journal)
        .append(&submit_record(&status, &scenario))
        .map_err(|e| fault(ErrorKind::Internal, e))?;
    jobs.push(Job {
        status,
        scenario,
        progress: Vec::new(),
    });
    drop(jobs);
    shared.signal.notify_all();

    Ok(Response::Submitted {
        job: id,
        spec_digest: spec,
        attached: false,
    })
}

fn status(shared: &Shared, job: Option<u64>) -> Result<Response, Fault> {
    let jobs = lock(&shared.jobs);
    let selected = match job {
        Some(id) => {
            let job = jobs
                .iter()
                .find(|j| j.status.job == id)
                .ok_or_else(|| fault(ErrorKind::UnknownJob, format!("no job {id}")))?;
            vec![job.status.clone()]
        }
        None => jobs.iter().map(|j| j.status.clone()).collect(),
    };
    Ok(Response::Status { jobs: selected })
}

/// Streams a job's full progress log (every watcher sees the identical
/// sequence, regardless of when it attached), then one terminal
/// `done`/`failed` event.
fn watch(shared: &Shared, id: u64, writer: &mut TcpStream) -> Result<(), Fault> {
    let mut sent = 0usize;
    loop {
        let (events, terminal) = {
            let mut jobs = lock(&shared.jobs);
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err(fault(ErrorKind::Shutdown, "daemon shutting down"));
                }
                let job = jobs
                    .iter()
                    .find(|j| j.status.job == id)
                    .ok_or_else(|| fault(ErrorKind::UnknownJob, format!("no job {id}")))?;
                let events: Vec<Event> = job.progress[sent.min(job.progress.len())..]
                    .iter()
                    .map(|&(steps, avg_return)| Event::Progress {
                        job: id,
                        steps,
                        avg_return,
                    })
                    .collect();
                let terminal = match job.status.state {
                    JobState::Done => Some(Event::Done {
                        status: job.status.clone(),
                    }),
                    JobState::Failed => Some(Event::Failed {
                        job: id,
                        error: job
                            .status
                            .error
                            .clone()
                            .unwrap_or_else(|| "unknown error".into()),
                    }),
                    _ => None,
                };
                if !events.is_empty() || terminal.is_some() {
                    break (events, terminal);
                }
                jobs = wait(&shared.signal, jobs);
            }
        };
        sent += events.len();
        for event in &events {
            proto::write_line(writer, &event.to_value())
                .map_err(|e| fault(ErrorKind::Internal, e.to_string()))?;
        }
        if let Some(event) = terminal {
            proto::write_line(writer, &event.to_value())
                .map_err(|e| fault(ErrorKind::Internal, e.to_string()))?;
            return Ok(());
        }
    }
}

/// Resolves the fetch key, reads and digest-verifies the object, and
/// streams its bytes: the `Response::Fetch` line, then length-prefixed
/// chunks (see the protocol docs). No server-local path crosses the wire.
fn fetch(shared: &Shared, key: &FetchKey, writer: &mut TcpStream) -> Result<(), Fault> {
    let (entry, bytes): (StoreEntry, Vec<u8>) = {
        let store = lock(&shared.store);
        let entry = match key {
            FetchKey::Scenario { name, which } => match which {
                Which::Best => store.best(name),
                Which::Latest => store.latest(name),
            }
            .ok_or_else(|| {
                fault(
                    ErrorKind::NotFound,
                    format!("no stored checkpoint for `{name}`"),
                )
            })?,
            FetchKey::Digest(digest) => store.find(*digest).ok_or_else(|| {
                fault(
                    ErrorKind::NotFound,
                    format!("no stored object {}", autocat_store::digest_hex(*digest)),
                )
            })?,
        };
        // fetch_bytes digest-verifies: a corrupt object fails the fetch
        // here, it never surfaces as silently-wrong weights on a client.
        let bytes = store
            .fetch_bytes(entry.digest)
            .map_err(|e| fault(ErrorKind::Internal, e))?;
        (entry.clone(), bytes)
    };
    let response = Response::Fetch {
        entry,
        len: bytes.len() as u64,
    };
    proto::write_line(writer, &response.to_value())
        .map_err(|e| fault(ErrorKind::Internal, e.to_string()))?;
    proto::write_chunks(writer, &bytes).map_err(|e| fault(ErrorKind::Internal, e.to_string()))
}

fn gc(
    shared: &Shared,
    max_count: Option<u64>,
    max_age_secs: Option<u64>,
    keep: &[String],
) -> Result<Response, Fault> {
    let mut policy = RetentionPolicy::default();
    if let Some(count) = max_count {
        policy.max_count = count as usize;
    }
    if let Some(age) = max_age_secs {
        policy.max_age_secs = age;
    }
    policy.keep_patterns.extend(keep.iter().cloned());
    let stats = lock(&shared.store)
        .gc(&policy, now_unix())
        .map_err(|e| fault(ErrorKind::Internal, e))?;
    Ok(Response::Gc {
        removed_entries: stats.removed_entries as u64,
        removed_objects: stats.removed_objects as u64,
        kept_entries: stats.kept_entries as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queued_status(id: u64, spec: u64, priority: i64) -> JobStatus {
        JobStatus {
            job: id,
            scenario: "table4-6".into(),
            spec_digest: spec,
            priority,
            state: JobState::Queued,
            steps: 0,
            avg_return: 0.0,
            digest: None,
            params_digest: None,
            eval_digest: None,
            accuracy: None,
            error: None,
        }
    }

    #[test]
    fn replay_reconstructs_states_and_reenqueues_interrupted_jobs() {
        let scenario = autocat_scenario::lookup("table4-6").unwrap();
        let a = queued_status(1, 0x11, 0);
        let b = queued_status(2, 0x22, 5);
        let c = queued_status(3, 0x33, 0);
        let mut done = a.clone();
        done.state = JobState::Done;
        done.steps = 512;
        done.digest = Some(0xaa);
        done.params_digest = Some(0xbb);
        done.eval_digest = Some(0xcc);
        done.accuracy = Some(1.0);
        let records = vec![
            submit_record(&a, &scenario),
            submit_record(&b, &scenario),
            running_record(1),
            terminal_record("done", &done),
            running_record(2), // interrupted: no terminal record
            submit_record(&c, &scenario),
        ];
        let (jobs, interrupted) = replay(&records).unwrap();
        assert_eq!(jobs.len(), 3);
        assert_eq!(interrupted, 1);
        assert_eq!(jobs[0].status, done, "terminal status replayed whole");
        assert_eq!(jobs[1].status.state, JobState::Queued, "re-enqueued");
        assert_eq!(jobs[1].status.priority, 5, "priority survives replay");
        assert_eq!(jobs[2].status.state, JobState::Queued);
        assert_eq!(jobs[2].scenario.name, "table4-6");
    }

    #[test]
    fn replay_rejects_unknown_ops_and_dangling_ids() {
        let mut bogus = Value::table();
        bogus.set("op", Value::Str("explode".into()));
        let err = replay(&[bogus]).unwrap_err();
        assert!(err.contains("unknown op"), "{err}");

        let err = replay(&[running_record(7)]).unwrap_err();
        assert!(err.contains("unknown job 7"), "{err}");
    }
}
