//! The daemon: a TCP accept loop, a thread-per-connection protocol
//! handler, and a `std::thread` worker pool draining a queued-job table.
//!
//! # Job lifecycle
//!
//! `submit` validates the scenario (registry name or inline JSON),
//! applies the per-job overrides, and appends a **queued** job. A worker
//! picks the lowest-id queued job, marks it **running**, and trains it
//! through the *same* shared code path as one-shot `scenario-run`/`sweep`
//! (`autocat_bench::sweep::train_trainer` + `row_and_stats`), reporting
//! `(steps, avg return)` progress into the job table after every PPO
//! update. On success the canonical binary checkpoint bytes go into the
//! content-addressed store and the job becomes **done**, carrying the
//! object digest plus the two bit-identity fingerprints (params digest,
//! eval stats digest); on error it becomes **failed** with the message.
//!
//! # Determinism contract
//!
//! A daemon job is bit-identical to its one-shot equivalent: same
//! training loop (the progress callback is observation-only), same
//! save-then-evaluate order as `sweep::train_one`, same evaluation plan
//! (`row_and_stats` → `EVAL_LANES` lanes, the scenario's episode budget).
//! ci.sh holds this gate by comparing the fetched object's bytes and both
//! digests against a `scenario-run --ckpt` of the same scenario + seed.
//! Worker-pool width schedules *which* jobs run concurrently; it cannot
//! change any job's result.

use crate::proto;
use autocat_bench::sweep::{row_and_stats, spec_digest, train_trainer};
use autocat_nn::state::params_digest;
use autocat_scenario::value::{req, u64_value, Value};
use autocat_scenario::Scenario;
use autocat_store::{codec, EntryMeta, RetentionPolicy, Store, StoreEntry};
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Daemon settings parsed from the `daemon` subcommand's flags.
pub struct DaemonConfig {
    /// Bind address; port 0 picks a free port (printed on startup).
    pub addr: String,
    /// Store root directory.
    pub store_dir: String,
    /// Worker threads training jobs concurrently.
    pub workers: usize,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum JobState {
    Queued,
    Running,
    Done,
    Failed,
}

impl JobState {
    fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }
}

struct Job {
    id: u64,
    scenario: Scenario,
    spec_digest: u64,
    state: JobState,
    steps: u64,
    avg_return: f32,
    digest: Option<u64>,
    params_digest: Option<u64>,
    eval_digest: Option<u64>,
    accuracy: Option<f64>,
    error: Option<String>,
}

impl Job {
    fn to_value(&self) -> Value {
        let mut table = Value::table();
        table.set("job", u64_value(self.id));
        table.set("scenario", Value::Str(self.scenario.name.clone()));
        table.set("spec_digest", proto::digest_str(self.spec_digest));
        table.set("state", Value::Str(self.state.as_str().to_string()));
        table.set("steps", u64_value(self.steps));
        table.set("avg_return", Value::Float(f64::from(self.avg_return)));
        if let Some(digest) = self.digest {
            table.set("digest", proto::digest_str(digest));
        }
        if let Some(digest) = self.params_digest {
            table.set("params_digest", proto::digest_str(digest));
        }
        if let Some(digest) = self.eval_digest {
            table.set("eval_digest", proto::digest_str(digest));
        }
        if let Some(accuracy) = self.accuracy {
            table.set("accuracy", Value::Float(accuracy));
        }
        if let Some(error) = &self.error {
            table.set("error", Value::Str(error.clone()));
        }
        table
    }
}

struct Shared {
    jobs: Mutex<Vec<Job>>,
    /// Signals workers (new queued job / shutdown) and watchers (any job
    /// update).
    signal: Condvar,
    store: Mutex<Store>,
    shutdown: AtomicBool,
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

/// Runs the daemon until a `shutdown` request arrives.
///
/// # Errors
///
/// Returns an error if the store cannot open or the listener cannot bind.
pub fn run(config: &DaemonConfig) -> Result<(), String> {
    let store = Store::open(&config.store_dir)?;
    let listener =
        TcpListener::bind(&config.addr).map_err(|e| format!("binding {}: {e}", config.addr))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?;
    // The startup contract ci.sh greps for: one line, actual port filled in.
    println!("autocat-serve: listening on {local}");
    println!(
        "autocat-serve: store at {}, {} worker(s)",
        config.store_dir, config.workers
    );

    let shared = Arc::new(Shared {
        jobs: Mutex::new(Vec::new()),
        signal: Condvar::new(),
        store: Mutex::new(store),
        shutdown: AtomicBool::new(false),
    });

    let workers: Vec<_> = (0..config.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();

    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let shared = Arc::clone(&shared);
        let local = local.to_string();
        std::thread::spawn(move || {
            // A vanished client is that client's problem, not the daemon's.
            let _ = serve_connection(&shared, stream, &local);
        });
    }

    for worker in workers {
        let _ = worker.join();
    }
    println!("autocat-serve: shut down");
    Ok(())
}

fn worker_loop(shared: &Shared) {
    loop {
        // Claim the lowest-id queued job, or sleep until signaled.
        let claimed = {
            let mut jobs = shared.jobs.lock().expect("job table poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = jobs.iter_mut().find(|j| j.state == JobState::Queued) {
                    job.state = JobState::Running;
                    break Some((job.id, job.scenario.clone(), job.spec_digest));
                }
                jobs = shared.signal.wait(jobs).expect("job table poisoned");
            }
        };
        let Some((id, scenario, spec)) = claimed else {
            return;
        };
        let result = run_job(shared, id, &scenario, spec);
        {
            let mut jobs = shared.jobs.lock().expect("job table poisoned");
            let job = jobs
                .iter_mut()
                .find(|j| j.id == id)
                .expect("claimed job vanished");
            match result {
                Ok(()) => {}
                Err(e) => {
                    job.state = JobState::Failed;
                    job.error = Some(e);
                }
            }
        }
        shared.signal.notify_all();
    }
}

/// Trains one job through the shared one-shot code path and stores the
/// checkpoint. See the module docs for the determinism contract.
fn run_job(shared: &Shared, id: u64, scenario: &Scenario, spec: u64) -> Result<(), String> {
    let mut trainer = train_trainer(scenario, |steps, avg_return| {
        if let Ok(mut jobs) = shared.jobs.lock() {
            if let Some(job) = jobs.iter_mut().find(|j| j.id == id) {
                job.steps = steps;
                job.avg_return = avg_return;
            }
        }
        shared.signal.notify_all();
    })?;
    // Capture the canonical bytes *before* evaluation — the exact order
    // `sweep::train_one` and `scenario-run --ckpt` save in, which is what
    // makes the stored object byte-identical to theirs.
    let bytes = codec::encode(&trainer.to_checkpoint_value());
    let (row, stats) = row_and_stats(&mut trainer, scenario);
    let (_, net, _) = trainer.parts_mut();
    let params = params_digest(net);

    let digest = shared.store.lock().expect("store poisoned").put_bytes(
        EntryMeta {
            scenario: scenario.name.clone(),
            spec_digest: spec,
            params_digest: params,
            steps: row.steps,
            accuracy: row.accuracy(),
            created_unix: now_unix(),
        },
        &bytes,
    )?;

    let mut jobs = shared.jobs.lock().expect("job table poisoned");
    let job = jobs
        .iter_mut()
        .find(|j| j.id == id)
        .ok_or_else(|| format!("job {id} vanished"))?;
    job.state = JobState::Done;
    job.steps = row.steps;
    job.avg_return = row.final_return;
    job.digest = Some(digest);
    job.params_digest = Some(params);
    job.eval_digest = Some(stats.digest());
    job.accuracy = Some(row.accuracy());
    Ok(())
}

fn serve_connection(shared: &Shared, stream: TcpStream, local: &str) -> Result<(), String> {
    let mut writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    let mut reader = BufReader::new(stream);
    while let Some(request) = proto::read_line(&mut reader)? {
        let response = handle(shared, &request, &mut writer);
        match response {
            Ok(Some(payload)) => {
                proto::write_line(&mut writer, &payload).map_err(|e| e.to_string())?;
            }
            Ok(None) => {} // watch streamed its own lines
            Err(e) => {
                proto::write_line(&mut writer, &proto::error(&e)).map_err(|e| e.to_string())?;
            }
        }
        if shared.shutdown.load(Ordering::SeqCst) {
            // Wake the accept loop so `run` can join the workers and exit.
            let _ = TcpStream::connect(local);
            break;
        }
    }
    Ok(())
}

/// Dispatches one request. `Ok(None)` means the handler wrote its own
/// lines (the `watch` stream); errors become `{"ok": false}` responses.
fn handle(
    shared: &Shared,
    request: &Value,
    writer: &mut TcpStream,
) -> Result<Option<Value>, String> {
    match proto::command(request)? {
        "ping" => Ok(Some(proto::ok())),
        "submit" => submit(shared, request).map(Some),
        "status" => status(shared, request).map(Some),
        "watch" => watch(shared, request, writer).map(|()| None),
        "fetch" => fetch(shared, request).map(Some),
        "gc" => gc(shared, request).map(Some),
        "shutdown" => {
            shared.shutdown.store(true, Ordering::SeqCst);
            shared.signal.notify_all();
            Ok(Some(proto::ok()))
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

fn submit(shared: &Shared, request: &Value) -> Result<Value, String> {
    let table = request.as_table()?;
    let mut scenario = match (table.get("scenario"), table.get("inline")) {
        (Some(name), None) => {
            let name = name.as_str()?;
            autocat_scenario::lookup(name)
                .ok_or_else(|| format!("unknown scenario `{name}` (not in the registry)"))?
        }
        (None, Some(inline)) => Scenario::from_json(&autocat_scenario::value::to_json(inline))?,
        _ => {
            return Err("submit needs exactly one of `scenario` (registry name) or `inline`".into())
        }
    };
    if let Some(overrides) = table.get("overrides") {
        proto::overrides_from_value(overrides)?.apply(&mut scenario);
    }
    scenario.validate()?;
    let spec = spec_digest(&scenario);

    let mut jobs = shared.jobs.lock().expect("job table poisoned");
    let id = jobs.len() as u64 + 1;
    jobs.push(Job {
        id,
        scenario,
        spec_digest: spec,
        state: JobState::Queued,
        steps: 0,
        avg_return: 0.0,
        digest: None,
        params_digest: None,
        eval_digest: None,
        accuracy: None,
        error: None,
    });
    drop(jobs);
    shared.signal.notify_all();

    let mut response = proto::ok();
    response.set("job", u64_value(id));
    response.set("spec_digest", proto::digest_str(spec));
    Ok(response)
}

fn status(shared: &Shared, request: &Value) -> Result<Value, String> {
    let table = request.as_table()?;
    let jobs = shared.jobs.lock().expect("job table poisoned");
    let mut response = proto::ok();
    match table.get("job") {
        Some(id) => {
            let id = autocat_scenario::value::u64_from(id)?;
            let job = jobs
                .iter()
                .find(|j| j.id == id)
                .ok_or_else(|| format!("no job {id}"))?;
            response.set("job_status", job.to_value());
        }
        None => {
            response.set(
                "jobs",
                Value::Array(jobs.iter().map(Job::to_value).collect()),
            );
        }
    }
    Ok(response)
}

/// Streams `progress` events for a job until it finishes, then one
/// terminal `done`/`failed` event. Condvar-driven: wakes on every job
/// update, re-emits only when the step counter moved.
fn watch(shared: &Shared, request: &Value, writer: &mut TcpStream) -> Result<(), String> {
    let id = autocat_scenario::value::u64_from(req(request.as_table()?, "job")?)?;
    let mut last_steps = None;
    loop {
        let (event, terminal) = {
            let mut jobs = shared.jobs.lock().expect("job table poisoned");
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Err("daemon shutting down".into());
                }
                let job = jobs
                    .iter()
                    .find(|j| j.id == id)
                    .ok_or_else(|| format!("no job {id}"))?;
                match job.state {
                    JobState::Done | JobState::Failed => {
                        let mut event = job.to_value();
                        event.set(
                            "event",
                            Value::Str(
                                if job.state == JobState::Done {
                                    "done"
                                } else {
                                    "failed"
                                }
                                .to_string(),
                            ),
                        );
                        break (event, true);
                    }
                    _ if last_steps != Some(job.steps) => {
                        last_steps = Some(job.steps);
                        let mut event = job.to_value();
                        event.set("event", Value::Str("progress".to_string()));
                        break (event, false);
                    }
                    _ => {
                        jobs = shared.signal.wait(jobs).expect("job table poisoned");
                    }
                }
            }
        };
        proto::write_line(writer, &event).map_err(|e| e.to_string())?;
        if terminal {
            return Ok(());
        }
    }
}

fn entry_to_value(store: &Store, entry: &StoreEntry) -> Value {
    let mut table = Value::table();
    table.set("scenario", Value::Str(entry.scenario.clone()));
    table.set("spec_digest", proto::digest_str(entry.spec_digest));
    table.set("digest", proto::digest_str(entry.digest));
    table.set("params_digest", proto::digest_str(entry.params_digest));
    table.set("steps", u64_value(entry.steps));
    table.set("accuracy", Value::Float(entry.accuracy));
    table.set("created_unix", u64_value(entry.created_unix));
    table.set(
        "path",
        Value::Str(store.object_path(entry.digest).display().to_string()),
    );
    table
}

/// `fetch` answers with the entry's metadata and the object's **path**
/// rather than streaming megabytes of checkpoint through the line
/// protocol: the daemon is a single-host design (loopback TCP), so the
/// client copies the file and re-verifies its content digest locally.
fn fetch(shared: &Shared, request: &Value) -> Result<Value, String> {
    let table = request.as_table()?;
    let name = req(table, "scenario")?.as_str()?;
    let which = match table.get("which") {
        Some(which) => which.as_str()?,
        None => "best",
    };
    let store = shared.store.lock().expect("store poisoned");
    let entry = match which {
        "best" => store.best(name),
        "latest" => store.latest(name),
        other => return Err(format!("unknown fetch mode `{other}` (best|latest)")),
    }
    .ok_or_else(|| format!("no stored checkpoint for `{name}`"))?;
    // Verify before answering: a corrupt object must fail the fetch, not
    // surface later as silently-wrong weights on the client.
    store.fetch_bytes(entry.digest)?;
    let mut response = proto::ok();
    response.set("entry", entry_to_value(&store, entry));
    Ok(response)
}

fn gc(shared: &Shared, request: &Value) -> Result<Value, String> {
    let table = request.as_table()?;
    let mut policy = RetentionPolicy::default();
    if let Some(count) = table.get("max_count") {
        policy.max_count = count.as_usize()?;
    }
    if let Some(age) = table.get("max_age_secs") {
        policy.max_age_secs = autocat_scenario::value::u64_from(age)?;
    }
    if let Some(patterns) = table.get("keep") {
        for pattern in patterns.as_array()? {
            policy.keep_patterns.push(pattern.as_str()?.to_string());
        }
    }
    let stats = shared
        .store
        .lock()
        .expect("store poisoned")
        .gc(&policy, now_unix())?;
    let mut response = proto::ok();
    response.set("removed_entries", Value::Int(stats.removed_entries as i64));
    response.set("removed_objects", Value::Int(stats.removed_objects as i64));
    response.set("kept_entries", Value::Int(stats.kept_entries as i64));
    Ok(response)
}
