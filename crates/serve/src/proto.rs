//! The wire protocol: newline-delimited JSON over TCP.
//!
//! One request per line, one response (or, for `watch`, a stream of event
//! lines) per request; the connection stays open for further requests.
//! Every payload is an `autocat_nn::value::Value` table rendered by the
//! workspace's own JSON codec — `to_json` emits no raw newlines, so one
//! document is always exactly one line. There is no async runtime: a
//! `std::net` socket per client, a `std::thread` per connection, and a
//! worker pool draining the job queue (the vendored dependency shims are
//! offline stand-ins, so the daemon is plain threads by design).
//!
//! Requests are `{"cmd": ...}` tables:
//!
//! ```text
//! {"cmd": "ping"}
//! {"cmd": "submit", "scenario": "table4-3", "overrides": {"steps": 512}}
//! {"cmd": "submit", "inline": { ...Scenario JSON... }}
//! {"cmd": "status"}                      # all jobs
//! {"cmd": "status", "job": 1}            # one job
//! {"cmd": "watch", "job": 1}             # progress event stream
//! {"cmd": "fetch", "scenario": "table4-3", "which": "best"}
//! {"cmd": "gc", "max_count": 2, "max_age_secs": 0, "keep": ["defense-*"]}
//! {"cmd": "shutdown"}
//! ```
//!
//! Responses are `{"ok": true, ...}` or `{"ok": false, "error": "..."}`;
//! watch events are `{"event": "progress"|"done"|"failed", "job": N, ...}`.
//! Digests travel as 16-hex strings (the store's object-name form).

use autocat_bench::cli::TrainOverrides;
use autocat_scenario::value::{self, req, u64_from, Value};
use std::io::{BufRead, Write};

/// Writes one `Value` as one protocol line.
///
/// # Errors
///
/// Returns the underlying I/O error (a vanished client, usually).
pub fn write_line(stream: &mut impl Write, payload: &Value) -> std::io::Result<()> {
    let mut line = value::to_json(payload);
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Reads one protocol line; `Ok(None)` is a clean EOF.
///
/// # Errors
///
/// Returns an error on unreadable input or malformed JSON.
pub fn read_line(reader: &mut impl BufRead) -> Result<Option<Value>, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("reading protocol line: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    let line = line.trim();
    if line.is_empty() {
        // Tolerate blank keep-alive lines between requests.
        return read_line(reader);
    }
    value::from_json(line).map(Some)
}

/// `{"ok": true}`, ready for extra fields.
pub fn ok() -> Value {
    let mut table = Value::table();
    table.set("ok", Value::Bool(true));
    table
}

/// `{"ok": false, "error": msg}`.
pub fn error(msg: &str) -> Value {
    let mut table = Value::table();
    table.set("ok", Value::Bool(false));
    table.set("error", Value::Str(msg.to_string()));
    table
}

/// Renders a digest the way the protocol ships it (16 hex digits, the
/// store's object-name form).
pub fn digest_str(digest: u64) -> Value {
    Value::Str(autocat_store::digest_hex(digest))
}

/// Parses a digest field shipped by [`digest_str`].
///
/// # Errors
///
/// Returns an error on non-hexadecimal input.
pub fn digest_from(value: &Value) -> Result<u64, String> {
    autocat_store::digest_from_hex(value.as_str()?)
}

/// Encodes the job-relevant override subset as a table (empty table when
/// nothing is overridden). `--threads` deliberately does not travel: the
/// worker pool is daemon-global, and the determinism contract makes
/// thread count a scheduling knob with no effect on results anyway.
pub fn overrides_to_value(overrides: &TrainOverrides) -> Value {
    let mut table = Value::table();
    if let Some(steps) = overrides.steps {
        table.set("steps", value::u64_value(steps));
    }
    if let Some(seed) = overrides.seed {
        table.set("seed", value::u64_value(seed));
    }
    if let Some(lanes) = overrides.lanes {
        table.set("lanes", Value::Int(lanes as i64));
    }
    if let Some(episodes) = overrides.eval_episodes {
        table.set("eval_episodes", Value::Int(episodes as i64));
    }
    if let Some(shards) = overrides.shards {
        table.set("shards", Value::Int(shards as i64));
    }
    table
}

/// Decodes a table written by [`overrides_to_value`]. Unknown keys are an
/// error — a client asking for an override the daemon would silently drop
/// must hear about it.
///
/// # Errors
///
/// Returns an error on unknown keys or mistyped values.
pub fn overrides_from_value(value: &Value) -> Result<TrainOverrides, String> {
    let table = value.as_table()?;
    let mut overrides = TrainOverrides::default();
    for (key, item) in table {
        match key.as_str() {
            "steps" => overrides.steps = Some(u64_from(item)?),
            "seed" => overrides.seed = Some(u64_from(item)?),
            "lanes" => overrides.lanes = Some(item.as_usize()?),
            "eval_episodes" => overrides.eval_episodes = Some(item.as_usize()?),
            "shards" => overrides.shards = Some(item.as_usize()?),
            other => return Err(format!("unknown override `{other}`")),
        }
    }
    Ok(overrides)
}

/// Pulls the command discriminator out of a request.
///
/// # Errors
///
/// Returns an error when the request is not a table or lacks `cmd`.
pub fn command(request: &Value) -> Result<&str, String> {
    req(request.as_table()?, "cmd")?.as_str()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_round_trip_through_a_buffer() {
        let mut wire = Vec::new();
        let mut request = ok();
        request.set("cmd", Value::Str("ping".into()));
        write_line(&mut wire, &request).unwrap();
        write_line(&mut wire, &error("nope")).unwrap();

        let mut reader = std::io::BufReader::new(wire.as_slice());
        let first = read_line(&mut reader).unwrap().unwrap();
        assert_eq!(command(&first).unwrap(), "ping");
        let second = read_line(&mut reader).unwrap().unwrap();
        assert_eq!(
            req(second.as_table().unwrap(), "error")
                .unwrap()
                .as_str()
                .unwrap(),
            "nope"
        );
        assert!(read_line(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn overrides_round_trip_and_reject_unknown_keys() {
        let overrides = TrainOverrides {
            steps: Some(512),
            seed: Some(9),
            lanes: None,
            eval_episodes: Some(20),
            shards: None,
            threads: None,
        };
        let back = overrides_from_value(&overrides_to_value(&overrides)).unwrap();
        assert_eq!(back, overrides);
        assert_eq!(
            overrides_from_value(&Value::table()).unwrap(),
            TrainOverrides::default()
        );

        let mut bad = Value::table();
        bad.set("threads", Value::Int(4));
        let err = overrides_from_value(&bad).unwrap_err();
        assert!(err.contains("threads"), "{err}");
    }

    #[test]
    fn digests_ship_as_sixteen_hex() {
        let digest = 0x0123_4567_89ab_cdef;
        assert_eq!(digest_from(&digest_str(digest)).unwrap(), digest);
        assert!(digest_from(&Value::Str("xyz".into())).is_err());
    }
}
