//! The wire protocol: a typed, versioned request/response/event contract
//! carried as newline-delimited JSON over TCP.
//!
//! Every message is a [`Request`], [`Response`] or [`Event`] enum value
//! that round-trips through the workspace's own [`Value`]/JSON codec —
//! `to_json` emits no raw newlines, so one message is always exactly one
//! line. There is no async runtime: a `std::net` socket per client, a
//! `std::thread` per connection, and a worker pool draining the job
//! queue (the vendored dependency shims are offline stand-ins, so the
//! daemon is plain threads by design).
//!
//! # Handshake
//!
//! A connection opens with a version handshake: the client sends
//! `Request::Hello` carrying [`PROTOCOL_VERSION`], the server answers
//! `Response::Hello` with its own version, and any mismatch is a
//! [`ErrorKind::VersionMismatch`] error that closes the connection.
//! Every other request before the handshake is a `BadRequest`.
//!
//! # Message shapes
//!
//! Requests carry a `req` discriminator, responses `resp`, events
//! `event` (the tables below are pinned byte-for-byte by the golden
//! fixture test in `tests/proto_golden.rs`):
//!
//! ```text
//! {"req": "hello", "version": 2}
//! {"req": "submit", "scenario": "table4-3", "overrides": {"steps": 512}, "priority": 5}
//! {"req": "submit", "inline": { ...Scenario JSON... }}
//! {"req": "status", "job": 1}            # omit "job" for all jobs
//! {"req": "watch", "job": 1}             # answered by an event stream
//! {"req": "fetch", "scenario": "table4-3", "which": "best"}
//! {"req": "fetch", "digest": "16-hex"}   # host-independent object fetch
//! {"req": "gc", "max_count": 2, "keep": ["defense-*"]}
//!
//! {"resp": "submitted", "job": 1, "spec_digest": "16-hex", "attached": false}
//! {"resp": "error", "kind": "unknown-job", "message": "no job 7"}
//!
//! {"event": "progress", "job": 1, "steps": 4096, "avg_return": 0.5}
//! {"event": "done", "status": { ...JobStatus... }}
//! ```
//!
//! # Streamed fetch
//!
//! `fetch` is the one response followed by non-JSON bytes: after the
//! `Response::Fetch` line (which announces the byte length), the object's
//! canonical bytes follow in length-prefixed chunks — a 4-byte big-endian
//! length then that many bytes, terminated by a zero-length frame
//! ([`write_chunks`]/[`read_chunks`]). The client re-verifies the
//! assembled bytes against the entry's content digest, so the transfer is
//! host-independent *and* corruption-evident: no server-local paths cross
//! the wire.
//!
//! Digests travel as 16-hex strings (the store's object-name form).

use autocat_bench::cli::TrainOverrides;
use autocat_scenario::value::{self, req, u64_from, u64_value, Value};
use autocat_scenario::Scenario;
use autocat_store::StoreEntry;
use std::io::{BufRead, Read, Write};

/// Protocol version spoken by this build. Version 1 was the untyped
/// `{"cmd": ...}` map protocol (PR 7); version 2 is the typed enum
/// contract with the `hello` handshake, durable jobs and streamed fetch.
pub const PROTOCOL_VERSION: u32 = 2;

/// Chunk size for streamed fetch frames.
pub const FETCH_CHUNK: usize = 64 * 1024;

/// Hard cap on a single fetch frame — anything larger is a corrupt or
/// hostile stream, refused before allocation.
const MAX_FRAME: u32 = 4 * 1024 * 1024;

// ---------------------------------------------------------------------------
// Line transport
// ---------------------------------------------------------------------------

/// Writes one [`Value`] as one protocol line.
///
/// # Errors
///
/// Returns the underlying I/O error (a vanished client, usually).
pub fn write_line(stream: &mut impl Write, payload: &Value) -> std::io::Result<()> {
    let mut line = value::to_json(payload);
    line.push('\n');
    stream.write_all(line.as_bytes())
}

/// Reads one protocol line; `Ok(None)` is a clean EOF.
///
/// # Errors
///
/// Returns an error on unreadable input or malformed JSON.
pub fn read_line(reader: &mut impl BufRead) -> Result<Option<Value>, String> {
    let mut line = String::new();
    let n = reader
        .read_line(&mut line)
        .map_err(|e| format!("reading protocol line: {e}"))?;
    if n == 0 {
        return Ok(None);
    }
    let line = line.trim();
    if line.is_empty() {
        // Tolerate blank keep-alive lines between requests.
        return read_line(reader);
    }
    value::from_json(line).map(Some)
}

/// Writes `bytes` as length-prefixed chunks plus the zero-length
/// terminator frame (the streamed-fetch body; see the module docs).
///
/// # Errors
///
/// Returns the underlying I/O error.
pub fn write_chunks(stream: &mut impl Write, bytes: &[u8]) -> std::io::Result<()> {
    for chunk in bytes.chunks(FETCH_CHUNK) {
        stream.write_all(&(chunk.len() as u32).to_be_bytes())?;
        stream.write_all(chunk)?;
    }
    stream.write_all(&0u32.to_be_bytes())
}

/// Reads a [`write_chunks`] stream, expecting exactly `expect_len` total
/// bytes (announced by the `Response::Fetch` line).
///
/// # Errors
///
/// Returns an error on I/O failure, an oversized frame, or a total that
/// disagrees with `expect_len` in either direction.
pub fn read_chunks(stream: &mut impl Read, expect_len: u64) -> Result<Vec<u8>, String> {
    // Preallocate bounded by the frame cap, not the announced length — a
    // hostile announcement must not reserve memory it never sends.
    let mut out = Vec::with_capacity(expect_len.min(u64::from(MAX_FRAME)) as usize);
    loop {
        let mut len = [0u8; 4];
        stream
            .read_exact(&mut len)
            .map_err(|e| format!("reading chunk header: {e}"))?;
        let len = u32::from_be_bytes(len);
        if len == 0 {
            break;
        }
        if len > MAX_FRAME {
            return Err(format!(
                "chunk frame of {len} bytes exceeds the {MAX_FRAME} cap"
            ));
        }
        if out.len() as u64 + u64::from(len) > expect_len {
            return Err(format!(
                "chunk stream exceeds the announced {expect_len} bytes"
            ));
        }
        let start = out.len();
        out.resize(start + len as usize, 0);
        stream
            .read_exact(&mut out[start..])
            .map_err(|e| format!("reading {len}-byte chunk: {e}"))?;
    }
    if out.len() as u64 != expect_len {
        return Err(format!(
            "chunk stream ended at {} of the announced {expect_len} bytes",
            out.len()
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Shared encoding helpers (private: the enum codecs are the public API)
// ---------------------------------------------------------------------------

fn digest_str(digest: u64) -> Value {
    Value::Str(autocat_store::digest_hex(digest))
}

fn digest_from(value: &Value) -> Result<u64, String> {
    autocat_store::digest_from_hex(value.as_str()?)
}

fn f32_value(x: f32) -> Value {
    // Widening is exact, so the f32 bit pattern survives the round trip.
    Value::Float(f64::from(x))
}

fn discriminator<'a>(value: &'a Value, key: &str) -> Result<&'a str, String> {
    req(value.as_table()?, key)?.as_str()
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Structured error category carried by [`Response::Error`] — clients
/// branch on the kind, humans read the message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed or out-of-order request (including a missing handshake).
    BadRequest,
    /// The two ends speak different protocol versions.
    VersionMismatch,
    /// `submit` named a scenario the registry does not know.
    UnknownScenario,
    /// `status`/`watch` named a job id the table does not hold.
    UnknownJob,
    /// `fetch` found no matching checkpoint.
    NotFound,
    /// A server-side failure (store I/O, journal I/O, training errors
    /// surface as job `failed` events instead).
    Internal,
    /// The daemon is shutting down and cannot serve the request.
    Shutdown,
}

impl ErrorKind {
    /// The wire slug for this kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::VersionMismatch => "version-mismatch",
            ErrorKind::UnknownScenario => "unknown-scenario",
            ErrorKind::UnknownJob => "unknown-job",
            ErrorKind::NotFound => "not-found",
            ErrorKind::Internal => "internal",
            ErrorKind::Shutdown => "shutdown",
        }
    }

    fn parse(slug: &str) -> Result<ErrorKind, String> {
        Ok(match slug {
            "bad-request" => ErrorKind::BadRequest,
            "version-mismatch" => ErrorKind::VersionMismatch,
            "unknown-scenario" => ErrorKind::UnknownScenario,
            "unknown-job" => ErrorKind::UnknownJob,
            "not-found" => ErrorKind::NotFound,
            "internal" => ErrorKind::Internal,
            "shutdown" => ErrorKind::Shutdown,
            other => return Err(format!("unknown error kind `{other}`")),
        })
    }
}

/// A structured daemon-side failure: the [`ErrorKind`] plus a
/// human-readable message. Handlers return `Result<_, Fault>`; the
/// connection loop renders the `Err` arm as a [`Response::Error`] line.
pub type Fault = (ErrorKind, String);

/// Builds a [`Fault`] (ergonomics for `ok_or_else`/`map_err` chains).
pub fn fault(kind: ErrorKind, message: impl Into<String>) -> Fault {
    (kind, message.into())
}

// ---------------------------------------------------------------------------
// Job table entries
// ---------------------------------------------------------------------------

/// A job's lifecycle state.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobState {
    /// Submitted, waiting for a worker (or re-enqueued by journal replay).
    Queued,
    /// A worker is training it.
    Running,
    /// Trained, evaluated and stored; the digest fields are populated.
    Done,
    /// Training failed; the error field says why.
    Failed,
}

impl JobState {
    /// The wire slug for this state.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
        }
    }

    fn parse(slug: &str) -> Result<JobState, String> {
        Ok(match slug {
            "queued" => JobState::Queued,
            "running" => JobState::Running,
            "done" => JobState::Done,
            "failed" => JobState::Failed,
            other => return Err(format!("unknown job state `{other}`")),
        })
    }
}

/// Everything the protocol reports about one job — the payload of
/// `status` responses and terminal `done` events.
#[derive(Clone, Debug, PartialEq)]
pub struct JobStatus {
    /// Job id (dense, 1-based, stable across daemon restarts).
    pub job: u64,
    /// Scenario name the job trains.
    pub scenario: String,
    /// Train-spec digest (the dedup key).
    pub spec_digest: u64,
    /// Scheduling priority (higher runs first; FIFO within a priority).
    pub priority: i64,
    /// Lifecycle state.
    pub state: JobState,
    /// Environment steps trained so far (final count once done).
    pub steps: u64,
    /// Trailing average episode return.
    pub avg_return: f32,
    /// Content digest of the stored checkpoint (done jobs).
    pub digest: Option<u64>,
    /// Weight digest of the checkpoint (done jobs).
    pub params_digest: Option<u64>,
    /// Evaluation stats digest (done jobs).
    pub eval_digest: Option<u64>,
    /// Evaluation accuracy (done jobs).
    pub accuracy: Option<f64>,
    /// Failure message (failed jobs).
    pub error: Option<String>,
}

impl JobStatus {
    /// Encodes the status as a [`Value`] table (optional fields omitted
    /// when absent).
    pub fn to_value(&self) -> Value {
        let mut table = Value::table();
        table.set("job", u64_value(self.job));
        table.set("scenario", Value::Str(self.scenario.clone()));
        table.set("spec_digest", digest_str(self.spec_digest));
        table.set("priority", Value::Int(self.priority));
        table.set("state", Value::Str(self.state.as_str().to_string()));
        table.set("steps", u64_value(self.steps));
        table.set("avg_return", f32_value(self.avg_return));
        if let Some(digest) = self.digest {
            table.set("digest", digest_str(digest));
        }
        if let Some(digest) = self.params_digest {
            table.set("params_digest", digest_str(digest));
        }
        if let Some(digest) = self.eval_digest {
            table.set("eval_digest", digest_str(digest));
        }
        if let Some(accuracy) = self.accuracy {
            table.set("accuracy", Value::Float(accuracy));
        }
        if let Some(error) = &self.error {
            table.set("error", Value::Str(error.clone()));
        }
        table
    }

    /// Decodes a status written by [`JobStatus::to_value`].
    ///
    /// # Errors
    ///
    /// Returns an error on missing keys or mistyped values.
    pub fn from_value(value: &Value) -> Result<JobStatus, String> {
        let table = value.as_table()?;
        let opt_digest = |key: &str| table.get(key).map(digest_from).transpose();
        Ok(JobStatus {
            job: u64_from(req(table, "job")?)?,
            scenario: req(table, "scenario")?.as_str()?.to_string(),
            spec_digest: digest_from(req(table, "spec_digest")?)?,
            priority: req(table, "priority")?.as_i64()?,
            state: JobState::parse(req(table, "state")?.as_str()?)?,
            steps: u64_from(req(table, "steps")?)?,
            avg_return: req(table, "avg_return")?.as_f32()?,
            digest: opt_digest("digest")?,
            params_digest: opt_digest("params_digest")?,
            eval_digest: opt_digest("eval_digest")?,
            accuracy: table.get("accuracy").map(Value::as_f64).transpose()?,
            error: table
                .get("error")
                .map(|e| e.as_str().map(str::to_string))
                .transpose()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// What a `submit` request trains: a registry name or a full inline
/// scenario (shipped by `submit --file`, so the daemon needs no
/// filesystem agreement with the client).
#[derive(Clone, Debug, PartialEq)]
pub enum JobSource {
    /// A scenario name resolved against the daemon's registry.
    Registry(String),
    /// A complete scenario carried in the request.
    Inline(Box<Scenario>),
}

/// Which stored checkpoint a scenario-keyed fetch resolves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Which {
    /// Highest recorded accuracy, ties toward the newest.
    Best,
    /// Most recently stored.
    Latest,
}

impl Which {
    /// The wire slug.
    pub fn as_str(self) -> &'static str {
        match self {
            Which::Best => "best",
            Which::Latest => "latest",
        }
    }

    /// Parses a wire/CLI slug.
    ///
    /// # Errors
    ///
    /// Returns an error on anything but `best`/`latest`.
    pub fn parse(slug: &str) -> Result<Which, String> {
        Ok(match slug {
            "best" => Which::Best,
            "latest" => Which::Latest,
            other => return Err(format!("unknown fetch mode `{other}` (best|latest)")),
        })
    }
}

/// How a `fetch` request names its object.
#[derive(Clone, Debug, PartialEq)]
pub enum FetchKey {
    /// A scenario's best/latest checkpoint.
    Scenario {
        /// Scenario name.
        name: String,
        /// Selection rule.
        which: Which,
    },
    /// An exact object by content digest (the key a `done` event or a
    /// prior `status` reported — how [`crate::client::JobHandle`] fetches
    /// its own artifact).
    Digest(u64),
}

/// One client request. The server's dispatch is an exhaustive match on
/// this enum — adding a variant without handling it is a compile error.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// The version handshake; must be the first request on a connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Liveness probe.
    Ping,
    /// Queue a training job (or attach to an equivalent one — see the
    /// dedup contract in the server docs).
    Submit {
        /// What to train.
        source: JobSource,
        /// Per-job training overrides (`--threads` never travels).
        overrides: TrainOverrides,
        /// Scheduling priority; higher runs first, default 0.
        priority: i64,
    },
    /// Report one job (`job: Some`) or the whole table.
    Status {
        /// Job id, or `None` for all jobs.
        job: Option<u64>,
    },
    /// Stream a job's progress events, then its terminal event.
    Watch {
        /// Job id.
        job: u64,
    },
    /// Stream a stored checkpoint's bytes (see the module docs).
    Fetch {
        /// Which object.
        key: FetchKey,
    },
    /// Apply a retention policy to the store.
    Gc {
        /// Keep at most N entries per scenario (`None` = unlimited).
        max_count: Option<u64>,
        /// Drop entries older than this many seconds (`None` = unlimited).
        max_age_secs: Option<u64>,
        /// Glob patterns of scenario names exempt from removal.
        keep: Vec<String>,
    },
    /// Drain and exit.
    Shutdown,
}

impl Request {
    /// Encodes the request as its wire [`Value`].
    pub fn to_value(&self) -> Value {
        let mut table = Value::table();
        match self {
            Request::Hello { version } => {
                table.set("req", Value::Str("hello".into()));
                table.set("version", Value::Int(i64::from(*version)));
            }
            Request::Ping => table.set("req", Value::Str("ping".into())),
            Request::Submit {
                source,
                overrides,
                priority,
            } => {
                table.set("req", Value::Str("submit".into()));
                match source {
                    JobSource::Registry(name) => {
                        table.set("scenario", Value::Str(name.clone()));
                    }
                    JobSource::Inline(scenario) => {
                        table.set("inline", scenario.to_value());
                    }
                }
                let overrides = overrides.to_value();
                if overrides != Value::table() {
                    table.set("overrides", overrides);
                }
                if *priority != 0 {
                    table.set("priority", Value::Int(*priority));
                }
            }
            Request::Status { job } => {
                table.set("req", Value::Str("status".into()));
                if let Some(job) = job {
                    table.set("job", u64_value(*job));
                }
            }
            Request::Watch { job } => {
                table.set("req", Value::Str("watch".into()));
                table.set("job", u64_value(*job));
            }
            Request::Fetch { key } => {
                table.set("req", Value::Str("fetch".into()));
                match key {
                    FetchKey::Scenario { name, which } => {
                        table.set("scenario", Value::Str(name.clone()));
                        table.set("which", Value::Str(which.as_str().to_string()));
                    }
                    FetchKey::Digest(digest) => table.set("digest", digest_str(*digest)),
                }
            }
            Request::Gc {
                max_count,
                max_age_secs,
                keep,
            } => {
                table.set("req", Value::Str("gc".into()));
                if let Some(count) = max_count {
                    table.set("max_count", u64_value(*count));
                }
                if let Some(age) = max_age_secs {
                    table.set("max_age_secs", u64_value(*age));
                }
                if !keep.is_empty() {
                    table.set(
                        "keep",
                        Value::Array(keep.iter().map(|p| Value::Str(p.clone())).collect()),
                    );
                }
            }
            Request::Shutdown => table.set("req", Value::Str("shutdown".into())),
        }
        table
    }

    /// Decodes a wire [`Value`] into a request.
    ///
    /// # Errors
    ///
    /// Returns an error on an unknown discriminator, missing keys or
    /// mistyped values.
    pub fn from_value(value: &Value) -> Result<Request, String> {
        let table = value.as_table()?;
        Ok(match discriminator(value, "req")? {
            "hello" => Request::Hello {
                version: req(table, "version")?.as_u32()?,
            },
            "ping" => Request::Ping,
            "submit" => {
                let source =
                    match (table.get("scenario"), table.get("inline")) {
                        (Some(name), None) => JobSource::Registry(name.as_str()?.to_string()),
                        (None, Some(inline)) => JobSource::Inline(Box::new(Scenario::from_json(
                            &value::to_json(inline),
                        )?)),
                        _ => return Err(
                            "submit needs exactly one of `scenario` (registry name) or `inline`"
                                .into(),
                        ),
                    };
                Request::Submit {
                    source,
                    overrides: match table.get("overrides") {
                        Some(overrides) => TrainOverrides::from_value(overrides)?,
                        None => TrainOverrides::default(),
                    },
                    priority: match table.get("priority") {
                        Some(priority) => priority.as_i64()?,
                        None => 0,
                    },
                }
            }
            "status" => Request::Status {
                job: table.get("job").map(u64_from).transpose()?,
            },
            "watch" => Request::Watch {
                job: u64_from(req(table, "job")?)?,
            },
            "fetch" => {
                let key = match (table.get("scenario"), table.get("digest")) {
                    (Some(name), None) => FetchKey::Scenario {
                        name: name.as_str()?.to_string(),
                        which: match table.get("which") {
                            Some(which) => Which::parse(which.as_str()?)?,
                            None => Which::Best,
                        },
                    },
                    (None, Some(digest)) => FetchKey::Digest(digest_from(digest)?),
                    _ => return Err("fetch needs exactly one of `scenario` or `digest`".into()),
                };
                Request::Fetch { key }
            }
            "gc" => Request::Gc {
                max_count: table.get("max_count").map(u64_from).transpose()?,
                max_age_secs: table.get("max_age_secs").map(u64_from).transpose()?,
                keep: match table.get("keep") {
                    Some(patterns) => patterns
                        .as_array()?
                        .iter()
                        .map(|p| p.as_str().map(str::to_string))
                        .collect::<Result<_, _>>()?,
                    None => Vec::new(),
                },
            },
            "shutdown" => Request::Shutdown,
            other => return Err(format!("unknown request `{other}`")),
        })
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// One server response. Every request gets exactly one (plus, for
/// `watch`, an event stream, and for `fetch`, the chunked byte body).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// Handshake acknowledgement carrying the server's version.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Answer to `ping`.
    Pong,
    /// Answer to `submit`: the job the submission resolved to.
    Submitted {
        /// Job id (a fresh job, or the equivalent job attached to).
        job: u64,
        /// The submission's train-spec digest (the dedup key).
        spec_digest: u64,
        /// Whether the submission attached to an existing equivalent job
        /// instead of queuing a new training run.
        attached: bool,
    },
    /// Answer to `status`.
    Status {
        /// One entry per requested job (the whole table when the request
        /// named none).
        jobs: Vec<JobStatus>,
    },
    /// Answer to `fetch`; the chunked byte body follows this line.
    Fetch {
        /// The store's metadata for the object.
        entry: StoreEntry,
        /// Exact byte length of the body.
        len: u64,
    },
    /// Answer to `gc`.
    Gc {
        /// Index entries removed.
        removed_entries: u64,
        /// Object files deleted.
        removed_objects: u64,
        /// Index entries surviving.
        kept_entries: u64,
    },
    /// Answer to `shutdown`.
    ShuttingDown,
    /// Any request's failure.
    Error {
        /// Machine-readable category.
        kind: ErrorKind,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Encodes the response as its wire [`Value`].
    pub fn to_value(&self) -> Value {
        let mut table = Value::table();
        match self {
            Response::Hello { version } => {
                table.set("resp", Value::Str("hello".into()));
                table.set("version", Value::Int(i64::from(*version)));
            }
            Response::Pong => table.set("resp", Value::Str("pong".into())),
            Response::Submitted {
                job,
                spec_digest,
                attached,
            } => {
                table.set("resp", Value::Str("submitted".into()));
                table.set("job", u64_value(*job));
                table.set("spec_digest", digest_str(*spec_digest));
                table.set("attached", Value::Bool(*attached));
            }
            Response::Status { jobs } => {
                table.set("resp", Value::Str("status".into()));
                table.set(
                    "jobs",
                    Value::Array(jobs.iter().map(JobStatus::to_value).collect()),
                );
            }
            Response::Fetch { entry, len } => {
                table.set("resp", Value::Str("fetch".into()));
                table.set("entry", entry.to_value());
                table.set("len", u64_value(*len));
            }
            Response::Gc {
                removed_entries,
                removed_objects,
                kept_entries,
            } => {
                table.set("resp", Value::Str("gc".into()));
                table.set("removed_entries", u64_value(*removed_entries));
                table.set("removed_objects", u64_value(*removed_objects));
                table.set("kept_entries", u64_value(*kept_entries));
            }
            Response::ShuttingDown => table.set("resp", Value::Str("shutting-down".into())),
            Response::Error { kind, message } => {
                table.set("resp", Value::Str("error".into()));
                table.set("kind", Value::Str(kind.as_str().to_string()));
                table.set("message", Value::Str(message.clone()));
            }
        }
        table
    }

    /// Decodes a wire [`Value`] into a response.
    ///
    /// # Errors
    ///
    /// Returns an error on an unknown discriminator, missing keys or
    /// mistyped values.
    pub fn from_value(value: &Value) -> Result<Response, String> {
        let table = value.as_table()?;
        Ok(match discriminator(value, "resp")? {
            "hello" => Response::Hello {
                version: req(table, "version")?.as_u32()?,
            },
            "pong" => Response::Pong,
            "submitted" => Response::Submitted {
                job: u64_from(req(table, "job")?)?,
                spec_digest: digest_from(req(table, "spec_digest")?)?,
                attached: req(table, "attached")?.as_bool()?,
            },
            "status" => Response::Status {
                jobs: req(table, "jobs")?
                    .as_array()?
                    .iter()
                    .map(JobStatus::from_value)
                    .collect::<Result<_, _>>()?,
            },
            "fetch" => Response::Fetch {
                entry: StoreEntry::from_value(req(table, "entry")?)?,
                len: u64_from(req(table, "len")?)?,
            },
            "gc" => Response::Gc {
                removed_entries: u64_from(req(table, "removed_entries")?)?,
                removed_objects: u64_from(req(table, "removed_objects")?)?,
                kept_entries: u64_from(req(table, "kept_entries")?)?,
            },
            "shutting-down" => Response::ShuttingDown,
            "error" => Response::Error {
                kind: ErrorKind::parse(req(table, "kind")?.as_str()?)?,
                message: req(table, "message")?.as_str()?.to_string(),
            },
            other => return Err(format!("unknown response `{other}`")),
        })
    }
}

// ---------------------------------------------------------------------------
// Events (watch streams)
// ---------------------------------------------------------------------------

/// One line of a `watch` stream: progress while the job trains, then
/// exactly one terminal `Done`/`Failed` event. Every watcher of a job
/// receives the *same* stream — progress events are replayed from the
/// job's full progress log, not sampled at attach time.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// One PPO update's worth of progress.
    Progress {
        /// Job id.
        job: u64,
        /// Environment steps trained so far.
        steps: u64,
        /// Trailing average episode return.
        avg_return: f32,
    },
    /// The job finished; the status carries every digest fingerprint.
    Done {
        /// Final job status.
        status: JobStatus,
    },
    /// The job failed.
    Failed {
        /// Job id.
        job: u64,
        /// Failure message.
        error: String,
    },
}

impl Event {
    /// Encodes the event as its wire [`Value`].
    pub fn to_value(&self) -> Value {
        let mut table = Value::table();
        match self {
            Event::Progress {
                job,
                steps,
                avg_return,
            } => {
                table.set("event", Value::Str("progress".into()));
                table.set("job", u64_value(*job));
                table.set("steps", u64_value(*steps));
                table.set("avg_return", f32_value(*avg_return));
            }
            Event::Done { status } => {
                table.set("event", Value::Str("done".into()));
                table.set("status", status.to_value());
            }
            Event::Failed { job, error } => {
                table.set("event", Value::Str("failed".into()));
                table.set("job", u64_value(*job));
                table.set("error", Value::Str(error.clone()));
            }
        }
        table
    }

    /// Decodes a wire [`Value`] into an event.
    ///
    /// # Errors
    ///
    /// Returns an error on an unknown discriminator, missing keys or
    /// mistyped values.
    pub fn from_value(value: &Value) -> Result<Event, String> {
        let table = value.as_table()?;
        Ok(match discriminator(value, "event")? {
            "progress" => Event::Progress {
                job: u64_from(req(table, "job")?)?,
                steps: u64_from(req(table, "steps")?)?,
                avg_return: req(table, "avg_return")?.as_f32()?,
            },
            "done" => Event::Done {
                status: JobStatus::from_value(req(table, "status")?)?,
            },
            "failed" => Event::Failed {
                job: u64_from(req(table, "job")?)?,
                error: req(table, "error")?.as_str()?.to_string(),
            },
            other => return Err(format!("unknown event `{other}`")),
        })
    }
}

/// Whether a watch-stream line is an [`Event`] (as opposed to an error
/// [`Response`] aborting the stream).
pub fn is_event(value: &Value) -> bool {
    value
        .as_table()
        .map(|table| table.contains_key("event"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_status(state: JobState) -> JobStatus {
        JobStatus {
            job: 3,
            scenario: "table4-6".into(),
            spec_digest: 0x0123_4567_89ab_cdef,
            priority: 2,
            state,
            steps: 4096,
            avg_return: 0.625,
            digest: (state == JobState::Done).then_some(0xaaaa),
            params_digest: (state == JobState::Done).then_some(0xbbbb),
            eval_digest: (state == JobState::Done).then_some(0xcccc),
            accuracy: (state == JobState::Done).then_some(0.97),
            error: (state == JobState::Failed).then(|| "boom".to_string()),
        }
    }

    fn sample_entry() -> StoreEntry {
        StoreEntry {
            scenario: "table4-6".into(),
            spec_digest: 0x1111,
            digest: 0x2222,
            params_digest: 0x3333,
            steps: 512,
            accuracy: 0.5,
            created_unix: 1_700_000_000,
        }
    }

    #[test]
    fn requests_round_trip_through_the_value_codec() {
        let overrides = TrainOverrides {
            steps: Some(512),
            seed: Some(9),
            ..TrainOverrides::default()
        };
        let requests = vec![
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Ping,
            Request::Submit {
                source: JobSource::Registry("table4-6".into()),
                overrides,
                priority: 5,
            },
            Request::Submit {
                source: JobSource::Inline(Box::new(autocat_scenario::lookup("table4-3").unwrap())),
                overrides: TrainOverrides::default(),
                priority: 0,
            },
            Request::Status { job: None },
            Request::Status { job: Some(7) },
            Request::Watch { job: 7 },
            Request::Fetch {
                key: FetchKey::Scenario {
                    name: "table4-6".into(),
                    which: Which::Latest,
                },
            },
            Request::Fetch {
                key: FetchKey::Digest(0xdead_beef),
            },
            Request::Gc {
                max_count: Some(2),
                max_age_secs: None,
                keep: vec!["defense-*".into()],
            },
            Request::Shutdown,
        ];
        for request in requests {
            let back = Request::from_value(&request.to_value()).unwrap();
            assert_eq!(back, request);
        }
    }

    #[test]
    fn responses_round_trip_through_the_value_codec() {
        let responses = vec![
            Response::Hello {
                version: PROTOCOL_VERSION,
            },
            Response::Pong,
            Response::Submitted {
                job: 1,
                spec_digest: 0xfeed,
                attached: true,
            },
            Response::Status {
                jobs: vec![
                    sample_status(JobState::Queued),
                    sample_status(JobState::Running),
                    sample_status(JobState::Done),
                    sample_status(JobState::Failed),
                ],
            },
            Response::Fetch {
                entry: sample_entry(),
                len: 12_345,
            },
            Response::Gc {
                removed_entries: 1,
                removed_objects: 1,
                kept_entries: 3,
            },
            Response::ShuttingDown,
            Response::Error {
                kind: ErrorKind::UnknownJob,
                message: "no job 7".into(),
            },
        ];
        for response in responses {
            let back = Response::from_value(&response.to_value()).unwrap();
            assert_eq!(back, response);
        }
    }

    #[test]
    fn events_round_trip_and_sniff_as_events() {
        let events = vec![
            Event::Progress {
                job: 1,
                steps: 2048,
                avg_return: 0.123_456_7,
            },
            Event::Done {
                status: sample_status(JobState::Done),
            },
            Event::Failed {
                job: 1,
                error: "env exploded".into(),
            },
        ];
        for event in events {
            let value = event.to_value();
            assert!(is_event(&value));
            assert_eq!(Event::from_value(&value).unwrap(), event);
        }
        assert!(!is_event(&Response::Pong.to_value()));
    }

    #[test]
    fn unknown_discriminators_and_kinds_are_errors() {
        let mut bogus = Value::table();
        bogus.set("req", Value::Str("frobnicate".into()));
        assert!(Request::from_value(&bogus).unwrap_err().contains("unknown"));
        let mut bogus = Value::table();
        bogus.set("resp", Value::Str("frobnicate".into()));
        assert!(Response::from_value(&bogus)
            .unwrap_err()
            .contains("unknown"));
        let mut bogus = Value::table();
        bogus.set("event", Value::Str("frobnicate".into()));
        assert!(Event::from_value(&bogus).unwrap_err().contains("unknown"));
        assert!(ErrorKind::parse("nope").is_err());
        assert!(JobState::parse("nope").is_err());
        assert!(Which::parse("nope").is_err());
    }

    #[test]
    fn submit_requires_exactly_one_source_and_fetch_one_key() {
        let mut both = Value::table();
        both.set("req", Value::Str("submit".into()));
        assert!(Request::from_value(&both)
            .unwrap_err()
            .contains("exactly one"));
        let mut neither = Value::table();
        neither.set("req", Value::Str("fetch".into()));
        assert!(Request::from_value(&neither)
            .unwrap_err()
            .contains("exactly one"));
    }

    #[test]
    fn lines_round_trip_through_a_buffer() {
        let mut wire = Vec::new();
        write_line(&mut wire, &Request::Ping.to_value()).unwrap();
        write_line(&mut wire, &Response::Pong.to_value()).unwrap();

        let mut reader = std::io::BufReader::new(wire.as_slice());
        let first = read_line(&mut reader).unwrap().unwrap();
        assert_eq!(Request::from_value(&first).unwrap(), Request::Ping);
        let second = read_line(&mut reader).unwrap().unwrap();
        assert_eq!(Response::from_value(&second).unwrap(), Response::Pong);
        assert!(read_line(&mut reader).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn chunk_streams_round_trip_and_validate_length() {
        for len in [
            0usize,
            1,
            FETCH_CHUNK - 1,
            FETCH_CHUNK,
            FETCH_CHUNK * 2 + 17,
        ] {
            let bytes: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut wire = Vec::new();
            write_chunks(&mut wire, &bytes).unwrap();
            let back = read_chunks(&mut wire.as_slice(), len as u64).unwrap();
            assert_eq!(back, bytes, "len {len}");
        }

        // Announced length disagreements fail in both directions.
        let mut wire = Vec::new();
        write_chunks(&mut wire, &[1, 2, 3]).unwrap();
        assert!(read_chunks(&mut wire.as_slice(), 2)
            .unwrap_err()
            .contains("exceeds"));
        let mut wire = Vec::new();
        write_chunks(&mut wire, &[1, 2, 3]).unwrap();
        assert!(read_chunks(&mut wire.as_slice(), 4)
            .unwrap_err()
            .contains("ended"));

        // A hostile frame length is refused before allocation.
        let mut wire = Vec::from(u32::MAX.to_be_bytes());
        wire.extend_from_slice(&[0; 8]);
        assert!(read_chunks(&mut wire.as_slice(), u64::MAX)
            .unwrap_err()
            .contains("cap"));
    }
}
