//! Client subcommands: one connection per invocation, speaking the same
//! NDJSON protocol the daemon serves, so ci.sh can drive a full
//! submit → watch → fetch → gc round trip from the shell.

use crate::proto;
use autocat_bench::cli::TrainOverrides;
use autocat_scenario::value::{req, u64_from, u64_value, Value};
use autocat_scenario::Scenario;
use autocat_store::codec;
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::TcpStream;

/// One open client connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Returns an error when the daemon is unreachable.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("connecting to {addr}: {e} (is the daemon running?)"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        Ok(Client {
            writer,
            reader: BufReader::new(stream),
        })
    }

    /// Sends one request and returns the daemon's `{"ok": true}` response
    /// table; an `{"ok": false}` response becomes this function's error.
    ///
    /// # Errors
    ///
    /// Returns transport errors and daemon-reported errors alike.
    pub fn request(&mut self, payload: &Value) -> Result<BTreeMap<String, Value>, String> {
        proto::write_line(&mut self.writer, payload).map_err(|e| e.to_string())?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<BTreeMap<String, Value>, String> {
        let response = proto::read_line(&mut self.reader)?
            .ok_or("daemon closed the connection mid-request")?;
        let table = response.as_table()?.clone();
        match req(&table, "ok")?.as_bool()? {
            true => Ok(table),
            false => Err(format!(
                "daemon: {}",
                req(&table, "error")
                    .and_then(Value::as_str)
                    .unwrap_or("unknown error")
            )),
        }
    }

    /// Reads one watch-stream event line.
    fn read_event(&mut self) -> Result<BTreeMap<String, Value>, String> {
        let line = proto::read_line(&mut self.reader)?.ok_or("daemon closed the watch stream")?;
        let table = line.as_table()?.clone();
        // An {"ok": false} line in the stream is the daemon aborting the
        // watch (unknown job, shutdown).
        if let Some(ok) = table.get("ok") {
            if !ok.as_bool()? {
                return Err(format!(
                    "daemon: {}",
                    req(&table, "error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error")
                ));
            }
        }
        Ok(table)
    }
}

fn cmd(name: &str) -> Value {
    let mut table = Value::table();
    table.set("cmd", Value::Str(name.to_string()));
    table
}

/// `ping`: round-trips one request, proving the daemon is up.
///
/// # Errors
///
/// Returns transport errors.
pub fn ping(addr: &str) -> Result<(), String> {
    Client::connect(addr)?.request(&cmd("ping"))?;
    println!("pong from {addr}");
    Ok(())
}

/// `shutdown`: asks the daemon to drain and exit.
///
/// # Errors
///
/// Returns transport errors.
pub fn shutdown(addr: &str) -> Result<(), String> {
    Client::connect(addr)?.request(&cmd("shutdown"))?;
    println!("daemon at {addr} shutting down");
    Ok(())
}

/// `submit`: queues a job (registry name or scenario file) and, with
/// `wait`, streams its progress and prints the same
/// `params digest`/`eval digest` lines as `scenario-run --ckpt` — the
/// greppable surface ci.sh compares for the daemon/one-shot bit-identity
/// gate.
///
/// # Errors
///
/// Returns submission errors, and with `wait` also the job's own failure.
pub fn submit(
    addr: &str,
    scenario: Option<&str>,
    file: Option<&str>,
    overrides: &TrainOverrides,
    wait: bool,
) -> Result<(), String> {
    if overrides.threads.is_some() {
        // The protocol deliberately doesn't carry --threads (see proto);
        // dropping it silently would lie to the caller.
        return Err("--threads does not apply to submitted jobs; \
                    set the daemon's worker pool with `daemon --workers`"
            .into());
    }
    let mut request = cmd("submit");
    match (scenario, file) {
        (Some(name), None) => request.set("scenario", Value::Str(name.to_string())),
        (None, Some(path)) => {
            // Ship the file's scenario inline so the daemon needs no
            // filesystem agreement with the client.
            let scenario = Scenario::load(path)?;
            request.set(
                "inline",
                autocat_scenario::value::from_json(&scenario.to_json())?,
            );
        }
        _ => return Err("submit needs exactly one of --scenario or --file".into()),
    }
    if overrides.any() {
        request.set("overrides", proto::overrides_to_value(overrides));
    }

    let mut client = Client::connect(addr)?;
    let response = client.request(&request)?;
    let job = u64_from(req(&response, "job")?)?;
    println!(
        "submitted job {job} (spec digest {})",
        req(&response, "spec_digest")?.as_str()?
    );
    if !wait {
        return Ok(());
    }

    let mut watch = cmd("watch");
    watch.set("job", u64_value(job));
    proto::write_line(&mut client.writer, &watch).map_err(|e| e.to_string())?;
    loop {
        let event = client.read_event()?;
        match req(&event, "event")?.as_str()? {
            "progress" => {
                let steps = u64_from(req(&event, "steps")?)?;
                let avg = req(&event, "avg_return")?.as_f64()?;
                eprintln!("job {job}: {steps} steps, avg return {avg:.2}");
            }
            "done" => {
                println!("job {job} done");
                println!("digest   : {}", req(&event, "digest")?.as_str()?);
                println!("accuracy : {:.3}", req(&event, "accuracy")?.as_f64()?);
                // Exactly scenario-run's fingerprint lines (see module docs).
                println!(
                    "params digest : {}",
                    req(&event, "params_digest")?.as_str()?
                );
                println!("eval digest   : {}", req(&event, "eval_digest")?.as_str()?);
                return Ok(());
            }
            "failed" => {
                return Err(format!(
                    "job {job} failed: {}",
                    req(&event, "error")
                        .and_then(Value::as_str)
                        .unwrap_or("unknown error")
                ));
            }
            other => return Err(format!("unexpected event `{other}`")),
        }
    }
}

/// `status`: prints the job table (or one job with `job`).
///
/// # Errors
///
/// Returns transport errors and unknown-job errors.
pub fn status(addr: &str, job: Option<u64>) -> Result<(), String> {
    let mut request = cmd("status");
    if let Some(id) = job {
        request.set("job", u64_value(id));
    }
    let response = Client::connect(addr)?.request(&request)?;
    let print_job = |table: &BTreeMap<String, Value>| -> Result<(), String> {
        let id = u64_from(req(table, "job")?)?;
        let state = req(table, "state")?.as_str()?;
        let name = req(table, "scenario")?.as_str()?;
        let steps = u64_from(req(table, "steps")?)?;
        match table.get("digest") {
            Some(digest) => println!(
                "job {id}: {name} [{state}] {steps} steps, digest {}",
                digest.as_str()?
            ),
            None => match table.get("error") {
                Some(error) => println!("job {id}: {name} [{state}] {}", error.as_str()?),
                None => println!("job {id}: {name} [{state}] {steps} steps"),
            },
        }
        Ok(())
    };
    match response.get("job_status") {
        Some(one) => print_job(one.as_table()?)?,
        None => {
            let jobs = req(&response, "jobs")?.as_array()?;
            if jobs.is_empty() {
                println!("no jobs");
            }
            for job in jobs {
                print_job(job.as_table()?)?;
            }
        }
    }
    Ok(())
}

/// `fetch`: resolves the scenario's best/latest checkpoint, copies the
/// object file, and re-verifies its content digest locally before writing
/// `out` — a corrupt copy must fail loudly, not load as wrong weights.
///
/// # Errors
///
/// Returns lookup, I/O, and digest-mismatch errors.
pub fn fetch(addr: &str, scenario: &str, which: &str, out: &str) -> Result<(), String> {
    let mut request = cmd("fetch");
    request.set("scenario", Value::Str(scenario.to_string()));
    request.set("which", Value::Str(which.to_string()));
    let response = Client::connect(addr)?.request(&request)?;
    let entry = req(&response, "entry")?.as_table()?;
    let path = req(entry, "path")?.as_str()?;
    let digest = proto::digest_from(req(entry, "digest")?)?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading stored object {path}: {e}"))?;
    let actual = codec::content_digest(&bytes);
    if actual != digest {
        return Err(format!(
            "digest mismatch on fetched object: daemon says {}, bytes hash to {}",
            autocat_store::digest_hex(digest),
            autocat_store::digest_hex(actual)
        ));
    }
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "fetched {scenario} ({which}) -> {out} ({} bytes, digest {}, params digest {})",
        bytes.len(),
        autocat_store::digest_hex(digest),
        req(entry, "params_digest")?.as_str()?
    );
    Ok(())
}

/// `gc`: applies a retention policy on the daemon's store.
///
/// # Errors
///
/// Returns transport and store errors.
pub fn gc(
    addr: &str,
    max_count: Option<usize>,
    max_age_secs: Option<u64>,
    keep: &[String],
) -> Result<(), String> {
    let mut request = cmd("gc");
    if let Some(count) = max_count {
        request.set("max_count", Value::Int(count as i64));
    }
    if let Some(age) = max_age_secs {
        request.set("max_age_secs", u64_value(age));
    }
    if !keep.is_empty() {
        request.set(
            "keep",
            Value::Array(keep.iter().map(|p| Value::Str(p.clone())).collect()),
        );
    }
    let response = Client::connect(addr)?.request(&request)?;
    println!(
        "gc: removed {} entries, {} objects; kept {} entries",
        req(&response, "removed_entries")?.as_i64()?,
        req(&response, "removed_objects")?.as_i64()?,
        req(&response, "kept_entries")?.as_i64()?
    );
    Ok(())
}
