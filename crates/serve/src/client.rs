//! The typed client library: one [`Client`] per connection speaking the
//! versioned protocol (handshake included), and a [`JobHandle`] wrapping
//! a submitted job — `wait`/`events` for the watch stream, `artifact`
//! for a digest-verified fetch of the job's stored checkpoint. The CLI
//! subcommands (`crate::cmd`) and the integration tests are both built
//! on this, so there is exactly one implementation of the wire contract
//! on the client side.

use crate::proto::{self, Event, FetchKey, JobStatus, Request, Response, PROTOCOL_VERSION};
use autocat_store::{codec, StoreEntry};
use std::io::BufReader;
use std::net::TcpStream;

fn unexpected(response: &Response) -> String {
    format!(
        "unexpected response: {}",
        autocat_scenario::value::to_json(&response.to_value())
    )
}

/// One open, handshaken client connection.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon and performs the `hello` version
    /// handshake.
    ///
    /// # Errors
    ///
    /// Returns an error when the daemon is unreachable or speaks a
    /// different protocol version.
    pub fn connect(addr: &str) -> Result<Client, String> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| format!("connecting to {addr}: {e} (is the daemon running?)"))?;
        let writer = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
        let mut client = Client {
            writer,
            reader: BufReader::new(stream),
        };
        match client.request(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { version } if version == PROTOCOL_VERSION => Ok(client),
            Response::Hello { version } => Err(format!(
                "daemon at {addr} speaks protocol v{version}, this client v{PROTOCOL_VERSION}"
            )),
            other => Err(unexpected(&other)),
        }
    }

    /// Sends one request and returns the daemon's response; a
    /// [`Response::Error`] becomes this function's `Err`.
    ///
    /// # Errors
    ///
    /// Returns transport errors and daemon-reported faults alike.
    pub fn request(&mut self, request: &Request) -> Result<Response, String> {
        proto::write_line(&mut self.writer, &request.to_value()).map_err(|e| e.to_string())?;
        let line = proto::read_line(&mut self.reader)?
            .ok_or("daemon closed the connection mid-request")?;
        match Response::from_value(&line)? {
            Response::Error { kind, message } => {
                Err(format!("daemon: {}: {message}", kind.as_str()))
            }
            response => Ok(response),
        }
    }

    /// `ping` round trip.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn ping(&mut self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Submits a job and upgrades this connection into its [`JobHandle`].
    ///
    /// # Errors
    ///
    /// Returns submission errors (unknown scenario, invalid overrides).
    pub fn submit(
        mut self,
        source: proto::JobSource,
        overrides: autocat_bench::cli::TrainOverrides,
        priority: i64,
    ) -> Result<JobHandle, String> {
        match self.request(&Request::Submit {
            source,
            overrides,
            priority,
        })? {
            Response::Submitted {
                job,
                spec_digest,
                attached,
            } => Ok(JobHandle {
                client: self,
                job,
                spec_digest,
                attached,
            }),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches the job table (or one job's entry).
    ///
    /// # Errors
    ///
    /// Returns transport errors and unknown-job faults.
    pub fn status(&mut self, job: Option<u64>) -> Result<Vec<JobStatus>, String> {
        match self.request(&Request::Status { job })? {
            Response::Status { jobs } => Ok(jobs),
            other => Err(unexpected(&other)),
        }
    }

    /// Fetches a stored checkpoint's metadata and bytes through the
    /// connection (length-prefixed chunks; see the protocol docs) and
    /// re-verifies the assembled bytes against the entry's content
    /// digest — host-independent and corruption-evident.
    ///
    /// # Errors
    ///
    /// Returns lookup faults, transport errors, and digest mismatches.
    pub fn fetch(&mut self, key: &FetchKey) -> Result<(StoreEntry, Vec<u8>), String> {
        let (entry, len) = match self.request(&Request::Fetch { key: key.clone() })? {
            Response::Fetch { entry, len } => (entry, len),
            other => return Err(unexpected(&other)),
        };
        let bytes = proto::read_chunks(&mut self.reader, len)?;
        let actual = codec::content_digest(&bytes);
        if actual != entry.digest {
            return Err(format!(
                "digest mismatch on fetched object: daemon says {}, bytes hash to {}",
                autocat_store::digest_hex(entry.digest),
                autocat_store::digest_hex(actual)
            ));
        }
        Ok((entry, bytes))
    }

    /// Applies a retention policy on the daemon's store; returns
    /// `(removed entries, removed objects, kept entries)`.
    ///
    /// # Errors
    ///
    /// Returns transport and store errors.
    pub fn gc(
        &mut self,
        max_count: Option<u64>,
        max_age_secs: Option<u64>,
        keep: Vec<String>,
    ) -> Result<(u64, u64, u64), String> {
        match self.request(&Request::Gc {
            max_count,
            max_age_secs,
            keep,
        })? {
            Response::Gc {
                removed_entries,
                removed_objects,
                kept_entries,
            } => Ok((removed_entries, removed_objects, kept_entries)),
            other => Err(unexpected(&other)),
        }
    }

    /// Asks the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// Returns transport errors.
    pub fn shutdown(&mut self) -> Result<(), String> {
        match self.request(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Attaches to an existing job by id as a [`JobHandle`] (the watch
    /// side of dedup: any number of handles can follow one run).
    pub fn handle(self, job: u64, spec_digest: u64) -> JobHandle {
        JobHandle {
            client: self,
            job,
            spec_digest,
            attached: true,
        }
    }
}

/// A submitted (or attached-to) job: the connection plus the identifiers
/// `submit` answered with.
pub struct JobHandle {
    client: Client,
    /// The job id the submission resolved to.
    pub job: u64,
    /// The submission's train-spec digest (the dedup key).
    pub spec_digest: u64,
    /// Whether the submission attached to an existing equivalent job
    /// instead of queuing a fresh run.
    pub attached: bool,
}

impl JobHandle {
    /// Streams the job's watch events into `on_event` — the full progress
    /// log from the first update (identical for every watcher), then the
    /// terminal event — and returns the final status of a `done` job.
    ///
    /// # Errors
    ///
    /// Returns transport errors, daemon faults aborting the stream, and
    /// the job's own failure.
    pub fn events(&mut self, on_event: &mut dyn FnMut(&Event)) -> Result<JobStatus, String> {
        proto::write_line(
            &mut self.client.writer,
            &Request::Watch { job: self.job }.to_value(),
        )
        .map_err(|e| e.to_string())?;
        loop {
            let line = proto::read_line(&mut self.client.reader)?
                .ok_or("daemon closed the watch stream")?;
            if !proto::is_event(&line) {
                // A response line inside the stream is the daemon
                // aborting the watch (unknown job, shutdown).
                return match Response::from_value(&line)? {
                    Response::Error { kind, message } => {
                        Err(format!("daemon: {}: {message}", kind.as_str()))
                    }
                    other => Err(unexpected(&other)),
                };
            }
            let event = Event::from_value(&line)?;
            on_event(&event);
            match event {
                Event::Progress { .. } => {}
                Event::Done { status } => return Ok(status),
                Event::Failed { job, error } => return Err(format!("job {job} failed: {error}")),
            }
        }
    }

    /// Blocks until the job finishes, discarding progress events.
    ///
    /// # Errors
    ///
    /// See [`JobHandle::events`].
    pub fn wait(&mut self) -> Result<JobStatus, String> {
        self.events(&mut |_| {})
    }

    /// The job's current status.
    ///
    /// # Errors
    ///
    /// Returns transport errors and unknown-job faults.
    pub fn status(&mut self) -> Result<JobStatus, String> {
        self.client
            .status(Some(self.job))?
            .into_iter()
            .next()
            .ok_or_else(|| format!("daemon answered no status for job {}", self.job))
    }

    /// Fetches the finished job's stored checkpoint by content digest —
    /// digest-verified bytes through the connection, independent of any
    /// server-local path.
    ///
    /// # Errors
    ///
    /// Returns an error while the job is unfinished, plus every
    /// [`Client::fetch`] failure mode.
    pub fn artifact(&mut self) -> Result<(StoreEntry, Vec<u8>), String> {
        let status = self.status()?;
        let digest = status.digest.ok_or_else(|| {
            format!(
                "job {} has no artifact yet (state {})",
                self.job,
                status.state.as_str()
            )
        })?;
        self.client.fetch(&FetchKey::Digest(digest))
    }

    /// Gives the underlying connection back (e.g. to issue a `shutdown`
    /// after waiting a job out).
    pub fn into_client(self) -> Client {
        self.client
    }
}
