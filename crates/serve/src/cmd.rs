//! CLI subcommands, all thin wrappers over the typed
//! [`Client`]/[`JobHandle`] library — parsing flags, calling the client,
//! and printing. The `submit --wait`/`watch` printers emit exactly
//! `scenario-run --ckpt`'s fingerprint lines (`params digest :`,
//! `eval digest   :`), the greppable surface ci.sh compares for the
//! daemon/one-shot bit-identity gate.

use crate::client::{Client, JobHandle};
use crate::proto::{Event, FetchKey, JobSource, JobStatus, Which};
use autocat_bench::cli::TrainOverrides;
use autocat_scenario::Scenario;
use autocat_store::digest_hex;

fn opt_hex(digest: Option<u64>) -> String {
    digest.map(digest_hex).unwrap_or_else(|| "-".into())
}

/// `ping`: round-trips one request (handshake included), proving the
/// daemon is up and speaks this client's protocol version.
///
/// # Errors
///
/// Returns transport and version-mismatch errors.
pub fn ping(addr: &str) -> Result<(), String> {
    Client::connect(addr)?.ping()?;
    println!("pong from {addr}");
    Ok(())
}

/// `shutdown`: asks the daemon to drain and exit.
///
/// # Errors
///
/// Returns transport errors.
pub fn shutdown(addr: &str) -> Result<(), String> {
    Client::connect(addr)?.shutdown()?;
    println!("daemon at {addr} shutting down");
    Ok(())
}

/// Streams a handle's events, printing progress to stderr and — on
/// success — the fingerprint block ci.sh greps (see the module docs).
fn follow(handle: &mut JobHandle) -> Result<(), String> {
    let job = handle.job;
    let status = handle.events(&mut |event| {
        if let Event::Progress {
            steps, avg_return, ..
        } = event
        {
            eprintln!("job {job}: {steps} steps, avg return {avg_return:.2}");
        }
    })?;
    println!("job {job} done");
    println!("digest   : {}", opt_hex(status.digest));
    println!("accuracy : {:.3}", status.accuracy.unwrap_or(0.0));
    // Exactly scenario-run's fingerprint lines (see module docs).
    println!("params digest : {}", opt_hex(status.params_digest));
    println!("eval digest   : {}", opt_hex(status.eval_digest));
    Ok(())
}

/// `submit`: queues a job (registry name or scenario file, with an
/// optional priority) or attaches to an equivalent one; with `wait`,
/// follows the job's event stream to its end.
///
/// # Errors
///
/// Returns submission errors, and with `wait` also the job's own failure.
pub fn submit(
    addr: &str,
    scenario: Option<&str>,
    file: Option<&str>,
    overrides: &TrainOverrides,
    priority: i64,
    wait: bool,
) -> Result<(), String> {
    if overrides.threads.is_some() {
        // The protocol deliberately doesn't carry --threads (see proto);
        // dropping it silently would lie to the caller.
        return Err("--threads does not apply to submitted jobs; \
                    set the daemon's worker pool with `daemon --workers`"
            .into());
    }
    let source = match (scenario, file) {
        (Some(name), None) => JobSource::Registry(name.to_string()),
        // Ship the file's scenario inline so the daemon needs no
        // filesystem agreement with the client.
        (None, Some(path)) => JobSource::Inline(Box::new(Scenario::load(path)?)),
        _ => return Err("submit needs exactly one of --scenario or --file".into()),
    };
    let mut handle = Client::connect(addr)?.submit(source, *overrides, priority)?;
    if handle.attached {
        println!(
            "attached to job {} (spec digest {})",
            handle.job,
            digest_hex(handle.spec_digest)
        );
    } else {
        println!(
            "submitted job {} (spec digest {})",
            handle.job,
            digest_hex(handle.spec_digest)
        );
    }
    if wait {
        follow(&mut handle)?;
    }
    Ok(())
}

/// `watch`: attaches to a job by id and follows its event stream — the
/// full progress history (identical for every watcher), then the
/// terminal event.
///
/// # Errors
///
/// Returns unknown-job faults and the job's own failure.
pub fn watch(addr: &str, job: u64) -> Result<(), String> {
    let status = Client::connect(addr)?.status(Some(job))?;
    let spec = status
        .first()
        .map(|s| s.spec_digest)
        .ok_or_else(|| format!("no job {job}"))?;
    follow(&mut Client::connect(addr)?.handle(job, spec))
}

/// `status`: prints the job table (or one job with `job`).
///
/// # Errors
///
/// Returns transport errors and unknown-job faults.
pub fn status(addr: &str, job: Option<u64>) -> Result<(), String> {
    let jobs = Client::connect(addr)?.status(job)?;
    if jobs.is_empty() {
        println!("no jobs");
    }
    for status in &jobs {
        print_status(status);
    }
    Ok(())
}

fn print_status(status: &JobStatus) {
    let JobStatus {
        job,
        scenario,
        state,
        steps,
        priority,
        ..
    } = status;
    let state = state.as_str();
    let prio = if *priority != 0 {
        format!(" prio {priority}")
    } else {
        String::new()
    };
    match status.digest {
        Some(digest) => println!(
            "job {job}: {scenario} [{state}]{prio} {steps} steps, digest {}",
            digest_hex(digest)
        ),
        None => match &status.error {
            Some(error) => println!("job {job}: {scenario} [{state}]{prio} {error}"),
            None => println!("job {job}: {scenario} [{state}]{prio} {steps} steps"),
        },
    }
}

/// `fetch`: streams a stored checkpoint — a scenario's best/latest or an
/// exact object by digest — through the connection, re-verifies the
/// bytes' content digest locally, and writes them to `out`. Prints the
/// digest and byte count; no server-local path is involved anywhere.
///
/// # Errors
///
/// Returns lookup, transport, digest-mismatch, and local-write errors.
pub fn fetch(
    addr: &str,
    scenario: Option<&str>,
    which: &str,
    digest: Option<&str>,
    out: &str,
) -> Result<(), String> {
    let key = match (scenario, digest) {
        (Some(name), None) => FetchKey::Scenario {
            name: name.to_string(),
            which: Which::parse(which)?,
        },
        (None, Some(hex)) => FetchKey::Digest(autocat_store::digest_from_hex(hex)?),
        _ => return Err("fetch needs exactly one of --scenario or --digest".into()),
    };
    let (entry, bytes) = Client::connect(addr)?.fetch(&key)?;
    std::fs::write(out, &bytes).map_err(|e| format!("writing {out}: {e}"))?;
    let described = match &key {
        FetchKey::Scenario { name, which } => format!("{name} ({})", which.as_str()),
        FetchKey::Digest(digest) => format!("object {}", digest_hex(*digest)),
    };
    println!(
        "fetched {described} -> {out} ({} bytes, digest {}, params digest {})",
        bytes.len(),
        digest_hex(entry.digest),
        digest_hex(entry.params_digest)
    );
    Ok(())
}

/// `gc`: applies a retention policy on the daemon's store.
///
/// # Errors
///
/// Returns transport and store errors.
pub fn gc(
    addr: &str,
    max_count: Option<u64>,
    max_age_secs: Option<u64>,
    keep: &[String],
) -> Result<(), String> {
    let (removed_entries, removed_objects, kept_entries) =
        Client::connect(addr)?.gc(max_count, max_age_secs, keep.to_vec())?;
    println!(
        "gc: removed {removed_entries} entries, {removed_objects} objects; \
         kept {kept_entries} entries"
    );
    Ok(())
}
