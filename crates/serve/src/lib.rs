//! `autocat-serve` as a library: the typed wire protocol ([`proto`]),
//! the daemon ([`server`]), the typed client ([`client`]) and the CLI
//! subcommands ([`cmd`]). The binary (`src/main.rs`) is a flag parser
//! over this crate; the integration tests drive the same public surface.

// The compiler-level half of lint rule R1 (autocat-lint covers the rest:
// expect/panic!/unreachable! in the request path): no unwrap in shipped
// serve code — a panic in a connection or worker thread must never be
// how an error surfaces.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

pub mod client;
pub mod cmd;
pub mod proto;
pub mod server;

pub use client::{Client, JobHandle};
