//! `autocat-serve` as a library: the typed wire protocol ([`proto`]),
//! the daemon ([`server`]), the typed client ([`client`]) and the CLI
//! subcommands ([`cmd`]). The binary (`src/main.rs`) is a flag parser
//! over this crate; the integration tests drive the same public surface.

pub mod client;
pub mod cmd;
pub mod proto;
pub mod server;

pub use client::{Client, JobHandle};
