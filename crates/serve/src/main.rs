//! `autocat-serve`: the always-on exploration daemon and its client
//! subcommands in one binary (a flag parser over the `autocat_serve`
//! library — see `crate::cmd` for the behavior).
//!
//! ```text
//! autocat-serve daemon   [--addr 127.0.0.1:0] [--store DIR] [--workers N]
//! autocat-serve ping     --addr HOST:PORT
//! autocat-serve submit   --addr HOST:PORT (--scenario NAME | --file PATH)
//!                        [--wait] [--priority N] [--steps N] [--seed N]
//!                        [--lanes N] [--eval-episodes N] [--shards N]
//! autocat-serve watch    --addr HOST:PORT --job N
//! autocat-serve status   --addr HOST:PORT [--job N]
//! autocat-serve fetch    --addr HOST:PORT (--scenario NAME | --digest HEX)
//!                        --out PATH [--which best|latest]
//! autocat-serve gc       --addr HOST:PORT [--max-count N]
//!                        [--max-age-secs N] [--keep PATTERN]...
//! autocat-serve shutdown --addr HOST:PORT
//! ```
//!
//! The daemon prints `autocat-serve: listening on HOST:PORT` on startup
//! (port 0 resolves to a real free port in that line), which is how
//! ci.sh discovers where to point the client. `--workers 0` runs a
//! queue-only daemon: submissions are accepted and journaled but not
//! trained until a daemon with workers reopens the same store.

// See lib.rs: the compiler-level half of lint rule R1.
#![cfg_attr(not(test), deny(clippy::unwrap_used))]

use autocat_bench::cli::TrainOverrides;
use autocat_serve::{cmd, server};

fn usage() -> ! {
    eprintln!(
        "usage: autocat-serve <daemon|ping|submit|watch|status|fetch|gc|shutdown> [flags]\n\
         run with a subcommand; see the crate docs for per-command flags"
    );
    std::process::exit(2);
}

fn run(command: &str, args: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut store = "store".to_string();
    let mut workers = 1usize;
    let mut scenario: Option<String> = None;
    let mut file: Option<String> = None;
    let mut out: Option<String> = None;
    let mut which = "best".to_string();
    let mut digest: Option<String> = None;
    let mut job: Option<u64> = None;
    let mut wait = false;
    let mut priority = 0i64;
    let mut max_count: Option<u64> = None;
    let mut max_age_secs: Option<u64> = None;
    let mut keep: Vec<String> = Vec::new();
    let mut overrides = TrainOverrides::default();

    let mut it = args.iter().cloned();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--store" => store = value("--store")?,
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--scenario" => scenario = Some(value("--scenario")?),
            "--file" => file = Some(value("--file")?),
            "--out" => out = Some(value("--out")?),
            "--which" => which = value("--which")?,
            "--digest" => digest = Some(value("--digest")?),
            "--job" => job = Some(value("--job")?.parse().map_err(|e| format!("--job: {e}"))?),
            "--wait" => wait = true,
            "--priority" => {
                priority = value("--priority")?
                    .parse()
                    .map_err(|e| format!("--priority: {e}"))?;
            }
            "--max-count" => {
                max_count = Some(
                    value("--max-count")?
                        .parse()
                        .map_err(|e| format!("--max-count: {e}"))?,
                );
            }
            "--max-age-secs" => {
                max_age_secs = Some(
                    value("--max-age-secs")?
                        .parse()
                        .map_err(|e| format!("--max-age-secs: {e}"))?,
                );
            }
            "--keep" => keep.push(value("--keep")?),
            other => {
                if !overrides.try_parse(other, &mut value)? {
                    return Err(format!("unknown flag `{other}` for `{command}`"));
                }
            }
        }
    }
    // Client commands need a daemon address; the daemon picks a default.
    let addr_for = |cmd: &str| {
        addr.clone()
            .ok_or_else(|| format!("{cmd} requires --addr HOST:PORT"))
    };

    match command {
        "daemon" => server::run(&server::DaemonConfig {
            addr: addr.unwrap_or_else(|| "127.0.0.1:0".to_string()),
            store_dir: store,
            workers,
        }),
        "ping" => cmd::ping(&addr_for("ping")?),
        "submit" => cmd::submit(
            &addr_for("submit")?,
            scenario.as_deref(),
            file.as_deref(),
            &overrides,
            priority,
            wait,
        ),
        "watch" => cmd::watch(&addr_for("watch")?, job.ok_or("watch requires --job N")?),
        "status" => cmd::status(&addr_for("status")?, job),
        "fetch" => cmd::fetch(
            &addr_for("fetch")?,
            scenario.as_deref(),
            &which,
            digest.as_deref(),
            out.as_deref().ok_or("fetch requires --out")?,
        ),
        "gc" => cmd::gc(&addr_for("gc")?, max_count, max_age_secs, &keep),
        "shutdown" => cmd::shutdown(&addr_for("shutdown")?),
        other => Err(format!("unknown subcommand `{other}`")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        usage();
    };
    if let Err(e) = run(command, rest) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
