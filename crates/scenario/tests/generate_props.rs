//! Property suite for the scenario generator: arbitrary seeds, byte-
//! identical codecs and byte-identical generation — in-process and
//! across a subprocess boundary.

use autocat_scenario::generate::{generate, ScenarioGenerator};
use autocat_scenario::Scenario;
use proptest::prelude::*;

proptest! {
    /// Every generated scenario round-trips both text codecs with struct
    /// equality AND byte-identical re-emission (the sweep sidecar /
    /// manifest-digest contract).
    #[test]
    fn generated_scenarios_round_trip_both_codecs_byte_identically(
        seed in 0u64..u64::MAX,
        count in 1usize..=6,
    ) {
        for scenario in generate(seed, count) {
            let toml = scenario.to_toml();
            let back = Scenario::from_toml(&toml)
                .map_err(|e| format!("{} TOML re-parse: {e}", scenario.name))?;
            prop_assert_eq!(&back, &scenario);
            prop_assert_eq!(back.to_toml(), toml);

            let json = scenario.to_json();
            let back = Scenario::from_json(&json)
                .map_err(|e| format!("{} JSON re-parse: {e}", scenario.name))?;
            prop_assert_eq!(&back, &scenario);
            prop_assert_eq!(back.to_json(), json);
        }
    }

    /// The generator's core guarantee: the same seed yields the same
    /// bytes, for any seed.
    #[test]
    fn generation_is_deterministic_for_any_seed(seed in 0u64..u64::MAX) {
        let a: Vec<String> = generate(seed, 4).iter().map(Scenario::to_json).collect();
        let b: Vec<String> = generate(seed, 4).iter().map(Scenario::to_json).collect();
        prop_assert_eq!(a, b);
    }

    /// Resuming an iterator mid-stream equals generating the whole batch:
    /// emission `i` depends only on (seed, draws before it), never on how
    /// the batch was sliced up.
    #[test]
    fn batches_are_prefix_stable(seed in 0u64..u64::MAX, count in 2usize..=8) {
        let whole = generate(seed, count);
        let mut stream = ScenarioGenerator::new(seed);
        let head: Vec<Scenario> = stream.by_ref().take(count / 2).collect();
        let tail: Vec<Scenario> = stream.take(count - count / 2).collect();
        let stitched: Vec<Scenario> = head.into_iter().chain(tail).collect();
        prop_assert_eq!(stitched, whole);
    }
}

/// FNV-1a digest over the concatenated JSON bytes of a batch — the
/// fingerprint the subprocess half prints.
fn batch_digest(scenarios: &[Scenario]) -> u64 {
    autocat_nn::state::fnv1a(scenarios.iter().flat_map(|s| s.to_json().into_bytes()))
}

const SUBPROCESS_SEED: u64 = 12_648_430; // 0xC0FFEE
const SUBPROCESS_COUNT: usize = 16;

/// Child half of [`subprocess_generation_is_byte_identical`]: inert (the
/// env vars are unset) unless spawned by the parent test.
#[test]
fn child_prints_generation_digest() {
    let (Ok(seed), Ok(count)) = (
        std::env::var("AUTOCAT_GEN_SEED"),
        std::env::var("AUTOCAT_GEN_COUNT"),
    ) else {
        return;
    };
    let seed: u64 = seed.parse().expect("AUTOCAT_GEN_SEED must be a u64");
    let count: usize = count.parse().expect("AUTOCAT_GEN_COUNT must be a usize");
    println!("GEN_DIGEST={:016x}", batch_digest(&generate(seed, count)));
}

/// `generate(seed)` in a fresh process produces the same bytes as in
/// this one: determinism holds across process boundaries (no global
/// state, no address-dependent iteration anywhere in the sampler).
#[test]
fn subprocess_generation_is_byte_identical() {
    let local = batch_digest(&generate(SUBPROCESS_SEED, SUBPROCESS_COUNT));
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args(["child_prints_generation_digest", "--exact", "--nocapture"])
        .env("AUTOCAT_GEN_SEED", SUBPROCESS_SEED.to_string())
        .env("AUTOCAT_GEN_COUNT", SUBPROCESS_COUNT.to_string())
        .output()
        .expect("child test process must spawn");
    assert!(
        out.status.success(),
        "child failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // With --nocapture the harness's "test ... " prefix can share the
    // child's output line, so search for the marker rather than the
    // line start.
    let digest = stdout
        .lines()
        .find_map(|l| l.split("GEN_DIGEST=").nth(1).map(|d| d.trim()))
        .unwrap_or_else(|| panic!("no GEN_DIGEST line in:\n{stdout}"));
    assert_eq!(
        digest,
        format!("{local:016x}"),
        "generation diverged across processes"
    );
}
