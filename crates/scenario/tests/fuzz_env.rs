//! Smoke-fuzz: generated scenarios drive the full env/backend/monitor
//! stack under seeded random inputs, turning the `CacheBackend` and
//! `Monitor` trait contracts from doc-tests into machine-checked
//! invariants over the whole configuration space.

use autocat_cache::Domain;
use autocat_gym::{backend_from_spec, CacheSpec, Environment, Verdict};
use autocat_scenario::generate::generate;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const SCENARIOS: usize = 64;
const STEPS: usize = 256;

/// ≥64 generated scenarios each construct env + monitor and survive 256
/// seeded random actions; per step, the raw backend is also driven and
/// the `(observed_hit, true_hit)` contract plus monitor verdict/score
/// sanity are asserted.
#[test]
fn generated_scenarios_survive_random_walks() {
    let scenarios = generate(0xF0_77ED, SCENARIOS);
    assert_eq!(scenarios.len(), SCENARIOS);
    for (i, scenario) in scenarios.iter().enumerate() {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{} invalid: {e}", scenario.name));
        let mut env = scenario
            .build_env()
            .unwrap_or_else(|e| panic!("{} unbuildable: {e}", scenario.name));
        let mut backend = backend_from_spec(&scenario.env.cache, scenario.train.seed);
        let mut monitor = scenario.env.detection.build();
        assert_eq!(
            monitor.is_some(),
            !scenario.env.detection.is_off(),
            "{}: monitor builds iff the spec is not off",
            scenario.name
        );
        let two_level = matches!(scenario.env.cache, CacheSpec::TwoLevel(_));
        let lo = scenario.env.victim_addr_s.min(scenario.env.attacker_addr_s);
        let hi = scenario.env.victim_addr_e.max(scenario.env.attacker_addr_e);

        let mut rng = StdRng::seed_from_u64(0x5EED ^ i as u64);
        let mut obs = env.reset(&mut rng);
        for step in 0..STEPS {
            // -- raw backend: the (observed_hit, true_hit) contract -----
            let addr = rng.gen_range(lo..=hi);
            let domain = if rng.gen_bool(0.5) {
                Domain::Attacker
            } else {
                Domain::Victim
            };
            if scenario.env.flush_enable && rng.gen_range(0..8u32) == 0 {
                backend.flush(addr, domain);
            }
            let (observed_hit, true_hit) = backend.access(addr, domain);
            if two_level {
                // The pair diverges exactly when the L1 misses but the
                // shared L2 hits, so truth must imply observation.
                assert!(
                    observed_hit || !true_hit,
                    "{} step {step}: true_hit without observed_hit",
                    scenario.name
                );
            } else {
                // Single-level backends never diverge, stochastic
                // replacement included.
                assert_eq!(
                    observed_hit, true_hit,
                    "{} step {step}: single-level pair diverged",
                    scenario.name
                );
            }

            // -- monitor: verdict range + finite running score ----------
            if let Some(m) = monitor.as_mut() {
                for event in backend.drain_events() {
                    let verdict = m.observe(&event);
                    assert!(
                        matches!(verdict, Verdict::Clean | Verdict::Attack),
                        "{} step {step}: out-of-range verdict",
                        scenario.name
                    );
                    assert!(
                        m.score().is_finite(),
                        "{} step {step}: non-finite monitor score {}",
                        scenario.name,
                        m.score()
                    );
                }
            }

            // -- environment: random action, sane step result -----------
            let action = rng.gen_range(0..env.num_actions());
            let result = env.step(action, &mut rng);
            assert_eq!(
                result.obs.len(),
                env.obs_dim(),
                "{} step {step}: observation dimension drifted",
                scenario.name
            );
            assert!(
                result.reward.is_finite(),
                "{} step {step}: non-finite reward {}",
                scenario.name,
                result.reward
            );
            obs = if result.done {
                env.reset(&mut rng)
            } else {
                result.obs
            };
        }
        assert_eq!(obs.len(), env.obs_dim(), "{}", scenario.name);
        if let Some(m) = monitor.as_mut() {
            m.reset();
            assert!(
                m.score().is_finite(),
                "{}: score after reset",
                scenario.name
            );
        }
    }
}

/// The acceptance floor: ≥500 generated scenarios validate, build their
/// environment and monitor, and carry unique dense names — zero panics,
/// zero contract violations.
#[test]
fn bulk_generation_validates_and_builds() {
    let scenarios = generate(0xB16_F177, 512);
    assert_eq!(scenarios.len(), 512);
    let mut names = std::collections::BTreeSet::new();
    for scenario in &scenarios {
        scenario
            .validate()
            .unwrap_or_else(|e| panic!("{} invalid: {e}", scenario.name));
        let env = scenario
            .build_env()
            .unwrap_or_else(|e| panic!("{} unbuildable: {e}", scenario.name));
        assert!(env.num_actions() >= 2, "{}", scenario.name);
        assert!(env.obs_dim() >= 2, "{}", scenario.name);
        assert_eq!(
            scenario.env.detection.build().is_some(),
            !scenario.env.detection.is_off(),
            "{}",
            scenario.name
        );
        assert!(
            names.insert(scenario.name.clone()),
            "duplicate name {}",
            scenario.name
        );
    }
}
