//! Binary-codec coverage: every registry scenario AND a generated batch
//! round-trip the autocat-store ACSB codec, and the binary path agrees
//! with the JSON path value-for-value.

use autocat_scenario::generate::generate;
use autocat_scenario::value::{from_json, to_json};
use autocat_scenario::Scenario;
use autocat_store::codec::{decode, encode, is_binary};

fn assert_codec_round_trip(scenario: &Scenario) {
    let tree = from_json(&scenario.to_json())
        .unwrap_or_else(|e| panic!("{}: JSON parse: {e}", scenario.name));

    let bytes = encode(&tree);
    assert!(is_binary(&bytes), "{}: ACSB sniff failed", scenario.name);
    let back = decode(&bytes).unwrap_or_else(|e| panic!("{}: ACSB decode: {e}", scenario.name));
    assert_eq!(back, tree, "{}: decode(encode(v)) != v", scenario.name);

    // Cross-equality: a scenario re-read from the binary tree via the
    // JSON renderer equals the original struct, so the two codecs are
    // interchangeable sidecar formats.
    let reread = Scenario::from_json(&to_json(&back))
        .unwrap_or_else(|e| panic!("{}: re-read: {e}", scenario.name));
    assert_eq!(
        &reread, scenario,
        "{}: binary/JSON cross-equality",
        scenario.name
    );

    // And re-encoding the decoded tree is byte-identical (binary
    // canonical form, the store's content-digest contract).
    assert_eq!(encode(&back), bytes, "{}: re-encode bytes", scenario.name);
}

/// All registry scenarios — not just the golden fixture — survive the
/// binary codec.
#[test]
fn every_registry_scenario_round_trips_the_binary_codec() {
    let scenarios = autocat_scenario::all();
    assert!(
        scenarios.len() >= 17,
        "registry shrank to {}",
        scenarios.len()
    );
    for scenario in &scenarios {
        assert_codec_round_trip(scenario);
    }
}

/// Generated scenarios exercise corners of the space the hand-written
/// registry never reaches (composite monitors, permuted two-level
/// hierarchies, ...), so they get the same codec guarantee.
#[test]
fn generated_scenarios_round_trip_the_binary_codec() {
    let scenarios = generate(9, 32);
    assert_eq!(scenarios.len(), 32);
    for scenario in &scenarios {
        assert_codec_round_trip(scenario);
    }
}
