//! Golden-file test: a hand-written TOML scenario must parse to exactly
//! the expected in-memory [`Scenario`], and survive re-emission.

use autocat_detect::MonitorSpec;
use autocat_gym::EnvConfig;
use autocat_scenario::{Scenario, TrainSpec};

fn golden_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.toml")
}

fn expected() -> Scenario {
    let mut env = EnvConfig::flush_reload_fa4();
    env.window_size = 16;
    env.detection = MonitorSpec::Composite(vec![
        MonitorSpec::VictimMiss { threshold: 2 },
        MonitorSpec::Autocorr {
            threshold: 0.85,
            max_lag: 20,
        },
    ]);
    let mut scenario = Scenario::new(
        "golden-flush-reload",
        "hand-written scenario: FR under stacked in-loop detection",
        env,
    );
    let mut train = TrainSpec {
        seed: 9,
        max_steps: 250_000,
        return_threshold: 0.85,
        eval_episodes: 100,
        ..TrainSpec::default()
    };
    train.ppo.num_lanes = 2;
    scenario.train = train;
    scenario
}

#[test]
fn golden_file_parses_to_the_expected_scenario() {
    let loaded = Scenario::load(golden_path()).expect("golden file must parse");
    assert_eq!(loaded, expected());
}

#[test]
fn golden_file_survives_re_emission() {
    let loaded = Scenario::load(golden_path()).unwrap();
    let emitted = loaded.to_toml();
    let back = Scenario::from_toml(&emitted).expect("emitted TOML must re-parse");
    assert_eq!(loaded, back, "emitted:\n{emitted}");
    let back = Scenario::from_json(&loaded.to_json()).expect("emitted JSON must re-parse");
    assert_eq!(loaded, back);
}

#[test]
fn golden_scenario_validates_and_builds() {
    let loaded = Scenario::load(golden_path()).unwrap();
    assert!(loaded.validate().is_ok());
    let env = loaded.build_env().expect("golden env must build");
    use autocat_gym::Environment;
    assert_eq!(env.window(), 16);
}
