//! Golden-file tests: the same scenario pinned on disk in *both* codecs —
//! a hand-written TOML file and its JSON equivalent — must parse to
//! exactly the expected in-memory [`Scenario`] and survive re-emission.
//! A change that shifts either text format breaks these fixtures loudly.

use autocat_detect::MonitorSpec;
use autocat_gym::EnvConfig;
use autocat_scenario::{Scenario, TrainSpec};

fn golden_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.toml")
}

fn golden_json_path() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/data/golden.json")
}

fn expected() -> Scenario {
    let mut env = EnvConfig::flush_reload_fa4();
    env.window_size = 16;
    env.detection = MonitorSpec::Composite(vec![
        MonitorSpec::VictimMiss { threshold: 2 },
        MonitorSpec::Autocorr {
            threshold: 0.85,
            max_lag: 20,
        },
    ]);
    let mut scenario = Scenario::new(
        "golden-flush-reload",
        "hand-written scenario: FR under stacked in-loop detection",
        env,
    );
    let mut train = TrainSpec {
        seed: 9,
        max_steps: 250_000,
        return_threshold: 0.85,
        eval_episodes: 100,
        ..TrainSpec::default()
    };
    train.ppo.num_lanes = 2;
    scenario.train = train;
    scenario
}

#[test]
fn golden_file_parses_to_the_expected_scenario() {
    let loaded = Scenario::load(golden_path()).expect("golden file must parse");
    assert_eq!(loaded, expected());
}

#[test]
fn golden_json_parses_to_the_same_scenario() {
    // The JSON path is first-class: `Scenario::load` picks the codec by
    // extension, and both fixtures decode to the identical value.
    let loaded = Scenario::load(golden_json_path()).expect("golden JSON must parse");
    assert_eq!(loaded, expected());
    assert_eq!(loaded, Scenario::load(golden_path()).unwrap());
}

#[test]
fn golden_json_is_byte_stable_under_re_emission() {
    // to_json output is deterministic (sorted tables, exact floats), so
    // re-emitting the fixture must reproduce it byte for byte.
    let text = std::fs::read_to_string(golden_json_path()).unwrap();
    let loaded = Scenario::from_json(&text).unwrap();
    assert_eq!(loaded.to_json(), text);
}

#[test]
fn golden_file_survives_re_emission() {
    let loaded = Scenario::load(golden_path()).unwrap();
    let emitted = loaded.to_toml();
    let back = Scenario::from_toml(&emitted).expect("emitted TOML must re-parse");
    assert_eq!(loaded, back, "emitted:\n{emitted}");
    let back = Scenario::from_json(&loaded.to_json()).expect("emitted JSON must re-parse");
    assert_eq!(loaded, back);
}

#[test]
fn golden_scenario_validates_and_builds() {
    let loaded = Scenario::load(golden_path()).unwrap();
    assert!(loaded.validate().is_ok());
    let env = loaded.build_env().expect("golden env must build");
    use autocat_gym::Environment;
    assert_eq!(env.window(), 16);
}
