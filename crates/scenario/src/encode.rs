//! [`Value`] encoders/decoders for every type a scenario file stores.
//!
//! Enum-typed fields are encoded as tables with a `kind` discriminant
//! (`{ kind = "victim-miss", threshold = 1 }`), simple enums as slug
//! strings (`policy = "plru"`), so hand-written TOML stays readable.

use crate::value::{req, u64_from, u64_value, Value};
use crate::{Scenario, TrainSpec};
use autocat_cache::mapping::AddressMapping;
use autocat_cache::{CacheConfig, PolicyKind, PrefetcherKind, TwoLevelConfig};
use autocat_detect::MonitorSpec;
use autocat_gym::{CacheSpec, EnvConfig, HardwareProfile, RewardConfig};
// Backbone and PpoConfig share their codec with trainer checkpoints, so a
// scenario's `[train]` section and a checkpoint's `config`/`backbone`
// tables never drift apart.
use autocat_ppo::checkpoint::{
    backbone_from_value, backbone_to_value, ppo_config_from_value, ppo_config_to_value,
};
use std::collections::BTreeMap;

fn ctx<T>(result: Result<T, String>, what: &str) -> Result<T, String> {
    result.map_err(|e| format!("{what}: {e}"))
}

// -- simple enums -----------------------------------------------------------

fn policy_to_str(policy: PolicyKind) -> &'static str {
    match policy {
        PolicyKind::Lru => "lru",
        PolicyKind::Plru => "plru",
        PolicyKind::Rrip => "rrip",
        PolicyKind::Nru => "nru",
        PolicyKind::Random => "random",
    }
}

fn policy_from_str(s: &str) -> Result<PolicyKind, String> {
    Ok(match s {
        "lru" => PolicyKind::Lru,
        "plru" => PolicyKind::Plru,
        "rrip" => PolicyKind::Rrip,
        "nru" => PolicyKind::Nru,
        "random" => PolicyKind::Random,
        other => return Err(format!("unknown replacement policy `{other}`")),
    })
}

fn prefetcher_to_str(prefetcher: PrefetcherKind) -> &'static str {
    match prefetcher {
        PrefetcherKind::None => "none",
        PrefetcherKind::NextLine => "next-line",
        PrefetcherKind::Stream => "stream",
    }
}

fn prefetcher_from_str(s: &str) -> Result<PrefetcherKind, String> {
    Ok(match s {
        "none" => PrefetcherKind::None,
        "next-line" => PrefetcherKind::NextLine,
        "stream" => PrefetcherKind::Stream,
        other => return Err(format!("unknown prefetcher `{other}`")),
    })
}

/// Slug used in scenario files and registry names for a hardware profile.
pub fn profile_slug(profile: HardwareProfile) -> &'static str {
    match profile {
        HardwareProfile::SkylakeL1 => "skylake-l1",
        HardwareProfile::SkylakeL2 => "skylake-l2",
        HardwareProfile::SkylakeL3 => "skylake-l3",
        HardwareProfile::KabylakeL3W4 => "kabylake-l3-w4",
        HardwareProfile::KabylakeL3W8 => "kabylake-l3-w8",
        HardwareProfile::CoffeelakeL1 => "coffeelake-l1",
        HardwareProfile::CoffeelakeL2 => "coffeelake-l2",
    }
}

fn profile_from_slug(s: &str) -> Result<HardwareProfile, String> {
    HardwareProfile::table3_rows()
        .into_iter()
        .find(|p| profile_slug(*p) == s)
        .ok_or_else(|| format!("unknown hardware profile `{s}`"))
}

// -- cache geometry ---------------------------------------------------------

fn mapping_to_value(mapping: &AddressMapping) -> Value {
    let mut table = Value::table();
    match mapping {
        AddressMapping::Direct => table.set("kind", Value::Str("direct".into())),
        AddressMapping::RandomPermutation {
            seed,
            address_space,
        } => {
            table.set("kind", Value::Str("random-permutation".into()));
            table.set("seed", u64_value(*seed));
            table.set("address_space", Value::Int(*address_space as i64));
        }
    }
    table
}

fn mapping_from_value(value: &Value) -> Result<AddressMapping, String> {
    let table = value.as_table()?;
    match req(table, "kind")?.as_str()? {
        "direct" => Ok(AddressMapping::Direct),
        "random-permutation" => Ok(AddressMapping::RandomPermutation {
            seed: u64_from(req(table, "seed")?)?,
            address_space: req(table, "address_space")?.as_usize()?,
        }),
        other => Err(format!("unknown mapping kind `{other}`")),
    }
}

fn cache_fields_to(table: &mut Value, config: &CacheConfig) {
    table.set("num_sets", Value::Int(config.num_sets as i64));
    table.set("num_ways", Value::Int(config.num_ways as i64));
    table.set("policy", Value::Str(policy_to_str(config.policy).into()));
    table.set(
        "prefetcher",
        Value::Str(prefetcher_to_str(config.prefetcher).into()),
    );
    table.set("mapping", mapping_to_value(&config.mapping));
    table.set("policy_seed", u64_value(config.policy_seed));
    table.set("hit_latency", Value::Int(i64::from(config.hit_latency)));
    table.set("miss_latency", Value::Int(i64::from(config.miss_latency)));
}

fn cache_config_to_value(config: &CacheConfig) -> Value {
    let mut table = Value::table();
    cache_fields_to(&mut table, config);
    table
}

fn cache_config_from_map(table: &BTreeMap<String, Value>) -> Result<CacheConfig, String> {
    let mut config = CacheConfig::new(
        req(table, "num_sets")?.as_usize()?,
        req(table, "num_ways")?.as_usize()?,
    );
    config.policy = policy_from_str(req(table, "policy")?.as_str()?)?;
    config.prefetcher = prefetcher_from_str(req(table, "prefetcher")?.as_str()?)?;
    config.mapping = mapping_from_value(req(table, "mapping")?)?;
    config.policy_seed = u64_from(req(table, "policy_seed")?)?;
    config.hit_latency = req(table, "hit_latency")?.as_u32()?;
    config.miss_latency = req(table, "miss_latency")?.as_u32()?;
    Ok(config)
}

fn cache_config_from_value(value: &Value) -> Result<CacheConfig, String> {
    cache_config_from_map(value.as_table()?)
}

fn cache_spec_to_value(spec: &CacheSpec) -> Value {
    let mut table = Value::table();
    match spec {
        CacheSpec::Single(config) => {
            table.set("kind", Value::Str("single".into()));
            cache_fields_to(&mut table, config);
        }
        CacheSpec::TwoLevel(config) => {
            table.set("kind", Value::Str("two-level".into()));
            table.set("num_cores", Value::Int(config.num_cores as i64));
            table.set("l1", cache_config_to_value(&config.l1));
            table.set("l2", cache_config_to_value(&config.l2));
        }
        CacheSpec::Hardware(profile) => {
            table.set("kind", Value::Str("hardware".into()));
            table.set("profile", Value::Str(profile_slug(*profile).into()));
        }
    }
    table
}

fn cache_spec_from_value(value: &Value) -> Result<CacheSpec, String> {
    let table = value.as_table()?;
    match req(table, "kind")?.as_str()? {
        "single" => Ok(CacheSpec::Single(cache_config_from_map(table)?)),
        "two-level" => Ok(CacheSpec::TwoLevel(TwoLevelConfig {
            num_cores: req(table, "num_cores")?.as_usize()?,
            l1: ctx(cache_config_from_value(req(table, "l1")?), "l1")?,
            l2: ctx(cache_config_from_value(req(table, "l2")?), "l2")?,
        })),
        "hardware" => Ok(CacheSpec::Hardware(profile_from_slug(
            req(table, "profile")?.as_str()?,
        )?)),
        other => Err(format!("unknown cache kind `{other}`")),
    }
}

// -- monitors ---------------------------------------------------------------

fn monitor_to_value(spec: &MonitorSpec) -> Value {
    let mut table = Value::table();
    match spec {
        MonitorSpec::Off => table.set("kind", Value::Str("off".into())),
        MonitorSpec::VictimMiss { threshold } => {
            table.set("kind", Value::Str("victim-miss".into()));
            table.set("threshold", u64_value(*threshold));
        }
        MonitorSpec::Autocorr { threshold, max_lag } => {
            table.set("kind", Value::Str("autocorr".into()));
            table.set("threshold", Value::Float(*threshold));
            table.set("max_lag", Value::Int(*max_lag as i64));
        }
        MonitorSpec::CycloneSvm {
            w,
            b,
            num_intervals,
            proximity_window,
        } => {
            table.set("kind", Value::Str("cyclone-svm".into()));
            table.set(
                "w",
                Value::Array(w.iter().map(|x| Value::Float(f64::from(*x))).collect()),
            );
            table.set("b", Value::Float(f64::from(*b)));
            table.set("num_intervals", Value::Int(*num_intervals as i64));
            table.set("proximity_window", Value::Int(*proximity_window as i64));
        }
        MonitorSpec::Composite(members) => {
            table.set("kind", Value::Str("composite".into()));
            table.set(
                "members",
                Value::Array(members.iter().map(monitor_to_value).collect()),
            );
        }
    }
    table
}

fn monitor_from_value(value: &Value) -> Result<MonitorSpec, String> {
    let table = value.as_table()?;
    match req(table, "kind")?.as_str()? {
        "off" => Ok(MonitorSpec::Off),
        "victim-miss" => Ok(MonitorSpec::VictimMiss {
            threshold: u64_from(req(table, "threshold")?)?,
        }),
        "autocorr" => Ok(MonitorSpec::Autocorr {
            threshold: req(table, "threshold")?.as_f64()?,
            max_lag: req(table, "max_lag")?.as_usize()?,
        }),
        "cyclone-svm" => Ok(MonitorSpec::CycloneSvm {
            w: req(table, "w")?
                .as_array()?
                .iter()
                .map(Value::as_f32)
                .collect::<Result<_, _>>()?,
            b: req(table, "b")?.as_f32()?,
            num_intervals: req(table, "num_intervals")?.as_usize()?,
            proximity_window: req(table, "proximity_window")?.as_usize()?,
        }),
        "composite" => Ok(MonitorSpec::Composite(
            req(table, "members")?
                .as_array()?
                .iter()
                .map(monitor_from_value)
                .collect::<Result<_, _>>()?,
        )),
        other => Err(format!("unknown monitor kind `{other}`")),
    }
}

// -- environment ------------------------------------------------------------

fn rewards_to_value(rewards: &RewardConfig) -> Value {
    let mut table = Value::table();
    table.set(
        "correct_guess",
        Value::Float(f64::from(rewards.correct_guess)),
    );
    table.set("wrong_guess", Value::Float(f64::from(rewards.wrong_guess)));
    table.set("step", Value::Float(f64::from(rewards.step)));
    table.set(
        "length_violation",
        Value::Float(f64::from(rewards.length_violation)),
    );
    table.set("detection", Value::Float(f64::from(rewards.detection)));
    table
}

fn rewards_from_value(value: &Value) -> Result<RewardConfig, String> {
    let table = value.as_table()?;
    Ok(RewardConfig {
        correct_guess: req(table, "correct_guess")?.as_f32()?,
        wrong_guess: req(table, "wrong_guess")?.as_f32()?,
        step: req(table, "step")?.as_f32()?,
        length_violation: req(table, "length_violation")?.as_f32()?,
        detection: req(table, "detection")?.as_f32()?,
    })
}

fn env_to_value(env: &EnvConfig) -> Value {
    let mut table = Value::table();
    table.set("cache", cache_spec_to_value(&env.cache));
    table.set("attacker_addr_s", u64_value(env.attacker_addr_s));
    table.set("attacker_addr_e", u64_value(env.attacker_addr_e));
    table.set("victim_addr_s", u64_value(env.victim_addr_s));
    table.set("victim_addr_e", u64_value(env.victim_addr_e));
    table.set("flush_enable", Value::Bool(env.flush_enable));
    table.set(
        "victim_no_access_enable",
        Value::Bool(env.victim_no_access_enable),
    );
    table.set("detection", monitor_to_value(&env.detection));
    table.set("window_size", Value::Int(env.window_size as i64));
    table.set("rewards", rewards_to_value(&env.rewards));
    table.set("init_accesses", Value::Int(env.init_accesses as i64));
    table.set("pl_lock_victim", Value::Bool(env.pl_lock_victim));
    table.set("masked_latency", Value::Bool(env.masked_latency));
    table
}

fn env_from_value(value: &Value) -> Result<EnvConfig, String> {
    let table = value.as_table()?;
    Ok(EnvConfig {
        cache: ctx(cache_spec_from_value(req(table, "cache")?), "cache")?,
        attacker_addr_s: u64_from(req(table, "attacker_addr_s")?)?,
        attacker_addr_e: u64_from(req(table, "attacker_addr_e")?)?,
        victim_addr_s: u64_from(req(table, "victim_addr_s")?)?,
        victim_addr_e: u64_from(req(table, "victim_addr_e")?)?,
        flush_enable: req(table, "flush_enable")?.as_bool()?,
        victim_no_access_enable: req(table, "victim_no_access_enable")?.as_bool()?,
        detection: ctx(monitor_from_value(req(table, "detection")?), "detection")?,
        window_size: req(table, "window_size")?.as_usize()?,
        rewards: ctx(rewards_from_value(req(table, "rewards")?), "rewards")?,
        init_accesses: req(table, "init_accesses")?.as_usize()?,
        pl_lock_victim: req(table, "pl_lock_victim")?.as_bool()?,
        masked_latency: req(table, "masked_latency")?.as_bool()?,
    })
}

// -- training ---------------------------------------------------------------

fn train_to_value(train: &TrainSpec) -> Value {
    let mut table = Value::table();
    table.set("seed", u64_value(train.seed));
    table.set("max_steps", u64_value(train.max_steps));
    table.set(
        "return_threshold",
        Value::Float(f64::from(train.return_threshold)),
    );
    table.set("eval_episodes", Value::Int(train.eval_episodes as i64));
    table.set("backbone", backbone_to_value(&train.backbone));
    table.set("ppo", ppo_config_to_value(&train.ppo));
    table
}

fn train_from_value(value: &Value) -> Result<TrainSpec, String> {
    let table = value.as_table()?;
    Ok(TrainSpec {
        seed: u64_from(req(table, "seed")?)?,
        max_steps: u64_from(req(table, "max_steps")?)?,
        return_threshold: req(table, "return_threshold")?.as_f32()?,
        eval_episodes: req(table, "eval_episodes")?.as_usize()?,
        backbone: ctx(backbone_from_value(req(table, "backbone")?), "backbone")?,
        ppo: ctx(ppo_config_from_value(req(table, "ppo")?), "ppo")?,
    })
}

// -- scenario ---------------------------------------------------------------

/// Encodes a full scenario as a [`Value`] tree.
pub fn scenario_to_value(scenario: &Scenario) -> Value {
    let mut table = Value::table();
    table.set("name", Value::Str(scenario.name.clone()));
    table.set("summary", Value::Str(scenario.summary.clone()));
    table.set("env", env_to_value(&scenario.env));
    table.set("train", train_to_value(&scenario.train));
    table
}

/// Decodes a scenario from a [`Value`] tree.
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn scenario_from_value(value: &Value) -> Result<Scenario, String> {
    let table = value.as_table()?;
    Ok(Scenario {
        name: req(table, "name")?.as_str()?.to_string(),
        summary: req(table, "summary")?.as_str()?.to_string(),
        env: ctx(env_from_value(req(table, "env")?), "env")?,
        train: ctx(train_from_value(req(table, "train")?), "train")?,
    })
}
