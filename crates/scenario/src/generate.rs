//! Seeded generation of valid [`Scenario`]s over a declarative parameter
//! space — the sweep pipeline's unbounded scenario stream and the repo's
//! fuzzer front end.
//!
//! [`ScenarioGenerator`] samples one point of [`GenSpace`] per `next()`
//! from a single [`StdRng`] stream, applying the repair rules documented
//! on [`GenSpace`] so every emitted scenario passes both
//! [`Scenario::validate`] and [`Scenario::build_env`]. Generation is
//! deterministic: the same `(seed, space)` yields a byte-identical
//! scenario sequence — same names, same JSON/TOML bytes — across
//! processes and platforms. That determinism is what lets
//! `sweep --generate N --gen-seed S` feed the resumable manifest
//! pipeline (a re-run regenerates specs whose digests match) and what
//! the CI census byte-identity gate pins.
//!
//! ```
//! use autocat_scenario::generate::generate;
//!
//! let batch = generate(1, 4);
//! assert_eq!(batch.len(), 4);
//! for scenario in &batch {
//!     scenario.validate().expect("every generated scenario is constructible");
//! }
//! // Same seed, same bytes.
//! assert_eq!(batch, generate(1, 4));
//! ```

use crate::Scenario;
use autocat_cache::mapping::AddressMapping;
use autocat_cache::{CacheConfig, PolicyKind, PrefetcherKind, TwoLevelConfig};
use autocat_detect::MonitorSpec;
use autocat_gym::{CacheSpec, EnvConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The declarative parameter space a [`ScenarioGenerator`] samples.
///
/// Dimensions: cache geometry (set count × associativity, capped by
/// `max_blocks`), replacement policy, prefetcher, set mapping, one- vs
/// two-level hierarchy, victim address placement, flush availability,
/// victim no-access secrets and the in-loop monitor stack.
///
/// Not every raw sample is a valid scenario; instead of rejecting, the
/// generator *repairs* deterministically:
///
/// - a geometry whose `sets × ways` exceeds `max_blocks` drops to 1 way
///   (and sets clamp to `max_blocks`);
/// - a random-replacement cache always gets a generated `policy_seed`,
///   so the scenario file fully pins backend behavior;
/// - in a two-level hierarchy, a shared L2 smaller than one private L1
///   is grown to L1 size (inclusive back-invalidation would otherwise
///   thrash every access);
/// - a single-address victim forces `victim_no_access_enable = true`,
///   so the secret always carries at least one bit;
/// - monitor parameters are sampled inside their validity ranges
///   (autocorrelation threshold in (0, 1], SVM weights sized exactly
///   `num_intervals`).
#[derive(Clone, Debug, PartialEq)]
pub struct GenSpace {
    /// Candidate set counts for the game-relevant cache level.
    pub set_counts: Vec<usize>,
    /// Candidate associativities (filtered so `sets × ways ≤ max_blocks`).
    pub ways: Vec<usize>,
    /// Cap on the total block count of any sampled level.
    pub max_blocks: usize,
    /// Replacement policies to draw from.
    pub policies: Vec<PolicyKind>,
    /// Prefetchers to draw from.
    pub prefetchers: Vec<PrefetcherKind>,
    /// Probability of a two-level hierarchy instead of a single cache.
    pub two_level_prob: f64,
    /// Probability of a randomized (permuted) set mapping.
    pub permuted_mapping_prob: f64,
    /// Probability that `clflush` is available to the attacker.
    pub flush_prob: f64,
    /// Probability that the victim may be triggered into "no access"
    /// (repaired to certainty for single-address victims).
    pub victim_no_access_prob: f64,
    /// Probability that an in-loop monitor guards episodes.
    pub monitor_prob: f64,
    /// Probability, given a monitor, of stacking two of them.
    pub composite_prob: f64,
}

impl Default for GenSpace {
    /// The full space the paper's Table IV rows live in, kept small
    /// enough that every sampled environment trains on a laptop.
    fn default() -> Self {
        Self {
            set_counts: vec![1, 2, 4, 8],
            ways: vec![1, 2, 4],
            max_blocks: 16,
            policies: vec![
                PolicyKind::Lru,
                PolicyKind::Plru,
                PolicyKind::Rrip,
                PolicyKind::Nru,
                PolicyKind::Random,
            ],
            prefetchers: vec![
                PrefetcherKind::None,
                PrefetcherKind::NextLine,
                PrefetcherKind::Stream,
            ],
            two_level_prob: 0.25,
            permuted_mapping_prob: 0.2,
            flush_prob: 0.35,
            victim_no_access_prob: 0.35,
            monitor_prob: 0.4,
            composite_prob: 0.25,
        }
    }
}

impl GenSpace {
    /// Checks the space for values the repair rules cannot absorb.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.set_counts.is_empty() || self.set_counts.contains(&0) {
            return Err("set_counts must be non-empty and positive".into());
        }
        if self.ways.is_empty() || self.ways.contains(&0) {
            return Err("ways must be non-empty and positive".into());
        }
        if self.max_blocks == 0 {
            return Err("max_blocks must be positive".into());
        }
        if self.policies.is_empty() {
            return Err("policies must be non-empty".into());
        }
        if self.prefetchers.is_empty() {
            return Err("prefetchers must be non-empty".into());
        }
        for (name, p) in [
            ("two_level_prob", self.two_level_prob),
            ("permuted_mapping_prob", self.permuted_mapping_prob),
            ("flush_prob", self.flush_prob),
            ("victim_no_access_prob", self.victim_no_access_prob),
            ("monitor_prob", self.monitor_prob),
            ("composite_prob", self.composite_prob),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability in [0, 1], got {p}"));
            }
        }
        Ok(())
    }
}

/// The registry-file slug of a monitor spec's kind — the bucket label the
/// census report and generated-scenario summaries share.
pub fn monitor_slug(spec: &MonitorSpec) -> &'static str {
    match spec {
        MonitorSpec::Off => "off",
        MonitorSpec::VictimMiss { .. } => "victim-miss",
        MonitorSpec::Autocorr { .. } => "autocorr",
        MonitorSpec::CycloneSvm { .. } => "cyclone-svm",
        MonitorSpec::Composite(_) => "composite",
    }
}

fn pick<T: Copy>(rng: &mut StdRng, choices: &[T]) -> T {
    choices[rng.gen_range(0..choices.len())]
}

/// Samples one cache level; geometry repairs keep `sets × ways` within
/// `max_blocks`.
fn sample_cache(rng: &mut StdRng, space: &GenSpace, max_blocks: usize) -> CacheConfig {
    let sets = pick(rng, &space.set_counts).min(max_blocks);
    let fitting: Vec<usize> = space
        .ways
        .iter()
        .copied()
        .filter(|w| sets * w <= max_blocks)
        .collect();
    let ways = if fitting.is_empty() {
        1
    } else {
        pick(rng, &fitting)
    };
    let mut config = CacheConfig::new(sets, ways).with_policy(pick(rng, &space.policies));
    if config.policy == PolicyKind::Random {
        config.policy_seed = rng.gen();
    }
    config
}

fn sample_monitor_member(rng: &mut StdRng) -> MonitorSpec {
    match rng.gen_range(0..3u32) {
        0 => MonitorSpec::VictimMiss {
            threshold: rng.gen_range(1..=3u64),
        },
        1 => MonitorSpec::Autocorr {
            threshold: rng.gen_range(0.55f64..0.95),
            max_lag: rng.gen_range(8..=30usize),
        },
        _ => {
            let num_intervals = pick(rng, &[4usize, 8]);
            MonitorSpec::CycloneSvm {
                w: (0..num_intervals)
                    .map(|_| rng.gen_range(0.25f32..1.5))
                    .collect(),
                b: rng.gen_range(-2.0f32..-0.5),
                num_intervals,
                proximity_window: rng.gen_range(6..=16usize),
            }
        }
    }
}

fn sample_monitor(rng: &mut StdRng, space: &GenSpace) -> MonitorSpec {
    if !rng.gen_bool(space.monitor_prob) {
        return MonitorSpec::Off;
    }
    if rng.gen_bool(space.composite_prob) {
        MonitorSpec::Composite(vec![sample_monitor_member(rng), sample_monitor_member(rng)])
    } else {
        sample_monitor_member(rng)
    }
}

/// One-line description of the sampled region, built from the same
/// fields the census buckets on.
fn describe(env: &EnvConfig) -> String {
    let permuted = |m: &AddressMapping| matches!(m, AddressMapping::RandomPermutation { .. });
    let (geometry, policy, prefetcher, permuted) = match &env.cache {
        CacheSpec::Single(c) => (
            format!("{}x{}", c.num_sets, c.num_ways),
            c.policy.name(),
            c.prefetcher,
            permuted(&c.mapping),
        ),
        CacheSpec::TwoLevel(t) => (
            format!("2-level {}x{} L2", t.l2.num_sets, t.l2.num_ways),
            t.l2.policy.name(),
            t.l2.prefetcher,
            permuted(&t.l2.mapping),
        ),
        CacheSpec::Hardware(_) => ("hardware".into(), "hardware", PrefetcherKind::None, false),
    };
    let mut parts = vec![format!("generated: {geometry} {policy} cache")];
    match prefetcher {
        PrefetcherKind::None => {}
        PrefetcherKind::NextLine => parts.push("next-line prefetch".into()),
        PrefetcherKind::Stream => parts.push("stream prefetch".into()),
    }
    if permuted {
        parts.push("permuted mapping".into());
    }
    if env.flush_enable {
        parts.push("flush".into());
    }
    parts.push(format!(
        "victim {}-{}{}",
        env.victim_addr_s,
        env.victim_addr_e,
        if env.victim_no_access_enable {
            " (+no-access)"
        } else {
            ""
        }
    ));
    if !env.detection.is_off() {
        parts.push(format!("monitor {}", monitor_slug(&env.detection)));
    }
    parts.join(", ")
}

/// Draws one raw point of the space (pre-acceptance-check).
fn sample_scenario(rng: &mut StdRng, space: &GenSpace, name: String) -> Scenario {
    let two_level = rng.gen_bool(space.two_level_prob);
    let (spec, blocks) = if two_level {
        // Mirrors the paper's configs 16/17: direct-mapped private L1s
        // in front of a sampled shared inclusive L2, which is the level
        // the guessing game (and the census) is really about.
        let l1_sets = pick(rng, &[2usize, 4]);
        let mut l2 = sample_cache(rng, space, space.max_blocks);
        if l2.num_blocks() < l1_sets {
            l2.num_sets = l1_sets;
            l2.num_ways = 1;
        }
        l2.prefetcher = pick(rng, &space.prefetchers);
        if rng.gen_bool(space.permuted_mapping_prob) {
            l2.mapping = AddressMapping::RandomPermutation {
                seed: rng.gen(),
                address_space: 4 * l2.num_blocks(),
            };
        }
        let l1 = CacheConfig::direct_mapped(l1_sets).with_latencies(4, 12);
        let l2 = l2.with_latencies(12, 40);
        let blocks = l2.num_blocks();
        (
            CacheSpec::TwoLevel(TwoLevelConfig {
                num_cores: 2,
                l1,
                l2,
            }),
            blocks,
        )
    } else {
        let mut cache = sample_cache(rng, space, space.max_blocks);
        cache.prefetcher = pick(rng, &space.prefetchers);
        if rng.gen_bool(space.permuted_mapping_prob) {
            cache.mapping = AddressMapping::RandomPermutation {
                seed: rng.gen(),
                address_space: 4 * cache.num_blocks(),
            };
        }
        let blocks = cache.num_blocks();
        (CacheSpec::Single(cache), blocks)
    };

    // Victim address placement: disjoint (prime+probe layouts), shared
    // (flush/evict+reload layouts) or a one-address victim whose secret
    // is "accessed or not".
    let victim_len = rng.gen_range(1..=blocks.min(8)) as u64;
    let attacker_len = rng.gen_range(blocks..=2 * blocks) as u64;
    let (attacker, victim) = match rng.gen_range(0..3u32) {
        0 => (
            (victim_len, victim_len + attacker_len - 1),
            (0, victim_len - 1),
        ),
        1 => ((0, attacker_len - 1), (0, victim_len - 1)),
        _ => ((1, attacker_len), (0, 0)),
    };
    let mut victim_no_access = rng.gen_bool(space.victim_no_access_prob);
    if victim.0 == victim.1 {
        victim_no_access = true;
    }

    let flush = rng.gen_bool(space.flush_prob);
    let detection = sample_monitor(rng, space);

    let mut env = EnvConfig::new(CacheConfig::direct_mapped(1), attacker, victim);
    env.cache = spec;
    env.window_size = (6 * blocks).clamp(8, 64);
    env.init_accesses = blocks;
    env.flush_enable = flush;
    env.victim_no_access_enable = victim_no_access;
    env.detection = detection;

    let summary = describe(&env);
    let mut scenario = Scenario::new(name, summary, env);
    scenario.train.seed = rng.gen();
    scenario
}

/// A deterministic, seeded, unbounded iterator of valid scenarios.
///
/// Scenario names are `gen-{seed:016x}-{index:04}`, so batches from
/// different seeds never collide in one sweep directory and the natural
/// sort of the report keeps generation order.
#[derive(Clone, Debug)]
pub struct ScenarioGenerator {
    seed: u64,
    space: GenSpace,
    rng: StdRng,
    index: usize,
}

impl ScenarioGenerator {
    /// A generator over the default [`GenSpace`].
    pub fn new(seed: u64) -> Self {
        Self::with_space(seed, GenSpace::default())
    }

    /// A generator over a custom space.
    ///
    /// # Panics
    ///
    /// Panics if the space fails [`GenSpace::validate`] — a malformed
    /// space is a programming error, not a runtime condition.
    pub fn with_space(seed: u64, space: GenSpace) -> Self {
        if let Err(e) = space.validate() {
            panic!("invalid GenSpace: {e}");
        }
        Self {
            seed,
            space,
            rng: StdRng::seed_from_u64(seed),
            index: 0,
        }
    }

    /// The generator seed (also embedded in every emitted name).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The parameter space being sampled.
    pub fn space(&self) -> &GenSpace {
        &self.space
    }
}

impl Iterator for ScenarioGenerator {
    type Item = Scenario;

    /// Always yields: the stream is unbounded (use [`generate`] or
    /// `take(n)` for a batch).
    fn next(&mut self) -> Option<Scenario> {
        // The repair rules should make every raw sample constructible;
        // the bounded rejection loop is the backstop for corners of a
        // custom space they don't cover. Rejected draws advance the RNG
        // (deterministically) but not the index, so accepted names stay
        // dense.
        for _ in 0..16 {
            let name = format!("gen-{:016x}-{:04}", self.seed, self.index);
            let candidate = sample_scenario(&mut self.rng, &self.space, name);
            if candidate.validate().is_ok() && candidate.build_env().is_ok() {
                self.index += 1;
                return Some(candidate);
            }
        }
        panic!(
            "ScenarioGenerator(seed={}): 16 consecutive samples failed validation — \
             the repair rules do not cover this GenSpace",
            self.seed
        );
    }
}

/// Generates `count` scenarios from the default space — the function
/// behind `sweep --generate N --gen-seed S`.
pub fn generate(seed: u64, count: usize) -> Vec<Scenario> {
    ScenarioGenerator::new(seed).take(count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_is_byte_identical() {
        let a: Vec<String> = generate(7, 16).iter().map(Scenario::to_json).collect();
        let b: Vec<String> = generate(7, 16).iter().map(Scenario::to_json).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_diverge_beyond_the_name() {
        let a: Vec<EnvConfig> = generate(0, 8).into_iter().map(|s| s.env).collect();
        let b: Vec<EnvConfig> = generate(1, 8).into_iter().map(|s| s.env).collect();
        assert_ne!(a, b, "8 samples from different seeds must not coincide");
    }

    #[test]
    fn every_scenario_validates_builds_and_is_uniquely_named() {
        let scenarios = generate(3, 128);
        assert_eq!(scenarios.len(), 128);
        let mut names = std::collections::BTreeSet::new();
        for (i, s) in scenarios.iter().enumerate() {
            s.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", s.name));
            s.build_env()
                .unwrap_or_else(|e| panic!("{} unbuildable: {e}", s.name));
            assert_eq!(s.name, format!("gen-{:016x}-{i:04}", 3), "dense names");
            assert!(names.insert(s.name.clone()), "duplicate name {}", s.name);
            assert!(s.summary.starts_with("generated: "), "{}", s.summary);
        }
    }

    #[test]
    fn single_address_victims_always_get_the_no_access_secret() {
        for s in generate(11, 256) {
            if s.env.victim_addr_s == s.env.victim_addr_e {
                assert!(
                    s.env.victim_no_access_enable,
                    "{}: one-address victim without no-access carries zero bits",
                    s.name
                );
            }
        }
    }

    #[test]
    fn the_whole_space_is_reachable() {
        let scenarios = generate(5, 256);
        let mut two_level = false;
        let mut permuted = false;
        let mut flush = [false; 2];
        let mut monitored = [false; 2];
        let mut policies = std::collections::BTreeSet::new();
        let mut prefetchers = std::collections::BTreeSet::new();
        for s in &scenarios {
            flush[usize::from(s.env.flush_enable)] = true;
            monitored[usize::from(!s.env.detection.is_off())] = true;
            match &s.env.cache {
                CacheSpec::Single(c) => {
                    policies.insert(c.policy.name());
                    prefetchers.insert(format!("{:?}", c.prefetcher));
                    permuted |= matches!(c.mapping, AddressMapping::RandomPermutation { .. });
                }
                CacheSpec::TwoLevel(t) => {
                    two_level = true;
                    policies.insert(t.l2.policy.name());
                    prefetchers.insert(format!("{:?}", t.l2.prefetcher));
                    permuted |= matches!(t.l2.mapping, AddressMapping::RandomPermutation { .. });
                }
                CacheSpec::Hardware(_) => panic!("generator never emits hardware backends"),
            }
        }
        assert!(two_level, "two-level hierarchies must appear");
        assert!(permuted, "permuted mappings must appear");
        assert_eq!(flush, [true; 2], "both flush settings must appear");
        assert_eq!(
            monitored, [true; 2],
            "monitored and unmonitored must appear"
        );
        assert_eq!(policies.len(), 5, "all policies must appear: {policies:?}");
        assert_eq!(prefetchers.len(), 3, "all prefetchers: {prefetchers:?}");
    }

    #[test]
    fn iterator_and_convenience_fn_agree() {
        let via_iter: Vec<Scenario> = ScenarioGenerator::new(9).take(6).collect();
        assert_eq!(via_iter, generate(9, 6));
    }

    #[test]
    #[should_panic(expected = "invalid GenSpace")]
    fn empty_space_panics_at_construction() {
        let _ = ScenarioGenerator::with_space(
            0,
            GenSpace {
                set_counts: vec![],
                ..GenSpace::default()
            },
        );
    }

    #[test]
    fn monitor_slugs_cover_every_variant() {
        assert_eq!(monitor_slug(&MonitorSpec::Off), "off");
        assert_eq!(monitor_slug(&MonitorSpec::strict_miss()), "victim-miss");
        assert_eq!(monitor_slug(&MonitorSpec::cc_hunter()), "autocorr");
        assert_eq!(monitor_slug(&MonitorSpec::Composite(vec![])), "composite");
    }
}
