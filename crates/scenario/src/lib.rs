//! Declarative scenarios for the AutoCAT reproduction.
//!
//! A [`Scenario`] unifies everything one exploration run needs — the cache
//! specification, the environment knobs, the in-loop detection monitor,
//! the victim behavior and the PPO training recipe — in one value that is
//! round-trippable to TOML and JSON files. The built-in [`registry`]
//! carries the paper's Table IV configurations 1–17 ([`table4`]), the
//! Sec. V-D protection schemes ([`defenses`]), the Table V replacement
//! case studies ([`replacement`]) and the Table III hardware profiles
//! ([`hardware`]), so scenario diversity is data, not code edits.
//!
//! # Example: load a scenario file and run it
//!
//! ```no_run
//! use autocat_scenario::Scenario;
//!
//! // Either resolve a built-in by name...
//! let mut scenario = autocat_scenario::lookup("table4-6").unwrap();
//! // ...or load a hand-written TOML/JSON file.
//! // let mut scenario = Scenario::load("my_scenario.toml").unwrap();
//! scenario.train.max_steps = 300_000;
//! let report = scenario.run().expect("valid scenario");
//! println!(
//!     "{}: found {} ({})",
//!     scenario.name, report.sequence_notation, report.category
//! );
//! ```
//!
//! # Example: round-trip a scenario through TOML or JSON
//!
//! Both codecs are first-class: [`Scenario::load`] / [`Scenario::save`]
//! pick by file extension (`.json` is JSON, everything else TOML), and
//! every registry entry round-trips through either.
//!
//! ```
//! let scenario = autocat_scenario::table4(1).unwrap();
//! let toml = scenario.to_toml();
//! let back = autocat_scenario::Scenario::from_toml(&toml).unwrap();
//! assert_eq!(scenario, back);
//!
//! // The JSON path — the format the `sweep` harness uses for scenario
//! // sidecars and checkpoints — round-trips identically.
//! let json = scenario.to_json();
//! let back = autocat_scenario::Scenario::from_json(&json).unwrap();
//! assert_eq!(scenario, back);
//! ```

mod encode;
pub mod generate;
pub mod registry;
pub use autocat_nn::value;

use autocat::{ExplorationReport, Explorer};
use autocat_gym::{CacheGuessingGame, EnvConfig};
use autocat_nn::value::Value;
use autocat_ppo::{Backbone, PpoConfig};
use std::path::Path;

pub use generate::{generate, GenSpace, ScenarioGenerator};
pub use registry::{
    all, defense_autocorr, defense_cyclone_svm, defense_misscount, defense_plcache, defenses,
    hardware, lookup, names, replacement, table4,
};

/// The PPO training recipe attached to a scenario.
#[derive(Clone, Debug, PartialEq)]
pub struct TrainSpec {
    /// RNG seed for network init, rollouts and the environment.
    pub seed: u64,
    /// Environment-step training budget.
    pub max_steps: u64,
    /// Trailing-average-return threshold treated as convergence.
    pub return_threshold: f32,
    /// Evaluation episodes after training — the N behind every per-policy
    /// statistic this scenario reports (`Explorer` accuracy/detection
    /// rate, the sweep report's accuracy/census columns). Overridable on
    /// the bench CLIs with `--eval-episodes`.
    pub eval_episodes: usize,
    /// Policy/value network backbone.
    pub backbone: Backbone,
    /// PPO hyper-parameters. `ppo.num_lanes` is the single source of
    /// truth for the VecEnv rollout width (1 = the bit-for-bit scalar
    /// path).
    pub ppo: PpoConfig,
}

impl Default for TrainSpec {
    /// The recipe validated on the paper's small cache configurations
    /// (matches `Explorer`'s defaults).
    fn default() -> Self {
        Self {
            seed: 0,
            max_steps: 400_000,
            return_threshold: 0.8,
            eval_episodes: 200,
            backbone: Backbone::Mlp {
                hidden: vec![64, 64],
            },
            ppo: PpoConfig::small_env(),
        }
    }
}

/// One named, serializable exploration scenario: environment + training
/// recipe. See the [crate docs](crate) for examples.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Registry/display name (e.g. `table4-6`).
    pub name: String,
    /// Human-readable summary — for Table IV rows, the attack the paper's
    /// agent found there.
    pub summary: String,
    /// Full environment configuration (cache spec, address ranges,
    /// in-loop monitor, rewards, victim behavior).
    pub env: EnvConfig,
    /// PPO training recipe.
    pub train: TrainSpec,
}

impl Scenario {
    /// Creates a scenario with the default training recipe.
    pub fn new(name: impl Into<String>, summary: impl Into<String>, env: EnvConfig) -> Self {
        Self {
            name: name.into(),
            summary: summary.into(),
            env,
            train: TrainSpec::default(),
        }
    }

    /// Validates the environment configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        self.env.validate()
    }

    /// Builds the guessing-game environment this scenario describes.
    ///
    /// # Errors
    ///
    /// Returns an error if the environment configuration is invalid.
    pub fn build_env(&self) -> Result<CacheGuessingGame, String> {
        CacheGuessingGame::new(self.env.clone())
    }

    /// Builds the [`Explorer`] this scenario describes — the single place
    /// trainer construction happens for scenario-driven runs.
    pub fn explorer(&self) -> Explorer {
        // No `.lanes()` override: `train.ppo.num_lanes` governs the
        // rollout width, so the serialized `[train.ppo] num_lanes` key is
        // live configuration.
        Explorer::new(self.env.clone())
            .seed(self.train.seed)
            .max_steps(self.train.max_steps)
            .return_threshold(self.train.return_threshold)
            .eval_episodes(self.train.eval_episodes)
            .backbone(self.train.backbone.clone())
            .ppo(self.train.ppo)
    }

    /// Trains a PPO agent on the scenario, extracts the discovered attack
    /// and evaluates it (the full explore → extract → classify pipeline).
    ///
    /// # Errors
    ///
    /// Returns an error if the environment configuration is invalid.
    pub fn run(&self) -> Result<ExplorationReport, String> {
        self.explorer().run()
    }

    /// Serializes the scenario as TOML.
    pub fn to_toml(&self) -> String {
        value::to_toml(&encode::scenario_to_value(self))
            .expect("scenario encoding is always a table")
    }

    /// Serializes the scenario as JSON.
    pub fn to_json(&self) -> String {
        value::to_json(&encode::scenario_to_value(self))
    }

    /// Encodes the scenario as a [`Value`] table (the structure `to_toml`
    /// and `to_json` serialize). Lets embedders splice a scenario into a
    /// larger document without a serialize/re-parse round trip.
    pub fn to_value(&self) -> Value {
        encode::scenario_to_value(self)
    }

    /// Parses a scenario from TOML text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the syntax error or missing field.
    pub fn from_toml(src: &str) -> Result<Self, String> {
        encode::scenario_from_value(&value::from_toml(src)?)
    }

    /// Parses a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message naming the syntax error or missing field.
    pub fn from_json(src: &str) -> Result<Self, String> {
        encode::scenario_from_value(&value::from_json(src)?)
    }

    /// Loads a scenario file, picking the codec by extension (`.json` is
    /// JSON, everything else TOML).
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        let parsed = if path.extension().is_some_and(|ext| ext == "json") {
            Self::from_json(&text)
        } else {
            Self::from_toml(&text)
        };
        parsed.map_err(|e| format!("parsing {}: {e}", path.display()))
    }

    /// Writes the scenario to a file, picking the codec by extension.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        let text = if path.extension().is_some_and(|ext| ext == "json") {
            self.to_json()
        } else {
            self.to_toml()
        };
        std::fs::write(path, text).map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_round_trips_every_table4_entry() {
        // Satellite requirement: struct → TOML → struct equality for all
        // 17 Table IV registry entries.
        for no in 1..=17 {
            let scenario = table4(no).unwrap();
            let toml = scenario.to_toml();
            let back = Scenario::from_toml(&toml)
                .unwrap_or_else(|e| panic!("row {no} failed to re-parse: {e}\n{toml}"));
            assert_eq!(scenario, back, "row {no} TOML round trip\n{toml}");
        }
    }

    #[test]
    fn json_round_trips_every_registry_scenario() {
        for scenario in all() {
            let json = scenario.to_json();
            let back = Scenario::from_json(&json)
                .unwrap_or_else(|e| panic!("{} failed to re-parse: {e}", scenario.name));
            assert_eq!(scenario, back, "{} JSON round trip", scenario.name);
        }
    }

    #[test]
    fn toml_round_trips_defense_and_hardware_scenarios() {
        // Monitors (incl. SVM weights) and hardware profiles survive the
        // text format too.
        for scenario in defenses()
            .into_iter()
            .chain([hardware(autocat_gym::HardwareProfile::KabylakeL3W8)])
        {
            let toml = scenario.to_toml();
            let back = Scenario::from_toml(&toml)
                .unwrap_or_else(|e| panic!("{} failed: {e}\n{toml}", scenario.name));
            assert_eq!(scenario, back, "{}", scenario.name);
        }
    }

    #[test]
    fn explorer_inherits_the_train_spec() {
        // Explorer's builder state is private; run a tiny budget to prove
        // the wiring end to end instead.
        let mut scenario = table4(1).unwrap();
        scenario.train.max_steps = 2048;
        scenario.train.ppo.horizon = 512;
        scenario.train.ppo.num_lanes = 2;
        let report = scenario.run().expect("valid scenario");
        assert!(report.training_steps >= 2048);
        assert!(!report.sequence.is_empty());
    }

    #[test]
    fn huge_u64_fields_survive_the_text_formats() {
        // Seeds above i64::MAX must not wrap negative in a saved file.
        let mut scenario = table4(1).unwrap();
        scenario.train.seed = u64::MAX;
        scenario.env.cache = {
            let mut cfg = autocat_cache::CacheConfig::direct_mapped(4);
            cfg.policy_seed = i64::MAX as u64 + 7;
            autocat_gym::CacheSpec::Single(cfg)
        };
        let back = Scenario::from_toml(&scenario.to_toml()).unwrap();
        assert_eq!(scenario, back);
        let back = Scenario::from_json(&scenario.to_json()).unwrap();
        assert_eq!(scenario, back);
    }

    #[test]
    fn save_and_load_round_trip_through_files() {
        let dir = std::env::temp_dir().join("autocat-scenario-test");
        std::fs::create_dir_all(&dir).unwrap();
        let scenario = defense_misscount();
        for file in ["s.toml", "s.json"] {
            let path = dir.join(file);
            scenario.save(&path).unwrap();
            let back = Scenario::load(&path).unwrap();
            assert_eq!(scenario, back, "{file}");
        }
    }

    #[test]
    fn invalid_scenario_is_rejected_at_run() {
        let mut scenario = table4(1).unwrap();
        scenario.env.window_size = 1;
        assert!(scenario.validate().is_err());
        assert!(scenario.run().is_err());
    }

    #[test]
    fn malformed_monitor_is_rejected_before_training() {
        // An SVM weight/interval mismatch in a scenario file must surface
        // as a validation error, not a panic on the first cache event.
        let mut scenario = defense_cyclone_svm();
        scenario.env.detection = autocat_detect::MonitorSpec::CycloneSvm {
            w: vec![1.0; 4],
            b: -1.5,
            num_intervals: 8,
            proximity_window: 12,
        };
        let toml = scenario.to_toml();
        let back = Scenario::from_toml(&toml).unwrap();
        assert!(back.validate().is_err());
        assert!(back.run().is_err());
        assert!(back.build_env().is_err());
    }
}
