//! The built-in scenario registry: the paper's Table IV configurations
//! 1–17, the Sec. V-D defense scenarios, the Table V replacement-policy
//! case studies and the Table III hardware profiles.

use crate::encode::profile_slug;
use crate::Scenario;
use autocat_cache::{CacheConfig, PolicyKind, PrefetcherKind, TwoLevelConfig};
use autocat_detect::MonitorSpec;
use autocat_gym::{CacheSpec, EnvConfig, HardwareProfile};

/// The paper's Table IV row `no` (1–17): cache geometry, attacker/victim
/// address ranges and the attack the paper's agent found there.
///
/// Returns `None` outside 1–17.
pub fn table4(no: usize) -> Option<Scenario> {
    let c = |cache: CacheConfig, att: (u64, u64), vic: (u64, u64)| EnvConfig::new(cache, att, vic);
    let (env, expected) = match no {
        1 => (c(CacheConfig::direct_mapped(4), (4, 7), (0, 3)), "PP"),
        2 => {
            let mut e = c(
                CacheConfig::direct_mapped(4).with_prefetcher(PrefetcherKind::NextLine),
                (4, 7),
                (0, 3),
            );
            e.window_size = 20;
            (e, "PP")
        }
        3 => {
            let mut e = c(CacheConfig::direct_mapped(4), (0, 3), (0, 3));
            e.flush_enable = true;
            (e, "FR")
        }
        4 => (
            c(CacheConfig::direct_mapped(4), (0, 7), (0, 3)),
            "ER and PP",
        ),
        5 => {
            let mut e = c(CacheConfig::fully_associative(4), (4, 7), (0, 0));
            e.victim_no_access_enable = true;
            (e, "PP, LRU")
        }
        6 => (EnvConfig::flush_reload_fa4(), "FR, LRU"),
        7 => {
            let mut e = c(CacheConfig::fully_associative(4), (0, 7), (0, 0));
            e.victim_no_access_enable = true;
            (e, "ER, PP, LRU")
        }
        8 => {
            let mut e = c(CacheConfig::fully_associative(4), (0, 3), (0, 3));
            e.flush_enable = true;
            (e, "FR, LRU")
        }
        9 => {
            let mut e = c(CacheConfig::fully_associative(4), (0, 7), (0, 3));
            e.flush_enable = true;
            (e, "FR, LRU")
        }
        10 => {
            let mut e = c(CacheConfig::direct_mapped(8), (0, 7), (0, 7));
            e.flush_enable = true;
            e.window_size = 40;
            (e, "FR")
        }
        11 => {
            let mut e = c(CacheConfig::fully_associative(8), (0, 7), (0, 0));
            e.flush_enable = true;
            e.victim_no_access_enable = true;
            (e, "FR, LRU")
        }
        12 => {
            let mut e = c(CacheConfig::fully_associative(8), (0, 15), (0, 0));
            e.victim_no_access_enable = true;
            e.window_size = 48;
            (e, "ER, PP, LRU")
        }
        13 => {
            let mut e = c(
                CacheConfig::fully_associative(8).with_prefetcher(PrefetcherKind::NextLine),
                (0, 15),
                (0, 0),
            );
            e.victim_no_access_enable = true;
            e.window_size = 48;
            (e, "ER, PP, LRU")
        }
        14 => {
            let mut e = c(
                CacheConfig::fully_associative(8).with_prefetcher(PrefetcherKind::Stream),
                (0, 15),
                (0, 0),
            );
            e.victim_no_access_enable = true;
            e.window_size = 48;
            (e, "ER, PP, LRU")
        }
        15 => (c(CacheConfig::new(4, 2), (4, 11), (0, 3)), "PP"),
        16 => {
            let mut e = c(CacheConfig::new(4, 2), (4, 11), (0, 3));
            e.cache = CacheSpec::TwoLevel(TwoLevelConfig::paper_config16());
            e.window_size = 36;
            (e, "PP")
        }
        17 => {
            let mut e = c(CacheConfig::new(8, 2), (8, 23), (0, 7));
            e.cache = CacheSpec::TwoLevel(TwoLevelConfig::paper_config17());
            e.window_size = 64;
            (e, "PP")
        }
        _ => return None,
    };
    let mut s = Scenario::new(format!("table4-{no}"), expected, env);
    s.train.seed = no as u64;
    Some(s)
}

/// The Table V / Sec. V-C replacement-policy case study for `policy`.
pub fn replacement(policy: PolicyKind) -> Scenario {
    let mut s = Scenario::new(
        format!("replacement-{}", policy.name().to_lowercase()),
        format!("{} replacement-state attack (Table V)", policy.name()),
        EnvConfig::replacement_study(policy),
    );
    s.train.seed = 2;
    s
}

/// Sec. V-D: µarch-statistics (miss-count) detection in the loop — the
/// agent must find an attack that never makes the victim miss.
pub fn defense_misscount() -> Scenario {
    let mut s = Scenario::new(
        "defense-misscount",
        "bypass miss-count detection (expected: LRU-state attack)",
        EnvConfig::replacement_study(PolicyKind::Lru).with_detection(MonitorSpec::strict_miss()),
    );
    s.train.seed = 3;
    s.train.max_steps = 500_000;
    s
}

/// Sec. V-D: CC-Hunter autocorrelation guarding the episode in-loop.
pub fn defense_autocorr() -> Scenario {
    let mut s = Scenario::new(
        "defense-autocorr",
        "bypass CC-Hunter autocorrelation detection",
        EnvConfig::prime_probe_dm4().with_detection(MonitorSpec::cc_hunter()),
    );
    s.train.seed = 4;
    s
}

/// Sec. V-D: Cyclone cyclic-interference features through a linear SVM.
///
/// The embedded weights are a fixed stand-in classifier (uniform weights,
/// threshold ≈ 2 cyclic ping-pongs per trace) rather than one freshly
/// trained on benign traces — scenario files must be self-contained.
pub fn defense_cyclone_svm() -> Scenario {
    let mut s = Scenario::new(
        "defense-cyclone-svm",
        "bypass Cyclone SVM detection",
        EnvConfig::prime_probe_dm4().with_detection(MonitorSpec::CycloneSvm {
            w: vec![1.0; 8],
            b: -1.5,
            num_intervals: 8,
            proximity_window: 12,
        }),
    );
    s.train.seed = 5;
    s
}

/// Sec. V-D / Table VII: the PL cache locking every victim line.
pub fn defense_plcache() -> Scenario {
    let mut s = Scenario::new(
        "defense-plcache",
        "PL cache with locked victim lines (expected: no attack)",
        EnvConfig::pl_cache_study(true),
    );
    s.train.seed = 6;
    s
}

/// All four Sec. V-D protection-scheme scenarios.
pub fn defenses() -> Vec<Scenario> {
    vec![
        defense_misscount(),
        defense_autocorr(),
        defense_cyclone_svm(),
        defense_plcache(),
    ]
}

/// The Table III blackbox-hardware scenario for `profile`.
pub fn hardware(profile: HardwareProfile) -> Scenario {
    let (s, e) = profile.attacker_range();
    let mut env = EnvConfig::new(
        CacheConfig::fully_associative(profile.ways()),
        (s, e),
        (0, 0),
    );
    env.cache = CacheSpec::Hardware(profile);
    env.victim_no_access_enable = true;
    env.rewards.step = -0.005; // the paper's hardware setting
    let mut sc = Scenario::new(
        format!("hardware-{}", profile_slug(profile)),
        format!(
            "{} {} blackbox ({} ways, policy {})",
            profile.cpu(),
            profile.level(),
            profile.ways(),
            profile.policy_label()
        ),
        env,
    );
    sc.train.seed = 7;
    sc
}

/// Every built-in scenario: Table IV 1–17, the replacement case studies,
/// the Sec. V-D defenses and the Table III hardware profiles.
pub fn all() -> Vec<Scenario> {
    let mut scenarios: Vec<Scenario> = (1..=17).filter_map(table4).collect();
    for policy in [PolicyKind::Lru, PolicyKind::Plru, PolicyKind::Rrip] {
        scenarios.push(replacement(policy));
    }
    scenarios.extend(defenses());
    for profile in HardwareProfile::table3_rows() {
        scenarios.push(hardware(profile));
    }
    scenarios
}

/// Resolves a scenario by registry name (e.g. `table4-6`,
/// `defense-misscount`, `replacement-plru`, `hardware-skylake-l2`).
pub fn lookup(name: &str) -> Option<Scenario> {
    all().into_iter().find(|s| s.name == name)
}

/// All registry names, in listing order.
pub fn names() -> Vec<String> {
    all().into_iter().map(|s| s.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_resolves_all_17_rows_and_nothing_else() {
        for no in 1..=17 {
            let s = table4(no).unwrap_or_else(|| panic!("row {no} missing"));
            assert_eq!(s.name, format!("table4-{no}"));
            assert!(s.env.validate().is_ok(), "row {no} must validate");
            assert!(!s.summary.is_empty());
        }
        assert!(table4(0).is_none());
        assert!(table4(18).is_none());
    }

    #[test]
    fn registry_names_are_unique_and_resolvable() {
        let names = names();
        let mut deduped = names.clone();
        deduped.sort();
        deduped.dedup();
        assert_eq!(deduped.len(), names.len(), "duplicate registry names");
        for name in &names {
            assert!(lookup(name).is_some(), "{name} must resolve");
        }
        assert!(lookup("no-such-scenario").is_none());
    }

    #[test]
    fn every_registry_scenario_validates_and_builds() {
        for s in all() {
            assert!(s.env.validate().is_ok(), "{} must validate", s.name);
            assert!(s.build_env().is_ok(), "{} must build", s.name);
        }
    }

    #[test]
    fn defense_scenarios_carry_monitors() {
        for s in defenses() {
            if s.name == "defense-plcache" {
                assert!(s.env.pl_lock_victim, "PL cache locks victim lines");
            } else {
                assert!(
                    !s.env.detection.is_off(),
                    "{} must run a monitor in-loop",
                    s.name
                );
            }
        }
    }

    #[test]
    fn two_level_rows_use_hierarchies() {
        for no in [16, 17] {
            let s = table4(no).unwrap();
            assert!(matches!(s.env.cache, CacheSpec::TwoLevel(_)), "row {no}");
        }
    }
}
