//! The single-level cache model.

use crate::config::CacheConfig;
use crate::event::{CacheEvent, Domain};
use crate::mapping::ResolvedMapping;
use crate::policy::SetPolicy;
use crate::prefetch::PrefetchState;
use serde::{Deserialize, Serialize};

/// Result of a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit in the cache.
    pub hit: bool,
    /// Set index the address mapped to.
    pub set: usize,
    /// `(address, owner)` of a line evicted by this access, if any.
    pub evicted: Option<(u64, Domain)>,
    /// Latency of the access in cycles (from [`CacheConfig`]).
    pub latency: u32,
}

/// Aggregate counters, including per-domain miss counts used by the
/// µarch-statistics detector (Sec. V-D).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total demand hits.
    pub hits: u64,
    /// Total demand misses.
    pub misses: u64,
    /// Demand misses issued by the victim program.
    pub victim_misses: u64,
    /// Demand misses issued by the attack program.
    pub attacker_misses: u64,
    /// Lines evicted (all causes).
    pub evictions: u64,
    /// Prefetch fills issued.
    pub prefetches: u64,
    /// Flushes that removed a present line.
    pub flushes: u64,
}

impl CacheStats {
    /// Adds `other`'s counters into `self`, so multi-lane / multi-level /
    /// multi-scenario runs can aggregate statistics without field-by-field
    /// code in callers — the two-level backend merges its L1s and L2 this
    /// way, whether the run came from a TOML scenario file, a JSON one, or
    /// a checkpointed sweep. Merging a `CacheStats::default()` is the
    /// identity:
    ///
    /// ```
    /// use autocat_cache::CacheStats;
    ///
    /// let mut total = CacheStats { hits: 3, misses: 1, ..CacheStats::default() };
    /// total.merge(&CacheStats { hits: 2, evictions: 5, ..CacheStats::default() });
    /// total.merge(&CacheStats::default()); // identity
    /// assert_eq!((total.hits, total.misses, total.evictions), (5, 1, 5));
    /// ```
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.victim_misses += other.victim_misses;
        self.attacker_misses += other.attacker_misses;
        self.evictions += other.evictions;
        self.prefetches += other.prefetches;
        self.flushes += other.flushes;
    }
}

#[derive(Clone, Debug)]
struct CacheSetState {
    tags: Vec<Option<u64>>,
    owner: Vec<Domain>,
    locked: Vec<bool>,
    policy: SetPolicy,
}

impl CacheSetState {
    fn new(config: &CacheConfig, set_index: usize) -> Self {
        Self {
            tags: vec![None; config.num_ways],
            owner: vec![Domain::Attacker; config.num_ways],
            locked: vec![false; config.num_ways],
            policy: SetPolicy::new(
                config.policy,
                config.num_ways,
                // Distinct stream per set so random replacement is not
                // correlated across sets.
                config.policy_seed.wrapping_add(set_index as u64),
            ),
        }
    }

    fn find(&self, addr: u64) -> Option<usize> {
        self.tags.iter().position(|&t| t == Some(addr))
    }

    fn invalid_unlocked_way(&self) -> Option<usize> {
        (0..self.tags.len()).find(|&w| self.tags[w].is_none() && !self.locked[w])
    }
}

/// A single-level set-associative cache with replacement policy, optional
/// prefetcher, PL-cache locking and an event log.
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    mapping: ResolvedMapping,
    sets: Vec<CacheSetState>,
    prefetcher: PrefetchState,
    /// Address-space wrap for prefetches (see [`Cache::set_prefetch_wrap`]).
    prefetch_wrap: Option<u64>,
    events: Vec<CacheEvent>,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache from a configuration.
    pub fn new(config: CacheConfig) -> Self {
        let mapping = ResolvedMapping::resolve(&config.mapping);
        let sets = (0..config.num_sets)
            .map(|s| CacheSetState::new(&config, s))
            .collect();
        let prefetcher = PrefetchState::new(config.prefetcher);
        Self {
            config,
            mapping,
            sets,
            prefetcher,
            prefetch_wrap: None,
            events: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// The configuration this cache was built from.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Bounds the prefetcher's target address space: prefetched addresses
    /// wrap modulo `wrap` (the paper's traces wrap within the combined
    /// attacker/victim address range).
    pub fn set_prefetch_wrap(&mut self, wrap: Option<u64>) {
        self.prefetch_wrap = wrap;
    }

    /// Set index for an address under the configured mapping.
    pub fn set_index(&self, addr: u64) -> usize {
        self.mapping.set_index(addr, self.config.num_sets)
    }

    /// Performs a demand access by `domain`, updating replacement state,
    /// filling on a miss and running the prefetcher.
    pub fn access(&mut self, addr: u64, domain: Domain) -> AccessResult {
        let result = self.demand_access(addr, domain);
        if let Some(pf_addr) = self.prefetcher.observe(addr, self.prefetch_wrap) {
            self.prefetch_fill(pf_addr, domain);
        }
        result
    }

    fn demand_access(&mut self, addr: u64, domain: Domain) -> AccessResult {
        let set_idx = self.set_index(addr);
        let hit = self.sets[set_idx].find(addr).is_some();
        let mut evicted = None;
        if hit {
            let way = self.sets[set_idx].find(addr).expect("hit implies present");
            self.sets[set_idx].policy.on_hit(way);
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            match domain {
                Domain::Victim => self.stats.victim_misses += 1,
                Domain::Attacker => self.stats.attacker_misses += 1,
                Domain::Prefetcher => {}
            }
            evicted = self.fill(set_idx, addr, domain, domain);
        }
        self.events.push(CacheEvent::Access {
            domain,
            addr,
            set: set_idx,
            hit,
        });
        AccessResult {
            hit,
            set: set_idx,
            evicted,
            latency: if hit {
                self.config.hit_latency
            } else {
                self.config.miss_latency
            },
        }
    }

    /// Fills `addr` into its set on behalf of `owner`, attributing any
    /// eviction to `evictor`. Returns the evicted `(addr, owner)` if any.
    fn fill(
        &mut self,
        set_idx: usize,
        addr: u64,
        owner: Domain,
        evictor: Domain,
    ) -> Option<(u64, Domain)> {
        let way = match self.sets[set_idx].invalid_unlocked_way() {
            Some(w) => w,
            None => {
                let locked = self.sets[set_idx].locked.clone();
                self.sets[set_idx].policy.victim(&locked)
            }
        };
        let mut evicted = None;
        if let Some(old) = self.sets[set_idx].tags[way] {
            let old_owner = self.sets[set_idx].owner[way];
            self.stats.evictions += 1;
            self.events.push(CacheEvent::Eviction {
                victim_domain: old_owner,
                evictor_domain: evictor,
                evicted_addr: old,
                incoming_addr: addr,
                set: set_idx,
            });
            evicted = Some((old, old_owner));
        }
        self.sets[set_idx].tags[way] = Some(addr);
        self.sets[set_idx].owner[way] = owner;
        self.sets[set_idx].policy.on_fill(way);
        evicted
    }

    fn prefetch_fill(&mut self, addr: u64, on_behalf_of: Domain) {
        let set_idx = self.set_index(addr);
        if self.sets[set_idx].find(addr).is_some() {
            return; // already present: prefetch is a no-op
        }
        if self.sets[set_idx].invalid_unlocked_way().is_none()
            && self.sets[set_idx].locked.iter().all(|&l| l)
        {
            return; // fully locked set: drop the prefetch
        }
        self.stats.prefetches += 1;
        self.fill(set_idx, addr, on_behalf_of, Domain::Prefetcher);
    }

    /// Checks whether `addr` is present without changing any state.
    pub fn probe(&self, addr: u64) -> bool {
        let set_idx = self.set_index(addr);
        self.sets[set_idx].find(addr).is_some()
    }

    /// Flushes `addr` (like `clflush`). Returns whether a line was removed.
    pub fn flush(&mut self, addr: u64, domain: Domain) -> bool {
        let set_idx = self.set_index(addr);
        let present = if let Some(way) = self.sets[set_idx].find(addr) {
            self.sets[set_idx].tags[way] = None;
            self.sets[set_idx].locked[way] = false;
            self.sets[set_idx].policy.on_invalidate(way);
            self.stats.flushes += 1;
            true
        } else {
            false
        };
        self.events.push(CacheEvent::Flush {
            domain,
            addr,
            present,
        });
        present
    }

    /// Invalidates `addr` without logging a flush event (used by the
    /// hierarchy for back-invalidation). Returns whether a line was removed.
    pub fn invalidate_silent(&mut self, addr: u64) -> bool {
        let set_idx = self.set_index(addr);
        if let Some(way) = self.sets[set_idx].find(addr) {
            self.sets[set_idx].tags[way] = None;
            self.sets[set_idx].locked[way] = false;
            self.sets[set_idx].policy.on_invalidate(way);
            true
        } else {
            false
        }
    }

    /// PL cache: fills `addr` (if absent) and locks it so it can never be
    /// evicted. Returns `false` if the set had no unlocked way to fill into.
    pub fn lock_line(&mut self, addr: u64, owner: Domain) -> bool {
        let set_idx = self.set_index(addr);
        if self.sets[set_idx].find(addr).is_none() {
            if self.sets[set_idx].invalid_unlocked_way().is_none()
                && self.sets[set_idx].locked.iter().all(|&l| l)
            {
                return false;
            }
            self.fill(set_idx, addr, owner, owner);
        }
        let way = self.sets[set_idx].find(addr).expect("just filled");
        self.sets[set_idx].locked[way] = true;
        true
    }

    /// PL cache: unlocks `addr` if present and locked. Returns whether a
    /// lock was released.
    pub fn unlock_line(&mut self, addr: u64) -> bool {
        let set_idx = self.set_index(addr);
        if let Some(way) = self.sets[set_idx].find(addr) {
            let was = self.sets[set_idx].locked[way];
            self.sets[set_idx].locked[way] = false;
            was
        } else {
            false
        }
    }

    /// Returns whether `addr` is present and locked.
    pub fn is_locked(&self, addr: u64) -> bool {
        let set_idx = self.set_index(addr);
        self.sets[set_idx]
            .find(addr)
            .map(|w| self.sets[set_idx].locked[w])
            .unwrap_or(false)
    }

    /// Contents of a set as `(address, owner)` per way (None = invalid).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn set_contents(&self, set: usize) -> Vec<Option<(u64, Domain)>> {
        assert!(set < self.config.num_sets, "set {set} out of range");
        let s = &self.sets[set];
        (0..s.tags.len())
            .map(|w| s.tags[w].map(|t| (t, s.owner[w])))
            .collect()
    }

    /// LRU ages of a set's ways (0 = MRU), when the policy tracks true LRU.
    pub fn lru_ages(&self, set: usize) -> Option<Vec<usize>> {
        self.sets.get(set)?.policy.lru_ages()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// The event log accumulated so far.
    pub fn events(&self) -> &[CacheEvent] {
        &self.events
    }

    /// Drains and returns the event log.
    pub fn drain_events(&mut self) -> Vec<CacheEvent> {
        std::mem::take(&mut self.events)
    }

    /// Reseeds every set's replacement-policy RNG (random replacement
    /// only; deterministic policies ignore it), deriving a distinct
    /// per-set stream the same way construction derives one from
    /// `policy_seed`. Exposed through
    /// [`CacheBackend::reseed`](crate::CacheBackend::reseed) so episode
    /// resets make the cache's full state a function of the episode RNG
    /// stream.
    pub fn reseed_policy(&mut self, seed: u64) {
        for (s, set) in self.sets.iter_mut().enumerate() {
            set.policy.reseed(seed.wrapping_add(s as u64));
        }
    }

    /// Clears contents, statistics, events and prefetcher state, keeping
    /// the configuration (and the random-policy RNG stream).
    pub fn reset(&mut self) {
        for (s, set) in self.sets.iter_mut().enumerate() {
            let fresh = CacheSetState::new(&self.config, s);
            // Preserve the random policy's RNG position across resets
            // (environments reseed it explicitly via `reseed_policy`
            // before resetting); deterministic policies are stateless
            // after reset anyway.
            let policy = match (&set.policy, fresh.policy) {
                (SetPolicy::Random(_), SetPolicy::Random(_)) => set.policy.clone(),
                (_, f) => f,
            };
            set.tags = vec![None; self.config.num_ways];
            set.owner = vec![Domain::Attacker; self.config.num_ways];
            set.locked = vec![false; self.config.num_ways];
            set.policy = policy;
        }
        self.prefetcher.reset();
        self.events.clear();
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyKind, PrefetcherKind};
    use crate::mapping::AddressMapping;

    #[test]
    fn stats_merge_sums_counters_and_preserves_default_identity() {
        let mut a = CacheStats {
            hits: 3,
            misses: 2,
            victim_misses: 1,
            attacker_misses: 1,
            evictions: 4,
            prefetches: 5,
            flushes: 6,
        };
        let b = CacheStats {
            hits: 10,
            misses: 20,
            victim_misses: 7,
            attacker_misses: 13,
            evictions: 1,
            prefetches: 0,
            flushes: 2,
        };
        let before = a;
        // Default is the merge identity.
        a.merge(&CacheStats::default());
        assert_eq!(a, before);
        a.merge(&b);
        assert_eq!(
            a,
            CacheStats {
                hits: 13,
                misses: 22,
                victim_misses: 8,
                attacker_misses: 14,
                evictions: 5,
                prefetches: 5,
                flushes: 8,
            }
        );
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(CacheConfig::fully_associative(2));
        assert!(!c.access(1, Domain::Attacker).hit);
        assert!(c.access(1, Domain::Attacker).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = Cache::new(CacheConfig::direct_mapped(4));
        c.access(0, Domain::Victim);
        let r = c.access(4, Domain::Attacker); // same set (4 % 4 == 0)
        assert_eq!(r.evicted, Some((0, Domain::Victim)));
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn lru_eviction_order_in_fa_cache() {
        let mut c = Cache::new(CacheConfig::fully_associative(4).with_policy(PolicyKind::Lru));
        for a in 0..4 {
            c.access(a, Domain::Attacker);
        }
        c.access(0, Domain::Attacker); // 0 becomes MRU; LRU is 1
        let r = c.access(9, Domain::Attacker);
        assert_eq!(r.evicted, Some((1, Domain::Attacker)));
    }

    #[test]
    fn flush_removes_line_and_counts() {
        let mut c = Cache::new(CacheConfig::fully_associative(2));
        c.access(5, Domain::Attacker);
        assert!(c.flush(5, Domain::Attacker));
        assert!(!c.probe(5));
        assert!(!c.flush(5, Domain::Attacker));
        assert_eq!(c.stats().flushes, 1);
    }

    #[test]
    fn locked_lines_survive_conflict_pressure() {
        let mut c = Cache::new(CacheConfig::fully_associative(2).with_policy(PolicyKind::Lru));
        assert!(c.lock_line(0, Domain::Victim));
        for a in 10..20 {
            c.access(a, Domain::Attacker);
        }
        assert!(c.probe(0), "locked line must never be evicted");
        assert!(c.is_locked(0));
    }

    #[test]
    fn locked_line_hit_still_updates_replacement_state() {
        // The PL-cache attack (Sec. V-D) relies on the victim's hit on a
        // locked line changing the LRU state.
        let mut c = Cache::new(CacheConfig::fully_associative(3).with_policy(PolicyKind::Lru));
        c.lock_line(0, Domain::Victim);
        c.access(1, Domain::Attacker);
        c.access(2, Domain::Attacker);
        // Ages: 0 oldest among unlocked? ways hold [0L, 1, 2]; victim hit:
        c.access(0, Domain::Victim);
        // Now LRU among unlocked is 1.
        let r = c.access(3, Domain::Attacker);
        assert_eq!(r.evicted, Some((1, Domain::Attacker)));
    }

    #[test]
    fn unlock_allows_eviction_again() {
        let mut c = Cache::new(CacheConfig::fully_associative(1));
        c.lock_line(0, Domain::Victim);
        assert!(c.unlock_line(0));
        let r = c.access(1, Domain::Attacker);
        assert_eq!(r.evicted, Some((0, Domain::Victim)));
    }

    #[test]
    fn lock_fails_when_set_fully_locked() {
        let mut c = Cache::new(CacheConfig::fully_associative(2));
        assert!(c.lock_line(0, Domain::Victim));
        assert!(c.lock_line(1, Domain::Victim));
        assert!(!c.lock_line(2, Domain::Victim));
    }

    #[test]
    fn next_line_prefetcher_brings_in_neighbor() {
        let cfg = CacheConfig::direct_mapped(4).with_prefetcher(PrefetcherKind::NextLine);
        let mut c = Cache::new(cfg);
        c.access(1, Domain::Attacker);
        assert!(c.probe(2), "next-line prefetch of 2 expected");
        assert_eq!(c.stats().prefetches, 1);
    }

    #[test]
    fn prefetch_wrap_follows_address_space() {
        let cfg = CacheConfig::direct_mapped(4).with_prefetcher(PrefetcherKind::NextLine);
        let mut c = Cache::new(cfg);
        c.set_prefetch_wrap(Some(8));
        c.access(7, Domain::Attacker);
        assert!(c.probe(0), "prefetch of 7+1 wraps to 0");
    }

    #[test]
    fn eviction_event_records_domains() {
        let mut c = Cache::new(CacheConfig::direct_mapped(2));
        c.access(0, Domain::Victim);
        c.access(2, Domain::Attacker); // evicts victim's 0
        let conflicts: Vec<_> = c
            .events()
            .iter()
            .filter_map(|e| e.as_conflict_miss())
            .collect();
        assert_eq!(conflicts, vec![(Domain::Victim, Domain::Attacker)]);
    }

    #[test]
    fn victim_miss_counter_tracks_domain() {
        let mut c = Cache::new(CacheConfig::direct_mapped(2));
        c.access(0, Domain::Victim);
        c.access(1, Domain::Attacker);
        c.access(2, Domain::Victim);
        assert_eq!(c.stats().victim_misses, 2);
        assert_eq!(c.stats().attacker_misses, 1);
    }

    #[test]
    fn reset_clears_contents_and_stats() {
        let mut c = Cache::new(CacheConfig::fully_associative(2));
        c.access(0, Domain::Attacker);
        c.reset();
        assert!(!c.probe(0));
        assert_eq!(c.stats().misses, 0);
        assert!(c.events().is_empty());
    }

    #[test]
    fn random_mapping_still_resolves_all_addresses() {
        let cfg = CacheConfig::new(4, 2).with_mapping(AddressMapping::RandomPermutation {
            seed: 5,
            address_space: 16,
        });
        let mut c = Cache::new(cfg);
        for a in 0..16 {
            c.access(a, Domain::Attacker);
            assert!(c.probe(a));
        }
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = Cache::new(CacheConfig::fully_associative(2).with_policy(PolicyKind::Lru));
        c.access(0, Domain::Attacker);
        c.access(1, Domain::Attacker);
        // Probing 0 must not refresh it.
        assert!(c.probe(0));
        let r = c.access(2, Domain::Attacker);
        assert_eq!(r.evicted, Some((0, Domain::Attacker)));
    }

    #[test]
    fn latency_reflects_hit_miss() {
        let mut c = Cache::new(CacheConfig::fully_associative(2).with_latencies(4, 40));
        assert_eq!(c.access(0, Domain::Attacker).latency, 40);
        assert_eq!(c.access(0, Domain::Attacker).latency, 4);
    }
}
