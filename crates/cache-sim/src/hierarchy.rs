//! Two-level cache hierarchy: private L1s and a shared inclusive L2
//! (configs 16 and 17 of Table IV).

use crate::cache::Cache;
use crate::config::CacheConfig;
use crate::event::Domain;
use serde::{Deserialize, Serialize};

/// Configuration of a [`TwoLevelCache`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwoLevelConfig {
    /// Number of cores (each gets a private L1).
    pub num_cores: usize,
    /// Per-core private L1 configuration.
    pub l1: CacheConfig,
    /// Shared inclusive L2 configuration.
    pub l2: CacheConfig,
}

impl TwoLevelConfig {
    /// The paper's config 16: two cores with 4-set direct-mapped L1s and a
    /// shared inclusive 2-way 4-set L2.
    pub fn paper_config16() -> Self {
        Self {
            num_cores: 2,
            l1: CacheConfig::direct_mapped(4).with_latencies(4, 12),
            l2: CacheConfig::new(4, 2).with_latencies(12, 40),
        }
    }

    /// The paper's config 17: like config 16 but with a 2-way 8-set L2.
    pub fn paper_config17() -> Self {
        Self {
            num_cores: 2,
            l1: CacheConfig::direct_mapped(4).with_latencies(4, 12),
            l2: CacheConfig::new(8, 2).with_latencies(12, 40),
        }
    }
}

/// Result of an access through the hierarchy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HierarchyResult {
    /// Hit in the core's private L1.
    pub l1_hit: bool,
    /// Hit in the shared L2 (only meaningful when `l1_hit` is false).
    pub l2_hit: bool,
    /// Total latency in cycles.
    pub latency: u32,
}

impl HierarchyResult {
    /// Whether the access hit anywhere in the hierarchy.
    pub fn hit(&self) -> bool {
        self.l1_hit || self.l2_hit
    }
}

/// A two-level hierarchy with private L1 caches and a shared *inclusive* L2:
/// evicting a line from L2 back-invalidates it from every L1, which is the
/// mechanism the cross-core prime+probe attacks in Table IV exploit.
#[derive(Clone, Debug)]
pub struct TwoLevelCache {
    config: TwoLevelConfig,
    l1s: Vec<Cache>,
    l2: Cache,
}

impl TwoLevelCache {
    /// Creates an empty hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_cores` is zero.
    pub fn new(config: TwoLevelConfig) -> Self {
        assert!(config.num_cores > 0, "need at least one core");
        let l1s = (0..config.num_cores)
            .map(|_| Cache::new(config.l1.clone()))
            .collect();
        let l2 = Cache::new(config.l2.clone());
        Self { config, l1s, l2 }
    }

    /// The hierarchy configuration.
    pub fn config(&self) -> &TwoLevelConfig {
        &self.config
    }

    /// Performs an access from `core` by `domain`.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: usize, addr: u64, domain: Domain) -> HierarchyResult {
        assert!(core < self.config.num_cores, "core {core} out of range");
        let l1_result = self.l1s[core].access(addr, domain);
        if l1_result.hit {
            return HierarchyResult {
                l1_hit: true,
                l2_hit: false,
                latency: self.config.l1.hit_latency,
            };
        }
        let l2_result = self.l2.access(addr, domain);
        // Inclusive L2: a line evicted from L2 must leave all L1s too.
        if let Some((evicted_addr, _)) = l2_result.evicted {
            for l1 in &mut self.l1s {
                l1.invalidate_silent(evicted_addr);
            }
        }
        let latency = if l2_result.hit {
            self.config.l2.hit_latency
        } else {
            self.config.l2.miss_latency
        };
        HierarchyResult {
            l1_hit: false,
            l2_hit: l2_result.hit,
            latency,
        }
    }

    /// Flushes `addr` from the whole hierarchy (all L1s and the L2).
    pub fn flush(&mut self, addr: u64, domain: Domain) -> bool {
        let mut present = false;
        for l1 in &mut self.l1s {
            present |= l1.invalidate_silent(addr);
        }
        present |= self.l2.flush(addr, domain);
        present
    }

    /// Checks presence in the shared L2.
    pub fn probe_l2(&self, addr: u64) -> bool {
        self.l2.probe(addr)
    }

    /// Checks presence in `core`'s L1.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn probe_l1(&self, core: usize, addr: u64) -> bool {
        self.l1s[core].probe(addr)
    }

    /// Core `core`'s private L1 (for event/statistics inspection).
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn l1(&self, core: usize) -> &Cache {
        assert!(core < self.config.num_cores, "core {core} out of range");
        &self.l1s[core]
    }

    /// The shared L2 (for event/statistics inspection).
    pub fn l2(&self) -> &Cache {
        &self.l2
    }

    /// Mutable access to the shared L2 (e.g. to drain events).
    pub fn l2_mut(&mut self) -> &mut Cache {
        &mut self.l2
    }

    /// Clears all levels.
    pub fn reset(&mut self) {
        for l1 in &mut self.l1s {
            l1.reset();
        }
        self.l2.reset();
    }

    /// Reseeds the replacement-policy RNGs of every level (random
    /// replacement only), deriving a distinct stream per cache. See
    /// [`Cache::reseed_policy`].
    pub fn reseed_policy(&mut self, seed: u64) {
        for (core, l1) in self.l1s.iter_mut().enumerate() {
            // Offset by a large odd stride so per-set streams (seed + set)
            // of different caches cannot collide for realistic set counts.
            l1.reseed_policy(seed.wrapping_add((core as u64 + 1).wrapping_mul(0x9E37_79B9)));
        }
        self.l2.reseed_policy(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> TwoLevelCache {
        TwoLevelCache::new(TwoLevelConfig::paper_config16())
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = hierarchy();
        let first = h.access(0, 5, Domain::Attacker);
        assert!(!first.hit());
        let second = h.access(0, 5, Domain::Attacker);
        assert!(second.l1_hit);
        assert_eq!(second.latency, 4);
    }

    #[test]
    fn cross_core_l2_hit() {
        let mut h = hierarchy();
        h.access(0, 5, Domain::Victim);
        // Other core misses its L1 but hits shared L2.
        let r = h.access(1, 5, Domain::Attacker);
        assert!(!r.l1_hit);
        assert!(r.l2_hit);
        assert_eq!(r.latency, 12);
    }

    #[test]
    fn inclusive_eviction_back_invalidates_l1() {
        let mut h = hierarchy();
        // L2 is 2-way 4-set: fill set 0 of L2 from core 1 with addr 0 and 4,
        // then force an eviction with addr 8 and check core-0's L1 copy dies.
        h.access(0, 0, Domain::Victim); // victim holds 0 in its L1 and L2
        h.access(1, 4, Domain::Attacker);
        h.access(1, 8, Domain::Attacker); // evicts 0 from L2 (LRU)
        assert!(!h.probe_l2(0));
        assert!(
            !h.probe_l1(0, 0),
            "inclusion must back-invalidate L1 copies"
        );
        // Victim's re-access now misses all the way.
        let r = h.access(0, 0, Domain::Victim);
        assert!(!r.hit());
    }

    #[test]
    fn flush_clears_all_levels() {
        let mut h = hierarchy();
        h.access(0, 3, Domain::Victim);
        assert!(h.flush(3, Domain::Attacker));
        assert!(!h.probe_l2(3));
        assert!(!h.probe_l1(0, 3));
    }

    #[test]
    fn private_l1_isolation() {
        let mut h = hierarchy();
        h.access(0, 2, Domain::Victim);
        assert!(h.probe_l1(0, 2));
        assert!(!h.probe_l1(1, 2), "other core's L1 must stay cold");
    }

    #[test]
    fn reset_empties_hierarchy() {
        let mut h = hierarchy();
        h.access(0, 1, Domain::Victim);
        h.reset();
        assert!(!h.probe_l2(1));
        assert!(!h.probe_l1(0, 1));
    }

    #[test]
    #[should_panic(expected = "core 5 out of range")]
    fn bad_core_panics() {
        let mut h = hierarchy();
        let _ = h.access(5, 0, Domain::Attacker);
    }
}
