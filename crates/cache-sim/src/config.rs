//! Cache configuration (the `Cache configs` block of the paper's Table II).

use crate::mapping::AddressMapping;
use serde::{Deserialize, Serialize};

/// Replacement policy selection (paper Sec. IV-A implements LRU, random,
/// PLRU and RRIP; NRU is added as an "undocumented" policy for the simulated
/// real-hardware backend).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// True least-recently-used with full age ordering.
    Lru,
    /// Tree-based pseudo-LRU.
    Plru,
    /// Static re-reference interval prediction (2-bit SRRIP).
    Rrip,
    /// Not-recently-used (one reference bit per line).
    Nru,
    /// Uniform random victim selection.
    Random,
}

impl PolicyKind {
    /// All deterministic policies (used by the Table V sweep).
    pub fn deterministic() -> [PolicyKind; 4] {
        [
            PolicyKind::Lru,
            PolicyKind::Plru,
            PolicyKind::Rrip,
            PolicyKind::Nru,
        ]
    }

    /// Human-readable name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Plru => "PLRU",
            PolicyKind::Rrip => "RRIP",
            PolicyKind::Nru => "NRU",
            PolicyKind::Random => "random",
        }
    }
}

/// Hardware prefetcher selection (configs 2, 13, 14 of Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum PrefetcherKind {
    /// No prefetching.
    #[default]
    None,
    /// Next-line prefetcher: every demand access prefetches `addr + 1`.
    NextLine,
    /// Stream prefetcher: detects ascending streams and prefetches ahead.
    Stream,
}

/// Configuration of a single cache (one level).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Number of sets (`num_blocks / num_ways`).
    pub num_sets: usize,
    /// Associativity.
    pub num_ways: usize,
    /// Replacement policy.
    pub policy: PolicyKind,
    /// Prefetcher attached to this cache.
    pub prefetcher: PrefetcherKind,
    /// Address-to-set mapping.
    pub mapping: AddressMapping,
    /// Seed for the random replacement policy (ignored by deterministic
    /// policies).
    pub policy_seed: u64,
    /// Access latency in cycles on a hit (used by the covert-channel model).
    pub hit_latency: u32,
    /// Access latency in cycles on a miss.
    pub miss_latency: u32,
}

impl CacheConfig {
    /// Creates a config with LRU replacement, no prefetcher and a direct
    /// (modulo) mapping.
    ///
    /// # Panics
    ///
    /// Panics if `num_sets` or `num_ways` is zero.
    pub fn new(num_sets: usize, num_ways: usize) -> Self {
        assert!(num_sets > 0, "num_sets must be positive");
        assert!(num_ways > 0, "num_ways must be positive");
        Self {
            num_sets,
            num_ways,
            policy: PolicyKind::Lru,
            prefetcher: PrefetcherKind::None,
            mapping: AddressMapping::Direct,
            policy_seed: 0,
            hit_latency: 4,
            miss_latency: 40,
        }
    }

    /// A direct-mapped cache with `num_sets` sets (1 way each).
    pub fn direct_mapped(num_sets: usize) -> Self {
        Self::new(num_sets, 1)
    }

    /// A fully-associative cache with `num_ways` ways (1 set).
    pub fn fully_associative(num_ways: usize) -> Self {
        Self::new(1, num_ways)
    }

    /// Total number of cache blocks.
    pub fn num_blocks(&self) -> usize {
        self.num_sets * self.num_ways
    }

    /// Sets the replacement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the prefetcher.
    pub fn with_prefetcher(mut self, prefetcher: PrefetcherKind) -> Self {
        self.prefetcher = prefetcher;
        self
    }

    /// Sets the address mapping.
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the seed used by the random replacement policy.
    pub fn with_policy_seed(mut self, seed: u64) -> Self {
        self.policy_seed = seed;
        self
    }

    /// Sets hit/miss latencies in cycles.
    pub fn with_latencies(mut self, hit: u32, miss: u32) -> Self {
        self.hit_latency = hit;
        self.miss_latency = miss;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_expected_geometry() {
        let dm = CacheConfig::direct_mapped(8);
        assert_eq!(dm.num_sets, 8);
        assert_eq!(dm.num_ways, 1);
        assert_eq!(dm.num_blocks(), 8);
        let fa = CacheConfig::fully_associative(4);
        assert_eq!(fa.num_sets, 1);
        assert_eq!(fa.num_ways, 4);
    }

    #[test]
    #[should_panic(expected = "num_ways must be positive")]
    fn zero_ways_panics() {
        let _ = CacheConfig::new(4, 0);
    }

    #[test]
    fn with_policy_round_trips() {
        let c = CacheConfig::new(2, 2).with_policy(PolicyKind::Rrip);
        assert_eq!(c.policy, PolicyKind::Rrip);
        assert_eq!(c.policy.name(), "RRIP");
    }

    #[test]
    fn deterministic_policies_exclude_random() {
        assert!(!PolicyKind::deterministic().contains(&PolicyKind::Random));
    }
}
