//! Address-to-set mapping functions.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// How line addresses map to cache sets.
///
/// The paper's Sec. V-B also studies "a fixed random address-to-set mapping
/// where an address is mapped to a set using a fixed random permutation";
/// [`AddressMapping::RandomPermutation`] reproduces that.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddressMapping {
    /// Conventional modulo indexing: `set = addr % num_sets`.
    Direct,
    /// A fixed random permutation of a bounded address space. The
    /// permutation is derived deterministically from the seed, covering
    /// addresses `0..address_space`; addresses outside that range fall back
    /// to modulo indexing of their permuted low bits.
    RandomPermutation {
        /// Seed for the fixed permutation.
        seed: u64,
        /// Size of the permuted address space.
        address_space: usize,
    },
}

impl AddressMapping {
    /// Computes the set index for `addr` in a cache with `num_sets` sets.
    pub fn set_index(&self, addr: u64, num_sets: usize) -> usize {
        match self {
            AddressMapping::Direct => (addr % num_sets as u64) as usize,
            AddressMapping::RandomPermutation {
                seed,
                address_space,
            } => {
                let perm = build_permutation(*seed, *address_space);
                let idx = (addr as usize) % (*address_space).max(1);
                perm[idx] % num_sets
            }
        }
    }
}

/// Builds the fixed permutation for a seed (deterministic).
fn build_permutation(seed: u64, n: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..n.max(1)).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    perm.shuffle(&mut rng);
    perm
}

/// A memoized random permutation mapping, avoiding re-deriving the
/// permutation on every access (used by [`crate::Cache`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub(crate) enum ResolvedMapping {
    Direct,
    Permuted(Vec<usize>),
}

impl ResolvedMapping {
    pub(crate) fn resolve(mapping: &AddressMapping) -> Self {
        match mapping {
            AddressMapping::Direct => ResolvedMapping::Direct,
            AddressMapping::RandomPermutation {
                seed,
                address_space,
            } => ResolvedMapping::Permuted(build_permutation(*seed, *address_space)),
        }
    }

    pub(crate) fn set_index(&self, addr: u64, num_sets: usize) -> usize {
        match self {
            ResolvedMapping::Direct => (addr % num_sets as u64) as usize,
            ResolvedMapping::Permuted(perm) => {
                let idx = (addr as usize) % perm.len();
                perm[idx] % num_sets
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_mapping_is_modulo() {
        let m = AddressMapping::Direct;
        assert_eq!(m.set_index(0, 4), 0);
        assert_eq!(m.set_index(5, 4), 1);
        assert_eq!(m.set_index(7, 4), 3);
    }

    #[test]
    fn permutation_is_deterministic() {
        let m = AddressMapping::RandomPermutation {
            seed: 7,
            address_space: 16,
        };
        let a: Vec<usize> = (0..16).map(|i| m.set_index(i, 4)).collect();
        let b: Vec<usize> = (0..16).map(|i| m.set_index(i, 4)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn permutation_is_balanced_over_sets() {
        // A permutation of 0..16 over 4 sets must put exactly 4 addresses in
        // each set.
        let m = AddressMapping::RandomPermutation {
            seed: 3,
            address_space: 16,
        };
        let mut counts = [0usize; 4];
        for a in 0..16u64 {
            counts[m.set_index(a, 4)] += 1;
        }
        assert_eq!(counts, [4, 4, 4, 4]);
    }

    #[test]
    fn different_seeds_generally_differ() {
        let m1 = AddressMapping::RandomPermutation {
            seed: 1,
            address_space: 32,
        };
        let m2 = AddressMapping::RandomPermutation {
            seed: 2,
            address_space: 32,
        };
        let a: Vec<usize> = (0..32).map(|i| m1.set_index(i, 8)).collect();
        let b: Vec<usize> = (0..32).map(|i| m2.set_index(i, 8)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn resolved_matches_unresolved() {
        let m = AddressMapping::RandomPermutation {
            seed: 11,
            address_space: 24,
        };
        let r = ResolvedMapping::resolve(&m);
        for a in 0..24u64 {
            assert_eq!(m.set_index(a, 6), r.set_index(a, 6));
        }
    }
}
