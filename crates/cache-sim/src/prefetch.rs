//! Hardware prefetchers (configs 2, 13 and 14 of Table IV).

use crate::config::PrefetcherKind;

/// Runtime state of the configured prefetcher.
///
/// Given each demand access, [`PrefetchState::observe`] returns the line
/// addresses the prefetcher wants to bring in (at most one per access, as in
/// the paper's traces where accesses show a single `(pN)` annotation).
#[derive(Clone, Debug)]
pub enum PrefetchState {
    /// No prefetching.
    None,
    /// Next-line: every demand access prefetches `addr + 1`.
    NextLine,
    /// Stream/stride: after two accesses with the same stride, prefetches
    /// `addr + stride`.
    Stream {
        /// Previous demand address.
        last_addr: Option<u64>,
        /// Stride between the last two demand addresses.
        last_stride: Option<i64>,
    },
}

impl PrefetchState {
    /// Creates the state for a prefetcher kind.
    pub fn new(kind: PrefetcherKind) -> Self {
        match kind {
            PrefetcherKind::None => PrefetchState::None,
            PrefetcherKind::NextLine => PrefetchState::NextLine,
            PrefetcherKind::Stream => PrefetchState::Stream {
                last_addr: None,
                last_stride: None,
            },
        }
    }

    /// Observes a demand access and returns the address to prefetch, if any.
    ///
    /// `wrap` bounds the address space: prefetches wrap modulo it (the
    /// paper's config-2 trace shows access 7 prefetching address 0 in an
    /// 8-address space).
    pub fn observe(&mut self, addr: u64, wrap: Option<u64>) -> Option<u64> {
        let wrap_fn = |a: i64| -> Option<u64> {
            match wrap {
                Some(w) if w > 0 => Some(a.rem_euclid(w as i64) as u64),
                _ if a >= 0 => Some(a as u64),
                _ => None,
            }
        };
        match self {
            PrefetchState::None => None,
            PrefetchState::NextLine => wrap_fn(addr as i64 + 1),
            PrefetchState::Stream {
                last_addr,
                last_stride,
            } => {
                let mut out = None;
                if let Some(prev) = *last_addr {
                    let stride = addr as i64 - prev as i64;
                    if stride != 0 && *last_stride == Some(stride) {
                        out = wrap_fn(addr as i64 + stride);
                    }
                    *last_stride = Some(stride);
                }
                *last_addr = Some(addr);
                out
            }
        }
    }

    /// Resets stream-detection state.
    pub fn reset(&mut self) {
        if let PrefetchState::Stream {
            last_addr,
            last_stride,
        } = self
        {
            *last_addr = None;
            *last_stride = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_prefetches() {
        let mut p = PrefetchState::new(PrefetcherKind::None);
        assert_eq!(p.observe(5, None), None);
    }

    #[test]
    fn next_line_prefetches_addr_plus_one() {
        let mut p = PrefetchState::new(PrefetcherKind::NextLine);
        assert_eq!(p.observe(6, None), Some(7));
    }

    #[test]
    fn next_line_wraps_in_bounded_space() {
        // Paper config 2: accessing 7 in an 8-address space prefetches 0.
        let mut p = PrefetchState::new(PrefetcherKind::NextLine);
        assert_eq!(p.observe(7, Some(8)), Some(0));
    }

    #[test]
    fn stream_needs_two_consistent_strides() {
        let mut p = PrefetchState::new(PrefetcherKind::Stream);
        assert_eq!(p.observe(4, Some(16)), None); // first access
        assert_eq!(p.observe(6, Some(16)), None); // stride +2 observed once
        assert_eq!(p.observe(8, Some(16)), Some(10)); // stride confirmed
    }

    #[test]
    fn stream_resets_on_stride_change() {
        let mut p = PrefetchState::new(PrefetcherKind::Stream);
        p.observe(0, None);
        p.observe(1, None);
        assert_eq!(p.observe(2, None), Some(3)); // +1 stream
        assert_eq!(p.observe(10, None), None); // broken stride
        assert_eq!(p.observe(11, None), None); // new stride seen once
        assert_eq!(p.observe(12, None), Some(13));
    }

    #[test]
    fn stream_ignores_repeated_address() {
        let mut p = PrefetchState::new(PrefetcherKind::Stream);
        p.observe(3, None);
        assert_eq!(p.observe(3, None), None);
        assert_eq!(p.observe(3, None), None);
    }

    #[test]
    fn reset_clears_stream_state() {
        let mut p = PrefetchState::new(PrefetcherKind::Stream);
        p.observe(0, None);
        p.observe(1, None);
        p.reset();
        assert_eq!(p.observe(2, None), None);
    }
}
