//! Configurable cache simulator for the AutoCAT reproduction.
//!
//! This crate replaces the Python cache simulator the paper embeds in its RL
//! environment (Sec. IV-A). It models a single cache or a two-level
//! hierarchy at cache-line granularity:
//!
//! * direct-mapped / set-associative / fully-associative geometry
//!   ([`CacheConfig`]),
//! * replacement policies: true LRU, tree-PLRU, RRIP, NRU and random
//!   ([`policy`]),
//! * next-line and stream prefetchers ([`prefetch`]),
//! * PL-cache line locking (Table VII experiment),
//! * a fixed random address-to-set mapping (Sec. V-B),
//! * a two-level hierarchy with private L1s and a shared inclusive L2
//!   (configs 16/17 of Table IV),
//! * an event stream ([`event::CacheEvent`]) consumed by the detectors in
//!   `autocat-detect` (CC-Hunter conflict-miss trains, Cyclone cyclic
//!   interference).
//!
//! Addresses are *line* addresses: the paper's guessing game indexes cache
//! lines directly (PIPT, no offset bits).
//!
//! # Example
//!
//! ```
//! use autocat_cache::{Cache, CacheConfig, Domain, PolicyKind};
//!
//! // A 4-way fully-associative cache with true LRU.
//! let config = CacheConfig::new(1, 4).with_policy(PolicyKind::Lru);
//! let mut cache = Cache::new(config);
//! assert!(!cache.access(0, Domain::Attacker).hit);
//! assert!(cache.access(0, Domain::Attacker).hit);
//! ```

pub mod backend;
pub mod cache;
pub mod config;
pub mod event;
pub mod hierarchy;
pub mod mapping;
pub mod policy;
pub mod prefetch;

pub use backend::CacheBackend;
pub use cache::{AccessResult, Cache, CacheStats};
pub use config::{CacheConfig, PolicyKind, PrefetcherKind};
pub use event::{CacheEvent, Domain};
pub use hierarchy::{HierarchyResult, TwoLevelCache, TwoLevelConfig};
pub use mapping::AddressMapping;
