//! Replacement policies (paper Sec. IV-A / V-C).
//!
//! Each cache set owns one [`SetPolicy`] instance tracking that set's
//! replacement state. The cache first fills invalid ways; `victim` is only
//! consulted when every unlocked way is valid, and must never return a
//! locked way (PL-cache locking, Table VII).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::config::PolicyKind;

/// Replacement state for one cache set.
///
/// Dispatch is by enum rather than trait object so sets stay `Clone` and
/// cheap to construct.
#[derive(Clone, Debug)]
pub enum SetPolicy {
    /// True LRU with full recency ordering.
    Lru(LruState),
    /// Tree pseudo-LRU.
    Plru(PlruState),
    /// 2-bit static RRIP.
    Rrip(RripState),
    /// Not-recently-used (single reference bit).
    Nru(NruState),
    /// Uniform random victim selection.
    Random(RandomState),
}

impl SetPolicy {
    /// Creates the replacement state for a set of `num_ways` ways.
    pub fn new(kind: PolicyKind, num_ways: usize, seed: u64) -> Self {
        match kind {
            PolicyKind::Lru => SetPolicy::Lru(LruState::new(num_ways)),
            PolicyKind::Plru => SetPolicy::Plru(PlruState::new(num_ways)),
            PolicyKind::Rrip => SetPolicy::Rrip(RripState::new(num_ways)),
            PolicyKind::Nru => SetPolicy::Nru(NruState::new(num_ways)),
            PolicyKind::Random => SetPolicy::Random(RandomState::new(num_ways, seed)),
        }
    }

    /// Notifies the policy of a hit on `way`.
    pub fn on_hit(&mut self, way: usize) {
        match self {
            SetPolicy::Lru(s) => s.touch(way),
            SetPolicy::Plru(s) => s.touch(way),
            SetPolicy::Rrip(s) => s.on_hit(way),
            SetPolicy::Nru(s) => s.touch(way),
            SetPolicy::Random(_) => {}
        }
    }

    /// Notifies the policy that a line was filled into `way`.
    pub fn on_fill(&mut self, way: usize) {
        match self {
            SetPolicy::Lru(s) => s.touch(way),
            SetPolicy::Plru(s) => s.touch(way),
            SetPolicy::Rrip(s) => s.on_fill(way),
            SetPolicy::Nru(s) => s.touch(way),
            SetPolicy::Random(_) => {}
        }
    }

    /// Notifies the policy that `way` was invalidated (flush).
    pub fn on_invalidate(&mut self, way: usize) {
        match self {
            SetPolicy::Lru(s) => s.invalidate(way),
            SetPolicy::Plru(_) => {}
            SetPolicy::Rrip(s) => s.invalidate(way),
            SetPolicy::Nru(s) => s.invalidate(way),
            SetPolicy::Random(_) => {}
        }
    }

    /// Chooses the way to evict. `locked[w]` marks ways that must not be
    /// chosen (PL cache).
    ///
    /// # Panics
    ///
    /// Panics if every way is locked.
    pub fn victim(&mut self, locked: &[bool]) -> usize {
        assert!(
            locked.iter().any(|&l| !l),
            "all ways locked: nothing can be evicted"
        );
        match self {
            SetPolicy::Lru(s) => s.victim(locked),
            SetPolicy::Plru(s) => s.victim(locked),
            SetPolicy::Rrip(s) => s.victim(locked),
            SetPolicy::Nru(s) => s.victim(locked),
            SetPolicy::Random(s) => s.victim(locked),
        }
    }

    /// Reseeds the policy's RNG stream (random replacement only; a no-op
    /// for deterministic policies). Environments call this through
    /// [`CacheBackend::reseed`](crate::CacheBackend::reseed) at episode
    /// start so a cache's full state is a function of the episode RNG
    /// stream — the property trainer checkpoints rely on.
    pub fn reseed(&mut self, seed: u64) {
        if let SetPolicy::Random(s) = self {
            s.rng = StdRng::seed_from_u64(seed);
        }
    }

    /// Returns the LRU age ordering (0 = most recent) when the policy keeps
    /// one; used by the Fig. 4 cache-state traces and by tests.
    pub fn lru_ages(&self) -> Option<Vec<usize>> {
        match self {
            SetPolicy::Lru(s) => Some(s.ages()),
            _ => None,
        }
    }

    /// Returns the per-way RRPV values for RRIP.
    pub fn rrpv(&self) -> Option<Vec<u8>> {
        match self {
            SetPolicy::Rrip(s) => Some(s.rrpv.clone()),
            _ => None,
        }
    }
}

/// True-LRU state: monotonically increasing recency stamps.
#[derive(Clone, Debug)]
pub struct LruState {
    stamp: Vec<u64>,
    clock: u64,
}

impl LruState {
    fn new(num_ways: usize) -> Self {
        Self {
            stamp: vec![0; num_ways],
            clock: 0,
        }
    }

    fn touch(&mut self, way: usize) {
        self.clock += 1;
        self.stamp[way] = self.clock;
    }

    fn invalidate(&mut self, way: usize) {
        self.stamp[way] = 0;
    }

    fn victim(&self, locked: &[bool]) -> usize {
        self.stamp
            .iter()
            .enumerate()
            .filter(|&(w, _)| !locked[w])
            .min_by_key(|&(_, &s)| s)
            .map(|(w, _)| w)
            .expect("at least one unlocked way")
    }

    /// Age ordering: 0 for the most recently used way.
    fn ages(&self) -> Vec<usize> {
        let mut order: Vec<usize> = (0..self.stamp.len()).collect();
        order.sort_by_key(|&w| std::cmp::Reverse(self.stamp[w]));
        let mut ages = vec![0; self.stamp.len()];
        for (age, &w) in order.iter().enumerate() {
            ages[w] = age;
        }
        ages
    }
}

/// Tree pseudo-LRU state.
///
/// For power-of-two associativity this is the textbook binary-tree PLRU.
/// For other way counts the tree is built over the next power of two and a
/// walk that lands on a nonexistent or locked way falls back to the first
/// admissible way (real designs use similar fix-ups).
#[derive(Clone, Debug)]
pub struct PlruState {
    /// Tree bits; `bits[i] == false` points left, `true` points right.
    bits: Vec<bool>,
    num_ways: usize,
    leaves: usize,
}

impl PlruState {
    fn new(num_ways: usize) -> Self {
        let leaves = num_ways.next_power_of_two().max(2);
        Self {
            bits: vec![false; leaves - 1],
            num_ways,
            leaves,
        }
    }

    /// Updates tree bits to point *away* from `way`.
    fn touch(&mut self, way: usize) {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if way < mid {
                self.bits[node] = true; // point right, away from the left half
                node = 2 * node + 1;
                hi = mid;
            } else {
                self.bits[node] = false; // point left
                node = 2 * node + 2;
                lo = mid;
            }
        }
    }

    fn victim(&self, locked: &[bool]) -> usize {
        let mut node = 0usize;
        let mut lo = 0usize;
        let mut hi = self.leaves;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.bits[node] {
                node = 2 * node + 2;
                lo = mid;
            } else {
                node = 2 * node + 1;
                hi = mid;
            }
        }
        let candidate = lo;
        if candidate < self.num_ways && !locked[candidate] {
            candidate
        } else {
            // Fix-up: first unlocked way.
            (0..self.num_ways)
                .find(|&w| !locked[w])
                .expect("at least one unlocked way")
        }
    }
}

/// 2-bit SRRIP state (paper Sec. V-C): fill at RRPV=2, promote to 0 on hit,
/// evict the way with RRPV=3, aging everyone when none qualifies.
#[derive(Clone, Debug)]
pub struct RripState {
    rrpv: Vec<u8>,
}

impl RripState {
    const MAX: u8 = 3;

    fn new(num_ways: usize) -> Self {
        Self {
            rrpv: vec![Self::MAX; num_ways],
        }
    }

    fn on_hit(&mut self, way: usize) {
        self.rrpv[way] = 0;
    }

    fn on_fill(&mut self, way: usize) {
        self.rrpv[way] = 2;
    }

    fn invalidate(&mut self, way: usize) {
        self.rrpv[way] = Self::MAX;
    }

    fn victim(&mut self, locked: &[bool]) -> usize {
        loop {
            if let Some(w) = (0..self.rrpv.len()).find(|&w| !locked[w] && self.rrpv[w] == Self::MAX)
            {
                return w;
            }
            for (rrpv, &is_locked) in self.rrpv.iter_mut().zip(locked.iter()) {
                if !is_locked && *rrpv < Self::MAX {
                    *rrpv += 1;
                }
            }
        }
    }
}

/// NRU state: one reference bit per way; victim is the first unlocked way
/// with a clear bit, clearing all bits when none qualifies.
#[derive(Clone, Debug)]
pub struct NruState {
    referenced: Vec<bool>,
}

impl NruState {
    fn new(num_ways: usize) -> Self {
        Self {
            referenced: vec![false; num_ways],
        }
    }

    fn touch(&mut self, way: usize) {
        self.referenced[way] = true;
        // If every way is referenced, clear the others (standard NRU reset).
        if self.referenced.iter().all(|&r| r) {
            for (w, r) in self.referenced.iter_mut().enumerate() {
                *r = w == way;
            }
        }
    }

    fn invalidate(&mut self, way: usize) {
        self.referenced[way] = false;
    }

    fn victim(&mut self, locked: &[bool]) -> usize {
        if let Some(w) = (0..self.referenced.len()).find(|&w| !locked[w] && !self.referenced[w]) {
            return w;
        }
        for (referenced, &is_locked) in self.referenced.iter_mut().zip(locked.iter()) {
            if !is_locked {
                *referenced = false;
            }
        }
        (0..self.referenced.len())
            .find(|&w| !locked[w])
            .expect("at least one unlocked way")
    }
}

/// Random replacement state.
#[derive(Clone, Debug)]
pub struct RandomState {
    rng: StdRng,
    num_ways: usize,
}

impl RandomState {
    fn new(num_ways: usize, seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            num_ways,
        }
    }

    fn victim(&mut self, locked: &[bool]) -> usize {
        let candidates: Vec<usize> = (0..self.num_ways).filter(|&w| !locked[w]).collect();
        candidates[self.rng.gen_range(0..candidates.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_locks(n: usize) -> Vec<bool> {
        vec![false; n]
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 4, 0);
        for w in 0..4 {
            p.on_fill(w);
        }
        p.on_hit(0); // order now: 1 is LRU
        assert_eq!(p.victim(&no_locks(4)), 1);
    }

    #[test]
    fn lru_ages_track_recency() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 4, 0);
        for w in 0..4 {
            p.on_fill(w);
        }
        // MRU is way 3 (age 0), LRU is way 0 (age 3).
        assert_eq!(p.lru_ages().unwrap(), vec![3, 2, 1, 0]);
    }

    #[test]
    fn lru_respects_locks() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 4, 0);
        for w in 0..4 {
            p.on_fill(w);
        }
        let mut locked = no_locks(4);
        locked[0] = true; // way 0 is oldest but locked
        assert_eq!(p.victim(&locked), 1);
    }

    #[test]
    fn plru_single_way_never_panics() {
        let mut p = SetPolicy::new(PolicyKind::Plru, 1, 0);
        p.on_fill(0);
        assert_eq!(p.victim(&no_locks(1)), 0);
    }

    #[test]
    fn plru_4way_points_away_from_recent() {
        let mut p = SetPolicy::new(PolicyKind::Plru, 4, 0);
        for w in 0..4 {
            p.on_fill(w);
        }
        // After filling 0,1,2,3 the tree points to the left half's way 0/1.
        let v = p.victim(&no_locks(4));
        assert!(v == 0 || v == 1, "expected left-half victim, got {v}");
        // Touching the victim should move the pointer elsewhere.
        p.on_hit(v);
        assert_ne!(p.victim(&no_locks(4)), v);
    }

    #[test]
    fn plru_approximates_lru_on_sequential_fill() {
        let mut p = SetPolicy::new(PolicyKind::Plru, 8, 0);
        for w in 0..8 {
            p.on_fill(w);
        }
        // After 0..7 in order, way 0 is the PLRU victim.
        assert_eq!(p.victim(&no_locks(8)), 0);
    }

    #[test]
    fn rrip_fills_at_two_promotes_to_zero() {
        let mut p = SetPolicy::new(PolicyKind::Rrip, 4, 0);
        p.on_fill(0);
        assert_eq!(p.rrpv().unwrap()[0], 2);
        p.on_hit(0);
        assert_eq!(p.rrpv().unwrap()[0], 0);
    }

    #[test]
    fn rrip_evicts_max_rrpv_and_ages() {
        let mut p = SetPolicy::new(PolicyKind::Rrip, 4, 0);
        for w in 0..4 {
            p.on_fill(w); // all at RRPV=2
        }
        p.on_hit(0); // way 0 at RRPV=0
                     // No way at 3 -> aging: ways 1..3 reach 3 first; victim is way 1.
        assert_eq!(p.victim(&no_locks(4)), 1);
    }

    #[test]
    fn nru_victim_prefers_unreferenced() {
        let mut p = SetPolicy::new(PolicyKind::Nru, 4, 0);
        p.on_fill(0);
        p.on_fill(1);
        assert_eq!(p.victim(&no_locks(4)), 2);
    }

    #[test]
    fn nru_resets_when_all_referenced() {
        let mut p = SetPolicy::new(PolicyKind::Nru, 2, 0);
        p.on_fill(0);
        p.on_fill(1); // triggers reset, keeping only way 1 referenced
        assert_eq!(p.victim(&no_locks(2)), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_respects_locks() {
        let mut p1 = SetPolicy::new(PolicyKind::Random, 4, 9);
        let mut p2 = SetPolicy::new(PolicyKind::Random, 4, 9);
        let locked = vec![true, false, true, false];
        for _ in 0..32 {
            let v1 = p1.victim(&locked);
            assert_eq!(v1, p2.victim(&locked));
            assert!(v1 == 1 || v1 == 3);
        }
    }

    #[test]
    #[should_panic(expected = "all ways locked")]
    fn all_locked_panics() {
        let mut p = SetPolicy::new(PolicyKind::Lru, 2, 0);
        let _ = p.victim(&[true, true]);
    }

    #[test]
    fn victims_always_unlocked_for_every_policy() {
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Plru,
            PolicyKind::Rrip,
            PolicyKind::Nru,
            PolicyKind::Random,
        ] {
            let mut p = SetPolicy::new(kind, 4, 1);
            for w in 0..4 {
                p.on_fill(w);
            }
            let locked = vec![true, true, false, true];
            for _ in 0..8 {
                assert_eq!(
                    p.victim(&locked),
                    2,
                    "{kind:?} must pick the only unlocked way"
                );
            }
        }
    }
}
