//! Cache events consumed by the timing-channel detectors.

use serde::{Deserialize, Serialize};

/// The security domain issuing a memory operation.
///
/// The paper's detectors distinguish the victim program from the attack
/// program (CC-Hunter's `A→V` / `V→A` conflict misses, Cyclone's
/// cross-domain cyclic interference).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Domain {
    /// The attack program.
    Attacker,
    /// The victim program.
    Victim,
    /// Hardware prefetcher (attributed to neither program).
    Prefetcher,
}

impl Domain {
    /// Short label used in event-train plots.
    pub fn label(self) -> &'static str {
        match self {
            Domain::Attacker => "A",
            Domain::Victim => "V",
            Domain::Prefetcher => "P",
        }
    }
}

/// An observable cache event.
///
/// The simulator appends these to a log that detector implementations
/// consume; this mirrors how CC-Hunter taps conflict misses and how Cyclone
/// taps per-line cross-domain accesses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheEvent {
    /// A demand access completed.
    Access {
        /// Issuing domain.
        domain: Domain,
        /// Line address accessed.
        addr: u64,
        /// Set index the address mapped to.
        set: usize,
        /// Whether the access hit.
        hit: bool,
    },
    /// A line was evicted to make room for a fill.
    Eviction {
        /// Domain that owned the evicted line.
        victim_domain: Domain,
        /// Domain whose fill caused the eviction.
        evictor_domain: Domain,
        /// Address of the evicted line.
        evicted_addr: u64,
        /// Address of the line filled in its place.
        incoming_addr: u64,
        /// Set index where the eviction happened.
        set: usize,
    },
    /// A line was flushed (e.g. `clflush`).
    Flush {
        /// Domain issuing the flush.
        domain: Domain,
        /// Address flushed.
        addr: u64,
        /// Whether the line was present.
        present: bool,
    },
}

impl CacheEvent {
    /// Returns `Some((victim_domain, evictor_domain))` if this event is a
    /// cross-domain conflict miss between the attacker and victim programs —
    /// the event CC-Hunter's autocorrelation detector tracks.
    pub fn as_conflict_miss(&self) -> Option<(Domain, Domain)> {
        match *self {
            CacheEvent::Eviction {
                victim_domain,
                evictor_domain,
                ..
            } if victim_domain != evictor_domain
                && victim_domain != Domain::Prefetcher
                && evictor_domain != Domain::Prefetcher =>
            {
                Some((victim_domain, evictor_domain))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_miss_detects_cross_domain_eviction() {
        let ev = CacheEvent::Eviction {
            victim_domain: Domain::Victim,
            evictor_domain: Domain::Attacker,
            evicted_addr: 3,
            incoming_addr: 7,
            set: 0,
        };
        assert_eq!(
            ev.as_conflict_miss(),
            Some((Domain::Victim, Domain::Attacker))
        );
    }

    #[test]
    fn same_domain_eviction_is_not_conflict() {
        let ev = CacheEvent::Eviction {
            victim_domain: Domain::Attacker,
            evictor_domain: Domain::Attacker,
            evicted_addr: 3,
            incoming_addr: 7,
            set: 0,
        };
        assert_eq!(ev.as_conflict_miss(), None);
    }

    #[test]
    fn prefetcher_evictions_are_not_conflicts() {
        let ev = CacheEvent::Eviction {
            victim_domain: Domain::Victim,
            evictor_domain: Domain::Prefetcher,
            evicted_addr: 1,
            incoming_addr: 2,
            set: 0,
        };
        assert_eq!(ev.as_conflict_miss(), None);
    }

    #[test]
    fn access_is_never_a_conflict() {
        let ev = CacheEvent::Access {
            domain: Domain::Victim,
            addr: 0,
            set: 0,
            hit: false,
        };
        assert_eq!(ev.as_conflict_miss(), None);
    }
}
