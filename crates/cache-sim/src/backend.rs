//! The public cache-backend plugin boundary.
//!
//! Every memory the guessing-game environments can run against — the
//! single-level [`Cache`], the inclusive [`TwoLevelCache`] hierarchy, the
//! simulated blackbox processor in `autocat-gym`, or a third-party model —
//! implements [`CacheBackend`]. The environments hold a
//! `Box<dyn CacheBackend>`, so plugging in a new memory never requires
//! touching the gym crate.

use crate::cache::{Cache, CacheStats};
use crate::config::PolicyKind;
use crate::event::{CacheEvent, Domain};
use crate::hierarchy::TwoLevelCache;

/// An object-safe cache model the guessing-game environments drive.
///
/// # The `(observed_hit, true_hit)` contract
///
/// [`CacheBackend::access`] returns two hit outcomes that are *not* always
/// equal:
///
/// * `observed_hit` — what the acting program's **timing measurement**
///   reports. This is the attacker-visible signal: it collapses a
///   multi-level hierarchy to "hit anywhere vs. memory fetch" and may be
///   flipped by measurement noise on blackbox hardware backends. It feeds
///   the agent's latency observation.
/// * `true_hit` — the **microarchitectural ground truth at the issuing
///   core's private (innermost) level**, as a defender's performance
///   counters would record it. Measurement noise never affects it, and an
///   outer shared level supplying the line does not hide the private-level
///   miss. It feeds victim-miss bookkeeping and evaluation.
///
/// The two diverge on a [`TwoLevelCache`] when an access misses the
/// issuing core's private L1 but hits the shared L2 (`observed_hit =
/// true`, `true_hit = false`), and on noisy hardware backends when the
/// timing misclassifies the outcome. On a single-level [`Cache`] they are
/// always equal:
///
/// ```
/// use autocat_cache::{Cache, CacheBackend, CacheConfig, Domain};
/// use autocat_cache::{TwoLevelCache, TwoLevelConfig};
///
/// // Single level: the pair never diverges.
/// let mut single: Box<dyn CacheBackend> =
///     Box::new(Cache::new(CacheConfig::fully_associative(2)));
/// assert_eq!(single.access(0, Domain::Attacker), (false, false)); // cold miss
/// assert_eq!(single.access(0, Domain::Attacker), (true, true));   // now cached
///
/// // Two-level: victim fills addr 0 and 4; the direct-mapped L1 can hold
/// // only one of them, the 2-way shared L2 keeps both. Re-accessing addr 0
/// // misses the private L1 (true_hit = false) but the L2 supplies the
/// // line, so the timing measurement sees a hit (observed_hit = true).
/// let mut two: Box<dyn CacheBackend> =
///     Box::new(TwoLevelCache::new(TwoLevelConfig::paper_config16()));
/// two.access(0, Domain::Victim);
/// two.access(4, Domain::Victim);
/// assert_eq!(two.access(0, Domain::Victim), (true, false));
/// ```
///
/// # Event stream
///
/// [`CacheBackend::drain_events`] returns the [`CacheEvent`] log of the
/// *monitored* level — the level where cross-domain contention happens
/// (the cache itself for a single level, the shared L2 for a hierarchy) —
/// which is what the detectors in `autocat-detect` consume.
///
/// The two sensors deliberately sit at different levels on a hierarchy:
/// `true_hit` is private-L1 ground truth, while event-driven monitors see
/// shared-L2 outcomes. This loses nothing a defender cares about: the L2
/// is inclusive, so an attacker can only evict a victim line from the
/// victim's L1 by evicting it from the L2 (back-invalidation), which makes
/// the victim's next access miss the L2 too and show up in the event
/// stream. The only victim misses below the monitor's resolution are
/// self-inflicted L1 conflicts — benign by construction, so an L2-side
/// miss-count monitor flags every attacker-caused miss and fewer false
/// positives.
pub trait CacheBackend: std::fmt::Debug + Send {
    /// Performs a demand access by `domain`, returning
    /// `(observed_hit, true_hit)` per the contract above.
    fn access(&mut self, addr: u64, domain: Domain) -> (bool, bool);

    /// Flushes `addr` (like `clflush`) on behalf of `domain`. Backends
    /// without a flush primitive (blackbox hardware) ignore the call;
    /// their configs set `flush_enable = false`.
    fn flush(&mut self, addr: u64, domain: Domain);

    /// PL-cache support: fills (if absent) and locks `addr` so it can
    /// never be evicted, returning whether the lock took effect. Backends
    /// without locking return `false` (the default).
    fn lock(&mut self, _addr: u64) -> bool {
        false
    }

    /// Clears contents, statistics and pending events, keeping the
    /// configuration.
    fn reset(&mut self);

    /// Drains the event log of the monitored level accumulated since the
    /// last drain (empty for backends that expose no events).
    fn drain_events(&mut self) -> Vec<CacheEvent>;

    /// Aggregate statistics over every level this backend models.
    fn stats(&self) -> CacheStats;

    /// Whether the backend's *observed* outcomes are stochastic (e.g.
    /// timing noise). Environments reseed stochastic backends between
    /// episodes via [`CacheBackend::reseed`]; deterministic backends are
    /// left alone so episode RNG streams stay reproducible.
    fn is_stochastic(&self) -> bool {
        false
    }

    /// Reseeds the backend's internal noise stream and clears its state
    /// (a fresh measurement run). No-op for deterministic backends.
    fn reseed(&mut self, _seed: u64) {}

    /// Clones the backend behind a fresh box (object-safe `Clone`).
    fn box_clone(&self) -> Box<dyn CacheBackend>;
}

impl Clone for Box<dyn CacheBackend> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

impl CacheBackend for Cache {
    /// Single level: the observed and true outcomes always coincide.
    fn access(&mut self, addr: u64, domain: Domain) -> (bool, bool) {
        let hit = Cache::access(self, addr, domain).hit;
        (hit, hit)
    }

    fn flush(&mut self, addr: u64, domain: Domain) {
        Cache::flush(self, addr, domain);
    }

    fn lock(&mut self, addr: u64) -> bool {
        self.lock_line(addr, Domain::Victim)
    }

    fn reset(&mut self) {
        Cache::reset(self);
    }

    fn drain_events(&mut self) -> Vec<CacheEvent> {
        Cache::drain_events(self)
    }

    fn stats(&self) -> CacheStats {
        *Cache::stats(self)
    }

    /// Random replacement draws from an internal RNG, so eviction choices
    /// are stochastic from the caller's perspective; every other policy is
    /// a pure function of the access sequence.
    fn is_stochastic(&self) -> bool {
        self.config().policy == PolicyKind::Random
    }

    fn reseed(&mut self, seed: u64) {
        self.reseed_policy(seed);
    }

    fn box_clone(&self) -> Box<dyn CacheBackend> {
        Box::new(self.clone())
    }
}

impl TwoLevelCache {
    /// The core an environment domain runs on: the victim owns core 0, the
    /// attack program core 1 (or core 0 on a single-core hierarchy).
    fn core_for(&self, domain: Domain) -> usize {
        if domain == Domain::Victim {
            0
        } else {
            1.min(self.config().num_cores - 1)
        }
    }
}

impl CacheBackend for TwoLevelCache {
    /// Hierarchy: `observed_hit` is "hit anywhere" (the binary timing
    /// signal), `true_hit` is the issuing core's private-L1 outcome — they
    /// diverge exactly when the L1 misses but the shared L2 hits.
    fn access(&mut self, addr: u64, domain: Domain) -> (bool, bool) {
        let core = self.core_for(domain);
        let result = TwoLevelCache::access(self, core, addr, domain);
        (result.hit(), result.l1_hit)
    }

    fn flush(&mut self, addr: u64, domain: Domain) {
        TwoLevelCache::flush(self, addr, domain);
    }

    /// Locks in the shared L2 (the contended level).
    fn lock(&mut self, addr: u64) -> bool {
        self.l2_mut().lock_line(addr, Domain::Victim)
    }

    fn reset(&mut self) {
        TwoLevelCache::reset(self);
    }

    /// The shared L2's events: the level cross-domain contention goes
    /// through, and the one the paper's detectors monitor.
    fn drain_events(&mut self) -> Vec<CacheEvent> {
        self.l2_mut().drain_events()
    }

    /// Statistics merged across every L1 and the shared L2.
    fn stats(&self) -> CacheStats {
        let mut stats = *self.l2().stats();
        for core in 0..self.config().num_cores {
            stats.merge(self.l1(core).stats());
        }
        stats
    }

    /// Stochastic when any level uses random replacement.
    fn is_stochastic(&self) -> bool {
        self.config().l1.policy == PolicyKind::Random
            || self.config().l2.policy == PolicyKind::Random
    }

    fn reseed(&mut self, seed: u64) {
        self.reseed_policy(seed);
    }

    fn box_clone(&self) -> Box<dyn CacheBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;
    use crate::hierarchy::TwoLevelConfig;

    /// After `reseed`, a random-replacement cache's eviction choices must
    /// depend only on the new seed — not on how many draws the policy RNG
    /// made before. This is the property that makes environment episodes
    /// (and therefore trainer checkpoints) a pure function of the episode
    /// RNG stream.
    #[test]
    fn reseed_makes_random_policy_state_seed_determined() {
        let config = CacheConfig::new(2, 4).with_policy(PolicyKind::Random);
        let drive = |cache: &mut Cache, accesses: usize| -> Vec<(bool, bool)> {
            (0..accesses as u64)
                .map(|i| CacheBackend::access(cache, (i * 7) % 23, Domain::Attacker))
                .collect()
        };
        let mut a = Cache::new(config.clone());
        let mut b = Cache::new(config);
        assert!(CacheBackend::is_stochastic(&a));
        // Burn a different number of policy-RNG draws on each cache.
        drive(&mut a, 40);
        drive(&mut b, 17);
        for cache in [&mut a, &mut b] {
            CacheBackend::reseed(cache, 99);
            CacheBackend::reset(cache);
        }
        assert_eq!(drive(&mut a, 60), drive(&mut b, 60));
    }

    #[test]
    fn two_level_is_stochastic_when_any_level_is_random() {
        let mut config = TwoLevelConfig::paper_config16();
        assert!(!CacheBackend::is_stochastic(&TwoLevelCache::new(
            config.clone()
        )));
        config.l2 = config.l2.with_policy(PolicyKind::Random);
        assert!(CacheBackend::is_stochastic(&TwoLevelCache::new(config)));
    }

    #[test]
    fn single_level_pair_always_agrees() {
        let mut backend: Box<dyn CacheBackend> =
            Box::new(Cache::new(CacheConfig::fully_associative(2)));
        for addr in [0u64, 1, 0, 2, 1, 0] {
            let (observed, truth) = backend.access(addr, Domain::Attacker);
            assert_eq!(observed, truth, "single level must never diverge");
        }
    }

    /// Regression test for the documented `(observed_hit, true_hit)`
    /// asymmetry: on a two-level hierarchy, an access that misses the
    /// issuing core's private L1 but hits the shared L2 must report
    /// `(true, false)`.
    #[test]
    fn two_level_pair_diverges_on_l1_miss_l2_hit() {
        let mut h = TwoLevelCache::new(TwoLevelConfig::paper_config16());
        // Victim (core 0) loads addr 0: L1 set 0, L2 set 0.
        let (obs, truth) = CacheBackend::access(&mut h, 0, Domain::Victim);
        assert!(!obs && !truth, "cold access misses everywhere");
        // Victim loads addr 4: same direct-mapped L1 set evicts addr 0 from
        // the private L1, but the 2-way L2 set keeps both lines.
        CacheBackend::access(&mut h, 4, Domain::Victim);
        assert!(h.probe_l2(0), "addr 0 must survive in the shared L2");
        assert!(!h.probe_l1(0, 0), "addr 0 must be gone from the L1");
        // Re-access addr 0: timing sees a (L2) hit, the private-level
        // ground truth is a miss.
        let (obs, truth) = CacheBackend::access(&mut h, 0, Domain::Victim);
        assert!(obs, "observed_hit: the shared L2 supplies the line");
        assert!(!truth, "true_hit: the private L1 missed");
    }

    #[test]
    fn two_level_routes_domains_to_cores() {
        let mut h = TwoLevelCache::new(TwoLevelConfig::paper_config16());
        CacheBackend::access(&mut h, 3, Domain::Victim);
        assert!(h.probe_l1(0, 3), "victim runs on core 0");
        assert!(!h.probe_l1(1, 3));
        CacheBackend::access(&mut h, 2, Domain::Attacker);
        assert!(h.probe_l1(1, 2), "attacker runs on core 1");
        assert!(!h.probe_l1(0, 2));
    }

    #[test]
    fn boxed_backend_clones_independently() {
        let mut a: Box<dyn CacheBackend> = Box::new(Cache::new(CacheConfig::fully_associative(2)));
        a.access(7, Domain::Attacker);
        let mut b = a.clone();
        // The clone sees the same state...
        let (hit, _) = b.access(7, Domain::Attacker);
        assert!(hit);
        // ...but diverges after independent mutation.
        b.reset();
        let (hit_a, _) = a.access(7, Domain::Attacker);
        let (hit_b, _) = b.access(7, Domain::Attacker);
        assert!(hit_a);
        assert!(!hit_b);
    }

    #[test]
    fn two_level_stats_aggregate_all_levels() {
        let mut h = TwoLevelCache::new(TwoLevelConfig::paper_config16());
        CacheBackend::access(&mut h, 0, Domain::Victim); // L1 miss + L2 miss
        CacheBackend::access(&mut h, 0, Domain::Victim); // L1 hit
        let stats = CacheBackend::stats(&h);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2, "one L1 miss and one L2 miss");
        assert_eq!(stats.victim_misses, 2);
    }

    #[test]
    fn lock_defaults_are_sane() {
        let mut c = Cache::new(CacheConfig::fully_associative(2));
        assert!(CacheBackend::lock(&mut c, 1));
        assert!(c.is_locked(1));
    }
}
