//! Data-parallel sharded minibatch optimization.
//!
//! The PPO update is the training hot path: `epochs_per_update` full
//! forward/backward passes over every collected transition, all of which
//! ran on one thread before this module existed. Sharding splits each
//! minibatch into `PpoConfig::grad_shards` contiguous index ranges and
//! runs each range's forward/backward concurrently — shard 0 on the
//! calling thread directly against the primary model, shards 1..N on
//! rayon workers against their own **model replicas** — then reduces the
//! per-shard gradients into the primary **in fixed shard order**.
//!
//! # Determinism contract
//!
//! The result is bit-identical to running the same shards sequentially,
//! for every `RAYON_NUM_THREADS` setting:
//!
//! * the shard layout depends only on `(minibatch_len, grad_shards)` —
//!   never on the thread count;
//! * each shard's computation is self-contained: a model holding the
//!   primary's exact weight bytes (the primary itself for shard 0, a
//!   [`load_param_values`]-synced replica for the rest), the shard's own
//!   rows, and a private gradient accumulation — no shared float state;
//! * the reduction ([`GradBuffer::accumulate_into`]) happens on the
//!   calling thread in shard order — shard 0's gradients are accumulated
//!   in place, shards 1..N added on top — regardless of which worker
//!   finished first; the per-shard loss sums are added in the same fixed
//!   order.
//!
//! Note that sharded results are *not* bit-identical to the unsharded
//! (`grad_shards = 1`) update: splitting a matrix product over the batch
//! dimension reassociates floating-point sums. `grad_shards` is therefore
//! part of the training configuration (checkpointed like every other
//! hyper-parameter), and the single-shard path is preserved verbatim.

use autocat_nn::grad::{load_param_values, snapshot_param_values, GradBuffer};
use autocat_nn::matrix::with_inline_kernels;
use autocat_nn::models::PolicyValueNet;
use autocat_nn::{Categorical, Matrix};

use crate::rollout::RolloutBatch;

/// Read-only per-minibatch inputs shared by every shard.
pub(crate) struct MinibatchCtx<'a> {
    /// The collected rollout batch (observations, actions, targets).
    pub batch: &'a RolloutBatch,
    /// Normalized advantages, indexed like the batch.
    pub advantages: &'a [f32],
    /// PPO clipping range ε.
    pub clip: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// `1 / minibatch_len`. Loss gradients are normalized over the whole
    /// minibatch, not the shard, so sharding never changes the loss scale.
    pub inv: f32,
}

/// Running loss sums over the rows one model instance has processed.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct LossSums {
    pub policy_loss: f32,
    pub value_loss: f32,
    pub entropy: f32,
}

impl LossSums {
    /// Adds `other`'s sums (the fixed-order shard reduction for stats).
    pub fn absorb(&mut self, other: &LossSums) {
        self.policy_loss += other.policy_loss;
        self.value_loss += other.value_loss;
        self.entropy += other.entropy;
    }
}

/// The per-transition PPO loss gradient (clipped surrogate + entropy
/// bonus + value loss), shared verbatim by the single-threaded and
/// sharded paths so they cannot drift. `k` is the transition's index into
/// the full batch; returns `(dL/dlogits, dL/dvalue)`.
pub(crate) fn row_grad(
    ctx: &MinibatchCtx,
    k: usize,
    logits: &[f32],
    value: f32,
    sums: &mut LossSums,
) -> (Vec<f32>, f32) {
    let action = ctx.batch.actions[k];
    let adv = ctx.advantages[k];
    let old_logp = ctx.batch.logps[k];
    let ret = ctx.batch.returns[k];
    let dist = Categorical::from_logits(logits);
    let logp = dist.log_prob(action);
    let ratio = (logp - old_logp).exp();
    let unclipped = ratio * adv;
    let clipped = ratio.clamp(1.0 - ctx.clip, 1.0 + ctx.clip) * adv;
    sums.policy_loss += -unclipped.min(clipped);
    sums.entropy += dist.entropy();
    let verr = value - ret;
    sums.value_loss += 0.5 * verr * verr;
    // Gradient of the surrogate wrt logits: active only when the
    // unclipped term is the minimum.
    let use_unclipped = unclipped <= clipped;
    let mut dlogits = vec![0.0f32; dist.num_categories()];
    if use_unclipped {
        let dlogp = dist.dlogp_dlogits(action);
        for (g, d) in dlogits.iter_mut().zip(dlogp.iter()) {
            // d(-ratio*adv)/dlogits = -adv * ratio * dlogp
            *g += -adv * ratio * d * ctx.inv;
        }
    }
    // Entropy bonus: loss includes -ecoef * H.
    let dent = dist.dentropy_dlogits();
    for (g, d) in dlogits.iter_mut().zip(dent.iter()) {
        *g += -ctx.entropy_coef * d * ctx.inv;
    }
    let dvalue = ctx.value_coef * verr * ctx.inv;
    (dlogits, dvalue)
}

/// One shard's result: its gradient buffer and loss sums, ready for the
/// fixed-order reduction.
pub(crate) struct ShardOutcome {
    pub grads: GradBuffer,
    pub sums: LossSums,
}

/// Forward/backward over `rows` on one (already weight-synced) model,
/// harvesting the accumulated gradients.
fn run_shard(net: &mut dyn PolicyValueNet, ctx: &MinibatchCtx, rows: &[usize]) -> ShardOutcome {
    let obs = ctx.batch.obs.gather_rows(rows);
    let mut sums = LossSums::default();
    net.zero_grad();
    net.train_batch(&obs, &mut |i, logits, value| {
        row_grad(ctx, rows[i], logits, value, &mut sums)
    });
    ShardOutcome {
        grads: GradBuffer::harvest(|f| net.visit_params(f)),
        sums,
    }
}

/// Runs one minibatch split across up to `replicas.len() + 1` shards in
/// parallel, leaving the **reduced** gradient in `primary`'s parameters
/// and returning the combined loss sums.
///
/// Shard 0 (the first rows of `chunk`) runs on the calling thread
/// directly against `primary` — its backward pass accumulates into the
/// primary's freshly-zeroed gradients in place, with parallel matmul
/// dispatch suppressed ([`with_inline_kernels`]) since the pool workers
/// are busy with the sibling shards. Shards 1..N run on pool workers
/// against replicas synced to the primary's exact weight bytes, and
/// their buffers are then reduced into the primary **in shard order**,
/// whatever order the workers finished in; loss sums reduce identically.
///
/// The shard layout — `chunk` split into `ceil(len / shards)`-sized
/// contiguous ranges — depends only on the arguments, so the result is
/// bit-identical for every thread count.
pub(crate) fn sharded_minibatch(
    primary: &mut dyn PolicyValueNet,
    replicas: &mut [Box<dyn PolicyValueNet>],
    ctx: &MinibatchCtx,
    chunk: &[usize],
) -> LossSums {
    let shards = (replicas.len() + 1).min(chunk.len()).max(1);
    let sub_len = chunk.len().div_ceil(shards);
    let mut ranges = chunk.chunks(sub_len);
    let shard0_rows = ranges.next().expect("minibatch chunks are non-empty");
    let rest: Vec<&[usize]> = ranges.collect();
    // Replica weight sync reads the primary's bytes once per minibatch;
    // skipped entirely in the degenerate single-shard layout.
    let weights: Vec<Matrix> = if rest.is_empty() {
        Vec::new()
    } else {
        snapshot_param_values(|f| primary.visit_params(f))
    };
    let mut slots: Vec<Option<ShardOutcome>> = Vec::new();
    slots.resize_with(rest.len(), || None);
    let mut sums = LossSums::default();
    rayon::scope(|scope| {
        let weights = &weights;
        for ((replica, slot), rows) in replicas.iter_mut().zip(slots.iter_mut()).zip(rest) {
            scope.spawn(move |_| {
                load_param_values(weights, |f| replica.visit_params(f));
                *slot = Some(run_shard(replica.as_mut(), ctx, rows));
            });
        }
        with_inline_kernels(|| {
            let obs = ctx.batch.obs.gather_rows(shard0_rows);
            primary.zero_grad();
            primary.train_batch(&obs, &mut |i, logits, value| {
                row_grad(ctx, shard0_rows[i], logits, value, &mut sums)
            });
        });
    });
    // Fixed-order reduction: shard 0's gradients are already in place;
    // add shards 1..N on top in layout order.
    for slot in slots {
        let outcome = slot.expect("every shard must have run");
        outcome.grads.accumulate_into(|f| primary.visit_params(f));
        sums.absorb(&outcome.sums);
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_nn::models::{MlpConfig, MlpPolicy};
    use autocat_nn::Param;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A synthetic rollout batch with non-trivial targets.
    fn fake_batch(n: usize, obs_dim: usize, actions: usize, seed: u64) -> RolloutBatch {
        let mut rng = StdRng::seed_from_u64(seed);
        let obs: Vec<f32> = (0..n * obs_dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
        RolloutBatch {
            obs: Matrix::from_vec(n, obs_dim, obs),
            actions: (0..n).map(|_| rng.gen_range(0..actions)).collect(),
            logps: (0..n).map(|_| rng.gen_range(-2.0f32..-0.1)).collect(),
            rewards: vec![0.0; n],
            dones: vec![false; n],
            advantages: (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            returns: (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
            episodes: Default::default(),
        }
    }

    fn grads_of(net: &mut dyn PolicyValueNet) -> Vec<f32> {
        let mut out = Vec::new();
        net.visit_params(&mut |p: &mut Param| out.extend_from_slice(p.grad.as_slice()));
        out
    }

    fn ctx_over<'a>(batch: &'a RolloutBatch, advantages: &'a [f32]) -> MinibatchCtx<'a> {
        MinibatchCtx {
            batch,
            advantages,
            clip: 0.2,
            entropy_coef: 0.01,
            value_coef: 0.5,
            inv: 1.0 / batch.actions.len() as f32,
        }
    }

    /// The sharded path must reproduce the unsharded gradient up to
    /// floating-point reassociation (the sums are split over the batch
    /// dimension), and its loss sums must match the same way.
    #[test]
    fn sharded_gradient_matches_unsharded_up_to_reassociation() {
        let (n, obs_dim, num_actions) = (48usize, 10usize, 5usize);
        let batch = fake_batch(n, obs_dim, num_actions, 3);
        let advantages = batch.advantages.clone();
        let chunk: Vec<usize> = (0..n).collect();
        let ctx = ctx_over(&batch, &advantages);

        let mut rng = StdRng::seed_from_u64(0);
        let cfg = MlpConfig::new(obs_dim, num_actions).with_hidden(vec![12]);
        let primary = MlpPolicy::new(&cfg, &mut rng);

        // Unsharded reference gradient.
        let mut reference = primary.clone();
        let outcome = run_shard(&mut reference, &ctx, &chunk);
        let expected = grads_of(&mut reference);

        // Sharded gradient (3 shards), reduced into the primary.
        let mut sharded_net = primary.clone();
        let mut replicas: Vec<Box<dyn PolicyValueNet>> =
            (0..2).map(|_| primary.clone_box()).collect();
        let sums = sharded_minibatch(&mut sharded_net, &mut replicas, &ctx, &chunk);
        let got = grads_of(&mut sharded_net);

        assert_eq!(expected.len(), got.len());
        for (i, (e, g)) in expected.iter().zip(got.iter()).enumerate() {
            assert!(
                (e - g).abs() <= 1e-4 * (1.0 + e.abs()),
                "grad {i}: unsharded {e} vs sharded {g}"
            );
        }
        assert!((sums.policy_loss - outcome.sums.policy_loss).abs() < 1e-3);
        assert!((sums.value_loss - outcome.sums.value_loss).abs() < 1e-3);
        assert!((sums.entropy - outcome.sums.entropy).abs() < 1e-3);
        // The sharded path must not have touched the primary's weights.
        let mut untouched = sharded_net.clone();
        let mut original = primary.clone();
        assert_eq!(
            autocat_nn::state::params_digest(&mut untouched),
            autocat_nn::state::params_digest(&mut original),
        );
    }

    /// Re-running the identical sharded minibatch must be bit-identical:
    /// the reduction order is fixed by the shard layout, not the
    /// scheduler.
    #[test]
    fn sharded_minibatch_is_bitwise_reproducible() {
        let (n, obs_dim, num_actions) = (40usize, 8usize, 4usize);
        let batch = fake_batch(n, obs_dim, num_actions, 9);
        let advantages = batch.advantages.clone();
        let chunk: Vec<usize> = (0..n).collect();
        let ctx = ctx_over(&batch, &advantages);
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = MlpConfig::new(obs_dim, num_actions).with_hidden(vec![8]);
        let primary = MlpPolicy::new(&cfg, &mut rng);

        let run = || {
            let mut net = primary.clone();
            let mut replicas: Vec<Box<dyn PolicyValueNet>> =
                (0..3).map(|_| primary.clone_box()).collect();
            sharded_minibatch(&mut net, &mut replicas, &ctx, &chunk);
            grads_of(&mut net)
                .into_iter()
                .map(f32::to_bits)
                .collect::<Vec<u32>>()
        };
        assert_eq!(run(), run());
    }

    /// Degenerate layouts: more shards than rows, and zero replicas
    /// (single-shard), must reduce to a valid gradient over every row.
    #[test]
    fn shard_layout_handles_degenerate_sizes() {
        let (n, obs_dim, num_actions) = (3usize, 4usize, 3usize);
        let batch = fake_batch(n, obs_dim, num_actions, 2);
        let advantages = batch.advantages.clone();
        let chunk: Vec<usize> = (0..n).collect();
        let ctx = ctx_over(&batch, &advantages);
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = MlpConfig::new(obs_dim, num_actions).with_hidden(vec![4]);
        let primary = MlpPolicy::new(&cfg, &mut rng);

        // Reference: one shard over the whole chunk.
        let mut reference = primary.clone();
        let ref_sums = run_shard(&mut reference, &ctx, &chunk);
        let expected = grads_of(&mut reference);

        // 7 replicas + primary against 3 rows: exactly 3 one-row shards.
        for replica_count in [7usize, 0] {
            let mut net = primary.clone();
            let mut replicas: Vec<Box<dyn PolicyValueNet>> =
                (0..replica_count).map(|_| primary.clone_box()).collect();
            let sums = sharded_minibatch(&mut net, &mut replicas, &ctx, &chunk);
            let got = grads_of(&mut net);
            for (e, g) in expected.iter().zip(got.iter()) {
                assert!(
                    (e - g).abs() <= 1e-4 * (1.0 + e.abs()),
                    "replicas {replica_count}: grad {e} vs {g}"
                );
            }
            assert!((sums.entropy - ref_sums.sums.entropy).abs() < 1e-4);
        }
    }

    /// The zero-replica layout is exactly the single-shard computation,
    /// bit for bit (no weight snapshot, no reduction — one in-place run).
    #[test]
    fn zero_replicas_is_bitwise_the_single_shard_path() {
        let (n, obs_dim, num_actions) = (16usize, 6usize, 4usize);
        let batch = fake_batch(n, obs_dim, num_actions, 5);
        let advantages = batch.advantages.clone();
        let chunk: Vec<usize> = (0..n).collect();
        let ctx = ctx_over(&batch, &advantages);
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = MlpConfig::new(obs_dim, num_actions).with_hidden(vec![6]);
        let primary = MlpPolicy::new(&cfg, &mut rng);

        let mut direct = primary.clone();
        run_shard(&mut direct, &ctx, &chunk);
        let mut via_sharded = primary.clone();
        sharded_minibatch(&mut via_sharded, &mut [], &ctx, &chunk);
        let bits = |net: &mut MlpPolicy| {
            grads_of(net)
                .into_iter()
                .map(f32::to_bits)
                .collect::<Vec<u32>>()
        };
        assert_eq!(bits(&mut direct), bits(&mut via_sharded));
    }
}
