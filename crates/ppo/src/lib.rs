//! Hand-rolled PPO for the AutoCAT reproduction (paper Sec. IV-C).
//!
//! The paper trains its agent with proximal policy optimization on an MLP
//! or Transformer backbone. No mature RL crate exists offline, so this
//! crate implements the full loop from scratch on top of `autocat-nn`:
//!
//! * [`rollout`] — trajectory collection and generalized advantage
//!   estimation (GAE-λ),
//! * [`trainer`] — the clipped-surrogate PPO update with entropy bonus,
//!   value loss, advantage normalization and global gradient clipping;
//!   with `PpoConfig::grad_shards > 1` each minibatch is sharded across
//!   model replicas on the rayon pool and the gradients reduced in fixed
//!   shard order, so the update is bit-identical for every
//!   `RAYON_NUM_THREADS` setting,
//! * [`eval`] — policy evaluation (the serial loop and the lane-batched
//!   [`eval::evaluate_batched`] engine: one batched forward per step over
//!   all live lanes, bit-identical to the serial path at one lane) and the
//!   deterministic replay used to extract attack sequences from a
//!   converged policy ("Once the sum of the reward within an episode is
//!   converged to a positive value, we use deterministic replay to extract
//!   the attack sequences"),
//! * [`checkpoint`] — trainer persistence: weights, Adam moments and every
//!   RNG stream, with a **bit-exact resume guarantee** (a loaded trainer
//!   continues identically to the one that saved, see the
//!   [module docs](checkpoint)). The `sweep` harness in `autocat-bench`
//!   builds its train-once/eval-everywhere pipeline on this.
//!
//! Determinism is load-bearing throughout: a `(scenario, seed)` pair fixes
//! the trajectory stream, the extracted attack and the checkpoint bytes,
//! which is what makes the paper's Table IV reproducible from artifacts.
//!
//! # Example: train, checkpoint, resume
//!
//! ```no_run
//! use autocat_gym::{EnvConfig, env::CacheGuessingGame};
//! use autocat_ppo::{Backbone, PpoConfig, Trainer};
//!
//! let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
//! let mut trainer = Trainer::new(env, Backbone::default_mlp(), PpoConfig::default(), 0);
//! let result = trainer.train_until(0.8, 200_000);
//! println!("converged: {:?}", result.converged_at_steps);
//! trainer.save_checkpoint("fr.ckpt.json").unwrap();
//!
//! // Later (or elsewhere): rebuild the environment, load, keep training.
//! let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
//! let mut resumed = Trainer::load_checkpoint("fr.ckpt.json", env).unwrap();
//! resumed.train_until(0.9, 400_000);
//! ```

pub mod checkpoint;
pub mod eval;
pub mod rollout;
pub mod sharded;
pub mod trainer;

pub use eval::{EpisodeRecord, EvalReport, EvalStats, ExtractedSequence};
pub use rollout::{gae, RolloutBatch};
pub use trainer::{Backbone, PpoConfig, TrainResult, Trainer, UpdateStats};
