//! The PPO trainer: clipped surrogate, entropy bonus, value loss.

use autocat_gym::{Environment, VecEnv};
use autocat_nn::models::{
    MlpConfig, MlpPolicy, PolicyValueNet, TransformerConfig, TransformerPolicy,
};
use autocat_nn::optim::clip_global_grad_norm;
use autocat_nn::Adam;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

use crate::rollout::{collect, EpisodeTally};
use crate::sharded::{row_grad, sharded_minibatch, LossSums, MinibatchCtx};

/// PPO hyper-parameters.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Adam learning rate.
    pub lr: f32,
    /// Discount factor.
    pub gamma: f32,
    /// GAE λ.
    pub lambda: f32,
    /// Clipping range ε.
    pub clip: f32,
    /// Entropy bonus coefficient.
    pub entropy_coef: f32,
    /// Value-loss coefficient.
    pub value_coef: f32,
    /// Transitions collected per update.
    pub horizon: usize,
    /// Optimization epochs over each batch.
    pub epochs_per_update: usize,
    /// Minibatch size.
    pub minibatch: usize,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
    /// Environment steps per reporting "epoch" (the paper: 3000).
    pub steps_per_epoch: usize,
    /// Parallel environment lanes collected per rollout (`VecEnv` width).
    /// 1 reproduces the scalar single-env path bit-for-bit.
    pub num_lanes: usize,
    /// Data-parallel gradient shards per minibatch (see
    /// [`crate::sharded`]). 1 (the default) preserves the historical
    /// single-threaded update verbatim; values > 1 split each minibatch
    /// across model replicas on the rayon pool and reduce gradients in
    /// fixed shard order, so results are bit-identical for every
    /// `RAYON_NUM_THREADS` — but not to the 1-shard path (floating-point
    /// reassociation), which is why this is a checkpointed
    /// hyper-parameter, not a runtime knob.
    pub grad_shards: usize,
}

impl Default for PpoConfig {
    fn default() -> Self {
        Self {
            lr: 3e-4,
            gamma: 0.99,
            lambda: 0.95,
            clip: 0.2,
            entropy_coef: 0.01,
            value_coef: 0.5,
            horizon: 1024,
            epochs_per_update: 8,
            minibatch: 256,
            max_grad_norm: 0.5,
            steps_per_epoch: 3000,
            num_lanes: 1,
            grad_shards: 1,
        }
    }
}

impl PpoConfig {
    /// A smaller, faster configuration for tiny environments and tests.
    pub fn fast() -> Self {
        Self {
            horizon: 512,
            minibatch: 128,
            ..Self::default()
        }
    }

    /// Sets the number of parallel rollout lanes.
    #[must_use]
    pub fn with_lanes(mut self, lanes: usize) -> Self {
        self.num_lanes = lanes.max(1);
        self
    }

    /// Sets the number of data-parallel gradient shards per minibatch.
    #[must_use]
    pub fn with_grad_shards(mut self, shards: usize) -> Self {
        self.grad_shards = shards.max(1);
        self
    }

    /// The recipe validated on the paper's small cache configurations:
    /// larger batches and a hotter entropy bonus to escape the
    /// guess-immediately local optimum.
    pub fn small_env() -> Self {
        Self {
            lr: 5e-4,
            entropy_coef: 0.02,
            horizon: 2048,
            minibatch: 256,
            epochs_per_update: 8,
            ..Self::default()
        }
    }
}

/// Network backbone selection (paper Sec. VI-B compares Transformer and
/// MLP).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Backbone {
    /// MLP with the given hidden widths.
    Mlp {
        /// Hidden-layer widths.
        hidden: Vec<usize>,
    },
    /// Single-layer Transformer encoder.
    Transformer {
        /// Model dimension.
        d_model: usize,
        /// Attention heads.
        num_heads: usize,
        /// Feed-forward width.
        ff_dim: usize,
    },
}

impl Backbone {
    /// The default MLP backbone (2×128, tanh).
    pub fn default_mlp() -> Self {
        Backbone::Mlp {
            hidden: vec![128, 128],
        }
    }

    /// A small Transformer backbone (CPU-friendly version of the paper's
    /// 128-dim 8-head encoder).
    pub fn small_transformer() -> Self {
        Backbone::Transformer {
            d_model: 32,
            num_heads: 4,
            ff_dim: 64,
        }
    }

    pub(crate) fn build(
        &self,
        env: &impl Environment,
        rng: &mut StdRng,
    ) -> Box<dyn PolicyValueNet> {
        match self {
            Backbone::Mlp { hidden } => {
                let cfg =
                    MlpConfig::new(env.obs_dim(), env.num_actions()).with_hidden(hidden.clone());
                Box::new(MlpPolicy::new(&cfg, rng))
            }
            Backbone::Transformer {
                d_model,
                num_heads,
                ff_dim,
            } => {
                let cfg = TransformerConfig::new(env.window(), env.token_dim(), env.num_actions())
                    .with_dims(*d_model, *num_heads, *ff_dim);
                Box::new(TransformerPolicy::new(&cfg, rng))
            }
        }
    }
}

/// Statistics of one PPO update.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct UpdateStats {
    /// Episode statistics during collection.
    pub episodes: EpisodeTally,
    /// Mean policy (surrogate) loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean entropy of the policy.
    pub entropy: f32,
    /// Pre-clip global gradient norm of the last minibatch.
    pub grad_norm: f32,
}

/// Result of [`Trainer::train_until`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TrainResult {
    /// Environment steps at which the convergence criterion was first met.
    pub converged_at_steps: Option<u64>,
    /// Paper-style epochs (steps / `steps_per_epoch`) at convergence.
    pub converged_at_epochs: Option<f64>,
    /// Total environment steps taken.
    pub total_steps: u64,
    /// Average return over the trailing window when training stopped.
    pub final_avg_return: f32,
    /// Average episode length over the trailing window.
    pub final_avg_length: f32,
    /// Guess accuracy over the trailing window.
    pub final_accuracy: f32,
}

/// The PPO trainer owning a [`VecEnv`] of environment lanes and a
/// policy/value network. Rollouts run one batched forward per step across
/// all lanes; `PpoConfig::num_lanes` controls the width.
pub struct Trainer<E: Environment> {
    pub(crate) venv: VecEnv<E>,
    pub(crate) net: Box<dyn PolicyValueNet>,
    /// Kept so checkpoints can rebuild the same network architecture.
    pub(crate) backbone: Backbone,
    pub(crate) adam: Adam,
    pub(crate) config: PpoConfig,
    pub(crate) rng: StdRng,
    pub(crate) total_steps: u64,
    pub(crate) recent: VecDeque<(f32, usize, bool)>,
    pub(crate) recent_cap: usize,
    /// Per-shard model replicas for the data-parallel update, built
    /// lazily on the first sharded `train_update` and reused after
    /// (their weights are re-synced from `net` every minibatch, so only
    /// the architecture matters). Never checkpointed.
    pub(crate) replicas: Vec<Box<dyn PolicyValueNet>>,
}

impl<E: Environment + Clone + Send> Trainer<E> {
    /// Creates a trainer for `env` with a fresh network, cloning the
    /// environment into `config.num_lanes` VecEnv lanes.
    pub fn new(env: E, backbone: Backbone, config: PpoConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = backbone.build(&env, &mut rng);
        let adam = Adam::new(config.lr);
        let venv = VecEnv::new(config.num_lanes.max(1), env, seed)
            .expect("at least one lane after clamping");
        Self {
            venv,
            net,
            backbone,
            adam,
            config,
            rng,
            total_steps: 0,
            recent: VecDeque::new(),
            recent_cap: 100,
            replicas: Vec::new(),
        }
    }
}

impl<E: Environment + Send> Trainer<E> {
    /// Creates a trainer over an existing [`VecEnv`] (heterogeneous lanes).
    pub fn from_vecenv(venv: VecEnv<E>, backbone: Backbone, config: PpoConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let net = backbone.build(venv.lane(0), &mut rng);
        let adam = Adam::new(config.lr);
        Self {
            venv,
            net,
            backbone,
            adam,
            config,
            rng,
            total_steps: 0,
            recent: VecDeque::new(),
            recent_cap: 100,
            replicas: Vec::new(),
        }
    }

    /// The first lane's environment (e.g. to inspect its action space).
    pub fn env(&self) -> &E {
        self.venv.lane(0)
    }

    /// Mutable access to the first lane's environment (e.g. to force
    /// secrets for evaluation between rollouts).
    pub fn env_mut(&mut self) -> &mut E {
        self.venv.lane_mut(0)
    }

    /// The vectorized environment driving rollouts.
    pub fn vecenv(&self) -> &VecEnv<E> {
        &self.venv
    }

    /// Number of parallel rollout lanes.
    pub fn num_lanes(&self) -> usize {
        self.venv.num_lanes()
    }

    /// The policy network.
    pub fn net_mut(&mut self) -> &mut dyn PolicyValueNet {
        self.net.as_mut()
    }

    /// Total environment steps taken so far.
    pub fn total_steps(&self) -> u64 {
        self.total_steps
    }

    /// Paper-style epoch count (`steps / steps_per_epoch`).
    pub fn epochs(&self) -> f64 {
        self.total_steps as f64 / self.config.steps_per_epoch as f64
    }

    /// Average return over the trailing episode window.
    pub fn avg_return(&self) -> f32 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().map(|(r, _, _)| r).sum::<f32>() / self.recent.len() as f32
    }

    /// Average episode length over the trailing window.
    pub fn avg_length(&self) -> f32 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().map(|(_, l, _)| *l as f32).sum::<f32>() / self.recent.len() as f32
    }

    /// Guess accuracy over the trailing window.
    pub fn accuracy(&self) -> f32 {
        if self.recent.is_empty() {
            return 0.0;
        }
        self.recent.iter().filter(|(_, _, c)| *c).count() as f32 / self.recent.len() as f32
    }

    /// Runs one PPO update (collect + optimize).
    pub fn train_update(&mut self) -> UpdateStats {
        let cfg = self.config;
        let batch = collect(
            &mut self.venv,
            self.net.as_mut(),
            cfg.horizon,
            cfg.gamma,
            cfg.lambda,
            &mut self.rng,
        );
        self.total_steps += batch.actions.len() as u64;
        // Track per-episode results for convergence reporting. The tally is
        // aggregated, so spread it uniformly over the finished episodes.
        for i in 0..batch.episodes.count {
            let avg_r = batch.episodes.avg_return();
            let avg_l = batch.episodes.avg_length() as usize;
            let correct = i < batch.episodes.correct;
            self.recent.push_back((avg_r, avg_l.max(1), correct));
            while self.recent.len() > self.recent_cap {
                self.recent.pop_front();
            }
        }

        // Normalize advantages.
        let n = batch.actions.len();
        let mean = batch.advantages.iter().sum::<f32>() / n as f32;
        let var = batch
            .advantages
            .iter()
            .map(|a| (a - mean) * (a - mean))
            .sum::<f32>()
            / n as f32;
        let std = var.sqrt().max(1e-6);
        let advantages: Vec<f32> = batch.advantages.iter().map(|a| (a - mean) / std).collect();

        let mut stats = UpdateStats {
            episodes: batch.episodes,
            ..UpdateStats::default()
        };
        let mut loss_samples = 0usize;
        // Replicas for the sharded update: one per shard beyond shard 0
        // (which runs in place on the primary net), sized by the config —
        // never by the pool — and reused across updates.
        let extra_shards = cfg.grad_shards.max(1) - 1;
        while self.replicas.len() < extra_shards {
            self.replicas.push(self.net.clone_box());
        }
        self.replicas.truncate(extra_shards);
        let mut indices: Vec<usize> = (0..n).collect();
        for _ in 0..cfg.epochs_per_update {
            indices.shuffle(&mut self.rng);
            for chunk in indices.chunks(cfg.minibatch) {
                let ctx = MinibatchCtx {
                    batch: &batch,
                    advantages: &advantages,
                    clip: cfg.clip,
                    entropy_coef: cfg.entropy_coef,
                    value_coef: cfg.value_coef,
                    inv: 1.0 / chunk.len() as f32,
                };
                let mut sums = LossSums::default();
                if self.replicas.is_empty() {
                    // The historical single-threaded update, verbatim.
                    let obs = batch.obs.gather_rows(chunk);
                    self.net.zero_grad();
                    self.net.train_batch(&obs, &mut |i, logits, value| {
                        row_grad(&ctx, chunk[i], logits, value, &mut sums)
                    });
                } else {
                    // Data-parallel: shard 0 runs in place on the primary
                    // net, the rest on weight-synced replicas; gradients
                    // and loss sums reduce in fixed shard order.
                    sums = sharded_minibatch(self.net.as_mut(), &mut self.replicas, &ctx, chunk);
                }
                stats.grad_norm =
                    clip_global_grad_norm(cfg.max_grad_norm, |f| self.net.visit_params(f));
                self.adam.step(|f| self.net.visit_params(f));
                stats.policy_loss += sums.policy_loss;
                stats.value_loss += sums.value_loss;
                stats.entropy += sums.entropy;
                loss_samples += chunk.len();
            }
        }
        if loss_samples > 0 {
            stats.policy_loss /= loss_samples as f32;
            stats.value_loss /= loss_samples as f32;
            stats.entropy /= loss_samples as f32;
        }
        stats
    }

    /// Trains until the trailing average episode return reaches
    /// `return_threshold` (with a full trailing window) or `max_steps`
    /// environment steps have been taken.
    pub fn train_until(&mut self, return_threshold: f32, max_steps: u64) -> TrainResult {
        self.train_until_with(return_threshold, max_steps, |_, _| {})
    }

    /// [`Trainer::train_until`] with a progress callback invoked after
    /// every update with `(total env steps, trailing average return)`.
    ///
    /// This *is* the training loop — `train_until` delegates here with a
    /// no-op observer — so anything driving training through the callback
    /// (the serving daemon's progress stream) stays bit-identical to the
    /// one-shot path by construction.
    pub fn train_until_with(
        &mut self,
        return_threshold: f32,
        max_steps: u64,
        mut on_update: impl FnMut(u64, f32),
    ) -> TrainResult {
        let mut converged_at = None;
        while self.total_steps < max_steps {
            self.train_update();
            on_update(self.total_steps, self.avg_return());
            if converged_at.is_none()
                && self.recent.len() >= self.recent_cap / 2
                && self.avg_return() >= return_threshold
            {
                converged_at = Some(self.total_steps);
                break;
            }
        }
        TrainResult {
            converged_at_steps: converged_at,
            converged_at_epochs: converged_at
                .map(|s| s as f64 / self.config.steps_per_epoch as f64),
            total_steps: self.total_steps,
            final_avg_return: self.avg_return(),
            final_avg_length: self.avg_length(),
            final_accuracy: self.accuracy(),
        }
    }

    /// Splits the trainer into the pieces evaluation needs: the first
    /// lane's environment, the network, and the trainer RNG.
    pub fn parts_mut(&mut self) -> (&mut E, &mut dyn PolicyValueNet, &mut StdRng) {
        (self.venv.lane_mut(0), self.net.as_mut(), &mut self.rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_gym::{env::CacheGuessingGame, EnvConfig};

    #[test]
    fn update_runs_and_reports_stats() {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![32] },
            PpoConfig {
                horizon: 256,
                minibatch: 64,
                ..PpoConfig::default()
            },
            0,
        );
        let stats = t.train_update();
        assert!(stats.episodes.count > 0);
        assert!(
            stats.entropy > 0.0,
            "entropy must be positive early in training"
        );
        assert_eq!(t.total_steps(), 256);
    }

    #[test]
    fn returns_improve_on_trivial_env() {
        // Sanity: on the flush+reload config a short training run must beat
        // the untrained policy's average return. (Full convergence is
        // exercised by the benchmark harness; this is a smoke test.)
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4().with_window(8)).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![32] },
            PpoConfig {
                horizon: 512,
                ..PpoConfig::small_env()
            },
            1,
        );
        let first = t.train_update().episodes.avg_return();
        for _ in 0..25 {
            t.train_update();
        }
        let last = t.avg_return();
        assert!(
            last > first + 0.2,
            "training must improve returns: first {first}, last {last}"
        );
    }

    #[test]
    fn transformer_backbone_trains() {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4().with_window(8)).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Transformer {
                d_model: 16,
                num_heads: 2,
                ff_dim: 32,
            },
            PpoConfig {
                horizon: 128,
                minibatch: 64,
                epochs_per_update: 2,
                ..PpoConfig::default()
            },
            2,
        );
        let stats = t.train_update();
        assert!(stats.episodes.count > 0);
    }

    #[test]
    fn multi_lane_update_collects_across_lanes() {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![32] },
            PpoConfig {
                horizon: 256,
                minibatch: 64,
                num_lanes: 8,
                ..PpoConfig::default()
            },
            0,
        );
        assert_eq!(t.num_lanes(), 8);
        let stats = t.train_update();
        assert!(stats.episodes.count > 0);
        assert_eq!(t.total_steps(), 256, "256 divides evenly across 8 lanes");
        assert!(stats.entropy > 0.0);
    }

    #[test]
    fn multi_lane_training_improves_returns() {
        // The vectorized path must actually learn, not just run.
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4().with_window(8)).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![32] },
            PpoConfig {
                horizon: 512,
                num_lanes: 4,
                ..PpoConfig::small_env()
            },
            1,
        );
        let first = t.train_update().episodes.avg_return();
        for _ in 0..25 {
            t.train_update();
        }
        let last = t.avg_return();
        assert!(
            last > first + 0.2,
            "vectorized training must improve returns: first {first}, last {last}"
        );
    }

    #[test]
    fn sharded_update_collects_and_learns() {
        // The data-parallel path must actually train, not just run.
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4().with_window(8)).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![32] },
            PpoConfig {
                horizon: 512,
                num_lanes: 4,
                grad_shards: 4,
                ..PpoConfig::small_env()
            },
            1,
        );
        let first = t.train_update().episodes.avg_return();
        for _ in 0..25 {
            t.train_update();
        }
        let last = t.avg_return();
        assert!(
            last > first + 0.2,
            "sharded training must improve returns: first {first}, last {last}"
        );
    }

    #[test]
    fn sharded_training_is_bitwise_deterministic() {
        // Two trainers, same seed and shard layout: stats and final
        // weight bytes must agree exactly, whatever the worker pool does.
        let run = || {
            let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            let mut t = Trainer::new(
                env,
                Backbone::Mlp { hidden: vec![16] },
                PpoConfig {
                    horizon: 256,
                    minibatch: 64,
                    epochs_per_update: 2,
                    num_lanes: 2,
                    grad_shards: 3,
                    ..PpoConfig::default()
                },
                9,
            );
            let mut stats = Vec::new();
            for _ in 0..3 {
                stats.push(t.train_update());
            }
            (stats, autocat_nn::state::params_digest(t.net_mut()))
        };
        let (stats_a, digest_a) = run();
        let (stats_b, digest_b) = run();
        assert_eq!(stats_a, stats_b);
        assert_eq!(digest_a, digest_b, "weights must be bit-identical");
    }

    #[test]
    fn single_lane_trainer_matches_default_config() {
        // num_lanes: 1 (the default) and an explicit with_lanes(1) must
        // produce identical training traces for identical seeds.
        let mk = |cfg: PpoConfig| {
            let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            let mut t = Trainer::new(env, Backbone::Mlp { hidden: vec![16] }, cfg, 5);
            let s = t.train_update();
            (s.policy_loss, s.value_loss, s.entropy, s.episodes)
        };
        let base = PpoConfig {
            horizon: 128,
            minibatch: 64,
            epochs_per_update: 2,
            ..PpoConfig::default()
        };
        assert_eq!(mk(base), mk(base.with_lanes(1)));
    }

    #[test]
    fn epochs_metric_uses_paper_units() {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut t = Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![16] },
            PpoConfig {
                horizon: 300,
                steps_per_epoch: 3000,
                ..PpoConfig::default()
            },
            3,
        );
        t.train_update();
        assert!((t.epochs() - 0.1).abs() < 1e-9);
    }
}
