//! Trainer checkpoints: weights, optimizer moments and RNG state, with a
//! bit-exact resume guarantee.
//!
//! [`Trainer::save_checkpoint`] captures everything training depends on —
//! network parameters with their Adam moments, the optimizer step counter,
//! the master RNG, every VecEnv lane RNG, the step counter and the
//! trailing episode window — as a [`Value`] tree written out as JSON
//! (`.json` extension, the interchange/golden form) or as the compact
//! binary codec from `autocat-store` (any other extension — the hot
//! path). [`Trainer::load_checkpoint`] sniffs the codec from the bytes
//! and rebuilds a trainer from the file plus a freshly-built prototype
//! environment; both codecs carry the identical tree, so the guarantee
//! below is codec-independent.
//!
//! # The bit-exact resume guarantee
//!
//! A loaded trainer continues training **bit-for-bit identically** to the
//! trainer that saved the checkpoint (and kept running), provided the
//! caller passes an environment built from the same configuration. This
//! works because checkpoints are taken at update boundaries and rollout
//! collection starts by resetting every lane: after a reset, an
//! environment's entire state is a function of the RNG stream that drove
//! it (stochastic backends are explicitly reseeded from that stream, see
//! `CacheBackend::reseed` in `autocat-cache`), so restoring the RNG
//! states restores the trajectory. Mid-episode environment state is the
//! one thing deliberately *not* stored — the next collection discards it
//! on both sides of the save.
//!
//! The float codec is exact (each `f32` is written as its `f64` widening
//! with shortest-round-trip formatting), so no precision is lost through
//! the text file.
//!
//! One caveat: loading always rebuilds a *homogeneous* VecEnv by cloning
//! the prototype into every lane. A trainer built over heterogeneous lanes
//! ([`Trainer::from_vecenv`]) can save, but the resume guarantee only
//! covers trainers whose lanes share one configuration (the
//! [`Trainer::new`] path — which is what scenarios and the sweep harness
//! use).

use crate::trainer::{Backbone, PpoConfig, Trainer};
use autocat_gym::{Environment, VecEnv};
use autocat_nn::state::{adam_from_value, adam_to_value, load_params, params_to_value};
use autocat_nn::value::{self, req, u64_from, u64_value, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::path::Path;

/// Format version written into every checkpoint file.
pub const CHECKPOINT_VERSION: i64 = 1;

/// Encodes a [`Backbone`] as a `kind`-discriminated table (shared with
/// scenario files).
pub fn backbone_to_value(backbone: &Backbone) -> Value {
    let mut table = Value::table();
    match backbone {
        Backbone::Mlp { hidden } => {
            table.set("kind", Value::Str("mlp".into()));
            table.set(
                "hidden",
                Value::Array(hidden.iter().map(|h| Value::Int(*h as i64)).collect()),
            );
        }
        Backbone::Transformer {
            d_model,
            num_heads,
            ff_dim,
        } => {
            table.set("kind", Value::Str("transformer".into()));
            table.set("d_model", Value::Int(*d_model as i64));
            table.set("num_heads", Value::Int(*num_heads as i64));
            table.set("ff_dim", Value::Int(*ff_dim as i64));
        }
    }
    table
}

/// Decodes a [`Backbone`] written by [`backbone_to_value`].
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn backbone_from_value(value: &Value) -> Result<Backbone, String> {
    let table = value.as_table()?;
    match req(table, "kind")?.as_str()? {
        "mlp" => Ok(Backbone::Mlp {
            hidden: req(table, "hidden")?
                .as_array()?
                .iter()
                .map(Value::as_usize)
                .collect::<Result<_, _>>()?,
        }),
        "transformer" => Ok(Backbone::Transformer {
            d_model: req(table, "d_model")?.as_usize()?,
            num_heads: req(table, "num_heads")?.as_usize()?,
            ff_dim: req(table, "ff_dim")?.as_usize()?,
        }),
        other => Err(format!("unknown backbone kind `{other}`")),
    }
}

/// Encodes a [`PpoConfig`] as a flat table (shared with scenario files).
pub fn ppo_config_to_value(ppo: &PpoConfig) -> Value {
    let mut table = Value::table();
    table.set("lr", Value::Float(f64::from(ppo.lr)));
    table.set("gamma", Value::Float(f64::from(ppo.gamma)));
    table.set("lambda", Value::Float(f64::from(ppo.lambda)));
    table.set("clip", Value::Float(f64::from(ppo.clip)));
    table.set("entropy_coef", Value::Float(f64::from(ppo.entropy_coef)));
    table.set("value_coef", Value::Float(f64::from(ppo.value_coef)));
    table.set("horizon", Value::Int(ppo.horizon as i64));
    table.set(
        "epochs_per_update",
        Value::Int(ppo.epochs_per_update as i64),
    );
    table.set("minibatch", Value::Int(ppo.minibatch as i64));
    table.set("max_grad_norm", Value::Float(f64::from(ppo.max_grad_norm)));
    table.set("steps_per_epoch", Value::Int(ppo.steps_per_epoch as i64));
    table.set("num_lanes", Value::Int(ppo.num_lanes as i64));
    // Written only when it changes the math: a single shard is the
    // historical update, and omitting the key keeps every pre-existing
    // scenario/checkpoint file (and the golden fixtures) byte-stable.
    if ppo.grad_shards > 1 {
        table.set("grad_shards", Value::Int(ppo.grad_shards as i64));
    }
    table
}

/// Decodes a [`PpoConfig`] written by [`ppo_config_to_value`].
///
/// # Errors
///
/// Returns a message naming the missing or mistyped field.
pub fn ppo_config_from_value(value: &Value) -> Result<PpoConfig, String> {
    let table = value.as_table()?;
    Ok(PpoConfig {
        lr: req(table, "lr")?.as_f32()?,
        gamma: req(table, "gamma")?.as_f32()?,
        lambda: req(table, "lambda")?.as_f32()?,
        clip: req(table, "clip")?.as_f32()?,
        entropy_coef: req(table, "entropy_coef")?.as_f32()?,
        value_coef: req(table, "value_coef")?.as_f32()?,
        horizon: req(table, "horizon")?.as_usize()?,
        epochs_per_update: req(table, "epochs_per_update")?.as_usize()?,
        minibatch: req(table, "minibatch")?.as_usize()?,
        max_grad_norm: req(table, "max_grad_norm")?.as_f32()?,
        steps_per_epoch: req(table, "steps_per_epoch")?.as_usize()?,
        num_lanes: req(table, "num_lanes")?.as_usize()?,
        grad_shards: match table.get("grad_shards") {
            Some(value) => value.as_usize()?.max(1),
            None => 1,
        },
    })
}

/// Decodes checkpoint bytes in whichever codec they are: framed binary
/// when the `ACSB` magic leads, JSON text otherwise. This is the single
/// sniffing point every loader (trainer, store, daemon) goes through.
///
/// # Errors
///
/// Returns the codec's parse error; never panics on malformed input.
pub fn checkpoint_value_from_bytes(bytes: &[u8]) -> Result<Value, String> {
    if autocat_store::codec::is_binary(bytes) {
        autocat_store::codec::decode(bytes)
    } else {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| "checkpoint is neither binary (no magic) nor UTF-8 JSON".to_string())?;
        value::from_json(text)
    }
}

fn rng_state_to_value(state: [u64; 4]) -> Value {
    Value::Array(state.iter().map(|&w| u64_value(w)).collect())
}

fn rng_state_from_value(value: &Value) -> Result<[u64; 4], String> {
    let words = value.as_array()?;
    if words.len() != 4 {
        return Err(format!("RNG state needs 4 words, found {}", words.len()));
    }
    let mut state = [0u64; 4];
    for (slot, word) in state.iter_mut().zip(words) {
        *slot = u64_from(word)?;
    }
    Ok(state)
}

impl<E: Environment + Send> Trainer<E> {
    /// Serializes the trainer's full training state as a [`Value`] tree.
    ///
    /// Takes `&mut` because parameter visitation does; the trainer is not
    /// modified.
    pub fn to_checkpoint_value(&mut self) -> Value {
        let mut net_table = Value::table();
        net_table.set("obs_dim", Value::Int(self.net.obs_dim() as i64));
        net_table.set("num_actions", Value::Int(self.net.num_actions() as i64));

        let recent = Value::Array(
            self.recent
                .iter()
                .map(|&(ret, len, correct)| {
                    let mut episode = Value::table();
                    episode.set("ret", Value::Float(f64::from(ret)));
                    episode.set("len", Value::Int(len as i64));
                    episode.set("correct", Value::Bool(correct));
                    episode
                })
                .collect(),
        );

        let mut table = Value::table();
        table.set("version", Value::Int(CHECKPOINT_VERSION));
        table.set("backbone", backbone_to_value(&self.backbone));
        table.set("config", ppo_config_to_value(&self.config));
        table.set("net", net_table);
        table.set("total_steps", u64_value(self.total_steps));
        table.set("recent", recent);
        table.set("recent_cap", Value::Int(self.recent_cap as i64));
        table.set("adam", adam_to_value(&self.adam));
        table.set("rng", rng_state_to_value(self.rng.state()));
        table.set(
            "lane_rngs",
            Value::Array(
                self.venv
                    .rng_states()
                    .into_iter()
                    .map(rng_state_to_value)
                    .collect(),
            ),
        );
        table.set("params", params_to_value(self.net.as_mut()));
        table
    }

    /// Writes the checkpoint to `path`, creating parent directories as
    /// needed. The codec follows the extension: `.json` writes the
    /// interchange JSON text, anything else (canonically `.ckpt.bin`) the
    /// compact binary form — both carry the identical [`Value`] tree, so
    /// the choice is pure speed, never fidelity.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save_checkpoint(&mut self, path: impl AsRef<Path>) -> Result<(), String> {
        let path = path.as_ref();
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("creating {}: {e}", parent.display()))?;
        }
        let tree = self.to_checkpoint_value();
        let bytes = if path.extension().is_some_and(|e| e == "json") {
            value::to_json(&tree).into_bytes()
        } else {
            autocat_store::codec::encode(&tree)
        };
        std::fs::write(path, bytes).map_err(|e| format!("writing {}: {e}", path.display()))
    }
}

impl<E: Environment + Clone + Send> Trainer<E> {
    /// Rebuilds a trainer from a checkpoint [`Value`] tree and a prototype
    /// environment built from the **same configuration** the saved trainer
    /// used (the checkpoint validates the observation/action dimensions
    /// against it). See the [module docs](self) for the resume guarantee.
    ///
    /// # Errors
    ///
    /// Returns an error on a version, dimension or parameter mismatch, or
    /// malformed input.
    pub fn from_checkpoint_value(value: &Value, env: E) -> Result<Self, String> {
        let table = value.as_table()?;
        let version = req(table, "version")?.as_i64()?;
        if version != CHECKPOINT_VERSION {
            return Err(format!(
                "unsupported checkpoint version {version} (this build reads {CHECKPOINT_VERSION})"
            ));
        }
        let backbone = backbone_from_value(req(table, "backbone")?)?;
        let config = ppo_config_from_value(req(table, "config")?)?;

        let net_table = req(table, "net")?.as_table()?;
        let saved_obs = req(net_table, "obs_dim")?.as_usize()?;
        let saved_actions = req(net_table, "num_actions")?.as_usize()?;
        if (env.obs_dim(), env.num_actions()) != (saved_obs, saved_actions) {
            return Err(format!(
                "environment has (obs_dim, num_actions) = ({}, {}), checkpoint was trained \
                 on ({saved_obs}, {saved_actions}) — pass an environment built from the \
                 scenario the checkpoint came from",
                env.obs_dim(),
                env.num_actions()
            ));
        }

        let mut venv = VecEnv::new(config.num_lanes.max(1), env, 0)?;
        let lane_states = req(table, "lane_rngs")?
            .as_array()?
            .iter()
            .map(rng_state_from_value)
            .collect::<Result<Vec<_>, _>>()?;
        venv.restore_rng_states(&lane_states)?;

        // The architecture comes from the backbone; the init draws are
        // immediately overwritten by the stored parameters.
        let mut init_rng = StdRng::seed_from_u64(0);
        let mut net = backbone.build(venv.lane(0), &mut init_rng);
        load_params(net.as_mut(), req(table, "params")?)?;

        let recent = req(table, "recent")?
            .as_array()?
            .iter()
            .map(|episode| {
                let episode = episode.as_table()?;
                Ok((
                    req(episode, "ret")?.as_f32()?,
                    req(episode, "len")?.as_usize()?,
                    req(episode, "correct")?.as_bool()?,
                ))
            })
            .collect::<Result<VecDeque<_>, String>>()?;

        Ok(Self {
            venv,
            net,
            backbone,
            adam: adam_from_value(req(table, "adam")?)?,
            config,
            rng: StdRng::from_state(rng_state_from_value(req(table, "rng")?)?),
            total_steps: u64_from(req(table, "total_steps")?)?,
            recent,
            recent_cap: req(table, "recent_cap")?.as_usize()?,
            // Transient: rebuilt lazily on the first sharded update.
            replicas: Vec::new(),
        })
    }

    /// Loads a checkpoint written by [`Trainer::save_checkpoint`] in
    /// either codec: the binary magic is sniffed from the bytes, with a
    /// JSON fallback for legacy text checkpoints regardless of extension.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or does not match the
    /// environment.
    pub fn load_checkpoint(path: impl AsRef<Path>, env: E) -> Result<Self, String> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        let parsed = checkpoint_value_from_bytes(&bytes)
            .map_err(|e| format!("parsing {}: {e}", path.display()))?;
        Self::from_checkpoint_value(&parsed, env)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval;
    use autocat_cache::PolicyKind;
    use autocat_gym::{env::CacheGuessingGame, CacheSpec, EnvConfig};

    fn env() -> CacheGuessingGame {
        CacheGuessingGame::new(EnvConfig::flush_reload_fa4().with_window(8)).unwrap()
    }

    fn random_policy_env() -> CacheGuessingGame {
        let mut cfg = EnvConfig::flush_reload_fa4().with_window(8);
        match &mut cfg.cache {
            CacheSpec::Single(c) => c.policy = PolicyKind::Random,
            _ => unreachable!("flush_reload_fa4 is single-level"),
        }
        CacheGuessingGame::new(cfg).unwrap()
    }

    fn trainer_sharded(
        env: CacheGuessingGame,
        lanes: usize,
        shards: usize,
        seed: u64,
    ) -> Trainer<CacheGuessingGame> {
        Trainer::new(
            env,
            Backbone::Mlp { hidden: vec![16] },
            PpoConfig {
                horizon: 128,
                minibatch: 64,
                epochs_per_update: 2,
                num_lanes: lanes,
                grad_shards: shards,
                ..PpoConfig::default()
            },
            seed,
        )
    }

    fn trainer(env: CacheGuessingGame, lanes: usize, seed: u64) -> Trainer<CacheGuessingGame> {
        trainer_sharded(env, lanes, 1, seed)
    }

    fn ckpt_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join("autocat-ppo-ckpt-tests")
            .join(name)
    }

    /// Train → save → (keep training | load and train): both sides must
    /// produce bit-identical update statistics, weights and greedy
    /// evaluations. This is the resume guarantee of the module docs.
    fn assert_bit_exact_resume(make_env: fn() -> CacheGuessingGame, lanes: usize, name: &str) {
        assert_bit_exact_resume_sharded(make_env, lanes, 1, name);
    }

    fn assert_bit_exact_resume_sharded(
        make_env: fn() -> CacheGuessingGame,
        lanes: usize,
        shards: usize,
        name: &str,
    ) {
        let mut original = trainer_sharded(make_env(), lanes, shards, 11);
        for _ in 0..2 {
            original.train_update();
        }
        let path = ckpt_path(name);
        original.save_checkpoint(&path).unwrap();
        let mut resumed = Trainer::load_checkpoint(&path, make_env()).unwrap();

        assert_eq!(resumed.total_steps(), original.total_steps());
        assert_eq!(resumed.avg_return(), original.avg_return());
        for round in 0..3 {
            let a = original.train_update();
            let b = resumed.train_update();
            assert_eq!(a, b, "update {round} diverged after resume");
        }
        // Greedy extraction must agree too (same weights, same RNG state).
        let (env_a, net_a, rng_a) = original.parts_mut();
        let seq_a = eval::extract_sequence(env_a, net_a, rng_a);
        let (env_b, net_b, rng_b) = resumed.parts_mut();
        let seq_b = eval::extract_sequence(env_b, net_b, rng_b);
        assert_eq!(seq_a, seq_b);
    }

    #[test]
    fn resume_is_bit_exact_single_lane() {
        assert_bit_exact_resume(env, 1, "single_lane.ckpt.json");
    }

    #[test]
    fn resume_is_bit_exact_multi_lane() {
        assert_bit_exact_resume(env, 4, "multi_lane.ckpt.json");
    }

    #[test]
    fn resume_is_bit_exact_under_the_sharded_trainer() {
        // The parallel (data-parallel gradient) trainer must uphold the
        // same resume guarantee as the single-threaded one: grad_shards
        // rides in the checkpointed config, and the fixed-order reduction
        // makes continued training deterministic.
        assert_bit_exact_resume_sharded(env, 2, 3, "sharded.ckpt.json");
    }

    #[test]
    fn resume_is_bit_exact_on_a_random_replacement_cache() {
        // Random replacement draws from the cache's internal RNG; episode
        // resets reseed it from the episode stream (CacheBackend::reseed),
        // which is what makes this hold.
        assert_bit_exact_resume(random_policy_env, 2, "random_policy.ckpt.json");
    }

    #[test]
    fn loaded_policy_evaluates_identically_to_the_in_memory_one() {
        // The satellite requirement: train N steps → save → load → greedy
        // eval actions identical to the in-memory policy's.
        let mut original = trainer(env(), 1, 3);
        for _ in 0..3 {
            original.train_update();
        }
        let path = ckpt_path("eval_identical.ckpt.json");
        original.save_checkpoint(&path).unwrap();
        let mut loaded = Trainer::load_checkpoint(&path, env()).unwrap();

        use autocat_gym::env::Secret;
        for secret in [Secret::Addr(0), Secret::Addr(1)] {
            let (env_a, net_a, rng_a) = original.parts_mut();
            env_a.force_secret(Some(secret));
            let seq_a = eval::extract_sequence(env_a, net_a, rng_a);
            env_a.force_secret(None);
            let (env_b, net_b, rng_b) = loaded.parts_mut();
            env_b.force_secret(Some(secret));
            let seq_b = eval::extract_sequence(env_b, net_b, rng_b);
            env_b.force_secret(None);
            assert_eq!(seq_a.actions, seq_b.actions, "secret {secret:?}");
        }
    }

    #[test]
    fn checkpoint_value_round_trips_exactly() {
        let mut t = trainer(env(), 2, 9);
        t.train_update();
        let saved = t.to_checkpoint_value();
        let reparsed = value::from_json(&value::to_json(&saved)).unwrap();
        assert_eq!(reparsed, saved, "JSON text must round-trip the tree");
        let mut loaded = Trainer::from_checkpoint_value(&reparsed, env()).unwrap();
        assert_eq!(loaded.to_checkpoint_value(), saved);
    }

    /// The ISSUE 7 interchange contract: a trained checkpoint pushed
    /// through JSON and through the binary codec decodes to the *same*
    /// tree — weights, Adam moments, master RNG and every lane RNG stream
    /// bit-for-bit — and both loaded trainers keep training identically.
    fn assert_json_binary_bit_exact(lanes: usize, name: &str) {
        let mut t = trainer(env(), lanes, 21);
        for _ in 0..2 {
            t.train_update();
        }
        let saved = t.to_checkpoint_value();

        let via_json = value::from_json(&value::to_json(&saved)).unwrap();
        let via_binary =
            autocat_store::codec::decode(&autocat_store::codec::encode(&saved)).unwrap();
        assert_eq!(via_json, via_binary, "codecs disagree on the tree");
        assert_eq!(via_binary, saved);

        // Same through the file layer: one save per codec, then the
        // sniffing loader, then identical continued training.
        let json_path = ckpt_path(&format!("{name}.ckpt.json"));
        let bin_path = ckpt_path(&format!("{name}.ckpt.bin"));
        t.save_checkpoint(&json_path).unwrap();
        t.save_checkpoint(&bin_path).unwrap();
        assert!(autocat_store::codec::is_binary(
            &std::fs::read(&bin_path).unwrap()
        ));
        let mut from_json_file = Trainer::load_checkpoint(&json_path, env()).unwrap();
        let mut from_bin_file = Trainer::load_checkpoint(&bin_path, env()).unwrap();
        assert_eq!(
            from_json_file.to_checkpoint_value(),
            from_bin_file.to_checkpoint_value()
        );
        for round in 0..2 {
            assert_eq!(
                from_json_file.train_update(),
                from_bin_file.train_update(),
                "update {round} diverged between codecs"
            );
        }
    }

    #[test]
    fn json_and_binary_codecs_are_bit_exact_single_lane() {
        assert_json_binary_bit_exact(1, "codec_single");
    }

    #[test]
    fn json_and_binary_codecs_are_bit_exact_multi_lane() {
        assert_json_binary_bit_exact(4, "codec_multi");
    }

    #[test]
    fn binary_checkpoint_resume_is_bit_exact() {
        // The resume guarantee holds through the binary hot path too.
        let mut original = trainer(env(), 2, 13);
        for _ in 0..2 {
            original.train_update();
        }
        let path = ckpt_path("binary_resume.ckpt.bin");
        original.save_checkpoint(&path).unwrap();
        let mut resumed = Trainer::load_checkpoint(&path, env()).unwrap();
        for round in 0..3 {
            assert_eq!(
                original.train_update(),
                resumed.train_update(),
                "update {round} diverged after binary resume"
            );
        }
    }

    #[test]
    fn truncated_binary_checkpoint_is_an_error_not_a_panic() {
        let mut t = trainer(env(), 1, 4);
        t.train_update();
        let path = ckpt_path("truncated.ckpt.bin");
        t.save_checkpoint(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for frac in [2usize, 3, 10, 1000] {
            let cut = ckpt_path(&format!("truncated_{frac}.ckpt.bin"));
            std::fs::write(&cut, &bytes[..bytes.len() / frac]).unwrap();
            let err = Trainer::load_checkpoint(&cut, env())
                .err()
                .expect("truncated binary checkpoint must be rejected");
            assert!(err.contains(".ckpt.bin"), "error names the file: {err}");
        }
        // Non-UTF-8 bytes with no magic: neither codec claims them.
        let junk = ckpt_path("junk.ckpt.bin");
        std::fs::write(&junk, [0xFFu8, 0xFE, 0x00, 0x01]).unwrap();
        assert!(Trainer::load_checkpoint(&junk, env()).is_err());
    }

    #[test]
    fn mismatched_environment_is_rejected() {
        let mut t = trainer(env(), 1, 0);
        t.train_update();
        let saved = t.to_checkpoint_value();
        let other = CacheGuessingGame::new(EnvConfig::prime_probe_dm4()).unwrap();
        let err = Trainer::<CacheGuessingGame>::from_checkpoint_value(&saved, other)
            .err()
            .expect("dimension mismatch must be rejected");
        assert!(err.contains("obs_dim"), "{err}");
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut t = trainer(env(), 1, 0);
        let mut saved = t.to_checkpoint_value();
        saved.set("version", Value::Int(CHECKPOINT_VERSION + 1));
        let err = Trainer::from_checkpoint_value(&saved, env())
            .err()
            .expect("future versions must be rejected");
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn backbone_and_ppo_config_codecs_round_trip() {
        for backbone in [
            Backbone::default_mlp(),
            Backbone::small_transformer(),
            Backbone::Mlp { hidden: vec![7] },
        ] {
            let back = backbone_from_value(&backbone_to_value(&backbone)).unwrap();
            assert_eq!(back, backbone);
        }
        let ppo = PpoConfig::small_env().with_lanes(6).with_grad_shards(4);
        assert_eq!(
            ppo_config_from_value(&ppo_config_to_value(&ppo)).unwrap(),
            ppo
        );
    }

    #[test]
    fn grad_shards_is_omitted_at_one_and_defaults_on_old_files() {
        // Single-shard configs serialize exactly as they did before the
        // field existed (keeps golden fixtures byte-stable), and tables
        // written by older builds — no `grad_shards` key — decode to 1.
        let ppo = PpoConfig::default();
        let encoded = ppo_config_to_value(&ppo);
        assert!(encoded.as_table().unwrap().get("grad_shards").is_none());
        assert_eq!(ppo_config_from_value(&encoded).unwrap().grad_shards, 1);

        let sharded = ppo.with_grad_shards(8);
        let encoded = ppo_config_to_value(&sharded);
        assert!(encoded.as_table().unwrap().get("grad_shards").is_some());
        assert_eq!(ppo_config_from_value(&encoded).unwrap(), sharded);
    }

    #[test]
    fn truncated_checkpoint_file_is_an_error_not_a_panic() {
        let mut t = trainer(env(), 1, 4);
        t.train_update();
        let path = ckpt_path("truncated.ckpt.json");
        t.save_checkpoint(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        // Cut the file at several depths, including mid-token.
        for frac in [2usize, 3, 10, 100] {
            let cut = ckpt_path(&format!("truncated_{frac}.ckpt.json"));
            std::fs::write(&cut, &text[..text.len() / frac]).unwrap();
            let err = Trainer::load_checkpoint(&cut, env())
                .err()
                .expect("truncated checkpoint must be rejected");
            assert!(err.contains(".ckpt.json"), "error names the file: {err}");
        }
    }

    #[test]
    fn corrupt_checkpoint_files_are_errors_not_panics() {
        let dir = ckpt_path("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        for (name, text) in [
            ("not_json.ckpt.json", "definitely not json"),
            ("wrong_shape.ckpt.json", "[1, 2, 3]"),
            ("empty_table.ckpt.json", "{}"),
            (
                "mistyped.ckpt.json",
                "{\"version\": \"one\", \"params\": 5}",
            ),
        ] {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            assert!(
                Trainer::load_checkpoint(&path, env()).is_err(),
                "{name} must fail to load"
            );
        }
        // A missing file is also an Err (not a panic).
        assert!(Trainer::load_checkpoint(dir.join("absent.ckpt.json"), env()).is_err());
    }

    #[test]
    fn version_mismatch_in_the_file_is_an_error() {
        let mut t = trainer(env(), 1, 5);
        let mut saved = t.to_checkpoint_value();
        saved.set("version", Value::Int(CHECKPOINT_VERSION + 7));
        let path = ckpt_path("future_version.ckpt.json");
        std::fs::write(&path, value::to_json(&saved)).unwrap();
        let err = Trainer::load_checkpoint(&path, env())
            .err()
            .expect("future version must be rejected");
        assert!(err.contains("version"), "{err}");
    }
}
