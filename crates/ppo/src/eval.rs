//! Policy evaluation and deterministic attack-sequence extraction.
//!
//! Two evaluation drivers share one statistics contract:
//!
//! * [`evaluate`] — the historical serial loop: one environment, one-row
//!   policy forwards, every random draw from the caller's RNG.
//! * [`evaluate_batched`] — the lane-batched engine: N environment lanes
//!   advance together against **one batched `net.forward` per step** over
//!   all live lanes (the same register-blocked matmul hot path training
//!   uses), with the episode budget split across lanes up front.
//!
//! Determinism contract (mirrors `VecEnv`'s):
//!
//! * **One lane**: every draw comes from the caller's RNG in exactly the
//!   serial loop's order, so [`evaluate_batched`] at one lane is
//!   bit-identical to [`evaluate`] — same [`EvalStats`], same RNG stream
//!   left behind.
//! * **Multiple lanes**: each lane owns an RNG stream derived from one
//!   caller draw via [`autocat_gym::lane_seed`], lane results merge in
//!   fixed lane order ([`EpisodeTally::merge`]), and the batched forward
//!   is bitwise thread-count-invariant (deterministic row-parallel
//!   matmul), so results depend only on `(inputs, lanes)` — never on
//!   `RAYON_NUM_THREADS` or scheduling.

use autocat_gym::{lane_seed, Environment};
use autocat_nn::models::PolicyValueNet;
use autocat_nn::{Categorical, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::rollout::EpisodeTally;

/// Aggregate evaluation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalStats {
    /// Episodes evaluated.
    pub episodes: usize,
    /// Episodes ending in a correct guess.
    pub correct: usize,
    /// Episodes ending in any guess.
    pub guessed: usize,
    /// Episodes terminated by a detector.
    pub detected: usize,
    /// Mean episode return.
    pub avg_return: f32,
    /// Mean episode length.
    pub avg_length: f32,
}

impl EvalStats {
    /// Fraction of **all** episodes ending in a correct guess — this is
    /// `correct / episodes` (the paper's "accuracy" column), *not*
    /// `correct / guessed`. Episodes that time out or are cut short by a
    /// detector count against accuracy; see [`EvalStats::guess_rate`] for
    /// how often the policy guessed at all.
    pub fn accuracy(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.correct as f64 / self.episodes as f64
        }
    }

    /// Fraction of episodes ending in any guess (`guessed / episodes`).
    /// `accuracy() <= guess_rate()` always; a gap between them means the
    /// policy is timing out or being stopped by a detector rather than
    /// guessing wrong.
    pub fn guess_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.guessed as f64 / self.episodes as f64
        }
    }

    /// Fraction of episodes flagged by a detector.
    pub fn detection_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.detected as f64 / self.episodes as f64
        }
    }

    /// FNV-1a digest ([`autocat_nn::state::fnv1a`]) over the exact bits of
    /// every field — the determinism-gate fingerprint `eval-bench`
    /// compares across `RAYON_NUM_THREADS` settings. Two stats digests are
    /// equal iff the stats are bitwise equal.
    pub fn digest(&self) -> u64 {
        let words = [
            self.episodes as u64,
            self.correct as u64,
            self.guessed as u64,
            self.detected as u64,
            u64::from(self.avg_return.to_bits()),
            u64::from(self.avg_length.to_bits()),
        ];
        autocat_nn::state::fnv1a(words.iter().flat_map(|w| w.to_le_bytes()))
    }

    fn from_tally(tally: &EpisodeTally, episodes: usize) -> Self {
        Self {
            episodes,
            correct: tally.correct,
            guessed: tally.guessed,
            detected: tally.detected,
            avg_return: tally.return_sum / episodes.max(1) as f32,
            avg_length: tally.length_sum as f32 / episodes.max(1) as f32,
        }
    }
}

/// Runs `episodes` evaluation episodes.
///
/// With `deterministic` the argmax action is taken; otherwise actions are
/// sampled (needed on stochastic caches, Sec. V-C random-policy study).
pub fn evaluate(
    env: &mut impl Environment,
    net: &mut dyn PolicyValueNet,
    episodes: usize,
    deterministic: bool,
    rng: &mut StdRng,
) -> EvalStats {
    let mut stats = EvalStats {
        episodes,
        ..EvalStats::default()
    };
    let mut return_sum = 0.0f32;
    let mut length_sum = 0usize;
    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        loop {
            let (logits, _) = net.forward(&Matrix::from_row(&obs));
            let dist = Categorical::from_logits(logits.row(0));
            let action = if deterministic {
                dist.argmax()
            } else {
                dist.sample(rng)
            };
            let result = env.step(action, rng);
            return_sum += result.reward;
            length_sum += 1;
            if result.done {
                if let Some(correct) = result.info.guessed {
                    stats.guessed += 1;
                    stats.correct += usize::from(correct);
                }
                stats.detected += usize::from(result.info.detected);
                break;
            }
            obs = result.obs;
        }
    }
    stats.avg_return = return_sum / episodes.max(1) as f32;
    stats.avg_length = length_sum as f32 / episodes.max(1) as f32;
    stats
}

/// The canonical lane width for reported evaluation statistics: the width
/// `Explorer` and the sweep report both evaluate on, so the two front ends
/// report the same numbers for the same trained policy. A fixed constant
/// (not a runtime knob) because the lane split is part of the sampling
/// plan — [`evaluate_batched`] clamps it to the episode budget.
pub const EVAL_LANES: usize = 8;

/// One finished episode observed by [`evaluate_batched`].
#[derive(Clone, Debug, PartialEq)]
pub struct EpisodeRecord {
    /// Lane that played the episode.
    pub lane: usize,
    /// Action indices in order.
    pub actions: Vec<usize>,
    /// Whether the episode ended in a correct guess.
    pub correct: bool,
    /// Whether the episode ended in any guess.
    pub guessed: bool,
    /// Whether a detector terminated the episode.
    pub detected: bool,
    /// Sum of rewards over the episode.
    pub episode_return: f32,
}

/// Everything a batched evaluation produced: the aggregate statistics plus
/// one record per episode (lane-major order: all of lane 0's episodes in
/// play order, then lane 1's, ...). The records are what the sweep report
/// builds its attack-category census from.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalReport {
    /// Aggregate statistics over every episode.
    pub stats: EvalStats,
    /// Per-episode records, lane-major.
    pub episodes: Vec<EpisodeRecord>,
}

/// One evaluation lane: a cloned environment playing its share of the
/// episode budget on its own RNG stream.
struct EvalLane<E> {
    env: E,
    rng: StdRng,
    obs: Vec<f32>,
    remaining: usize,
    episode_return: f32,
    actions: Vec<usize>,
    tally: EpisodeTally,
    records: Vec<EpisodeRecord>,
}

/// Runs `episodes` evaluation episodes across `lanes` environment lanes
/// with one batched policy forward per step over all live lanes.
///
/// The episode budget is split up front — lane `i` plays
/// `episodes / lanes` episodes plus one more when `i < episodes % lanes` —
/// so each lane's workload, RNG stream and statistics are independent of
/// every other lane's timing. Lanes run their episodes concurrently
/// (batched forwards); a lane that exhausts its quota goes quiet and drops
/// out of the batch. `lanes` is clamped to `[1, episodes]`.
///
/// `env` is the prototype: each lane evaluates a clone (the caller's
/// environment is not stepped). With one lane every draw comes from `rng`
/// in the serial [`evaluate`] order (bit-identical stats and RNG stream);
/// with more lanes a single `rng` draw seeds the per-lane streams via
/// [`autocat_gym::lane_seed`], and per-lane results merge in fixed lane
/// order, so the outcome never depends on thread count.
pub fn evaluate_batched<E: Environment + Clone>(
    env: &E,
    net: &mut dyn PolicyValueNet,
    episodes: usize,
    lanes: usize,
    deterministic: bool,
    rng: &mut StdRng,
) -> EvalReport {
    if episodes == 0 {
        return EvalReport {
            stats: EvalStats::default(),
            episodes: Vec::new(),
        };
    }
    let lanes = lanes.clamp(1, episodes);
    let scalar_compat = lanes == 1;
    let base_seed = if scalar_compat { 0 } else { rng.gen::<u64>() };
    let mut lane_states: Vec<EvalLane<E>> = (0..lanes)
        .map(|i| EvalLane {
            env: env.clone(),
            // Lane 0 in scalar-compat mode continues the caller's stream
            // (restored into `rng` below); otherwise streams are derived.
            rng: if scalar_compat {
                StdRng::from_state(rng.state())
            } else {
                StdRng::seed_from_u64(lane_seed(base_seed, i as u64))
            },
            obs: Vec::new(),
            remaining: episodes / lanes + usize::from(i < episodes % lanes),
            episode_return: 0.0,
            actions: Vec::new(),
            tally: EpisodeTally::default(),
            records: Vec::new(),
        })
        .collect();
    for lane in &mut lane_states {
        lane.obs = lane.env.reset(&mut lane.rng);
    }

    loop {
        let live: Vec<usize> = (0..lane_states.len())
            .filter(|&i| lane_states[i].remaining > 0)
            .collect();
        if live.is_empty() {
            break;
        }
        let rows: Vec<&[f32]> = live
            .iter()
            .map(|&i| lane_states[i].obs.as_slice())
            .collect();
        let (logits, _) = net.forward(&Matrix::from_rows(&rows));
        for (row, &i) in live.iter().enumerate() {
            let lane = &mut lane_states[i];
            let dist = Categorical::from_logits(logits.row(row));
            let action = if deterministic {
                dist.argmax()
            } else {
                dist.sample(&mut lane.rng)
            };
            lane.actions.push(action);
            let result = lane.env.step(action, &mut lane.rng);
            lane.episode_return += result.reward;
            // Per-step accumulation, like the serial loop — the same float
            // association keeps one lane bit-identical to `evaluate`.
            lane.tally.return_sum += result.reward;
            lane.tally.length_sum += 1;
            if result.done {
                lane.tally.count += 1;
                if let Some(correct) = result.info.guessed {
                    lane.tally.guessed += 1;
                    lane.tally.correct += usize::from(correct);
                }
                lane.tally.detected += usize::from(result.info.detected);
                lane.records.push(EpisodeRecord {
                    lane: i,
                    actions: std::mem::take(&mut lane.actions),
                    correct: result.info.guessed.unwrap_or(false),
                    guessed: result.info.guessed.is_some(),
                    detected: result.info.detected,
                    episode_return: lane.episode_return,
                });
                lane.episode_return = 0.0;
                lane.remaining -= 1;
                if lane.remaining > 0 {
                    lane.obs = lane.env.reset(&mut lane.rng);
                }
            } else {
                lane.obs = result.obs;
            }
        }
    }

    if scalar_compat {
        // Hand the advanced stream back so the caller's RNG ends exactly
        // where the serial loop would have left it.
        *rng = StdRng::from_state(lane_states[0].rng.state());
    }
    // Fixed lane-order reduction: the float sums associate identically for
    // every thread count.
    let mut tally = EpisodeTally::default();
    let mut records = Vec::with_capacity(episodes);
    for lane in lane_states {
        tally.merge(&lane.tally);
        records.extend(lane.records);
    }
    EvalReport {
        stats: EvalStats::from_tally(&tally, episodes),
        episodes: records,
    }
}

/// An attack sequence extracted by deterministic replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractedSequence {
    /// Action indices in order.
    pub actions: Vec<usize>,
    /// Whether the final guess was correct.
    pub correct: bool,
    /// Total episode return.
    pub episode_return: f32,
}

/// Extracts one attack sequence by greedy (argmax) replay.
///
/// The paper: "Once the sum of the reward within an episode is converged to
/// a positive value, we use deterministic replay to extract the attack
/// sequences."
pub fn extract_sequence(
    env: &mut impl Environment,
    net: &mut dyn PolicyValueNet,
    rng: &mut StdRng,
) -> ExtractedSequence {
    let mut obs = env.reset(rng);
    let mut actions = Vec::new();
    let mut episode_return = 0.0f32;
    let correct = loop {
        let (logits, _) = net.forward(&Matrix::from_row(&obs));
        let action = Categorical::from_logits(logits.row(0)).argmax();
        actions.push(action);
        let result = env.step(action, rng);
        episode_return += result.reward;
        if result.done {
            break result.info.guessed.unwrap_or(false);
        }
        obs = result.obs;
    };
    ExtractedSequence {
        actions,
        correct,
        episode_return,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_gym::{env::CacheGuessingGame, EnvConfig};
    use autocat_nn::models::{MlpConfig, MlpPolicy};

    fn setup() -> (CacheGuessingGame, MlpPolicy, StdRng) {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let net = MlpPolicy::new(
            &MlpConfig::new(env.obs_dim(), env.num_actions()).with_hidden(vec![16]),
            &mut rng,
        );
        (env, net, rng)
    }

    #[test]
    fn evaluate_reports_consistent_counts() {
        let (mut env, mut net, mut rng) = setup();
        let stats = evaluate(&mut env, &mut net, 20, false, &mut rng);
        assert_eq!(stats.episodes, 20);
        assert!(stats.correct <= stats.guessed);
        assert!(stats.guessed <= stats.episodes);
        assert!(stats.avg_length >= 1.0);
    }

    #[test]
    fn random_policy_accuracy_is_low() {
        let (mut env, mut net, mut rng) = setup();
        let stats = evaluate(&mut env, &mut net, 100, false, &mut rng);
        // An untrained policy on a 2-option secret can't exceed ~60%.
        assert!(stats.accuracy() < 0.7, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn accuracy_and_guess_rate_are_per_episode_on_a_forced_secret_env() {
        // Pin the satellite contract: accuracy() is correct/episodes and
        // guess_rate() is guessed/episodes — both over ALL episodes, never
        // over the guessed subset.
        use autocat_gym::env::Secret;
        let (mut env, mut net, mut rng) = setup();
        env.force_secret(Some(Secret::Addr(0)));
        let stats = evaluate(&mut env, &mut net, 50, false, &mut rng);
        assert_eq!(stats.episodes, 50);
        assert!(
            (stats.accuracy() - stats.correct as f64 / 50.0).abs() < 1e-12,
            "accuracy must divide by episodes"
        );
        assert!(
            (stats.guess_rate() - stats.guessed as f64 / 50.0).abs() < 1e-12,
            "guess_rate must divide by episodes"
        );
        assert!(stats.accuracy() <= stats.guess_rate());
        assert!(stats.guess_rate() <= 1.0);
    }

    #[test]
    fn batched_one_lane_is_bit_identical_to_serial() {
        // The tentpole acceptance criterion: identical stats AND an
        // identical caller RNG stream afterwards.
        let (mut env, mut net, mut rng_serial) = setup();
        let serial = evaluate(&mut env, &mut net, 25, false, &mut rng_serial);

        let (env_b, mut net_b, mut rng_batched) = setup();
        let report = evaluate_batched(&env_b, &mut net_b, 25, 1, false, &mut rng_batched);
        assert_eq!(report.stats, serial, "stats must be equal");
        assert_eq!(
            report.stats.digest(),
            serial.digest(),
            "bit-identical, not just PartialEq (which lets ±0.0 through)"
        );
        assert_eq!(
            rng_serial.state(),
            rng_batched.state(),
            "the caller RNG must end in the same state"
        );
        assert_eq!(report.episodes.len(), 25);

        // The deterministic (argmax) mode must agree too.
        let (mut env, mut net, mut rng_serial) = setup();
        let serial = evaluate(&mut env, &mut net, 10, true, &mut rng_serial);
        let (env_b, mut net_b, mut rng_batched) = setup();
        let report = evaluate_batched(&env_b, &mut net_b, 10, 1, true, &mut rng_batched);
        assert_eq!(report.stats, serial);
        assert_eq!(rng_serial.state(), rng_batched.state());
    }

    #[test]
    fn batched_multi_lane_is_reproducible() {
        let run = |lanes| {
            let (env, mut net, mut rng) = setup();
            evaluate_batched(&env, &mut net, 30, lanes, false, &mut rng)
        };
        assert_eq!(run(4), run(4), "same inputs must reproduce bit-for-bit");
        assert_ne!(
            run(4).stats,
            run(3).stats,
            "the lane split is part of the sampling plan"
        );
    }

    #[test]
    fn batched_splits_the_episode_budget_across_lanes() {
        let (env, mut net, mut rng) = setup();
        let report = evaluate_batched(&env, &mut net, 17, 4, false, &mut rng);
        assert_eq!(report.stats.episodes, 17);
        assert_eq!(report.episodes.len(), 17);
        let per_lane = |lane| report.episodes.iter().filter(|e| e.lane == lane).count();
        assert_eq!(
            [per_lane(0), per_lane(1), per_lane(2), per_lane(3)],
            [5, 4, 4, 4],
            "17 episodes over 4 lanes split 5/4/4/4"
        );
        // Lane-major record order.
        let lanes: Vec<usize> = report.episodes.iter().map(|e| e.lane).collect();
        let mut sorted = lanes.clone();
        sorted.sort_unstable();
        assert_eq!(lanes, sorted);
    }

    #[test]
    fn batched_clamps_lanes_to_the_episode_budget() {
        let (env, mut net, mut rng) = setup();
        let report = evaluate_batched(&env, &mut net, 2, 16, false, &mut rng);
        assert_eq!(report.stats.episodes, 2);
        assert_eq!(report.episodes.len(), 2);
        assert!(report.episodes.iter().all(|e| e.lane < 2));
        // Zero episodes: an empty report, no RNG draws, no panic.
        let before = rng.state();
        let empty = evaluate_batched(&env, &mut net, 0, 4, false, &mut rng);
        assert_eq!(empty.stats, EvalStats::default());
        assert!(empty.episodes.is_empty());
        assert_eq!(rng.state(), before);
    }

    #[test]
    fn batched_records_match_the_aggregate_stats() {
        let (env, mut net, mut rng) = setup();
        let report = evaluate_batched(&env, &mut net, 40, 8, false, &mut rng);
        let stats = report.stats;
        let count = |f: fn(&EpisodeRecord) -> bool| report.episodes.iter().filter(|e| f(e)).count();
        assert_eq!(stats.correct, count(|e| e.correct));
        assert_eq!(stats.guessed, count(|e| e.guessed));
        assert_eq!(stats.detected, count(|e| e.detected));
        let length_sum: usize = report.episodes.iter().map(|e| e.actions.len()).sum();
        assert!((stats.avg_length - length_sum as f32 / 40.0).abs() < 1e-6);
        assert!(report.episodes.iter().all(|e| !e.actions.is_empty()));
    }

    #[test]
    fn stats_digest_tracks_exact_bits() {
        let (env, mut net, mut rng) = setup();
        let report = evaluate_batched(&env, &mut net, 20, 4, false, &mut rng);
        let stats = report.stats;
        assert_eq!(stats.digest(), stats.digest());
        let mut nudged = stats;
        nudged.avg_return += 1e-7;
        assert_ne!(stats.digest(), nudged.digest(), "one ULP must change it");
        let mut counted = stats;
        counted.correct += 1;
        assert_ne!(stats.digest(), counted.digest());
    }

    #[test]
    fn extract_sequence_terminates() {
        let (mut env, mut net, mut rng) = setup();
        let seq = extract_sequence(&mut env, &mut net, &mut rng);
        assert!(!seq.actions.is_empty());
        assert!(
            seq.actions.len() <= 32,
            "episode limit must bound the sequence"
        );
    }

    #[test]
    fn deterministic_replay_is_reproducible_given_same_secret() {
        use autocat_gym::env::Secret;
        let (mut env, mut net, mut rng) = setup();
        env.force_secret(Some(Secret::Addr(0)));
        let a = extract_sequence(&mut env, &mut net, &mut rng);
        let b = extract_sequence(&mut env, &mut net, &mut rng);
        assert_eq!(a.actions, b.actions, "greedy replay must be deterministic");
    }
}
