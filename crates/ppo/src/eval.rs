//! Policy evaluation and deterministic attack-sequence extraction.

use autocat_gym::Environment;
use autocat_nn::models::PolicyValueNet;
use autocat_nn::{Categorical, Matrix};
use rand::rngs::StdRng;

/// Aggregate evaluation statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EvalStats {
    /// Episodes evaluated.
    pub episodes: usize,
    /// Episodes ending in a correct guess.
    pub correct: usize,
    /// Episodes ending in any guess.
    pub guessed: usize,
    /// Episodes terminated by a detector.
    pub detected: usize,
    /// Mean episode return.
    pub avg_return: f32,
    /// Mean episode length.
    pub avg_length: f32,
}

impl EvalStats {
    /// Fraction of episodes ending in a correct guess (the paper's
    /// "accuracy" column).
    pub fn accuracy(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.correct as f64 / self.episodes as f64
        }
    }

    /// Fraction of episodes flagged by a detector.
    pub fn detection_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.detected as f64 / self.episodes as f64
        }
    }
}

/// Runs `episodes` evaluation episodes.
///
/// With `deterministic` the argmax action is taken; otherwise actions are
/// sampled (needed on stochastic caches, Sec. V-C random-policy study).
pub fn evaluate(
    env: &mut impl Environment,
    net: &mut dyn PolicyValueNet,
    episodes: usize,
    deterministic: bool,
    rng: &mut StdRng,
) -> EvalStats {
    let mut stats = EvalStats {
        episodes,
        ..EvalStats::default()
    };
    let mut return_sum = 0.0f32;
    let mut length_sum = 0usize;
    for _ in 0..episodes {
        let mut obs = env.reset(rng);
        loop {
            let (logits, _) = net.forward(&Matrix::from_row(&obs));
            let dist = Categorical::from_logits(logits.row(0));
            let action = if deterministic {
                dist.argmax()
            } else {
                dist.sample(rng)
            };
            let result = env.step(action, rng);
            return_sum += result.reward;
            length_sum += 1;
            if result.done {
                if let Some(correct) = result.info.guessed {
                    stats.guessed += 1;
                    stats.correct += usize::from(correct);
                }
                stats.detected += usize::from(result.info.detected);
                break;
            }
            obs = result.obs;
        }
    }
    stats.avg_return = return_sum / episodes.max(1) as f32;
    stats.avg_length = length_sum as f32 / episodes.max(1) as f32;
    stats
}

/// An attack sequence extracted by deterministic replay.
#[derive(Clone, Debug, PartialEq)]
pub struct ExtractedSequence {
    /// Action indices in order.
    pub actions: Vec<usize>,
    /// Whether the final guess was correct.
    pub correct: bool,
    /// Total episode return.
    pub episode_return: f32,
}

/// Extracts one attack sequence by greedy (argmax) replay.
///
/// The paper: "Once the sum of the reward within an episode is converged to
/// a positive value, we use deterministic replay to extract the attack
/// sequences."
pub fn extract_sequence(
    env: &mut impl Environment,
    net: &mut dyn PolicyValueNet,
    rng: &mut StdRng,
) -> ExtractedSequence {
    let mut obs = env.reset(rng);
    let mut actions = Vec::new();
    let mut episode_return = 0.0f32;
    let correct = loop {
        let (logits, _) = net.forward(&Matrix::from_row(&obs));
        let action = Categorical::from_logits(logits.row(0)).argmax();
        actions.push(action);
        let result = env.step(action, rng);
        episode_return += result.reward;
        if result.done {
            break result.info.guessed.unwrap_or(false);
        }
        obs = result.obs;
    };
    ExtractedSequence {
        actions,
        correct,
        episode_return,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autocat_gym::{env::CacheGuessingGame, EnvConfig};
    use autocat_nn::models::{MlpConfig, MlpPolicy};
    use rand::SeedableRng;

    fn setup() -> (CacheGuessingGame, MlpPolicy, StdRng) {
        let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let net = MlpPolicy::new(
            &MlpConfig::new(env.obs_dim(), env.num_actions()).with_hidden(vec![16]),
            &mut rng,
        );
        (env, net, rng)
    }

    #[test]
    fn evaluate_reports_consistent_counts() {
        let (mut env, mut net, mut rng) = setup();
        let stats = evaluate(&mut env, &mut net, 20, false, &mut rng);
        assert_eq!(stats.episodes, 20);
        assert!(stats.correct <= stats.guessed);
        assert!(stats.guessed <= stats.episodes);
        assert!(stats.avg_length >= 1.0);
    }

    #[test]
    fn random_policy_accuracy_is_low() {
        let (mut env, mut net, mut rng) = setup();
        let stats = evaluate(&mut env, &mut net, 100, false, &mut rng);
        // An untrained policy on a 2-option secret can't exceed ~60%.
        assert!(stats.accuracy() < 0.7, "accuracy {}", stats.accuracy());
    }

    #[test]
    fn extract_sequence_terminates() {
        let (mut env, mut net, mut rng) = setup();
        let seq = extract_sequence(&mut env, &mut net, &mut rng);
        assert!(!seq.actions.is_empty());
        assert!(
            seq.actions.len() <= 32,
            "episode limit must bound the sequence"
        );
    }

    #[test]
    fn deterministic_replay_is_reproducible_given_same_secret() {
        use autocat_gym::env::Secret;
        let (mut env, mut net, mut rng) = setup();
        env.force_secret(Some(Secret::Addr(0)));
        let a = extract_sequence(&mut env, &mut net, &mut rng);
        let b = extract_sequence(&mut env, &mut net, &mut rng);
        assert_eq!(a.actions, b.actions, "greedy replay must be deterministic");
    }
}
