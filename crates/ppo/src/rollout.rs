//! Trajectory collection and generalized advantage estimation.

use autocat_gym::Environment;
use autocat_nn::models::PolicyValueNet;
use autocat_nn::{Categorical, Matrix};
use rand::rngs::StdRng;

/// A batch of transitions collected from the environment, with advantages
/// and value targets already computed.
#[derive(Clone, Debug)]
pub struct RolloutBatch {
    /// Observations, one row per transition.
    pub obs: Matrix,
    /// Action indices.
    pub actions: Vec<usize>,
    /// Behaviour-policy log-probabilities at collection time.
    pub logps: Vec<f32>,
    /// GAE advantages (normalized by the trainer).
    pub advantages: Vec<f32>,
    /// Discounted value targets (`advantage + value`).
    pub returns: Vec<f32>,
    /// Episode statistics observed while collecting.
    pub episodes: EpisodeTally,
}

/// Aggregate statistics over the episodes finished during collection.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpisodeTally {
    /// Episodes completed.
    pub count: usize,
    /// Sum of episode returns.
    pub return_sum: f32,
    /// Sum of episode lengths.
    pub length_sum: usize,
    /// Episodes that ended with a correct guess.
    pub correct: usize,
    /// Episodes that ended with any guess.
    pub guessed: usize,
    /// Episodes terminated by a detector.
    pub detected: usize,
}

impl EpisodeTally {
    /// Mean episode return (0 when no episode finished).
    pub fn avg_return(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.return_sum / self.count as f32
        }
    }

    /// Mean episode length.
    pub fn avg_length(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.length_sum as f32 / self.count as f32
        }
    }

    /// Fraction of finished episodes ending in a correct guess.
    pub fn accuracy(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f32 / self.count as f32
        }
    }
}

/// Computes GAE-λ advantages and returns.
///
/// `values` has one entry per transition plus one bootstrap value for the
/// state after the last transition (0 if that state was terminal).
///
/// # Panics
///
/// Panics if `values.len() != rewards.len() + 1` or the `dones` length
/// mismatches.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    gamma: f32,
    lambda: f32,
) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(values.len(), rewards.len() + 1, "values needs a bootstrap entry");
    assert_eq!(dones.len(), rewards.len(), "dones length mismatch");
    let n = rewards.len();
    let mut advantages = vec![0.0f32; n];
    let mut last_adv = 0.0f32;
    for t in (0..n).rev() {
        let next_value = if dones[t] { 0.0 } else { values[t + 1] };
        let delta = rewards[t] + gamma * next_value - values[t];
        last_adv = delta + if dones[t] { 0.0 } else { gamma * lambda * last_adv };
        advantages[t] = last_adv;
    }
    let returns: Vec<f32> =
        advantages.iter().zip(values[..n].iter()).map(|(a, v)| a + v).collect();
    (advantages, returns)
}

/// Collects `horizon` transitions from `env` under the current policy.
///
/// Episodes are reset as needed; the final partial episode is bootstrapped
/// with the value estimate of its last observation.
pub fn collect(
    env: &mut impl Environment,
    net: &mut dyn PolicyValueNet,
    horizon: usize,
    gamma: f32,
    lambda: f32,
    rng: &mut StdRng,
) -> RolloutBatch {
    let obs_dim = env.obs_dim();
    let mut obs_rows: Vec<f32> = Vec::with_capacity(horizon * obs_dim);
    let mut actions = Vec::with_capacity(horizon);
    let mut logps = Vec::with_capacity(horizon);
    let mut rewards = Vec::with_capacity(horizon);
    let mut dones = Vec::with_capacity(horizon);
    let mut values = Vec::with_capacity(horizon + 1);
    let mut tally = EpisodeTally::default();

    let mut obs = env.reset(rng);
    let mut episode_return = 0.0f32;
    let mut episode_len = 0usize;
    for _ in 0..horizon {
        let obs_mat = Matrix::from_row(&obs);
        let (logits, vals) = net.forward(&obs_mat);
        let dist = Categorical::from_logits(logits.row(0));
        let action = dist.sample(rng);
        let logp = dist.log_prob(action);
        let result = env.step(action, rng);

        obs_rows.extend_from_slice(&obs);
        actions.push(action);
        logps.push(logp);
        rewards.push(result.reward);
        dones.push(result.done);
        values.push(vals[0]);

        episode_return += result.reward;
        episode_len += 1;
        if result.done {
            tally.count += 1;
            tally.return_sum += episode_return;
            tally.length_sum += episode_len;
            if let Some(correct) = result.info.guessed {
                tally.guessed += 1;
                tally.correct += usize::from(correct);
            }
            tally.detected += usize::from(result.info.detected);
            episode_return = 0.0;
            episode_len = 0;
            obs = env.reset(rng);
        } else {
            obs = result.obs;
        }
    }
    // Bootstrap value for the state after the last collected transition.
    let bootstrap = if *dones.last().unwrap_or(&true) {
        0.0
    } else {
        let obs_mat = Matrix::from_row(&obs);
        let (_, vals) = net.forward(&obs_mat);
        vals[0]
    };
    values.push(bootstrap);

    let (advantages, returns) = gae(&rewards, &values, &dones, gamma, lambda);
    RolloutBatch {
        obs: Matrix::from_vec(actions.len(), obs_dim, obs_rows),
        actions,
        logps,
        advantages,
        returns,
        episodes: tally,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gae_single_step_terminal() {
        // One terminal step: advantage = r - v.
        let (adv, ret) = gae(&[1.0], &[0.3, 0.0], &[true], 0.99, 0.95);
        assert!((adv[0] - 0.7).abs() < 1e-6);
        assert!((ret[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_bootstraps_nonterminal_tail() {
        // Non-terminal last step uses the bootstrap value.
        let (adv, _) = gae(&[0.0], &[0.0, 1.0], &[false], 0.5, 1.0);
        // delta = 0 + 0.5*1 - 0 = 0.5
        assert!((adv[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gae_decays_across_steps() {
        let rewards = [0.0, 0.0, 1.0];
        let values = [0.0, 0.0, 0.0, 0.0];
        let dones = [false, false, true];
        let (adv, _) = gae(&rewards, &values, &dones, 1.0, 1.0);
        // With gamma = lambda = 1 and zero values, every advantage equals
        // the total future reward.
        assert!((adv[0] - 1.0).abs() < 1e-6);
        assert!((adv[1] - 1.0).abs() < 1e-6);
        assert!((adv[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_respects_episode_boundaries() {
        // Two one-step episodes: the second's reward must not leak into the
        // first's advantage.
        let rewards = [1.0, -1.0];
        let values = [0.0, 0.0, 0.0];
        let dones = [true, true];
        let (adv, _) = gae(&rewards, &values, &dones, 0.99, 0.95);
        assert!((adv[0] - 1.0).abs() < 1e-6);
        assert!((adv[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bootstrap entry")]
    fn gae_requires_bootstrap() {
        let _ = gae(&[1.0], &[0.0], &[true], 0.99, 0.95);
    }

    mod with_env {
        use super::*;
        use autocat_gym::{env::CacheGuessingGame, EnvConfig};
        use autocat_nn::models::{MlpConfig, MlpPolicy};
        use rand::SeedableRng;

        #[test]
        fn collect_produces_full_horizon() {
            let mut env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            let mut net = MlpPolicy::new(
                &MlpConfig::new(env.obs_dim(), env.num_actions()).with_hidden(vec![16]),
                &mut rng,
            );
            let batch = collect(&mut env, &mut net, 200, 0.99, 0.95, &mut rng);
            assert_eq!(batch.actions.len(), 200);
            assert_eq!(batch.obs.rows(), 200);
            assert_eq!(batch.logps.len(), 200);
            assert_eq!(batch.advantages.len(), 200);
            assert!(batch.episodes.count > 0, "200 steps must finish episodes");
            // Log-probs must be valid (finite, non-positive).
            assert!(batch.logps.iter().all(|l| l.is_finite() && *l <= 0.0));
        }

        #[test]
        fn collect_tally_tracks_guesses() {
            let mut env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            let mut net = MlpPolicy::new(
                &MlpConfig::new(env.obs_dim(), env.num_actions()).with_hidden(vec![16]),
                &mut rng,
            );
            let batch = collect(&mut env, &mut net, 500, 0.99, 0.95, &mut rng);
            // A random policy guesses sometimes; guessed <= episodes.
            assert!(batch.episodes.guessed <= batch.episodes.count);
            assert!(batch.episodes.correct <= batch.episodes.guessed);
        }
    }
}
