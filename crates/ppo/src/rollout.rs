//! Trajectory collection and generalized advantage estimation.
//!
//! Collection is vectorized *and fused*: a [`VecEnv`] steps N environment
//! lanes against batched policy forwards, and the forward/step pipeline is
//! overlapped — lanes are split into groups of `FUSED_GROUP_LANES`
//! (one matmul row block), each group runs its own batched
//! `forward_inference` and then steps its lanes, so one group's inference
//! executes while other groups are stepping their environments
//! ([`VecEnv::step_pipelined`]). Because groups sit on kernel row-block
//! boundaries and every random draw comes from the per-lane RNG streams,
//! the result is bit-identical to the strictly serialized
//! one-whole-batch-forward-per-step schedule at every lane, group and
//! thread count. Transitions are stored time-major
//! (`index = t * num_lanes + lane`), and GAE runs per lane so advantages
//! never leak across lane boundaries. With one lane the collected
//! trajectory is bit-for-bit identical to the historical scalar loop (see
//! [`VecEnv`]'s determinism contract).

use autocat_gym::{Environment, VecEnv};
use autocat_nn::matrix::with_inline_kernels;
use autocat_nn::models::PolicyValueNet;
use autocat_nn::{Categorical, Matrix};
use rand::rngs::StdRng;

/// Lanes per fused rollout group ([`VecEnv::step_pipelined`]).
///
/// This must be a multiple of [`Matrix::MM_ROW_BLOCK`]: the dense matmul
/// kernel picks its sparse/dense path per `MM_ROW_BLOCK`-row block, so
/// group boundaries on that grid guarantee every block a group forward
/// sees is exactly a block the full-batch forward would see — which is
/// what makes the fused collect bit-identical to one whole-batch
/// `net.forward` per step. One kernel row block per group is the finest
/// (most overlap-friendly) legal split.
const FUSED_GROUP_LANES: usize = Matrix::MM_ROW_BLOCK;

/// A batch of transitions collected from the environment, with advantages
/// and value targets already computed.
#[derive(Clone, Debug)]
pub struct RolloutBatch {
    /// Observations, one row per transition (time-major across lanes).
    pub obs: Matrix,
    /// Action indices.
    pub actions: Vec<usize>,
    /// Behaviour-policy log-probabilities at collection time.
    pub logps: Vec<f32>,
    /// Per-transition rewards (diagnostics; the optimizer consumes the
    /// GAE outputs below).
    pub rewards: Vec<f32>,
    /// Per-transition episode-end flags.
    pub dones: Vec<bool>,
    /// GAE advantages (normalized by the trainer).
    pub advantages: Vec<f32>,
    /// Discounted value targets (`advantage + value`).
    pub returns: Vec<f32>,
    /// Episode statistics observed while collecting.
    pub episodes: EpisodeTally,
}

/// Aggregate statistics over the episodes finished during collection.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpisodeTally {
    /// Episodes completed.
    pub count: usize,
    /// Sum of episode returns.
    pub return_sum: f32,
    /// Sum of episode lengths.
    pub length_sum: usize,
    /// Episodes that ended with a correct guess.
    pub correct: usize,
    /// Episodes that ended with any guess.
    pub guessed: usize,
    /// Episodes terminated by a detector.
    pub detected: usize,
}

impl EpisodeTally {
    /// Mean episode return (0 when no episode finished).
    pub fn avg_return(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.return_sum / self.count as f32
        }
    }

    /// Mean episode length.
    pub fn avg_length(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.length_sum as f32 / self.count as f32
        }
    }

    /// Fraction of finished episodes ending in a correct guess.
    pub fn accuracy(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            self.correct as f32 / self.count as f32
        }
    }

    /// Folds `other` into `self` (counts and sums add). Batched evaluation
    /// merges per-lane tallies in fixed lane order so the float sums are
    /// reduced deterministically.
    pub fn merge(&mut self, other: &Self) {
        self.count += other.count;
        self.return_sum += other.return_sum;
        self.length_sum += other.length_sum;
        self.correct += other.correct;
        self.guessed += other.guessed;
        self.detected += other.detected;
    }
}

/// Computes GAE-λ advantages and returns.
///
/// `values` has one entry per transition plus one bootstrap value for the
/// state after the last transition (0 if that state was terminal).
///
/// # Panics
///
/// Panics if `values.len() != rewards.len() + 1` or the `dones` length
/// mismatches.
pub fn gae(
    rewards: &[f32],
    values: &[f32],
    dones: &[bool],
    gamma: f32,
    lambda: f32,
) -> (Vec<f32>, Vec<f32>) {
    assert_eq!(
        values.len(),
        rewards.len() + 1,
        "values needs a bootstrap entry"
    );
    assert_eq!(dones.len(), rewards.len(), "dones length mismatch");
    let n = rewards.len();
    let mut advantages = vec![0.0f32; n];
    let mut last_adv = 0.0f32;
    for t in (0..n).rev() {
        let next_value = if dones[t] { 0.0 } else { values[t + 1] };
        let delta = rewards[t] + gamma * next_value - values[t];
        last_adv = delta
            + if dones[t] {
                0.0
            } else {
                gamma * lambda * last_adv
            };
        advantages[t] = last_adv;
    }
    let returns: Vec<f32> = advantages
        .iter()
        .zip(values[..n].iter())
        .map(|(a, v)| a + v)
        .collect();
    (advantages, returns)
}

/// Collects at least `horizon` transitions across all lanes of `venv`
/// under the current policy.
///
/// Every step runs batched forwards over the lanes' observations in
/// `FUSED_GROUP_LANES`-lane groups, fused with environment stepping so
/// inference and stepping overlap across worker threads
/// ([`VecEnv::step_pipelined`]) — bit-identical to one whole-batch
/// forward followed by a serial sweep over the lanes. Episodes
/// auto-reset; each lane's final partial episode is bootstrapped with the
/// value estimate of its last observation. The number of transitions
/// returned is `horizon` rounded up to a multiple of the lane count.
pub fn collect<E: Environment + Send>(
    venv: &mut VecEnv<E>,
    net: &mut dyn PolicyValueNet,
    horizon: usize,
    gamma: f32,
    lambda: f32,
    rng: &mut StdRng,
) -> RolloutBatch {
    let lanes = venv.num_lanes();
    let obs_dim = venv.obs_dim();
    let t_steps = horizon.div_ceil(lanes);
    let total = t_steps * lanes;

    let mut obs_rows: Vec<f32> = Vec::with_capacity(total * obs_dim);
    let mut actions = Vec::with_capacity(total);
    let mut logps = Vec::with_capacity(total);
    let mut rewards = Vec::with_capacity(total);
    let mut dones = Vec::with_capacity(total);
    let mut values = Vec::with_capacity(total);
    let mut tally = EpisodeTally::default();

    venv.reset_all(rng);
    let net_ref: &dyn PolicyValueNet = net;
    for _ in 0..t_steps {
        // Snapshot all lanes' observations for storage; the fused step
        // re-reads the same (still unstepped) rows group by group.
        obs_rows.extend_from_slice(&venv.obs_flat());
        let results = venv.step_pipelined(
            FUSED_GROUP_LANES,
            |_base, group_obs, group_rows| {
                let group_mat = Matrix::from_vec(group_rows, obs_dim, group_obs.to_vec());
                // Pool workers run group forwards; suppress the kernels'
                // own rayon dispatch so they never deadlock the pool and
                // stay bit-identical (serial and parallel kernels agree).
                with_inline_kernels(|| net_ref.forward_inference(&group_mat))
            },
            |(logits, vals): &(Matrix, Vec<f32>), row, lane_rng| {
                let dist = Categorical::from_logits(logits.row(row));
                let action = dist.sample(lane_rng);
                (action, (dist.log_prob(action), vals[row]))
            },
            rng,
        );
        for step in results {
            let (logp, value) = step.payload;
            actions.push(step.action);
            logps.push(logp);
            rewards.push(step.reward);
            dones.push(step.done);
            values.push(value);
            if let Some(finished) = step.finished {
                tally.count += 1;
                tally.return_sum += finished.episode_return;
                tally.length_sum += finished.length;
                if let Some(correct) = step.info.guessed {
                    tally.guessed += 1;
                    tally.correct += usize::from(correct);
                }
                tally.detected += usize::from(step.info.detected);
            }
        }
    }

    // Bootstrap values for the state after each lane's last transition.
    let boot_mat = Matrix::from_vec(lanes, obs_dim, venv.obs_flat());
    let (_, boot_vals) = net.forward(&boot_mat);

    // Per-lane GAE over the time-major storage.
    let mut advantages = vec![0.0f32; total];
    let mut returns = vec![0.0f32; total];
    for lane in 0..lanes {
        let lane_rewards: Vec<f32> = (0..t_steps).map(|t| rewards[t * lanes + lane]).collect();
        let lane_dones: Vec<bool> = (0..t_steps).map(|t| dones[t * lanes + lane]).collect();
        let mut lane_values: Vec<f32> = (0..t_steps).map(|t| values[t * lanes + lane]).collect();
        let bootstrap = if *lane_dones.last().unwrap_or(&true) {
            0.0
        } else {
            boot_vals[lane]
        };
        lane_values.push(bootstrap);
        let (lane_adv, lane_ret) = gae(&lane_rewards, &lane_values, &lane_dones, gamma, lambda);
        for t in 0..t_steps {
            advantages[t * lanes + lane] = lane_adv[t];
            returns[t * lanes + lane] = lane_ret[t];
        }
    }

    RolloutBatch {
        obs: Matrix::from_vec(total, obs_dim, obs_rows),
        actions,
        logps,
        rewards,
        dones,
        advantages,
        returns,
        episodes: tally,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gae_single_step_terminal() {
        // One terminal step: advantage = r - v.
        let (adv, ret) = gae(&[1.0], &[0.3, 0.0], &[true], 0.99, 0.95);
        assert!((adv[0] - 0.7).abs() < 1e-6);
        assert!((ret[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_bootstraps_nonterminal_tail() {
        // Non-terminal last step uses the bootstrap value.
        let (adv, _) = gae(&[0.0], &[0.0, 1.0], &[false], 0.5, 1.0);
        // delta = 0 + 0.5*1 - 0 = 0.5
        assert!((adv[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn gae_decays_across_steps() {
        let rewards = [0.0, 0.0, 1.0];
        let values = [0.0, 0.0, 0.0, 0.0];
        let dones = [false, false, true];
        let (adv, _) = gae(&rewards, &values, &dones, 1.0, 1.0);
        // With gamma = lambda = 1 and zero values, every advantage equals
        // the total future reward.
        assert!((adv[0] - 1.0).abs() < 1e-6);
        assert!((adv[1] - 1.0).abs() < 1e-6);
        assert!((adv[2] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_respects_episode_boundaries() {
        // Two one-step episodes: the second's reward must not leak into the
        // first's advantage.
        let rewards = [1.0, -1.0];
        let values = [0.0, 0.0, 0.0];
        let dones = [true, true];
        let (adv, _) = gae(&rewards, &values, &dones, 0.99, 0.95);
        assert!((adv[0] - 1.0).abs() < 1e-6);
        assert!((adv[1] + 1.0).abs() < 1e-6);
    }

    #[test]
    fn gae_known_answer_two_step_chain() {
        // Hand-computed: gamma = 0.5, lambda = 0.5, non-terminal chain.
        //   delta_1 = r1 + g*v2 - v1 = 2.0 + 0.5*0.5 - 1.0   = 1.25
        //   delta_0 = r0 + g*v1 - v0 = 1.0 + 0.5*1.0 - 2.0   = -0.5
        //   A_1 = delta_1                                     = 1.25
        //   A_0 = delta_0 + g*l*A_1 = -0.5 + 0.25*1.25        = -0.1875
        //   R_t = A_t + v_t -> R_0 = 1.8125, R_1 = 2.25
        let rewards = [1.0, 2.0];
        let values = [2.0, 1.0, 0.5];
        let dones = [false, false];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.5, 0.5);
        assert!((adv[0] + 0.1875).abs() < 1e-6, "A_0 = {}", adv[0]);
        assert!((adv[1] - 1.25).abs() < 1e-6, "A_1 = {}", adv[1]);
        assert!((ret[0] - 1.8125).abs() < 1e-6, "R_0 = {}", ret[0]);
        assert!((ret[1] - 2.25).abs() < 1e-6, "R_1 = {}", ret[1]);
    }

    #[test]
    fn gae_known_answer_mid_trajectory_terminal() {
        // Hand-computed: gamma = 0.9, lambda = 1.0, episode ends at t = 1.
        //   delta_2 = 1.0 + 0.9*2.0 - 0.5 = 2.3   (bootstrapped tail)
        //   A_2 = 2.3
        //   delta_1 = 5.0 + 0 - 1.0 = 4.0          (terminal: no next value)
        //   A_1 = 4.0                              (no leak from t = 2)
        //   delta_0 = 0.0 + 0.9*1.0 - 2.0 = -1.1
        //   A_0 = -1.1 + 0.9*4.0 = 2.5
        let rewards = [0.0, 5.0, 1.0];
        let values = [2.0, 1.0, 0.5, 2.0];
        let dones = [false, true, false];
        let (adv, ret) = gae(&rewards, &values, &dones, 0.9, 1.0);
        assert!((adv[0] - 2.5).abs() < 1e-5, "A_0 = {}", adv[0]);
        assert!((adv[1] - 4.0).abs() < 1e-5, "A_1 = {}", adv[1]);
        assert!((adv[2] - 2.3).abs() < 1e-5, "A_2 = {}", adv[2]);
        assert!((ret[0] - 4.5).abs() < 1e-5);
        assert!((ret[1] - 5.0).abs() < 1e-5);
        assert!((ret[2] - 2.8).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "bootstrap entry")]
    fn gae_requires_bootstrap() {
        let _ = gae(&[1.0], &[0.0], &[true], 0.99, 0.95);
    }

    mod with_env {
        use super::*;
        use autocat_gym::{env::CacheGuessingGame, EnvConfig, StepResult};
        use autocat_nn::models::{MlpConfig, MlpPolicy};
        use rand::SeedableRng;

        fn venv(lanes: usize, seed: u64) -> VecEnv<CacheGuessingGame> {
            let env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            VecEnv::new(lanes, env, seed).unwrap()
        }

        fn net(venv: &VecEnv<CacheGuessingGame>, rng: &mut StdRng) -> MlpPolicy {
            MlpPolicy::new(
                &MlpConfig::new(venv.obs_dim(), venv.num_actions()).with_hidden(vec![16]),
                rng,
            )
        }

        #[test]
        fn collect_produces_full_horizon() {
            let mut venv = venv(1, 0);
            let mut rng = StdRng::seed_from_u64(1);
            let mut net = net(&venv, &mut rng);
            let batch = collect(&mut venv, &mut net, 200, 0.99, 0.95, &mut rng);
            assert_eq!(batch.actions.len(), 200);
            assert_eq!(batch.obs.rows(), 200);
            assert_eq!(batch.logps.len(), 200);
            assert_eq!(batch.advantages.len(), 200);
            assert!(batch.episodes.count > 0, "200 steps must finish episodes");
            // Log-probs must be valid (finite, non-positive).
            assert!(batch.logps.iter().all(|l| l.is_finite() && *l <= 0.0));
        }

        #[test]
        fn collect_tally_tracks_guesses() {
            let mut venv = venv(1, 0);
            let mut rng = StdRng::seed_from_u64(2);
            let mut net = net(&venv, &mut rng);
            let batch = collect(&mut venv, &mut net, 500, 0.99, 0.95, &mut rng);
            // A random policy guesses sometimes; guessed <= episodes.
            assert!(batch.episodes.guessed <= batch.episodes.count);
            assert!(batch.episodes.correct <= batch.episodes.guessed);
        }

        #[test]
        fn multi_lane_collect_rounds_horizon_up() {
            let mut venv = venv(8, 3);
            let mut rng = StdRng::seed_from_u64(3);
            let mut net = net(&venv, &mut rng);
            let batch = collect(&mut venv, &mut net, 100, 0.99, 0.95, &mut rng);
            // 100 rounded up to a multiple of 8.
            assert_eq!(batch.actions.len(), 104);
            assert_eq!(batch.obs.rows(), 104);
            assert_eq!(batch.advantages.len(), 104);
            assert!(batch.episodes.count > 0);
        }

        /// The scalar reference loop this module used before vectorization:
        /// one env, one-row forwards, sampling and stepping interleaved on
        /// one RNG stream. Kept verbatim as the determinism oracle.
        fn scalar_reference_collect(
            env: &mut CacheGuessingGame,
            net: &mut dyn PolicyValueNet,
            horizon: usize,
            gamma: f32,
            lambda: f32,
            rng: &mut StdRng,
        ) -> (Vec<usize>, Vec<f32>, Vec<f32>, Vec<f32>) {
            use autocat_gym::Environment;
            let mut actions = Vec::new();
            let mut logps = Vec::new();
            let mut rewards = Vec::new();
            let mut dones = Vec::new();
            let mut values = Vec::new();
            let mut obs = env.reset(rng);
            for _ in 0..horizon {
                let obs_mat = Matrix::from_row(&obs);
                let (logits, vals) = net.forward(&obs_mat);
                let dist = Categorical::from_logits(logits.row(0));
                let action = dist.sample(rng);
                let logp = dist.log_prob(action);
                let StepResult {
                    obs: next_obs,
                    reward,
                    done,
                    ..
                } = env.step(action, rng);
                actions.push(action);
                logps.push(logp);
                rewards.push(reward);
                dones.push(done);
                values.push(vals[0]);
                obs = if done { env.reset(rng) } else { next_obs };
            }
            let bootstrap = if *dones.last().unwrap() {
                0.0
            } else {
                let (_, vals) = net.forward(&Matrix::from_row(&obs));
                vals[0]
            };
            values.push(bootstrap);
            let (advantages, _) = gae(&rewards, &values, &dones, gamma, lambda);
            (actions, logps, rewards, advantages)
        }

        #[test]
        fn single_lane_collect_is_bit_for_bit_scalar_compatible() {
            // The pre-VecEnv scalar loop and a 1-lane vectorized collect,
            // from identical seeds, must produce identical trajectories —
            // actions, log-probs, rewards AND advantages.
            let mut setup_rng = StdRng::seed_from_u64(40);
            let mut venv = venv(1, 123);
            let mut vec_net = net(&venv, &mut setup_rng);
            let mut rng_a = StdRng::seed_from_u64(7);
            let batch = collect(&mut venv, &mut vec_net, 256, 0.99, 0.95, &mut rng_a);

            let mut setup_rng = StdRng::seed_from_u64(40);
            let mut env = CacheGuessingGame::new(EnvConfig::flush_reload_fa4()).unwrap();
            let mut ref_net = MlpPolicy::new(
                &MlpConfig::new(env.obs_dim(), env.num_actions()).with_hidden(vec![16]),
                &mut setup_rng,
            );
            let mut rng_b = StdRng::seed_from_u64(7);
            let (actions, logps, rewards, advantages) =
                scalar_reference_collect(&mut env, &mut ref_net, 256, 0.99, 0.95, &mut rng_b);

            assert_eq!(batch.actions, actions);
            assert_eq!(batch.logps, logps);
            assert_eq!(batch.rewards, rewards, "rewards must match the scalar loop");
            assert!(
                batch
                    .advantages
                    .iter()
                    .zip(advantages.iter())
                    .all(|(a, b)| (a - b).abs() < 1e-7),
                "advantages must match the scalar loop"
            );
            assert_eq!(batch.actions.len(), 256);
        }

        /// The unfused multi-lane schedule `collect` used before the fused
        /// rollout: one whole-batch forward per step, then `step_each`.
        /// Kept verbatim as the fusion-determinism oracle.
        struct UnfusedBatch {
            actions: Vec<usize>,
            logps: Vec<f32>,
            rewards: Vec<f32>,
            advantages: Vec<f32>,
            returns: Vec<f32>,
            tally: EpisodeTally,
        }

        fn unfused_reference_collect(
            venv: &mut VecEnv<CacheGuessingGame>,
            net: &mut dyn PolicyValueNet,
            horizon: usize,
            gamma: f32,
            lambda: f32,
            rng: &mut StdRng,
        ) -> UnfusedBatch {
            let lanes = venv.num_lanes();
            let obs_dim = venv.obs_dim();
            let t_steps = horizon.div_ceil(lanes);
            let total = t_steps * lanes;
            let mut actions = Vec::new();
            let mut logps = Vec::new();
            let mut rewards = Vec::new();
            let mut dones = Vec::new();
            let mut values = Vec::new();
            let mut tally = EpisodeTally::default();
            venv.reset_all(rng);
            for _ in 0..t_steps {
                let obs_mat = Matrix::from_vec(lanes, obs_dim, venv.obs_flat());
                let (logits, vals) = net.forward(&obs_mat);
                let results = venv.step_each(
                    |lane, lane_rng| {
                        let dist = Categorical::from_logits(logits.row(lane));
                        let action = dist.sample(lane_rng);
                        (action, dist.log_prob(action))
                    },
                    rng,
                );
                for (lane, step) in results.into_iter().enumerate() {
                    actions.push(step.action);
                    logps.push(step.payload);
                    rewards.push(step.reward);
                    dones.push(step.done);
                    values.push(vals[lane]);
                    if let Some(finished) = step.finished {
                        tally.count += 1;
                        tally.return_sum += finished.episode_return;
                        tally.length_sum += finished.length;
                        if let Some(correct) = step.info.guessed {
                            tally.guessed += 1;
                            tally.correct += usize::from(correct);
                        }
                        tally.detected += usize::from(step.info.detected);
                    }
                }
            }
            let boot_mat = Matrix::from_vec(lanes, obs_dim, venv.obs_flat());
            let (_, boot_vals) = net.forward(&boot_mat);
            let mut advantages = vec![0.0f32; total];
            let mut returns = vec![0.0f32; total];
            for lane in 0..lanes {
                let lane_rewards: Vec<f32> =
                    (0..t_steps).map(|t| rewards[t * lanes + lane]).collect();
                let lane_dones: Vec<bool> = (0..t_steps).map(|t| dones[t * lanes + lane]).collect();
                let mut lane_values: Vec<f32> =
                    (0..t_steps).map(|t| values[t * lanes + lane]).collect();
                let bootstrap = if *lane_dones.last().unwrap_or(&true) {
                    0.0
                } else {
                    boot_vals[lane]
                };
                lane_values.push(bootstrap);
                let (lane_adv, lane_ret) =
                    gae(&lane_rewards, &lane_values, &lane_dones, gamma, lambda);
                for t in 0..t_steps {
                    advantages[t * lanes + lane] = lane_adv[t];
                    returns[t * lanes + lane] = lane_ret[t];
                }
            }
            UnfusedBatch {
                actions,
                logps,
                rewards,
                advantages,
                returns,
                tally,
            }
        }

        #[test]
        fn fused_collect_is_bit_identical_to_unfused_reference() {
            // Lane counts chosen to exercise full groups, a partial last
            // group, and fewer lanes than one group.
            for lanes in [2usize, 4, 6, 8] {
                let mut setup_rng = StdRng::seed_from_u64(40);
                let mut venv_a = venv(lanes, 123);
                let mut net_a = net(&venv_a, &mut setup_rng);
                let mut rng_a = StdRng::seed_from_u64(7);
                let batch = collect(&mut venv_a, &mut net_a, 256, 0.99, 0.95, &mut rng_a);

                let mut setup_rng = StdRng::seed_from_u64(40);
                let mut venv_b = venv(lanes, 123);
                let mut net_b = net(&venv_b, &mut setup_rng);
                let mut rng_b = StdRng::seed_from_u64(7);
                let reference =
                    unfused_reference_collect(&mut venv_b, &mut net_b, 256, 0.99, 0.95, &mut rng_b);

                let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(batch.actions, reference.actions, "lanes={lanes}");
                assert_eq!(
                    bits(&batch.logps),
                    bits(&reference.logps),
                    "lanes={lanes}: fused log-probs must be bitwise identical"
                );
                assert_eq!(batch.rewards, reference.rewards, "lanes={lanes}");
                assert_eq!(
                    bits(&batch.advantages),
                    bits(&reference.advantages),
                    "lanes={lanes}: fused advantages must be bitwise identical"
                );
                assert_eq!(
                    bits(&batch.returns),
                    bits(&reference.returns),
                    "lanes={lanes}: fused returns must be bitwise identical"
                );
                assert_eq!(batch.episodes, reference.tally, "lanes={lanes}");
                // Both RNG streams must land in the same place.
                use rand::Rng;
                assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
            }
        }

        #[test]
        fn multi_lane_gae_does_not_leak_across_lanes() {
            // Recompute GAE per lane from the batch's own rewards/dones and
            // the value predictions implied by `returns - advantages`, and
            // demand an exact per-lane match. A cross-lane leak (e.g. one
            // gae() pass over the whole time-major array) breaks this.
            let (gamma, lambda) = (0.9f32, 0.8f32);
            let lanes = 4usize;
            let mut venv = venv(lanes, 9);
            let mut rng = StdRng::seed_from_u64(5);
            let mut net = net(&venv, &mut rng);
            let batch = collect(&mut venv, &mut net, 64, gamma, lambda, &mut rng);
            assert_eq!(batch.actions.len(), 64);
            let t_steps = batch.actions.len() / lanes;
            for lane in 0..lanes {
                let idx = |t: usize| t * lanes + lane;
                let rewards: Vec<f32> = (0..t_steps).map(|t| batch.rewards[idx(t)]).collect();
                let dones: Vec<bool> = (0..t_steps).map(|t| batch.dones[idx(t)]).collect();
                let mut values: Vec<f32> = (0..t_steps)
                    .map(|t| batch.returns[idx(t)] - batch.advantages[idx(t)])
                    .collect();
                // Recover the bootstrap: 0 on a terminal tail, else invert
                // the last GAE step (adv_T = r_T + gamma*boot - v_T).
                let last = t_steps - 1;
                let bootstrap = if dones[last] {
                    0.0
                } else {
                    (batch.advantages[idx(last)] - rewards[last] + values[last]) / gamma
                };
                values.push(bootstrap);
                let (adv, ret) = gae(&rewards, &values, &dones, gamma, lambda);
                for t in 0..t_steps {
                    assert!(
                        (adv[t] - batch.advantages[idx(t)]).abs() < 1e-5,
                        "lane {lane} t {t}: adv {} vs batch {}",
                        adv[t],
                        batch.advantages[idx(t)]
                    );
                    assert!((ret[t] - batch.returns[idx(t)]).abs() < 1e-5);
                }
            }
        }
    }
}
