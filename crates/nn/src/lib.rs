//! Minimal neural-network substrate for the AutoCAT reproduction.
//!
//! The AutoCAT paper trains its RL agent with PPO on top of either an MLP or
//! a Transformer-encoder backbone (Sec. IV-C / VI-B). Mature autograd crates
//! are not available offline, so this crate hand-rolls exactly what PPO
//! needs:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the linear-algebra
//!   kernels used by the layers.
//! * [`layers`] — `Linear`, activations, `LayerNorm`, multi-head
//!   self-attention, each with a cached forward pass and a manual backward
//!   pass that accumulates gradients into [`Param`]s.
//! * [`models`] — [`models::MlpPolicy`] and [`models::TransformerPolicy`],
//!   both implementing [`models::PolicyValueNet`] (shared trunk, categorical
//!   policy head, scalar value head).
//! * [`optim::Adam`] — the Adam optimizer (per-parameter moments).
//! * [`grad`] — [`grad::GradBuffer`] and weight-sync helpers for the
//!   data-parallel sharded PPO update: harvest a replica's gradients,
//!   reduce shard buffers in fixed order, copy weights to replicas.
//! * [`dist::Categorical`] — sampling, log-probabilities and entropy for the
//!   discrete action distribution, plus the analytic gradients PPO needs.
//! * [`value`] — the workspace's hand-rolled TOML/JSON document model
//!   (the vendored `serde` is a no-op marker), shared by scenario files,
//!   checkpoints and sweep reports.
//! * [`state`] — backbone-agnostic parameter/optimizer (de)serialization:
//!   any [`models::PolicyValueNet`] checkpoints through its `visit_params`
//!   walk, bit-exactly, with no per-model code.
//!
//! # Design notes
//!
//! Everything is `f32`, dense and row-major; [`Matrix::matmul`] is
//! register-blocked (see [`Matrix::MM_ROW_BLOCK`]) because PPO rollout
//! throughput on this workload is dominated by small-batch policy
//! forwards. Backward passes are hand-derived per layer; there is no tape
//! or graph. Determinism is a hard requirement across the workspace —
//! same seed, same trajectories, same checkpoints — so nothing in this
//! crate reads wall-clock time, thread identity or global RNG state.
//!
//! # Example
//!
//! ```
//! use autocat_nn::models::{MlpConfig, MlpPolicy, PolicyValueNet};
//! use autocat_nn::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = MlpPolicy::new(&MlpConfig::new(8, 4), &mut rng);
//! let obs = Matrix::zeros(1, 8);
//! let (logits, values) = net.forward(&obs);
//! assert_eq!(logits.cols(), 4);
//! assert_eq!(values.len(), 1);
//! ```

pub mod dist;
pub mod grad;
pub mod init;
pub mod layers;
pub mod matrix;
pub mod models;
pub mod optim;
pub mod param;
pub mod state;
pub mod value;

pub use dist::Categorical;
pub use grad::GradBuffer;
pub use matrix::Matrix;
pub use optim::Adam;
pub use param::Param;
