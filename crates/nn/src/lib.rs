//! Minimal neural-network substrate for the AutoCAT reproduction.
//!
//! The AutoCAT paper trains its RL agent with PPO on top of either an MLP or
//! a Transformer-encoder backbone (Sec. IV-C / VI-B). Mature autograd crates
//! are not available offline, so this crate hand-rolls exactly what PPO
//! needs:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the linear-algebra
//!   kernels used by the layers.
//! * [`layers`] — `Linear`, activations, `LayerNorm`, multi-head
//!   self-attention, each with a cached forward pass and a manual backward
//!   pass that accumulates gradients into [`Param`]s.
//! * [`models`] — [`models::MlpPolicy`] and [`models::TransformerPolicy`],
//!   both implementing [`models::PolicyValueNet`] (shared trunk, categorical
//!   policy head, scalar value head).
//! * [`optim::Adam`] — the Adam optimizer (per-parameter moments).
//! * [`dist::Categorical`] — sampling, log-probabilities and entropy for the
//!   discrete action distribution, plus the analytic gradients PPO needs.
//!
//! # Example
//!
//! ```
//! use autocat_nn::models::{MlpConfig, MlpPolicy, PolicyValueNet};
//! use autocat_nn::Matrix;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut net = MlpPolicy::new(&MlpConfig::new(8, 4), &mut rng);
//! let obs = Matrix::zeros(1, 8);
//! let (logits, values) = net.forward(&obs);
//! assert_eq!(logits.cols(), 4);
//! assert_eq!(values.len(), 1);
//! ```

pub mod dist;
pub mod init;
pub mod layers;
pub mod matrix;
pub mod models;
pub mod optim;
pub mod param;

pub use dist::Categorical;
pub use matrix::Matrix;
pub use optim::Adam;
pub use param::Param;
